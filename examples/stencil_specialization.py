#!/usr/bin/env python3
"""Figure 8: DBrew output vs DBrew+LLVM output for the generic stencil.

Builds the paper's case study (the flat 4-point stencil of Fig. 7),
specializes ``apply_flat`` with DBrew, post-processes with the LLVM-style
pipeline, and prints both machine-code listings next to the hand-specialized
``apply_direct`` — the comparison Fig. 8 makes.

Run:  python examples/stencil_specialization.py
"""

from repro.bench.modes import prepare_kernel
from repro.stencil.jacobi import JacobiSetup, StencilWorkspace, matrices_equal
from repro.x86.decoder import decode_block
from repro.x86.printer import format_block


def disasm(ws, addr, name):
    code = ws.image.memory.read(addr, ws.image.func_sizes[name])
    return format_block(decode_block(code, addr, len(code), base_addr=addr),
                        with_addr=False)


def main() -> None:
    ws = StencilWorkspace(JacobiSetup(sz=17, sweeps=2))
    ws.reset_matrices()
    reference = ws.reference_sweeps(2)

    print("--- generic element kernel (apply_flat, compiler output) ---")
    print(disasm(ws, ws.image.symbol("apply_flat"), "apply_flat"))

    dbrew = prepare_kernel(ws, "flat", "dbrew", line=False)
    print("\n--- specialized by DBrew (Fig. 8 top: materialization movs,")
    print("    absolute constant addresses, fully unrolled point loop) ---")
    print(disasm(ws, dbrew.kernel_addr, dbrew.name))

    both = prepare_kernel(ws, "flat", "dbrew+llvm", line=False)
    print("\n--- DBrew + LLVM post-processing (Fig. 8 bottom) ---")
    print(disasm(ws, both.kernel_addr, both.name))

    print("\n--- the hand-specialized target (apply_direct) ---")
    print(disasm(ws, ws.image.symbol("apply_direct"), "apply_direct"))

    # all three compute the same Jacobi sweep
    for res, tag in ((dbrew, "dbrew"), (both, "dbrew+llvm")):
        ws.sim.invalidate_code()
        ws.reset_matrices()
        stats = ws.run_sweeps(res.kernel_addr, line=False,
                              stencil_arg=ws.flat.addr)
        assert matrices_equal(ws.read_matrix(1), reference), tag
        print(f"\n{tag}: {ws.cycles_per_cell(stats):.1f} simulated cycles/cell "
              f"(extrapolated {ws.extrapolated_seconds(stats):.0f}s at paper scale)")


if __name__ == "__main__":
    main()
