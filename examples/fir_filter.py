#!/usr/bin/env python3
"""Beyond stencils: specializing a generic FIR filter at runtime.

The paper motivates DBrew with "specialization of generic code with
information known at runtime ... how to best handle different runtime
properties (input data, ...) can be covered in generic code" (Sec. I).
This example applies the full pipeline to a different HPC kernel family: a
generic FIR (finite impulse response) filter whose tap count and
coefficients are runtime data.

Compares four variants on the simulator:
  1. generic FIR (taps in memory, inner loop),
  2. DBrew-specialized (taps fixed, inner loop unrolled at binary level),
  3. DBrew + LLVM-style post-processing,
  4. IR-level fixation (Sec. IV) of the original.

Run:  python examples/fir_filter.py
"""

import struct

from repro.cc import compile_c
from repro.cpu import Simulator
from repro.dbrew import Rewriter
from repro.jit import BinaryTransformer
from repro.lift import FunctionSignature, LiftOptions
from repro.lift.fixation import FixedMemory

SOURCE = """
double dot(double* taps, long ntaps, double* x) {
    double acc = 0.0;
    for (long t = 0; t < ntaps; t++) {
        acc += taps[t] * x[t];
    }
    return acc;
}

void fir(double* taps, long ntaps, double* x, double* y, long n) {
    for (long i = 0; i < n; i++) {
        y[i] = dot(taps, ntaps, x + i);
    }
}
"""

SIGNATURE = FunctionSignature(("i", "i", "i", "i", "i"), None)
TAPS = (0.25, 0.5, 0.25)  # a simple smoothing filter
N = 64


def reference(x):
    return [sum(t * x[i + k] for k, t in enumerate(TAPS))
            for i in range(len(x) - len(TAPS))]


def main() -> None:
    program = compile_c(SOURCE)
    image = program.image
    sim = Simulator(image)

    taps = image.alloc_data(8 * len(TAPS),
                            data=struct.pack(f"<{len(TAPS)}d", *TAPS))
    signal = [float((7 * i) % 13) for i in range(N + len(TAPS))]
    x = image.alloc_data(8 * len(signal),
                         data=struct.pack(f"<{len(signal)}d", *signal))
    y = image.alloc_data(8 * N)
    want = reference(signal)[:N]

    def run(name):
        image.memory.write(y, b"\x00" * 8 * N)
        sim.invalidate_code()
        stats = sim.call(name, (taps, len(TAPS), x, y, N),
                         max_steps=10_000_000)
        got = [image.memory.read_f64(y + 8 * i) for i in range(N)]
        assert got == want, name
        return stats.stats

    base = run("fir")
    print(f"generic FIR:        {base.cycles:8.0f} cycles "
          f"({base.instructions} instructions)")

    # DBrew: fix the taps pointer, count, and declare the taps fixed memory
    r = (Rewriter(image, "fir")
         .set_signature(tuple(SIGNATURE.params), None)
         .set_par(0, taps)
         .set_par(1, len(TAPS))
         .set_mem(taps, taps + 8 * len(TAPS)))
    r.rewrite(name="fir_dbrew")
    dbrew = run("fir_dbrew")
    print(f"DBrew specialized:  {dbrew.cycles:8.0f} cycles "
          f"({dbrew.instructions} instructions)")

    # DBrew already inlined `dot`; the identity transformation needs no
    # call-target declarations for its output
    tx = BinaryTransformer(image)
    tx.llvm_identity("fir_dbrew", SIGNATURE, name="fir_both")
    both = run("fir_both")
    print(f"DBrew + LLVM:       {both.cycles:8.0f} cycles "
          f"({both.instructions} instructions)")

    # IR-level fixation lifts the *original* fir, whose call to `dot` must
    # be declared (Sec. III-A/B); the engine lifts the callee as a
    # definition so the IR inliner can specialize through it
    tx_fix = BinaryTransformer(image, lift_options=LiftOptions(
        known_functions={
            image.symbol("dot"): ("dot", FunctionSignature(("i", "i", "i"), "f")),
        },
    ))
    tx_fix.llvm_fixed("fir", SIGNATURE,
                      {0: FixedMemory(taps, 8 * len(TAPS)), 1: len(TAPS)},
                      name="fir_fix")
    fix = run("fir_fix")
    print(f"IR-level fixation:  {fix.cycles:8.0f} cycles "
          f"({fix.instructions} instructions)")

    assert dbrew.cycles < base.cycles
    assert both.cycles <= dbrew.cycles
    assert fix.cycles < base.cycles
    print("\nall variants verified against the Python reference")


if __name__ == "__main__":
    main()
