#!/usr/bin/env python3
"""Tiered execution of the Jacobi stencil: watch a kernel heat up.

The paper's workflow rewrites the kernel *before* the run and pays the
whole compile up front.  The tiered engine instead starts every function
at T0 (the original code), profiles it, and promotes it in the
background while the caller keeps running:

  T0  original binary            free          first call
  T1  lightweight llvm-fix       ~cheap        after a few calls
  T2  dbrew+llvm, O3, gated      expensive     once provably hot

No sweep ever waits on a compiler — each one dispatches to the best
*ready* tier.  The per-sweep table below shows the promotions landing
mid-run and the measured cycles/cell dropping as they do.

Run:  python examples/tiered_jacobi.py
"""

import time

from repro.stencil.jacobi import JacobiSetup, StencilWorkspace
from repro.bench.modes import register_tiered
from repro.tier import TIER_NAMES, T2, TieredEngine, TierPolicy


def main() -> None:
    setup = JacobiSetup(sz=17, sweeps=1)
    ws = StencilWorkspace(setup)
    print(f"simulated matrix: {setup.sz}x{setup.sz}, "
          f"flat element kernel, promote thresholds: 2 calls > T1, "
          f"4 calls > T2\n")

    policy = TierPolicy(promote_calls=(2, 4))
    with TieredEngine(ws.image, policy=policy) as engine:
        handle = register_tiered(ws, "flat", engine, line=False)

        print(f"{'sweep':>5}  {'tier':<10} {'cycles/cell':>11}   notes")
        seen_tiers = {0}
        sweep = 0
        t_start = time.perf_counter()
        while True:
            sweep += 1
            tier_before = handle.tier
            stats = ws.run_tiered_sweeps(handle, stencil_arg=ws.flat.addr,
                                         line=False, sweeps=1)
            note = ""
            if handle.tier not in seen_tiers:
                seen_tiers.add(handle.tier)
                code = handle.code
                note = (f"promoted to {code.tier_name} ({code.mode}"
                        f"{', gate-verified' if code.verified else ''})")
            print(f"{sweep:>5}  {TIER_NAMES[tier_before]:<10} "
                  f"{ws.cycles_per_cell(stats, 1):>11.2f}   {note}")
            if handle.tier >= T2 and sweep >= 8:
                break
            if sweep >= 100:  # compile still pending on a slow machine
                handle.wait_for_tier(T2, timeout=60.0)
        wall = time.perf_counter() - t_start

        engine.drain(60.0)
        snap = engine.snapshot()
        print(f"\n{sweep} sweeps in {wall:.2f}s wall; the compiles ran in "
              f"the background:")
        for tier, secs in sorted(snap["stats"]["compile_seconds"].items()):
            if secs:
                print(f"  {TIER_NAMES[tier]}: {secs * 1e3:.0f} ms compile, "
                      f"{snap['stats']['installs'][tier]} install(s)")
        gov = handle.governor.snapshot()
        print(f"governor: thresholds={gov['thresholds']} "
              f"measured cycles/cell by tier="
              f"{ {t: round(c, 1) for t, c in gov['cycles_ewma'].items()} }")


if __name__ == "__main__":
    main()
