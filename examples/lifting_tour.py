#!/usr/bin/env python3
"""A tour of the x86-64 -> IR transformation (Sec. III, Figures 4-6).

Shows, for hand-written machine-code snippets:

* Fig. 5 — how individual instructions lift (``sub``, a memory load,
  ``addsd`` with its facet-cast chain);
* Fig. 4 — the register facet model (same xmm register viewed as i128,
  scalar double, and vector);
* Fig. 6 — the flag cache: the same ``cmp``+``cmovl`` max() function lifted
  with and without it, before and after -O3.

Run:  python examples/lifting_tour.py
"""

from repro.cpu import Image
from repro.ir import Module, print_function, verify
from repro.ir.passes import run_o3
from repro.lift import FunctionSignature, LiftOptions, lift_function
from repro.x86 import parse_asm
from repro.x86.asm import assemble


def lift_snippet(asm, signature, *, name="snippet", flag_cache=True,
                 facet_cache=True, optimize=False):
    image = Image()
    base = image.next_code_addr()
    code, _ = assemble(parse_asm(asm), base=base)
    image.add_function(name, code)
    module = Module(name)
    func = lift_function(
        image.memory, base, signature,
        LiftOptions(name=name, flag_cache=flag_cache, facet_cache=facet_cache),
        module,
    )
    verify(func)
    if optimize:
        run_o3(func)
        verify(func)
    return func


def show(title, func):
    print(f"\n=== {title} ===")
    print(print_function(func))


def main() -> None:
    # --- Fig. 5: single instructions ---------------------------------------
    show("Fig 5a: sub rax, 1 (unoptimized lift, flags computed eagerly)",
         lift_snippet("sub rax, 1\nret", FunctionSignature((), "i")))

    show("Fig 5b: mov eax, [rdi - 0xc] -> GEP + load + zext",
         lift_snippet("mov eax, [rdi - 0xc]\nret",
                      FunctionSignature(("i",), "i"), optimize=True))

    show("Fig 5c: addsd xmm0, xmm1 -> extractelement / fadd / insertelement",
         lift_snippet("addsd xmm0, xmm1\nret",
                      FunctionSignature(("f", "f"), "f")))

    # --- Fig. 4: facets after optimization ----------------------------------
    show("facet chains vanish after -O3 (paper: 'introduced overhead often "
         "is removed at a later stage')",
         lift_snippet("addsd xmm0, xmm1\nmulsd xmm0, xmm1\nret",
                      FunctionSignature(("f", "f"), "f"), optimize=True))

    # --- Fig. 6: the flag cache ---------------------------------------------
    max_asm = """
        mov rax, rdi
        cmp rdi, rsi
        cmovl rax, rsi
        ret
    """
    show("Fig 6b: max(a,b) WITHOUT flag cache, after -O3 "
         "(sign/overflow bit arithmetic survives)",
         lift_snippet(max_asm, FunctionSignature(("i", "i"), "i"),
                      flag_cache=False, optimize=True))

    show("Fig 6c: max(a,b) WITH flag cache, after -O3 (single icmp slt)",
         lift_snippet(max_asm, FunctionSignature(("i", "i"), "i"),
                      flag_cache=True, optimize=True))


if __name__ == "__main__":
    main()
