#!/usr/bin/env python3
"""Quickstart: runtime specialization of a compiled function (Fig. 2/3).

Compiles a generic polynomial evaluator with MCC, fixes its coefficient
array with DBrew (the ``dbrew_setpar`` / ``dbrew_setmem`` API of the
paper's Fig. 3), post-processes the result through the LLVM-style pipeline,
and compares the three variants on the simulator.

Run:  python examples/quickstart.py
"""

import struct

from repro.cc import compile_c
from repro.cpu import Simulator
from repro.dbrew import Rewriter
from repro.jit import BinaryTransformer
from repro.lift import FunctionSignature
from repro.x86.decoder import decode_block
from repro.x86.printer import format_block


def disasm(image, name):
    code = image.function_bytes(name)
    addr = image.symbol(name)
    return format_block(decode_block(code, addr, len(code), base_addr=addr),
                        with_addr=False)


def main() -> None:
    # 1. "compile time": a generic Horner evaluator, coefficients in memory
    source = """
    double poly(double* coeff, long n, double x) {
        double acc = 0.0;
        for (long i = 0; i < n; i++) acc = acc * x + coeff[i];
        return acc;
    }
    """
    program = compile_c(source)
    image = program.image
    sim = Simulator(image)

    # runtime data: p(x) = 2x^2 - 3x + 5
    coeff = image.alloc_data(8 * 3)
    image.memory.write(coeff, struct.pack("<3d", 2.0, -3.0, 5.0))

    generic = sim.call("poly", (coeff, 3), (4.0,))
    print(f"generic poly(4.0)      = {generic.f64_value}   "
          f"[{generic.stats.instructions} instructions]")

    # 2. "runtime": DBrew-specialize on (coeff, n) — Fig. 3's configuration
    rewriter = (
        Rewriter(image, "poly")
        .set_signature(("i", "i", "f"), ret="f")  # coeff*, n, x (SysV ABI)
        .set_par(0, coeff)                    # dbrew_setpar(r, 0, coeff)
        .set_par(1, 3)                        # dbrew_setpar(r, 1, 3)
        .set_mem(coeff, coeff + 24)           # dbrew_setmem(r, start, end)
    )
    rewriter.rewrite(name="poly_spec")
    sim.invalidate_code()
    spec = sim.call("poly_spec", (0, 0), (4.0,))
    print(f"DBrew-specialized      = {spec.f64_value}   "
          f"[{spec.stats.instructions} instructions]")

    # 3. post-process DBrew's output with the LLVM-style pipeline (Fig. 1)
    tx = BinaryTransformer(image)
    result = tx.llvm_identity("poly_spec", FunctionSignature(("i", "i", "f"), "f"),
                              name="poly_spec_llvm")
    sim.invalidate_code()
    both = sim.call("poly_spec_llvm", (0, 0), (4.0,))
    print(f"DBrew + LLVM pipeline  = {both.f64_value}   "
          f"[{both.stats.instructions} instructions]")

    assert generic.f64_value == spec.f64_value == both.f64_value == 25.0

    print("\n--- specialized machine code (DBrew) ---")
    print(disasm(image, "poly_spec"))
    print("\n--- after the LLVM-style post-processing ---")
    print(disasm(image, "poly_spec_llvm"))
    print(f"\ntransform took {1000 * result.total_seconds:.2f} ms "
          f"(lift {1000 * result.lift_seconds:.2f} / "
          f"opt {1000 * result.optimize_seconds:.2f} / "
          f"codegen {1000 * result.codegen_seconds:.2f})")


if __name__ == "__main__":
    main()
