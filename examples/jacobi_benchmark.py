#!/usr/bin/env python3
"""Miniature of the paper's full evaluation (Figures 9a, 9b, 10).

Runs all five modes over the three stencil codes for both kernel shapes,
validates every cell against a pure-Python Jacobi reference, and prints
text versions of the figures.

Run:  python examples/jacobi_benchmark.py          (takes a few minutes)
      python examples/jacobi_benchmark.py --fast   (smaller matrix)
"""

import sys

from repro.bench.harness import (
    format_compile_times, format_figure, run_experiment,
)
from repro.bench.modes import CODES
from repro.stencil.jacobi import JacobiSetup, StencilWorkspace


def main() -> None:
    fast = "--fast" in sys.argv
    setup = JacobiSetup(sz=17 if fast else 25, sweeps=2)
    ws = StencilWorkspace(setup)
    print(f"simulated matrix: {setup.sz}x{setup.sz}, {setup.sweeps} sweeps; "
          f"times extrapolated to the paper's "
          f"{setup.paper_sz}x{setup.paper_sz} x {setup.paper_iterations} "
          f"iterations at {ws.costs.clock_ghz} GHz\n")

    element_rows = []
    line_rows = []
    for code in CODES:
        print(f"running element/{code} ...", flush=True)
        element_rows.append(run_experiment(ws, code, line=False))
    for code in CODES:
        print(f"running line/{code} ...", flush=True)
        line_rows.append(run_experiment(ws, code, line=True))

    print()
    print(format_figure(element_rows, title="Figure 9a: element kernel"))
    print()
    print(format_figure(line_rows, title="Figure 9b: line kernel"))
    print()
    print(format_compile_times(line_rows,
                               title="Figure 10: transformation times"))


if __name__ == "__main__":
    main()
