#!/usr/bin/env python3
"""Trace the whole rewriting pipeline on the Jacobi kernel.

Enables the global tracer, runs the paper's two transformations of the
flat Jacobi element kernel — a pure DBrew specialization (decode /
emulate / encode) and the LLVM-based ``llvm-fix`` pipeline (lift / -O3 /
JIT) — and writes:

* ``trace.json``   — Chrome trace-event JSON: open in ``chrome://tracing``
  or https://ui.perfetto.dev to see the span tree on a timeline;
* ``metrics.json`` — flat metrics snapshot (facet/flag cache counters).

It then prints the same per-stage breakdown the report CLI computes::

    python -m repro.obs.report trace.json --metrics metrics.json

and checks the tentpole's coverage bar: the decode/lift/O3/encode span
self-times must account for at least 90% of the wall-clock transform
time (exit code 1 otherwise), i.e. the trace explains where the time
went instead of leaving it in untraced glue.

Run:  python examples/traced_jacobi.py [--out DIR]
"""

import argparse
import sys
import time
from pathlib import Path

from repro.bench.modes import prepare_kernel
from repro.obs import TRACER, write_chrome_trace, write_metrics
from repro.obs.export import trace_to_chrome
from repro.obs.report import build_breakdown, format_breakdown
from repro.stencil.jacobi import JacobiSetup, StencilWorkspace

MIN_COVERAGE = 0.90


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out", default=".", help="output directory")
    args = ap.parse_args(argv)
    out = Path(args.out)

    ws = StencilWorkspace(JacobiSetup(sz=17, sweeps=1))
    print("tracing: DBrew specialization + llvm-fix pipeline of apply_flat")

    TRACER.clear()
    TRACER.enable()
    t0 = time.perf_counter()
    dbrew = prepare_kernel(ws, "flat", "dbrew", line=False)
    fixed = prepare_kernel(ws, "flat", "llvm-fix", line=False)
    wall = time.perf_counter() - t0
    TRACER.disable()
    print(f"  dbrew    -> {dbrew.name} @ {dbrew.kernel_addr:#x}")
    print(f"  llvm-fix -> {fixed.name} @ {fixed.kernel_addr:#x}")
    print(f"  {len(TRACER.spans)} spans in {wall * 1e3:.1f} ms\n")

    trace_path = out / "trace.json"
    metrics_path = out / "metrics.json"
    write_chrome_trace(trace_path, TRACER)
    write_metrics(metrics_path)
    print(f"wrote {trace_path} (chrome://tracing) and {metrics_path}\n")

    b = build_breakdown(trace_to_chrome(TRACER))
    print(format_breakdown(b))
    print(f"\nreplay:  python -m repro.obs.report {trace_path} "
          f"--metrics {metrics_path}")

    if b["coverage"] < MIN_COVERAGE:
        print(f"FAIL: stage spans cover only {b['coverage']:.1%} of the "
              f"transform wall clock (need {MIN_COVERAGE:.0%})")
        return 1
    print(f"OK: stage spans cover {b['coverage']:.1%} of the transform "
          f"wall clock")
    return 0


if __name__ == "__main__":
    sys.exit(main())
