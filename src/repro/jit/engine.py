"""BinaryTransformer: the paper's Fig. 1 pipeline glued together.

Loaded binary code -> (optional DBrew specialization) -> x86 -> IR
transformation -> standard -O3 optimization -> JIT code generation -> new
binary code installed in the image.

Each public method implements one evaluation mode of Sec. VI:

* :meth:`llvm_identity` — the plain transformation (mode "LLVM");
* :meth:`llvm_fixed` — IR-level parameter fixation (mode "LLVM-fix");
* DBrew alone is :class:`repro.dbrew.Rewriter` (mode "DBrew");
* :meth:`llvm_identity` applied to a rewritten function gives "DBrew+LLVM".

All methods return a :class:`TransformResult` carrying the new entry
address and wall-clock compile-time stages for Fig. 10.

With a :class:`~repro.cache.SpecializationCache` attached (``cache=``),
repeated transformations are memoized per stage: an identical request
returns the installed code directly (``cache_stage == "machine"``), a
request differing only in code-generation options reuses the post--O3
module, and a re-specialization of a known function for new parameter
values reuses the lifted IR (``cache_stage == "lifted"``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.cache import MachineEntry, SpecializationCache
from repro.cache import keys as cache_keys
from repro.cpu.image import Image
from repro.errors import VerificationError
from repro.ir.codegen import JITEngine, JITOptions
from repro.ir.module import Function, Module
from repro.ir.passes import O3Options, O3Report, run_o3
from repro.lift import FunctionSignature, LiftOptions, lift_function
from repro.lift.fixation import FixedMemory, build_fixation_wrapper
from repro.obs import metrics as _metrics
from repro.obs.trace import TRACER as _TR


@dataclass
class TransformResult:
    """Outcome of one runtime transformation."""

    addr: int
    name: str
    function: Function
    module: Module
    lift_seconds: float = 0.0
    optimize_seconds: float = 0.0
    codegen_seconds: float = 0.0
    #: which cache stage served this transform (None = full compile)
    cache_stage: str | None = None
    #: key of the installed code in the machine cache (None = no cache)
    machine_key: str | None = None
    #: the served machine entry had already passed the verification gate
    #: (only meaningful on a machine-stage hit; see MachineEntry.gated)
    machine_gated: bool = False
    #: this request joined another thread's in-flight compile of the same
    #: key and was served the leader's installed code (no pipeline ran)
    coalesced: bool = False
    #: the main function's pipeline report (None on machine/module cache
    #: hits — the optimizer did not run); carries per-pass validation
    #: verdicts when the transformer runs with a validator attached
    o3_report: "O3Report | None" = None
    #: machine-level translation-validation verdict for the installed code
    #: ("proved"/"inconclusive"; "refuted" never reaches a result — it
    #: raises).  None when the transformer runs without ``machine_verify``
    #: or the serving cache entry predates verification.
    machine_verdict: str | None = None
    #: wall-clock cost of the machine-level proof (0.0 on warm hits — the
    #: verdict is stored with the installed entry and served for free)
    machine_verify_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.lift_seconds + self.optimize_seconds + self.codegen_seconds


def verify_emitted(jit: JITEngine, name: str):
    """Prove the function ``jit`` just emitted equivalent to its IR.

    Thin wrapper over :func:`repro.analysis.machine.verify_witness` that
    feeds the ``machine.verify.*`` metrics counters.  Imported lazily so
    transformers running without ``machine_verify`` never pay for the
    verifier package.  A missing witness (backend hook disabled) is
    *inconclusive*, not proved — nothing-to-check is not a proof.
    """
    from repro.analysis import machine as M

    witness = jit.last_witness
    if witness is None:
        report = M.VerifyResult(
            verdict=M.INCONCLUSIVE,
            reasons=[f"backend produced no witness for {name!r}"])
    else:
        report = M.verify_witness(witness)
    _metrics.counter(f"machine.verify.{report.verdict}").inc()
    return report


class BinaryTransformer:
    """Per-image transformation engine."""

    def __init__(self, image: Image, *, lift_options: LiftOptions | None = None,
                 o3_options: O3Options | None = None,
                 jit_options: JITOptions | None = None,
                 cache: SpecializationCache | None = None,
                 budget: "object | None" = None,
                 validator: "object | None" = None,
                 machine_verify: bool = False) -> None:
        self.image = image
        self.lift_options = lift_options or LiftOptions()
        self.o3_options = o3_options or O3Options()
        self.jit_options = jit_options or JITOptions()
        self.cache = cache
        #: per-pass translation validator (:class:`repro.analysis.validate.
        #: PassValidator`) threaded into every ``run_o3`` call; like the
        #: budget it is never part of cache keys — validation can only
        #: reject a pass (restoring its input), not change accepted output.
        #: Warm cache hits skip optimization and therefore validation:
        #: zero warm-path overhead.
        self.validator = validator
        #: shared :class:`repro.guard.Budget` charged by lift/opt/codegen
        #: stages (None = unlimited); never part of cache keys
        self.budget = budget
        #: statically verify every freshly emitted function against its
        #: source IR (:mod:`repro.analysis.machine`) before installing it.
        #: A refuted proof quarantines the request (``machine:<xkey>``) and
        #: raises :class:`VerificationError` with ``stage="machine-verify"``
        #: before the entry can reach the machine cache.  Like ``validator``
        #: and ``budget`` this is never part of cache keys — verification
        #: only rejects output, it cannot change accepted code.
        self.machine_verify = machine_verify
        #: per-call profiling hook: invoked with every TransformResult this
        #: engine produces (hits and misses alike).  The tiered engine
        #: attaches here to collect compile-cost telemetry per tier without
        #: wrapping every evaluation-mode method.
        self.on_result: "Callable[[TransformResult], None] | None" = None
        #: (image generation, digest) memo for the lifter configuration —
        #: it hashes known-callee bytes, so it must follow image patches
        self._lift_digest: tuple[int, str] | None = None

    def _lift(self, func: str | int, signature: FunctionSignature,
              module: Module, name: str) -> tuple[Function, float]:
        entry = self.image.symbol(func) if isinstance(func, str) else func
        known = dict(self.lift_options.known_functions)
        t0 = time.perf_counter()
        # lift every known call target as a *definition* first, so the IR
        # inliner can see through calls (Sec. III-B: translating call to
        # call "leaves the decision on inlining to the LLVM optimizer")
        for callee_addr, (callee_name, callee_sig) in known.items():
            existing = module.functions.get(callee_name)
            if existing is not None and not existing.is_declaration:
                continue
            lift_function(
                self.image.memory, callee_addr, callee_sig,
                LiftOptions(
                    flag_cache=self.lift_options.flag_cache,
                    facet_cache=self.lift_options.facet_cache,
                    stack_size=self.lift_options.stack_size,
                    name=callee_name,
                    known_functions=known,
                    budget=self.budget,
                ),
                module,
            )
        opts = LiftOptions(
            flag_cache=self.lift_options.flag_cache,
            facet_cache=self.lift_options.facet_cache,
            stack_size=self.lift_options.stack_size,
            name=name,
            known_functions=known,
            budget=self.budget,
        )
        lifted = lift_function(self.image.memory, entry, signature, opts, module)
        return lifted, time.perf_counter() - t0

    def _optimize_module(self, module: Module, main: Function) -> O3Report:
        """Optimize lifted callees first so the inliner sees their real
        (small) size, then the main function."""
        for f in module.functions.values():
            if f is not main and not f.is_declaration:
                run_o3(f, self.o3_options, budget=self.budget,
                       validator=self.validator)
        return run_o3(main, self.o3_options, budget=self.budget,
                      validator=self.validator)

    # -- cache plumbing ----------------------------------------------------------

    def _lifted_key(self, func: str | int,
                    signature: FunctionSignature) -> str | None:
        """Stage-1 key via the cache's memoized content digests."""
        assert self.cache is not None
        code_digest = self.cache.code_digest(self.image, func)
        if code_digest is None:
            return None
        generation = self.cache.attach_image(self.image).generation
        if self._lift_digest is None or self._lift_digest[0] != generation:
            self._lift_digest = (generation, cache_keys.lift_options_digest(
                self.lift_options, self.image))
        return cache_keys.digest_str(
            "lifted", code_digest, cache_keys.signature_digest(signature),
            self._lift_digest[1],
        )

    def _codegen(self, main: Function, out_name: str,
                 xkey: str | None = None) -> tuple[int, float, str | None, float]:
        """Emit ``main``; with ``machine_verify`` also prove the emission.

        Returns ``(addr, codegen_seconds, machine_verdict, verify_seconds)``.
        Both compile paths flow through here, so a refuted proof can never
        reach :meth:`SpecializationCache.put_machine` — the raise happens
        first, and the request key is quarantined like an ``o3pass:``
        rejection so repeat requests fail fast.
        """
        if self.budget is not None:
            self.budget.checkpoint("codegen")  # type: ignore[attr-defined]
        t0 = time.perf_counter()
        jit = JITEngine(self.image, self.jit_options)
        addr = jit.compile_function(main, name=out_name)
        t_cg = time.perf_counter() - t0
        if not self.machine_verify:
            return addr, t_cg, None, 0.0
        report = verify_emitted(jit, out_name)
        if report.verdict == "refuted":
            detail = "; ".join(
                f.format() for f in report.findings if f.is_error) \
                or "machine-level proof refuted"
            if self.cache is not None and xkey is not None:
                self.cache.put_negative(
                    f"machine:{xkey}", "machine-verify", detail)
            raise VerificationError(
                f"machine verification refuted {out_name!r}: {detail}",
                stage="machine-verify", name=out_name,
                findings=tuple(report.findings))
        return addr, t_cg, report.verdict, report.seconds

    def _transform(self, func: str | int, signature: FunctionSignature,
                   fixes: dict[int, int | float | FixedMemory] | None,
                   out_name: str, mode: str) -> TransformResult:
        """The shared memoized pipeline behind both LLVM modes.

        A machine-stage miss is routed through the cache's
        :class:`~repro.cache.FlightTable`: of N threads missing on the same
        installed-code key concurrently, one runs the pipeline and the rest
        block until it installs, then serve the result as a machine-stage
        hit (``coalesced=True``) — one compile, one installed copy.
        """
        if not _TR.enabled:
            return self._transform_impl(func, signature, fixes, out_name, mode)
        with _TR.span("transform", {"name": out_name, "mode": mode}):
            return self._transform_impl(func, signature, fixes, out_name, mode)

    def _transform_impl(self, func: str | int, signature: FunctionSignature,
                        fixes: dict[int, int | float | FixedMemory] | None,
                        out_name: str, mode: str) -> TransformResult:
        cache = self.cache
        lkey = mkey = xkey = None
        if cache is not None:
            lkey = self._lifted_key(func, signature)
        if lkey is not None:
            assert cache is not None
            mkey = cache_keys.module_key(
                lkey, mode, cache_keys.fixes_digest(fixes, self.image.memory),
                cache_keys.options_digest(self.o3_options),
            )
            xkey = cache_keys.machine_key(
                mkey, cache_keys.options_digest(self.jit_options))

            served = self._serve_machine(xkey, out_name)
            if served is not None:
                return self._done(served)

            result, leader = cache.flights.run(
                ("transform", id(self.image), xkey),
                lambda: self._compile(func, signature, fixes, out_name, mode,
                                      lkey, mkey, xkey))
            if leader:
                return self._done(result)
            served = self._serve_machine(xkey, out_name, coalesced=True)
            if served is not None:
                return self._done(served)
            # leader's entry already evicted (tiny machine capacity under
            # churn): fall through to a private compile
        return self._done(self._compile(func, signature, fixes, out_name,
                                        mode, lkey, mkey, xkey))

    def _done(self, result: TransformResult) -> TransformResult:
        if self.on_result is not None:
            self.on_result(result)
        return result

    def _serve_machine(self, xkey: str, out_name: str, *,
                       coalesced: bool = False) -> TransformResult | None:
        """Alias an installed machine entry under ``out_name``, if cached."""
        assert self.cache is not None
        entry = self.cache.get_machine(self.image, xkey)
        if entry is None:
            return None
        # already installed in this image: alias the requested name
        # to the existing code, nothing to compile
        self.image.symbols[out_name] = entry.addr
        self.image.func_sizes[out_name] = entry.size
        self.cache.note_transform("machine")
        return TransformResult(entry.addr, out_name, entry.function,
                               entry.module, cache_stage="machine",
                               machine_key=xkey, machine_gated=entry.gated,
                               coalesced=coalesced,
                               machine_verdict=entry.machine_verdict)

    def _compile(self, func: str | int, signature: FunctionSignature,
                 fixes: dict[int, int | float | FixedMemory] | None,
                 out_name: str, mode: str, lkey: str | None,
                 mkey: str | None, xkey: str | None) -> TransformResult:
        """The miss path: module-stage lookup, then the full pipeline."""
        cache = self.cache
        if self.machine_verify and cache is not None and xkey is not None:
            neg = cache.check_negative(f"machine:{xkey}")
            if neg is not None:
                raise VerificationError(
                    f"machine verification previously refuted {out_name!r}: "
                    f"{neg.reason}", stage="machine-verify", name=out_name,
                    quarantined=True)
        if mkey is not None:
            assert cache is not None and xkey is not None
            hit = cache.get_module(mkey)
            if hit is not None:
                module, main_name = hit
                main = module.functions[main_name]
                addr, t_cg, verdict, t_mv = self._codegen(main, out_name, xkey)
                cache.put_machine(self.image, xkey, MachineEntry(
                    addr, out_name, self.image.func_sizes[out_name], main,
                    module, machine_verdict=verdict))
                cache.note_transform("module")
                return TransformResult(addr, out_name, main, module,
                                       codegen_seconds=t_cg,
                                       cache_stage="module",
                                       machine_key=xkey,
                                       machine_verdict=verdict,
                                       machine_verify_seconds=t_mv)

        module = None
        lifted = None
        t_lift = 0.0
        cache_stage = None
        if lkey is not None:
            assert cache is not None
            hit = cache.get_lifted(lkey)
            if hit is not None:
                module, lifted_name = hit
                lifted = module.functions[lifted_name]
                cache_stage = "lifted"
        if module is None or lifted is None:
            module = Module(f"tx.{out_name}")
            lifted, t_lift = self._lift(
                func, signature, module,
                out_name + (".orig" if mode == "fixed" else ".lifted"))
            if lkey is not None:
                assert cache is not None
                cache.put_lifted(lkey, module, lifted.name)

        t0 = time.perf_counter()
        if mode == "fixed":
            span = _TR.start("fixation", {"name": out_name}) \
                if _TR.enabled else None
            try:
                main = build_fixation_wrapper(
                    module, lifted, fixes or {}, self.image.memory,
                    name=out_name
                )
            finally:
                if span is not None:
                    _TR.finish(span)
        else:
            main = lifted
        span = _TR.start("opt", {"name": out_name}) if _TR.enabled else None
        try:
            o3_report = self._optimize_module(module, main)
        finally:
            if span is not None:
                _TR.finish(span)
        t_opt = time.perf_counter() - t0
        if mkey is not None:
            assert cache is not None
            cache.put_module(mkey, module, main.name)

        addr, t_cg, verdict, t_mv = self._codegen(main, out_name, xkey)
        if xkey is not None:
            assert cache is not None
            cache.put_machine(self.image, xkey, MachineEntry(
                addr, out_name, self.image.func_sizes[out_name], main, module,
                machine_verdict=verdict))
            cache.note_transform(cache_stage)
        return TransformResult(addr, out_name, main, module,
                               t_lift, t_opt, t_cg, cache_stage=cache_stage,
                               machine_key=xkey, o3_report=o3_report,
                               machine_verdict=verdict,
                               machine_verify_seconds=t_mv)

    # -- evaluation modes --------------------------------------------------------

    def llvm_identity(self, func: str | int, signature: FunctionSignature,
                      *, name: str | None = None) -> TransformResult:
        """Lift -> -O3 -> JIT, no specialization ("basically an identity
        transformation", Sec. VI)."""
        base = func if isinstance(func, str) else f"f{func:x}"
        out_name = name or f"{base}.llvm"
        return self._transform(func, signature, None, out_name, "identity")

    def llvm_vectorized(self, func: str | int, signature: FunctionSignature,
                        fixes: dict[int, int | float | FixedMemory] | None = None,
                        *, name: str | None = None) -> TransformResult:
        """Sec. VII's proposed *explicit* vectorization API.

        "It seems to be more effective to provide explicit APIs, such as a
        way to transform scalar kernels into vectorized kernels" — the user
        asserts vectorization is wanted; the pipeline runs with
        ``force_vector_width=2`` (the metadata gate is overridden, exactly
        like the paper's command-line experiment, but as a first-class API).
        """
        saved = self.o3_options
        self.o3_options = saved.replace(force_vector_width=2)
        try:
            if fixes:
                return self.llvm_fixed(func, signature, fixes, name=name)
            return self.llvm_identity(func, signature, name=name)
        finally:
            self.o3_options = saved

    def llvm_fixed(self, func: str | int, signature: FunctionSignature,
                   fixes: dict[int, int | float | FixedMemory],
                   *, name: str | None = None) -> TransformResult:
        """Lift the original, then specialize at IR level (Sec. IV)."""
        base = func if isinstance(func, str) else f"f{func:x}"
        out_name = name or f"{base}.llvmfix"
        return self._transform(func, signature, fixes, out_name, "fixed")
