"""BinaryTransformer: the paper's Fig. 1 pipeline glued together.

Loaded binary code -> (optional DBrew specialization) -> x86 -> IR
transformation -> standard -O3 optimization -> JIT code generation -> new
binary code installed in the image.

Each public method implements one evaluation mode of Sec. VI:

* :meth:`llvm_identity` — the plain transformation (mode "LLVM");
* :meth:`llvm_fixed` — IR-level parameter fixation (mode "LLVM-fix");
* DBrew alone is :class:`repro.dbrew.Rewriter` (mode "DBrew");
* :meth:`llvm_identity` applied to a rewritten function gives "DBrew+LLVM".

All methods return a :class:`TransformResult` carrying the new entry
address and wall-clock compile-time stages for Fig. 10.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.cpu.image import Image
from repro.ir.codegen import JITEngine, JITOptions
from repro.ir.module import Function, Module
from repro.ir.passes import O3Options, run_o3
from repro.lift import FunctionSignature, LiftOptions, lift_function
from repro.lift.fixation import FixedMemory, build_fixation_wrapper


@dataclass
class TransformResult:
    """Outcome of one runtime transformation."""

    addr: int
    name: str
    function: Function
    module: Module
    lift_seconds: float = 0.0
    optimize_seconds: float = 0.0
    codegen_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.lift_seconds + self.optimize_seconds + self.codegen_seconds


class BinaryTransformer:
    """Per-image transformation engine."""

    def __init__(self, image: Image, *, lift_options: LiftOptions | None = None,
                 o3_options: O3Options | None = None,
                 jit_options: JITOptions | None = None) -> None:
        self.image = image
        self.lift_options = lift_options or LiftOptions()
        self.o3_options = o3_options or O3Options()
        self.jit_options = jit_options or JITOptions()

    def _lift(self, func: str | int, signature: FunctionSignature,
              module: Module, name: str) -> tuple[Function, float]:
        entry = self.image.symbol(func) if isinstance(func, str) else func
        known = dict(self.lift_options.known_functions)
        t0 = time.perf_counter()
        # lift every known call target as a *definition* first, so the IR
        # inliner can see through calls (Sec. III-B: translating call to
        # call "leaves the decision on inlining to the LLVM optimizer")
        for callee_addr, (callee_name, callee_sig) in known.items():
            existing = module.functions.get(callee_name)
            if existing is not None and not existing.is_declaration:
                continue
            lift_function(
                self.image.memory, callee_addr, callee_sig,
                LiftOptions(
                    flag_cache=self.lift_options.flag_cache,
                    facet_cache=self.lift_options.facet_cache,
                    stack_size=self.lift_options.stack_size,
                    name=callee_name,
                    known_functions=known,
                ),
                module,
            )
        opts = LiftOptions(
            flag_cache=self.lift_options.flag_cache,
            facet_cache=self.lift_options.facet_cache,
            stack_size=self.lift_options.stack_size,
            name=name,
            known_functions=known,
        )
        lifted = lift_function(self.image.memory, entry, signature, opts, module)
        return lifted, time.perf_counter() - t0

    def _optimize_module(self, module: Module, main: Function) -> None:
        """Optimize lifted callees first so the inliner sees their real
        (small) size, then the main function."""
        for f in module.functions.values():
            if f is not main and not f.is_declaration:
                run_o3(f, self.o3_options)
        run_o3(main, self.o3_options)

    def llvm_identity(self, func: str | int, signature: FunctionSignature,
                      *, name: str | None = None) -> TransformResult:
        """Lift -> -O3 -> JIT, no specialization ("basically an identity
        transformation", Sec. VI)."""
        base = func if isinstance(func, str) else f"f{func:x}"
        out_name = name or f"{base}.llvm"
        module = Module(f"tx.{out_name}")
        lifted, t_lift = self._lift(func, signature, module, out_name + ".lifted")
        t0 = time.perf_counter()
        self._optimize_module(module, lifted)
        t_opt = time.perf_counter() - t0
        t0 = time.perf_counter()
        addr = JITEngine(self.image, self.jit_options).compile_function(
            lifted, name=out_name
        )
        t_cg = time.perf_counter() - t0
        return TransformResult(addr, out_name, lifted, module,
                               t_lift, t_opt, t_cg)

    def llvm_vectorized(self, func: str | int, signature: FunctionSignature,
                        fixes: dict[int, int | float | FixedMemory] | None = None,
                        *, name: str | None = None) -> TransformResult:
        """Sec. VII's proposed *explicit* vectorization API.

        "It seems to be more effective to provide explicit APIs, such as a
        way to transform scalar kernels into vectorized kernels" — the user
        asserts vectorization is wanted; the pipeline runs with
        ``force_vector_width=2`` (the metadata gate is overridden, exactly
        like the paper's command-line experiment, but as a first-class API).
        """
        forced = O3Options(
            fast_math=self.o3_options.fast_math,
            enable_inline=self.o3_options.enable_inline,
            enable_unroll=self.o3_options.enable_unroll,
            enable_gvn=self.o3_options.enable_gvn,
            enable_instcombine=self.o3_options.enable_instcombine,
            enable_mem2reg=self.o3_options.enable_mem2reg,
            force_vector_width=2,
            max_iterations=self.o3_options.max_iterations,
        )
        saved = self.o3_options
        self.o3_options = forced
        try:
            if fixes:
                return self.llvm_fixed(func, signature, fixes, name=name)
            return self.llvm_identity(func, signature, name=name)
        finally:
            self.o3_options = saved

    def llvm_fixed(self, func: str | int, signature: FunctionSignature,
                   fixes: dict[int, int | float | FixedMemory],
                   *, name: str | None = None) -> TransformResult:
        """Lift the original, then specialize at IR level (Sec. IV)."""
        base = func if isinstance(func, str) else f"f{func:x}"
        out_name = name or f"{base}.llvmfix"
        module = Module(f"tx.{out_name}")
        lifted, t_lift = self._lift(func, signature, module, out_name + ".orig")
        t0 = time.perf_counter()
        wrapper = build_fixation_wrapper(
            module, lifted, fixes, self.image.memory, name=out_name
        )
        self._optimize_module(module, wrapper)
        t_opt = time.perf_counter() - t0
        t0 = time.perf_counter()
        addr = JITEngine(self.image, self.jit_options).compile_function(
            wrapper, name=out_name
        )
        t_cg = time.perf_counter() - t0
        return TransformResult(addr, out_name, wrapper, module,
                               t_lift, t_opt, t_cg)
