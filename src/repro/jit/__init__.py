"""Runtime binary-transformation engine (Fig. 1's full pipeline)."""

from repro.jit.engine import BinaryTransformer, TransformResult

__all__ = ["BinaryTransformer", "TransformResult"]
