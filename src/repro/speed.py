"""Global kill-switch for the hot-path speed campaign (PR 9).

Every fast path added by the campaign — the threaded-dispatch IR
interpreter traces, the decoded-trace (CFG) cache in block discovery, and
profile-guided O3 pass scheduling — consults :func:`enabled` for its
default.  One switch, three properties:

* **A/B benchmarking**: ``benchmarks/bench_hotpath.py`` measures the same
  workload with the campaign on and off in one process, so the reported
  speedups are apples-to-apples rather than cross-commit guesses.
* **Escape hatch**: ``REPRO_SPEED=0`` in the environment reverts the whole
  process to the pre-campaign interpreters/pipelines if a fast path is
  ever suspected of misbehaving in production.
* **Soundness isolation**: the differential corpus runs with the campaign
  on; any disagreement can be re-run with it off to bisect fast-path bugs
  from pipeline bugs in one step.

The switch only selects *defaults* — call sites that pass an explicit
``threaded=``/``pass_schedule=`` keep full control.
"""

from __future__ import annotations

import os

_override: bool | None = None


def enabled() -> bool:
    """True when the speed-campaign fast paths should be used."""
    if _override is not None:
        return _override
    return os.environ.get("REPRO_SPEED", "1") != "0"


def set_enabled(value: bool | None) -> None:
    """Process-wide override (None = defer to ``REPRO_SPEED``).

    Benchmarks and tests use this for in-process A/B comparison; it wins
    over the environment variable.
    """
    global _override
    _override = value
