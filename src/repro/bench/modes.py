"""The five evaluation modes of Sec. VI, for each stencil code variant.

====================  =========================================================
Native                unmodified compiler output
LLVM                  x86 -> IR -> -O3 -> JIT (identity transformation)
LLVM-fix              as LLVM, plus IR-level parameter fixation (Sec. IV)
DBrew                 binary specialization by rewriting (Sec. II)
DBrew+LLVM            DBrew output post-processed through the LLVM pipeline
====================  =========================================================

``prepare_kernel`` returns the kernel address to install plus the
transformation timings (Fig. 10's compile times).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.cache import SpecializationCache
from repro.dbrew import Rewriter
from repro.guard import GuardedTransformer
from repro.jit import BinaryTransformer
from repro.lift import FunctionSignature, LiftOptions
from repro.lift.fixation import FixedMemory
from repro.stencil.jacobi import StencilWorkspace
from repro.stencil.sources import ELEMENT_SIGNATURE, LINE_SIGNATURE

MODES = ("native", "llvm", "llvm-fix", "dbrew", "dbrew+llvm")
CODES = ("direct", "flat", "sorted")

#: evaluation mode -> guard-ladder restriction (modes the guard can serve;
#: "native" needs no transform and plain "dbrew" has no gate composition)
GUARD_LADDERS = {
    "llvm": ("llvm",),
    "llvm-fix": ("llvm-fix",),
    "dbrew+llvm": ("dbrew+llvm",),
}


@dataclass
class ModeResult:
    """A prepared kernel for one (code, kernel-type, mode) cell."""

    kernel_addr: int
    name: str
    transform_seconds: float = 0.0
    stages: dict[str, float] = field(default_factory=dict)
    #: cache stage that served the transform (None = full compile / native)
    cache_stage: str | None = None
    #: ladder rung that served a guarded preparation (None = unguarded)
    guard_mode: str | None = None
    #: the differential gate ran *conclusively* and passed for this kernel
    verified: bool = False


def _signature(line: bool) -> FunctionSignature:
    params = LINE_SIGNATURE if line else ELEMENT_SIGNATURE
    return FunctionSignature(tuple(params), None)


def _stencil_fix(ws: StencilWorkspace, code: str) -> dict[str, object]:
    """Fixed-parameter configuration per code variant."""
    if code == "direct":
        return {"arg": 0, "regions": [], "fix_memory": None}
    if code == "flat":
        return {
            "arg": ws.flat.addr,
            "regions": [(ws.flat.addr, ws.flat.addr + ws.flat.size)],
            "fix_memory": FixedMemory(ws.flat.addr, ws.flat.size),
        }
    if code == "sorted":
        return {
            "arg": ws.sorted.addr,
            "regions": [(a, a + s) for a, s in ws.sorted.regions],
            # Sec. IV: only the directly-pointed region becomes a constant
            # global; nested pointers are not followed
            "fix_memory": FixedMemory(ws.sorted.addr, ws.sorted.regions[0][1]),
        }
    raise ValueError(f"unknown code variant {code}")


def _kernel_probe(ws: StencilWorkspace, fix: dict[str, object],
                  fixes: dict[int, object], *, line: bool) -> tuple:
    """One real argument vector for the differential gate.

    The kernels take pointers (stencil descriptor, both matrices), which
    the gate's sampled integer probes cannot exercise — the original
    faults on them and the probe is inconclusive.  Supplying the
    workspace's actual matrices plus an interior cell/row makes the gate
    compare real executions; values for fixed parameter slots are dropped
    (the gate substitutes them itself).
    """
    sz = ws.setup.sz
    full = ((fix["arg"], ws.m1, ws.m2, 1, 1, sz - 1) if line
            else (fix["arg"], ws.m1, ws.m2, sz + 1))
    return tuple(v for i, v in enumerate(full) if i not in fixes)


def _native_kernel(code: str, line: bool) -> str:
    return (f"line_{code}" if line else f"apply_{code}")


def _dbrew_input(code: str, line: bool) -> str:
    # the line-kernel DBrew input keeps the element computation in a
    # separate function that DBrew inlines (Sec. VI's setup)
    return (f"line_call_{code}" if line else f"apply_{code}")


def prepare_kernel(ws: StencilWorkspace, code: str, mode: str, *,
                   line: bool, uid: str = "",
                   cache: SpecializationCache | None = None,
                   guard: GuardedTransformer | None = None) -> ModeResult:
    """Build the kernel for one evaluation cell; returns its address.

    With a ``cache``, repeated preparations of the same cell are memoized —
    the compile stages a hit skips report as zero and ``cache_stage`` names
    the stage boundary the transform was served from.

    With a ``guard``, transforming modes are routed through the
    degradation ladder (restricted to the requested mode's rung, then
    ``original``): the preparation can no longer fail, ``guard_mode``
    reports the rung that served it, and ``verified`` whether the
    differential gate passed conclusively — the gate is fed one probe
    with the workspace's real matrices so it actually executes the
    kernels (see :func:`_kernel_probe`).  ``native`` and plain ``dbrew``
    bypass the guard (nothing to transform / no LLVM composition to gate).
    """
    if code not in CODES or mode not in MODES:
        raise ValueError(f"unknown cell ({code}, {mode})")
    native = _native_kernel(code, line)
    sig = _signature(line)
    fix = _stencil_fix(ws, code)
    tag = f"{code}.{'line' if line else 'elem'}.{mode}{uid}"

    if mode == "native":
        return ModeResult(ws.image.symbol(native), native)

    if guard is not None and mode in GUARD_LADDERS:
        fixes: dict[int, object] = {}
        if fix["fix_memory"] is not None:
            fixes[0] = fix["fix_memory"]
        res = guard.transform(
            native, sig, fixes or None,  # type: ignore[arg-type]
            mem_regions=fix["regions"],  # type: ignore[arg-type]
            name=f"k.{tag}", ladder=GUARD_LADDERS[mode],
            dbrew_func=_dbrew_input(code, line),
            probes=(_kernel_probe(ws, fix, fixes, line=line),),
        )
        return ModeResult(
            res.addr, res.name, res.seconds,
            cache_stage=res.result.cache_stage if res.result else None,
            guard_mode=res.mode, verified=res.verified,
        )

    if mode == "llvm":
        tx = BinaryTransformer(ws.image, cache=cache)
        res = tx.llvm_identity(native, sig, name=f"k.{tag}")
        return ModeResult(res.addr, res.name, res.total_seconds, {
            "lift": res.lift_seconds, "opt": res.optimize_seconds,
            "codegen": res.codegen_seconds,
        }, cache_stage=res.cache_stage)

    if mode == "llvm-fix":
        tx = BinaryTransformer(ws.image, cache=cache)
        fixes: dict[int, object] = {}
        if fix["fix_memory"] is not None:
            fixes[0] = fix["fix_memory"]
        res = tx.llvm_fixed(native, sig, fixes, name=f"k.{tag}")  # type: ignore[arg-type]
        return ModeResult(res.addr, res.name, res.total_seconds, {
            "lift": res.lift_seconds, "opt": res.optimize_seconds,
            "codegen": res.codegen_seconds,
        }, cache_stage=res.cache_stage)

    if mode == "dbrew":
        before = cache.stats.stage_hits["rewrite"] if cache is not None else 0
        t0 = time.perf_counter()
        addr = _dbrew_rewrite(ws, code, line, f"k.{tag}", cache=cache)
        dt = time.perf_counter() - t0
        hit = cache is not None and cache.stats.stage_hits["rewrite"] > before
        return ModeResult(addr, f"k.{tag}", dt, {"rewrite": dt},
                          cache_stage="rewrite" if hit else None)

    # dbrew+llvm: rewrite first, then the identity transformation on top
    t0 = time.perf_counter()
    dbrew_addr = _dbrew_rewrite(ws, code, line, f"k.{tag}.dbrew", cache=cache)
    t_rw = time.perf_counter() - t0
    tx = BinaryTransformer(ws.image, cache=cache)
    res = tx.llvm_identity(dbrew_addr, sig, name=f"k.{tag}")
    return ModeResult(res.addr, res.name, t_rw + res.total_seconds, {
        "rewrite": t_rw, "lift": res.lift_seconds,
        "opt": res.optimize_seconds, "codegen": res.codegen_seconds,
    }, cache_stage=res.cache_stage)


def register_tiered(ws: StencilWorkspace, code: str, engine, *,
                    line: bool, uid: str = ""):
    """Register one stencil cell with a :class:`~repro.tier.TieredEngine`.

    Returns the :class:`~repro.tier.DispatchHandle`.  The registration
    carries the same fixation key the eager modes use — the fixed stencil
    descriptor, its memory regions, the separate DBrew inlining entry for
    line kernels, and one real-matrix probe for the T2 admission gate — so
    tiered steady-state code is byte-for-byte what ``dbrew+llvm`` builds.
    """
    if code not in CODES:
        raise ValueError(f"unknown code variant {code}")
    native = _native_kernel(code, line)
    sig = _signature(line)
    fix = _stencil_fix(ws, code)
    fixes: dict[int, object] = {}
    if fix["fix_memory"] is not None:
        fixes[0] = fix["fix_memory"]
    probe = _kernel_probe(ws, fix, fixes, line=line)
    return engine.register(
        native, sig,
        fixes=fixes or None,  # type: ignore[arg-type]
        mem_regions=fix["regions"],  # type: ignore[arg-type]
        probes=(probe,),
        name=f"t.{code}.{'line' if line else 'elem'}{uid}",
        dbrew_func=_dbrew_input(code, line),
    )


def _dbrew_rewrite(ws: StencilWorkspace, code: str, line: bool, name: str,
                   cache: SpecializationCache | None = None) -> int:
    fix = _stencil_fix(ws, code)
    target = _dbrew_input(code, line)
    sig = LINE_SIGNATURE if line else ELEMENT_SIGNATURE
    r = Rewriter(ws.image, target, cache=cache).set_signature(tuple(sig), None)
    if code != "direct":
        r.set_par(0, fix["arg"])  # type: ignore[arg-type]
        for start, end in fix["regions"]:  # type: ignore[union-attr]
            r.set_mem(start, end)
    addr = r.rewrite(name=name)
    if addr == ws.image.symbol(target):
        raise RuntimeError(f"DBrew fell back to the original for {name}")
    return addr
