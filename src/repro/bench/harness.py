"""Experiment runner: produce the rows behind Figures 9a, 9b and 10.

``run_experiment`` measures one (code, kernel-type) row across all five
modes — simulated cycles per cell update, extrapolated paper-scale seconds,
and transformation times — and validates every mode against the pure-Python
Jacobi reference before trusting its numbers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.bench.modes import MODES, ModeResult, prepare_kernel
from repro.stencil.jacobi import StencilWorkspace, matrices_equal


@dataclass
class ExperimentRow:
    """One (code, kernel-type) row of Fig. 9a/9b."""

    code: str
    line: bool
    cycles_per_cell: dict[str, float] = field(default_factory=dict)
    seconds: dict[str, float] = field(default_factory=dict)
    transform_seconds: dict[str, float] = field(default_factory=dict)
    stages: dict[str, dict[str, float]] = field(default_factory=dict)
    correct: dict[str, bool] = field(default_factory=dict)

    def relative_to_native(self, mode: str) -> float:
        return self.cycles_per_cell[mode] / self.cycles_per_cell["native"]


def stencil_arg(ws: StencilWorkspace, code: str) -> int:
    if code == "flat":
        return ws.flat.addr
    if code == "sorted":
        return ws.sorted.addr
    return 0


def run_experiment(ws: StencilWorkspace, code: str, *, line: bool,
                   modes: tuple[str, ...] = MODES,
                   uid: str = "") -> ExperimentRow:
    """Measure one figure row; validates results against the reference."""
    row = ExperimentRow(code, line)
    ws.reset_matrices()
    ref = ws.reference_sweeps(ws.setup.sweeps)
    sarg = stencil_arg(ws, code)
    for mode in modes:
        res: ModeResult = prepare_kernel(ws, code, mode, line=line, uid=uid)
        ws.sim.invalidate_code()
        ws.reset_matrices()
        stats = ws.run_sweeps(res.kernel_addr, line=line, stencil_arg=sarg)
        row.correct[mode] = matrices_equal(ws.read_matrix(1), ref)
        row.cycles_per_cell[mode] = ws.cycles_per_cell(stats)
        row.seconds[mode] = ws.extrapolated_seconds(stats)
        row.transform_seconds[mode] = res.transform_seconds
        row.stages[mode] = dict(res.stages)
    return row


def format_figure(rows: list[ExperimentRow], *, title: str) -> str:
    """Render rows as the text analogue of a Fig. 9 bar chart."""
    lines = [title, "=" * len(title)]
    header = f"{'code':10s}" + "".join(f"{m:>12s}" for m in MODES)
    lines.append(header + f"{'(seconds, paper scale)':>28s}")
    for row in rows:
        cells = "".join(
            f"{row.seconds.get(m, float('nan')):12.2f}" for m in MODES
        )
        ok = all(row.correct.values())
        lines.append(f"{row.code:10s}{cells}   {'ok' if ok else 'WRONG'}")
    return "\n".join(lines)


def format_compile_times(rows: list[ExperimentRow], *, title: str) -> str:
    """Render Fig. 10-style transformation times (milliseconds)."""
    modes = [m for m in MODES if m != "native"]
    lines = [title, "=" * len(title)]
    lines.append(f"{'code':10s}" + "".join(f"{m:>12s}" for m in modes) + "   (ms)")
    for row in rows:
        cells = "".join(
            f"{row.transform_seconds.get(m, float('nan')) * 1000:12.3f}"
            for m in modes
        )
        lines.append(f"{row.code:10s}{cells}")
    return "\n".join(lines)
