"""Benchmark harness reproducing the paper's evaluation (Sec. VI)."""

from repro.bench.modes import MODES, ModeResult, prepare_kernel
from repro.bench.harness import ExperimentRow, run_experiment

__all__ = ["MODES", "ExperimentRow", "ModeResult", "prepare_kernel", "run_experiment"]
