"""Function-level x86-64 -> IR lifting driver (Sec. III).

Processing model: every guest basic block gets an IR block whose entry
carries phi nodes for *all* register slots — 16 GPR i64 canonicals, 16 SSE
i128 canonicals plus their cached f64 facets, and the six status flags.
"Each basic block has a significant amount of Φ-nodes, which are mostly
unused.  These unused nodes will be removed by the optimizer." (Sec. III-C)

Out-states are materialized before each terminator, and all phi incomings
are connected after every block has been lifted, so loops need no fixpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import LiftError
from repro.ir import instructions as IRI
from repro.ir.builder import IRBuilder
from repro.ir.irtypes import (
    DOUBLE, FunctionType, I1, I8, I16, I32, I64, I128, PointerType, Type,
    V2F64, VOID, ptr,
)
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.values import Constant, ConstantFP, ConstantVector, Undef, Value
from repro.lift.blocks import GuestBlock, GuestCFG, discover
from repro.lift.flags import FlagModel
from repro.lift.regfile import (
    F_F64, F_PTR, F_V2F64, I8P, RegFile, RegState,
)
from repro.mem.memory import Memory
from repro.obs.trace import TRACER as _TR
from repro.x86 import isa
from repro.x86.instr import Imm, Instruction, Mem, Operand, Reg
from repro.x86.registers import RAX, RBP, RDX, RSP, SYSV_INT_ARGS

_INT_TYPE = {1: I8, 2: I16, 4: I32, 8: I64, 16: I128}


@dataclass(frozen=True)
class FunctionSignature:
    """SysV-level signature: parameter classes and return class.

    Classes: ``'i'`` integer/pointer (64-bit slot), ``'f'`` double.
    This is the Sec. III-A requirement — the lifter cannot recover
    signatures from bytes, the user supplies them (DBrew has the same
    contract via its C-ABI configuration API).
    """

    params: tuple[str, ...]
    ret: str | None  # 'i', 'f', or None


@dataclass
class LiftOptions:
    """Lifter configuration (the paper's ablation knobs)."""

    flag_cache: bool = True
    facet_cache: bool = True
    stack_size: int = 4096
    name: str = ""
    #: guest address -> (name, signature) for direct call targets
    known_functions: dict[int, tuple[str, FunctionSignature]] = field(
        default_factory=dict
    )
    #: resource budget charged during discovery/lifting (None = unlimited);
    #: excluded from cache keys — a budget changes *whether* a lift
    #: finishes, never what it produces
    budget: "object | None" = None


class _PhiSet:
    """The per-block phi nodes for all register slots."""

    def __init__(self, block: BasicBlock, func: Function) -> None:
        def mkphi(t: Type, hint: str) -> IRI.Phi:
            p = IRI.Phi(t, func.next_name(hint))
            block.instructions.insert(0, p)
            p.block = block
            return p

        # insert in reverse display order since we insert at index 0
        self.flags = {f: mkphi(I1, f"fl{f}") for f in reversed("oszapc")}
        self.xmm_f64 = [mkphi(DOUBLE, f"xf{i}") for i in reversed(range(16))]
        self.xmm_f64.reverse()
        self.xmm = [mkphi(I128, f"x{i}") for i in reversed(range(16))]
        self.xmm.reverse()
        self.gpr = [mkphi(I64, f"r{i}") for i in reversed(range(16))]
        self.gpr.reverse()


class _OutState:
    """Materialized register values at a block exit."""

    def __init__(self, gpr: list[Value], xmm: list[Value],
                 xmm_f64: list[Value], flags: dict[str, Value]) -> None:
        self.gpr = gpr
        self.xmm = xmm
        self.xmm_f64 = xmm_f64
        self.flags = flags


class Lifter:
    def __init__(self, memory: Memory, entry: int, signature: FunctionSignature,
                 options: LiftOptions | None = None,
                 module: Module | None = None) -> None:
        self.memory = memory
        self.entry = entry
        self.signature = signature
        self.options = options or LiftOptions()
        self.module = module or Module("lifted")
        self.func: Function | None = None
        self.b = IRBuilder()
        self.regs: RegFile | None = None
        self.flags: FlagModel | None = None
        self._callee_decls: dict[int, Function] = {}

    # -- driver ------------------------------------------------------------------

    def lift(self) -> Function:
        if not _TR.enabled:
            return self._lift_impl()
        with _TR.span("lift", {"entry": self.entry}):
            return self._lift_impl()

    def _lift_impl(self) -> Function:
        if _TR.enabled:
            with _TR.span("lift.discover", {"entry": self.entry}):
                cfg = discover(self.memory, self.entry,
                               budget=self.options.budget)  # type: ignore[arg-type]
        else:
            cfg = discover(self.memory, self.entry, budget=self.options.budget)  # type: ignore[arg-type]
        sig = self.signature
        param_types = tuple(I64 if c == "i" else DOUBLE for c in sig.params)
        ret_type: Type = VOID if sig.ret is None else (I64 if sig.ret == "i" else DOUBLE)
        name = self.options.name or f"lifted_{self.entry:x}"
        existing = self.module.functions.get(name)
        if existing is not None:
            # fill in a declaration created earlier (e.g. as a call target):
            # existing call sites keep referring to the same Function object
            if not existing.is_declaration:
                raise LiftError(f"function @{name} already lifted")
            if existing.ftype.params != param_types or existing.ftype.ret is not ret_type:
                raise LiftError(f"signature mismatch for declared @{name}")
            existing.is_declaration = False
            func = existing
        else:
            func = Function(name, FunctionType(ret_type, param_types))
            self.module.add_function(func)
        self.func = func

        self._declare_callees()

        ir_blocks: dict[int, BasicBlock] = {}
        phi_sets: dict[int, _PhiSet] = {}
        for gb in cfg.ordered():
            ir_blocks[gb.start] = func.add_block(f"g{gb.start:x}")
        entry_ir = BasicBlock("entry")
        entry_ir.function = func
        func.blocks.insert(0, entry_ir)

        # prologue: virtual stack + argument registers
        self.b.position_at_end(entry_ir)
        init = RegState.fresh()
        self.regs = RegFile(init, self.b, self.options.facet_cache)
        self.flags = FlagModel(self.regs, self.b, self.options.flag_cache)
        stack = self.b.alloca(I8, self.options.stack_size, align=16, name="vstack")
        sp0 = self.b.gep_i(stack, self.options.stack_size - 128, "sp0")
        sp_int = self.b.ptrtoint(sp0, I64, "sp0i")
        self.regs.write_gpr_both(RSP, sp_int, sp0)
        int_idx = 0
        f_idx = 0
        for i, cls in enumerate(sig.params):
            arg = func.args[i]
            arg.name = f"a{i}"
            if cls == "i":
                self.regs.write_gpr(SYSV_INT_ARGS[int_idx], arg, 8)
                int_idx += 1
            else:
                self.regs.write_xmm_f64_zero_rest(f_idx, arg)
                f_idx += 1
        entry_state = init
        self.b.br(ir_blocks[cfg.entry])

        # create phi sets and lift each block
        out_states: dict[int, _OutState] = {}
        edges: list[tuple[int, int]] = []  # (pred_guest, succ_guest)
        for gb in cfg.ordered():
            irb = ir_blocks[gb.start]
            phis = _PhiSet(irb, func)
            phi_sets[gb.start] = phis
            self.b.position_at_end(irb)
            state = self._state_from_phis(phis)
            self.regs = RegFile(state, self.b, self.options.facet_cache)
            self.flags = FlagModel(self.regs, self.b, self.options.flag_cache)
            if _TR.enabled:
                with _TR.span("lift.block", {"addr": gb.start,
                                             "n": len(gb.instructions)}):
                    self._lift_block(gb, ir_blocks, out_states, edges)
            else:
                self._lift_block(gb, ir_blocks, out_states, edges)

        # connect phis: guest entry receives the prologue state
        span = _TR.start("lift.connect") if _TR.enabled else None
        try:
            entry_out = self._materialize_out_in_block(entry_ir, entry_state)
            self._add_incomings(phi_sets[cfg.entry], entry_out, entry_ir)
            for pred, succ in edges:
                self._add_incomings(phi_sets[succ], out_states[pred], ir_blocks[pred])
        finally:
            if span is not None:
                _TR.finish(span)
        return func

    def _declare_callees(self) -> None:
        for addr, (name, csig) in self.options.known_functions.items():
            existing = self.module.functions.get(name)
            if existing is not None:
                self._callee_decls[addr] = existing
                continue
            params = tuple(I64 if c == "i" else DOUBLE for c in csig.params)
            ret: Type = VOID if csig.ret is None else (I64 if csig.ret == "i" else DOUBLE)
            decl = Function(name, FunctionType(ret, params))
            decl.is_declaration = True
            self.module.add_function(decl)
            self._callee_decls[addr] = decl

    def _state_from_phis(self, phis: _PhiSet) -> RegState:
        st = RegState.fresh()
        st.gpr = list(phis.gpr)
        st.xmm = list(phis.xmm)
        st.flags = {f: phis.flags[f] for f in "oszapc"}
        if self.options.facet_cache:
            for i in range(16):
                st.xmm_facets[i][F_F64] = phis.xmm_f64[i]
        return st

    def _materialize_out(self) -> _OutState:
        """Capture register values (with facets) before a terminator."""
        assert self.regs is not None
        st = self.regs.state
        xmm_f64 = [self.regs.read_xmm_f64(i) for i in range(16)]
        return _OutState(list(st.gpr), list(st.xmm), xmm_f64, dict(st.flags))

    def _materialize_out_in_block(self, block: BasicBlock, state: RegState) -> _OutState:
        """Materialize an out-state for a block already terminated (entry)."""
        term = block.instructions.pop()
        self.b.position_at_end(block)
        regs = RegFile(state, self.b, self.options.facet_cache)
        xmm_f64 = [regs.read_xmm_f64(i) for i in range(16)]
        block.instructions.append(term)
        return _OutState(list(state.gpr), list(state.xmm), xmm_f64, dict(state.flags))

    def _add_incomings(self, phis: _PhiSet, out: _OutState, pred: BasicBlock) -> None:
        for i in range(16):
            phis.gpr[i].operands.append(out.gpr[i])
            phis.gpr[i].incoming_blocks.append(pred)
            phis.xmm[i].operands.append(out.xmm[i])
            phis.xmm[i].incoming_blocks.append(pred)
            phis.xmm_f64[i].operands.append(out.xmm_f64[i])
            phis.xmm_f64[i].incoming_blocks.append(pred)
        for f in "oszapc":
            phis.flags[f].operands.append(out.flags[f])
            phis.flags[f].incoming_blocks.append(pred)

    # -- block lifting ------------------------------------------------------------

    def _lift_block(self, gb: GuestBlock, ir_blocks: dict[int, BasicBlock],
                    out_states: dict[int, _OutState],
                    edges: list[tuple[int, int]]) -> None:
        assert self.func is not None
        term = gb.terminator
        for ins in gb.instructions[:-1]:
            self._lift_instruction(ins)

        cls = isa.control_class(term.mnemonic)
        if cls == "ret":
            self._lift_ret()
            return
        if cls == "jmp":
            out_states[gb.start] = self._materialize_out()
            (t,) = term.operands
            assert isinstance(t, Imm)
            self.b.br(ir_blocks[t.value])
            edges.append((gb.start, t.value))
            return
        if cls == "jcc":
            cc = isa.cc_of(term.mnemonic)
            assert cc is not None and self.flags is not None
            cond = self.flags.condition(cc)
            out_states[gb.start] = self._materialize_out()
            (t,) = term.operands
            assert isinstance(t, Imm)
            taken = ir_blocks[t.value]
            fallthrough = ir_blocks[gb.end]
            if taken is fallthrough:
                # degenerate Jcc whose target is its own fall-through: one
                # CFG edge, or the successor's phis would list this block
                # twice (phi incoming lists mirror edges, not branches)
                self.b.br(taken)
                edges.append((gb.start, gb.end))
                return
            self.b.cond_br(cond, taken, fallthrough)
            edges.append((gb.start, t.value))
            edges.append((gb.start, gb.end))
            return
        # fall-through (block was split) or trailing call
        self._lift_instruction(term)
        out_states[gb.start] = self._materialize_out()
        self.b.br(ir_blocks[gb.end])
        edges.append((gb.start, gb.end))

    def _lift_ret(self) -> None:
        assert self.regs is not None
        sig = self.signature
        if sig.ret is None:
            self.b.ret()
        elif sig.ret == "i":
            self.b.ret(self.regs.read_gpr(RAX, 8))
        else:
            self.b.ret(self.regs.read_xmm_f64(0))

    # -- memory operands ----------------------------------------------------------

    def mem_pointer(self, mem: Mem, elem: Type) -> Value:
        """Lower an x86 memory operand to a typed pointer (Sec. III-E)."""
        assert self.regs is not None
        addrspace = {"": 0, "gs": 256, "fs": 257}[mem.seg]
        if mem.riprel or mem.is_absolute:
            p = self.b.inttoptr(Constant(I64, mem.disp), ptr(I8, addrspace))
            return self._typed(p, elem, addrspace)
        offset: Value | None = None
        if mem.index is not None:
            idx = self.regs.read_gpr(mem.index.index, 8)
            if mem.scale != 1:
                idx = self.b.mul(idx, Constant(I64, mem.scale))
            offset = idx
        if mem.disp:
            d = Constant(I64, mem.disp)
            offset = d if offset is None else self.b.add(offset, d)
        if mem.base is not None:
            base = self.regs.read_gpr_ptr(mem.base.index)
            if addrspace:
                base = self.b.cast("bitcast", base, ptr(I8, addrspace))
            if offset is not None:
                base = self.b.gep(base, offset)
            return self._typed(base, elem, addrspace)
        # no base register: pure integer address
        assert offset is not None
        p = self.b.inttoptr(offset, ptr(I8, addrspace))
        return self._typed(p, elem, addrspace)

    def _typed(self, p: Value, elem: Type, addrspace: int = 0) -> Value:
        want = ptr(elem, addrspace)
        if p.type is want:
            return p
        return self.b.bitcast(p, want)

    # -- operand access -------------------------------------------------------------

    def read_int(self, op: Operand, size: int) -> Value:
        assert self.regs is not None
        if isinstance(op, Reg):
            if op.kind == "xmm":
                raise LiftError("integer read of xmm operand")
            return self.regs.read_gpr(op.index, size, op.high8)
        if isinstance(op, Imm):
            return Constant(_INT_TYPE[size], op.value)
        assert isinstance(op, Mem)
        p = self.mem_pointer(op, _INT_TYPE[size])
        return self.b.load(p)

    def write_int(self, op: Operand, value: Value, size: int) -> None:
        assert self.regs is not None
        if isinstance(op, Reg):
            self.regs.write_gpr(op.index, value, size, op.high8)
            return
        assert isinstance(op, Mem)
        p = self.mem_pointer(op, _INT_TYPE[size])
        self.b.store(value, p)

    def read_f64(self, op: Operand) -> Value:
        assert self.regs is not None
        if isinstance(op, Reg):
            assert op.kind == "xmm"
            return self.regs.read_xmm_f64(op.index)
        assert isinstance(op, Mem)
        return self.b.load(self.mem_pointer(op, DOUBLE))

    def read_v2f64(self, op: Operand, *, aligned: bool) -> Value:
        assert self.regs is not None
        if isinstance(op, Reg):
            assert op.kind == "xmm"
            return self.regs.read_xmm_vector(op.index, F_V2F64)
        assert isinstance(op, Mem)
        # movapd is a 16-byte alignment *guarantee*; movupd on f64 data is
        # at least element-aligned in compiler output (align 8)
        return self.b.load(self.mem_pointer(op, V2F64), align=16 if aligned else 8)

    def read_i128(self, op: Operand) -> Value:
        assert self.regs is not None
        if isinstance(op, Reg):
            assert op.kind == "xmm"
            return self.regs.read_xmm_i128(op.index)
        assert isinstance(op, Mem)
        return self.b.load(self.mem_pointer(op, I128))

    # -- instruction dispatch ----------------------------------------------------------

    #: (class, mnemonic) -> (kind, payload) handler-resolution memo.  The
    #: getattr probe plus the cmov/setcc/SSE-table fallback chain runs per
    #: *lifted instruction*; a process sees a few dozen distinct mnemonics,
    #: so resolution is memoized once per mnemonic and dispatch becomes one
    #: dict hit (keyed by class so a subclass overriding a handler never
    #: shares the base class's resolution).
    _DISPATCH_MEMO: dict[tuple[type, str], tuple[str, object]] = {}

    def _resolve_dispatch(self, mnemonic: str) -> tuple[str, object]:
        handler = getattr(type(self), f"_i_{mnemonic}", None)
        if handler is not None:
            return "handler", handler
        cc = isa.cc_of(mnemonic)
        if cc is not None:
            if mnemonic.startswith("cmov"):
                return "cmov", cc
            if mnemonic.startswith("set"):
                return "setcc", cc
        if mnemonic in _SSE_SCALAR_BIN:
            return "sse_scalar", _SSE_SCALAR_BIN[mnemonic]
        if mnemonic in _SSE_PACKED_BIN:
            return "sse_packed", _SSE_PACKED_BIN[mnemonic]
        if mnemonic in _SSE_BITWISE:
            return "sse_bitwise", _SSE_BITWISE[mnemonic]
        return "unsupported", None

    def _lift_instruction(self, ins: Instruction) -> None:
        memo_key = (type(self), ins.mnemonic)
        entry = Lifter._DISPATCH_MEMO.get(memo_key)
        if entry is None:
            entry = self._resolve_dispatch(ins.mnemonic)
            Lifter._DISPATCH_MEMO[memo_key] = entry
        kind, payload = entry
        if kind == "handler":
            payload(self, ins)  # type: ignore[operator]
            return
        if kind == "cmov":
            self._cmov(ins, payload)
            return
        if kind == "setcc":
            self._setcc(ins, payload)
            return
        if kind == "sse_scalar":
            self._sse_scalar_bin(ins, payload)
            return
        if kind == "sse_packed":
            self._sse_packed_bin(ins, payload)
            return
        if kind == "sse_bitwise":
            self._sse_bitwise(ins, payload)
            return
        raise LiftError(f"no lifting rule for {ins!r} at {ins.addr:#x}",
                        stage="lift", addr=ins.addr, instruction=ins.mnemonic,
                        data=ins.raw)

    @staticmethod
    def _opsize(ins: Instruction) -> int:
        for op in ins.operands:
            if isinstance(op, Reg) and op.kind == "gp":
                return op.size
        for op in ins.operands:
            if isinstance(op, Mem):
                return op.size
        return 8

    # --- data movement ---

    def _i_nop(self, ins: Instruction) -> None:
        pass

    def _i_mov(self, ins: Instruction) -> None:
        dst, src = ins.operands
        size = self._opsize(ins)
        assert self.regs is not None
        if isinstance(dst, Reg) and isinstance(src, Reg) and size == 8:
            # full-width reg copy: propagate the pointer facet too
            val = self.regs.read_gpr(src.index, 8)
            pfacet = self.regs.state.gpr_facets[src.index].get(F_PTR) \
                if self.options.facet_cache else None
            self.regs.write_gpr(dst.index, val, 8, ptr_facet=pfacet)
            return
        val = self.read_int(src, size)
        self.write_int(dst, val, size)

    def _i_movzx(self, ins: Instruction) -> None:
        dst, src = ins.operands
        assert isinstance(dst, Reg)
        ssize = src.size if isinstance(src, (Reg, Mem)) else 1
        val = self.read_int(src, ssize)
        self.write_int(dst, self.b.zext(val, _INT_TYPE[dst.size]), dst.size)

    def _i_movsx(self, ins: Instruction) -> None:
        dst, src = ins.operands
        assert isinstance(dst, Reg)
        ssize = src.size if isinstance(src, (Reg, Mem)) else 1
        val = self.read_int(src, ssize)
        self.write_int(dst, self.b.sext(val, _INT_TYPE[dst.size]), dst.size)

    def _i_movsxd(self, ins: Instruction) -> None:
        dst, src = ins.operands
        assert isinstance(dst, Reg)
        val = self.read_int(src, 4)
        self.write_int(dst, self.b.sext(val, I64), 8)

    def _i_lea(self, ins: Instruction) -> None:
        dst, src = ins.operands
        assert isinstance(dst, Reg) and isinstance(src, Mem)
        assert self.regs is not None
        # integer facet: plain arithmetic; pointer facet: GEP form (both set,
        # per Sec. III-C "allowing for more optimizations")
        if src.base is not None and dst.size == 8:
            p = self.mem_pointer(src, I8)
            int_val = self.b.ptrtoint(p, I64)
            self.regs.write_gpr_both(dst.index, int_val, p)
            return
        # no base: integer-only address
        val: Value = Constant(I64, src.disp)
        if src.index is not None:
            idx = self.regs.read_gpr(src.index.index, 8)
            if src.scale != 1:
                idx = self.b.mul(idx, Constant(I64, src.scale))
            val = self.b.add(idx, Constant(I64, src.disp)) if src.disp else idx
        if dst.size == 8:
            self.regs.write_gpr(dst.index, val, 8)
        else:
            self.regs.write_gpr(dst.index, self.b.trunc(val, _INT_TYPE[dst.size]), dst.size)

    def _i_push(self, ins: Instruction) -> None:
        (src,) = ins.operands
        assert self.regs is not None
        val = self.read_int(src, 8)
        sp = self._adjust_rsp(-8)
        self.b.store(val, self._typed(sp, I64))

    def _i_pop(self, ins: Instruction) -> None:
        (dst,) = ins.operands
        assert self.regs is not None
        sp = self.regs.read_gpr_ptr(RSP)
        val = self.b.load(self._typed(sp, I64))
        self._adjust_rsp(8)
        self.write_int(dst, val, 8)

    def _adjust_rsp(self, delta: int) -> Value:
        """Move rsp by delta via GEP (Sec. III-F); returns the new pointer."""
        assert self.regs is not None
        sp = self.regs.read_gpr_ptr(RSP)
        new_sp = self.b.gep_i(sp, delta)
        new_int = self.b.ptrtoint(new_sp, I64)
        self.regs.write_gpr_both(RSP, new_int, new_sp)
        return new_sp

    def _i_leave(self, ins: Instruction) -> None:
        assert self.regs is not None
        # rsp = rbp; pop rbp
        rbp_int = self.regs.read_gpr(RBP, 8)
        rbp_ptr = self.regs.read_gpr_ptr(RBP)
        self.regs.write_gpr_both(RSP, rbp_int, rbp_ptr)
        val = self.b.load(self._typed(rbp_ptr, I64))
        self._adjust_rsp(8)
        self.regs.write_gpr(RBP, val, 8)

    # --- integer ALU ---

    def _i_add(self, ins: Instruction) -> None:
        dst, src = ins.operands
        size = self._opsize(ins)
        a = self.read_int(dst, size)
        bv = self.read_int(src, size)
        r = self.b.add(a, bv)
        assert self.flags is not None
        self.flags.set_after_add(a, bv, r)
        # add on 64-bit registers may be pointer arithmetic: set both facets
        if isinstance(dst, Reg) and size == 8 and isinstance(src, Imm) \
                and self._has_ptr_facet(dst):
            assert self.regs is not None
            base = self.regs.read_gpr_ptr(dst.index)
            p = self.b.gep_i(base, src.value)
            self.regs.write_gpr_both(dst.index, r, p)
            return
        self.write_int(dst, r, size)

    def _has_ptr_facet(self, reg: Reg) -> bool:
        assert self.regs is not None
        return self.options.facet_cache and \
            F_PTR in self.regs.state.gpr_facets[reg.index]

    def _i_sub(self, ins: Instruction) -> None:
        dst, src = ins.operands
        size = self._opsize(ins)
        a = self.read_int(dst, size)
        bv = self.read_int(src, size)
        r = self.b.sub(a, bv)
        assert self.flags is not None
        self.flags.set_after_sub(a, bv, r)
        if isinstance(dst, Reg) and size == 8 and isinstance(src, Imm) \
                and self._has_ptr_facet(dst):
            assert self.regs is not None
            base = self.regs.read_gpr_ptr(dst.index)
            p = self.b.gep_i(base, -src.value)
            self.regs.write_gpr_both(dst.index, r, p)
            return
        self.write_int(dst, r, size)

    def _i_cmp(self, ins: Instruction) -> None:
        a_op, b_op = ins.operands
        size = self._opsize(ins)
        a = self.read_int(a_op, size)
        bv = self.read_int(b_op, size)
        r = self.b.sub(a, bv)
        assert self.flags is not None
        self.flags.set_after_sub(a, bv, r, is_cmp=True)

    def _i_test(self, ins: Instruction) -> None:
        a_op, b_op = ins.operands
        size = self._opsize(ins)
        a = self.read_int(a_op, size)
        bv = self.read_int(b_op, size)
        r = self.b.and_(a, bv)
        assert self.flags is not None
        self.flags.set_after_logic(r, cache_test=(a, bv) if a is bv or a_op == b_op else None)

    def _logic(self, ins: Instruction, op: str) -> None:
        dst, src = ins.operands
        size = self._opsize(ins)
        a = self.read_int(dst, size)
        bv = self.read_int(src, size)
        r = self.b.binop(op, a, bv)
        assert self.flags is not None
        self.flags.set_after_logic(r)
        self.write_int(dst, r, size)

    def _i_and(self, ins: Instruction) -> None:
        self._logic(ins, "and")

    def _i_or(self, ins: Instruction) -> None:
        self._logic(ins, "or")

    def _i_xor(self, ins: Instruction) -> None:
        dst, src = ins.operands
        if isinstance(dst, Reg) and isinstance(src, Reg) \
                and dst.index == src.index and dst.high8 == src.high8:
            # xor r, r: canonical zero idiom
            size = self._opsize(ins)
            zero = Constant(_INT_TYPE[size], 0)
            assert self.flags is not None
            self.flags.set_after_logic(zero)
            self.write_int(dst, zero, size)
            return
        self._logic(ins, "xor")

    def _i_neg(self, ins: Instruction) -> None:
        (dst,) = ins.operands
        size = self._opsize(ins)
        a = self.read_int(dst, size)
        zero = Constant(_INT_TYPE[size], 0)
        r = self.b.sub(zero, a)
        assert self.flags is not None
        self.flags.set_after_sub(zero, a, r)
        self.write_int(dst, r, size)

    def _i_not(self, ins: Instruction) -> None:
        (dst,) = ins.operands
        size = self._opsize(ins)
        a = self.read_int(dst, size)
        r = self.b.xor(a, Constant(_INT_TYPE[size], -1))
        self.write_int(dst, r, size)

    def _i_inc(self, ins: Instruction) -> None:
        (dst,) = ins.operands
        size = self._opsize(ins)
        a = self.read_int(dst, size)
        r = self.b.add(a, Constant(_INT_TYPE[size], 1))
        assert self.flags is not None
        self.flags.set_after_incdec(a, r, inc=True)
        self.write_int(dst, r, size)

    def _i_dec(self, ins: Instruction) -> None:
        (dst,) = ins.operands
        size = self._opsize(ins)
        a = self.read_int(dst, size)
        r = self.b.sub(a, Constant(_INT_TYPE[size], 1))
        assert self.flags is not None
        self.flags.set_after_incdec(a, r, inc=False)
        self.write_int(dst, r, size)

    def _i_imul(self, ins: Instruction) -> None:
        ops = ins.operands
        assert self.flags is not None
        if len(ops) == 1:
            raise LiftError("one-operand imul is not supported")
        size = self._opsize(ins)
        if len(ops) == 2:
            dst, src = ops
            a = self.read_int(dst, size)
            bv = self.read_int(src, size)
        else:
            dst, src, imm = ops
            a = self.read_int(src, size)
            assert isinstance(imm, Imm)
            bv = Constant(_INT_TYPE[size], imm.value)
        r = self.b.mul(a, bv)
        self.flags.set_after_imul()
        self.write_int(dst, r, size)

    def _shift(self, ins: Instruction, op: str) -> None:
        dst, src = ins.operands
        size = self._opsize(ins)
        a = self.read_int(dst, size)
        if isinstance(src, Imm):
            count: Value = Constant(_INT_TYPE[size], src.value & (63 if size == 8 else 31))
        else:
            cl = self.read_int(src, 1)
            count = self.b.zext(cl, _INT_TYPE[size]) if size > 1 else cl
            count = self.b.and_(count, Constant(_INT_TYPE[size], 63 if size == 8 else 31))
        r = self.b.binop(op, a, count)
        assert self.flags is not None
        self.flags.set_after_shift(r)
        self.write_int(dst, r, size)

    def _i_shl(self, ins: Instruction) -> None:
        self._shift(ins, "shl")

    def _i_shr(self, ins: Instruction) -> None:
        self._shift(ins, "lshr")

    def _i_sar(self, ins: Instruction) -> None:
        self._shift(ins, "ashr")

    def _i_cqo(self, ins: Instruction) -> None:
        assert self.regs is not None
        rax = self.regs.read_gpr(RAX, 8)
        self.regs.write_gpr(RDX, self.b.ashr(rax, Constant(I64, 63)), 8)

    def _i_cdq(self, ins: Instruction) -> None:
        assert self.regs is not None
        eax = self.regs.read_gpr(RAX, 4)
        self.regs.write_gpr(RDX, self.b.ashr(eax, Constant(I32, 31)), 4)

    def _i_idiv(self, ins: Instruction) -> None:
        # assumes the canonical cqo/cdq; rdx:rax is rax sign-extended
        (src,) = ins.operands
        size = self._opsize(ins)
        assert self.regs is not None and self.flags is not None
        a = self.regs.read_gpr(RAX, size)
        bv = self.read_int(src, size)
        quot = self.b.binop("sdiv", a, bv)
        rem = self.b.binop("srem", a, bv)
        self.regs.write_gpr(RAX, quot, size)
        self.regs.write_gpr(RDX, rem, size)
        self.flags.set_all_undef()

    def _cmov(self, ins: Instruction, cc: str) -> None:
        dst, src = ins.operands
        assert isinstance(dst, Reg) and self.flags is not None
        size = self._opsize(ins)
        cond = self.flags.condition(cc)
        old = self.read_int(dst, size)
        new = self.read_int(src, size)
        r = self.b.select(cond, new, old)
        self.write_int(dst, r, size)

    def _setcc(self, ins: Instruction, cc: str) -> None:
        (dst,) = ins.operands
        assert self.flags is not None
        cond = self.flags.condition(cc)
        self.write_int(dst, self.b.zext(cond, I8), 1)

    # --- SSE moves ---

    def _i_movsd(self, ins: Instruction) -> None:
        dst, src = ins.operands
        assert self.regs is not None
        if isinstance(dst, Reg):
            if isinstance(src, Reg):
                # reg-reg merge: upper lane preserved
                v = self.regs.read_xmm_f64(src.index)
                self.regs.write_xmm_f64_low_preserve(dst.index, v)
            else:
                v = self.read_f64(src)
                self.regs.write_xmm_f64_zero_rest(dst.index, v)
            return
        assert isinstance(dst, Mem) and isinstance(src, Reg)
        v = self.regs.read_xmm_f64(src.index)
        self.b.store(v, self.mem_pointer(dst, DOUBLE))

    def _i_movq(self, ins: Instruction) -> None:
        dst, src = ins.operands
        assert self.regs is not None
        if isinstance(dst, Reg) and dst.kind == "xmm":
            if isinstance(src, Reg) and src.kind == "xmm":
                v = self.regs.read_xmm_i64(src.index)
            else:
                v = self.read_int(src, 8)
            self.regs.write_xmm_i64_zero_rest(dst.index, v)
            return
        assert isinstance(src, Reg) and src.kind == "xmm"
        v = self.regs.read_xmm_i64(src.index)
        self.write_int(dst, v, 8)

    def _i_movapd(self, ins: Instruction) -> None:
        self._mov_vector(ins, aligned=True)

    def _i_movaps(self, ins: Instruction) -> None:
        self._mov_vector(ins, aligned=True)

    def _i_movupd(self, ins: Instruction) -> None:
        self._mov_vector(ins, aligned=False)

    def _i_movups(self, ins: Instruction) -> None:
        self._mov_vector(ins, aligned=False)

    def _mov_vector(self, ins: Instruction, *, aligned: bool) -> None:
        dst, src = ins.operands
        assert self.regs is not None
        if isinstance(dst, Reg):
            v = self.read_v2f64(src, aligned=aligned)
            self.regs.write_xmm_vector(dst.index, F_V2F64, v)
            return
        assert isinstance(dst, Mem) and isinstance(src, Reg)
        v = self.regs.read_xmm_vector(src.index, F_V2F64)
        self.b.store(v, self.mem_pointer(dst, V2F64), align=16 if aligned else 8)

    def _i_movlpd(self, ins: Instruction) -> None:
        self._mov_lane(ins, lane=0)

    def _i_movhpd(self, ins: Instruction) -> None:
        self._mov_lane(ins, lane=1)

    def _mov_lane(self, ins: Instruction, *, lane: int) -> None:
        dst, src = ins.operands
        assert self.regs is not None
        if isinstance(dst, Reg):
            assert isinstance(src, Mem)
            v = self.b.load(self.mem_pointer(src, DOUBLE))
            vec = self.regs.read_xmm_vector(dst.index, F_V2F64)
            merged = self.b.insertelement(vec, v, lane)
            self.regs.write_xmm_vector(dst.index, F_V2F64, merged)
            return
        assert isinstance(dst, Mem) and isinstance(src, Reg)
        v = self.regs.read_xmm_f64_lane(src.index, lane)
        self.b.store(v, self.mem_pointer(dst, DOUBLE))

    def _i_unpcklpd(self, ins: Instruction) -> None:
        dst, src = ins.operands
        assert isinstance(dst, Reg) and self.regs is not None
        a = self.regs.read_xmm_vector(dst.index, F_V2F64)
        bv = self.read_v2f64(src, aligned=True)
        r = self.b.shufflevector(a, bv, (0, 2))
        self.regs.write_xmm_vector(dst.index, F_V2F64, r)

    def _i_unpckhpd(self, ins: Instruction) -> None:
        dst, src = ins.operands
        assert isinstance(dst, Reg) and self.regs is not None
        a = self.regs.read_xmm_vector(dst.index, F_V2F64)
        bv = self.read_v2f64(src, aligned=True)
        r = self.b.shufflevector(a, bv, (1, 3))
        self.regs.write_xmm_vector(dst.index, F_V2F64, r)

    def _i_shufpd(self, ins: Instruction) -> None:
        dst, src, sel = ins.operands
        assert isinstance(dst, Reg) and isinstance(sel, Imm)
        assert self.regs is not None
        a = self.regs.read_xmm_vector(dst.index, F_V2F64)
        bv = self.read_v2f64(src, aligned=True)
        mask = (sel.value & 1, 2 + ((sel.value >> 1) & 1))
        r = self.b.shufflevector(a, bv, mask)
        self.regs.write_xmm_vector(dst.index, F_V2F64, r)

    def _i_haddpd(self, ins: Instruction) -> None:
        dst, src = ins.operands
        assert isinstance(dst, Reg) and self.regs is not None
        a = self.regs.read_xmm_vector(dst.index, F_V2F64)
        bv = self.read_v2f64(src, aligned=True)
        a0 = self.b.extractelement(a, 0)
        a1 = self.b.extractelement(a, 1)
        b0 = self.b.extractelement(bv, 0)
        b1 = self.b.extractelement(bv, 1)
        lo = self.b.fadd(a0, a1)
        hi = self.b.fadd(b0, b1)
        r = self.b.insertelement(
            self.b.insertelement(_undef_v2f64(), lo, 0), hi, 1
        )
        self.regs.write_xmm_vector(dst.index, F_V2F64, r)

    # --- SSE arithmetic & compare ---

    def _sse_scalar_bin(self, ins: Instruction, op: str) -> None:
        dst, src = ins.operands
        assert isinstance(dst, Reg) and self.regs is not None
        a = self.regs.read_xmm_f64(dst.index)
        bv = self.read_f64(src)
        r = self.b.binop(op, a, bv)
        self.regs.write_xmm_f64_low_preserve(dst.index, r)

    def _sse_packed_bin(self, ins: Instruction, op: str) -> None:
        dst, src = ins.operands
        assert isinstance(dst, Reg) and self.regs is not None
        a = self.regs.read_xmm_vector(dst.index, F_V2F64)
        bv = self.read_v2f64(src, aligned=True)
        r = self.b.binop(op, a, bv)
        self.regs.write_xmm_vector(dst.index, F_V2F64, r)

    def _sse_bitwise(self, ins: Instruction, op: str) -> None:
        dst, src = ins.operands
        assert isinstance(dst, Reg) and self.regs is not None
        if op == "xor" and isinstance(src, Reg) and src.kind == "xmm" \
                and src.index == dst.index:
            # pxor x, x / xorpd x, x: zero idiom
            self.regs.write_xmm_i128(dst.index, Constant(I128, 0))
            return
        a = self.regs.read_xmm_i128(dst.index)
        bv = self.read_i128(src)
        r = self.b.binop(op, a, bv)
        self.regs.write_xmm_i128(dst.index, r)

    def _i_ucomisd(self, ins: Instruction) -> None:
        a_op, b_op = ins.operands
        assert isinstance(a_op, Reg) and self.regs is not None
        assert self.flags is not None
        a = self.regs.read_xmm_f64(a_op.index)
        bv = self.read_f64(b_op)
        self.flags.set_after_ucomisd(a, bv)

    _i_comisd = _i_ucomisd

    def _i_cvtsi2sd(self, ins: Instruction) -> None:
        dst, src = ins.operands
        assert isinstance(dst, Reg) and self.regs is not None
        ssize = src.size if isinstance(src, (Reg, Mem)) else 8
        v = self.read_int(src, ssize)
        r = self.b.sitofp(v, DOUBLE)
        self.regs.write_xmm_f64_low_preserve(dst.index, r)

    def _i_cvttsd2si(self, ins: Instruction) -> None:
        dst, src = ins.operands
        assert isinstance(dst, Reg) and dst.kind == "gp"
        v = self.read_f64(src)
        r = self.b.fptosi(v, _INT_TYPE[dst.size])
        self.write_int(dst, r, dst.size)

    # --- calls ---

    def _i_call(self, ins: Instruction) -> None:
        (t,) = ins.operands
        assert isinstance(t, Imm) and self.regs is not None
        assert self.flags is not None
        decl = self._callee_decls.get(t.value)
        if decl is None:
            raise LiftError(
                f"call to unknown function {t.value:#x}; declare it via "
                "LiftOptions.known_functions (Sec. III-B)",
                stage="lift", addr=ins.addr, instruction=ins.mnemonic,
            )
        args: list[Value] = []
        int_idx = 0
        f_idx = 0
        for pt in decl.ftype.params:
            if pt is DOUBLE:
                args.append(self.regs.read_xmm_f64(f_idx))
                f_idx += 1
            else:
                args.append(self.regs.read_gpr(SYSV_INT_ARGS[int_idx], 8))
                int_idx += 1
        result = self.b.call(decl, args, decl.ftype.ret)
        # clobber caller-saved state per the SysV ABI
        from repro.x86.registers import SYSV_CALLER_SAVED
        for reg in SYSV_CALLER_SAVED:
            self.regs.write_gpr(reg, Undef(I64), 8)
        for i in range(16):
            self.regs.write_xmm_i128(i, Undef(I128))
        self.flags.set_all_undef()
        if decl.ftype.ret is DOUBLE:
            self.regs.write_xmm_f64_zero_rest(0, result)
        elif not decl.ftype.ret.is_void:
            self.regs.write_gpr(RAX, result, 8)


_SSE_SCALAR_BIN = {
    "addsd": "fadd", "subsd": "fsub", "mulsd": "fmul", "divsd": "fdiv",
}
_SSE_PACKED_BIN = {
    "addpd": "fadd", "subpd": "fsub", "mulpd": "fmul", "divpd": "fdiv",
}
_SSE_BITWISE = {
    "pxor": "xor", "xorpd": "xor", "xorps": "xor",
    "pand": "and", "andpd": "and", "andps": "and",
    "por": "or", "orpd": "or", "orps": "or",
}


def _undef_v2f64() -> Value:
    return Undef(V2F64)


def lift_function(memory: Memory, entry: int, signature: FunctionSignature,
                  options: LiftOptions | None = None,
                  module: Module | None = None) -> Function:
    """Lift the guest function at ``entry`` into (a new or given) module."""
    return Lifter(memory, entry, signature, options, module).lift()
