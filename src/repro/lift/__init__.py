"""x86-64 -> MiniLLVM-IR lifter: the paper's core contribution (Sec. III).

``lift_function`` converts decoded machine code to SSA IR at function
granularity:

* basic-block discovery with mid-block splitting (Sec. III-B);
* registers as typed SSA values with cached *facets* and per-block phi
  merges (Sec. III-C, Fig. 4);
* the six status flags as individual i1 values, with the *flag cache*
  reconstructing comparison predicates (Sec. III-D, Fig. 6);
* memory operands as getelementptr chains over pointer facets (Sec. III-E);
* the guest stack as one entry-block alloca (Sec. III-F).

``repro.lift.fixation`` adds the IR-level specialization of Sec. IV.
"""

from repro.lift.lifter import FunctionSignature, LiftOptions, lift_function

__all__ = ["FunctionSignature", "LiftOptions", "lift_function"]
