"""IR-level parameter fixation (Sec. IV).

Specialization happens *at the IR level* instead of the binary level: the
original function is lifted unmodified, a wrapper calling it with fixed
arguments is created, the original is marked always-inline, and the -O3
pipeline does the rest (constant propagation through the inlined body, full
unrolling, branch folding).

Fixed memory regions are copied into the module as constant globals.  The
limitation is faithful to the paper: "as the data type of the values in the
memory region is not known, nested pointers will not be marked as constant
and therefore, in contrast to DBrew, no further specialization can take
place" — a pointer loaded *out of* a fixed region points back at runtime
memory, which is opaque to the optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LiftError
from repro.ir.builder import IRBuilder
from repro.ir.irtypes import DOUBLE, FunctionType, I8, I64
from repro.ir.module import Function, GlobalVariable, Module
from repro.ir.values import Constant, ConstantFP, Value
from repro.mem.memory import Memory


@dataclass(frozen=True)
class FixedMemory:
    """A fixed argument that is a pointer to a constant memory region."""

    addr: int
    size: int


def build_fixation_wrapper(
    module: Module,
    original: Function,
    fixes: dict[int, int | float | FixedMemory],
    memory: Memory,
    *,
    name: str | None = None,
) -> Function:
    """Create the Sec. IV wrapper; returns the new (unoptimized) function.

    ``fixes`` maps parameter indices of ``original`` to fixed values:
    an int (integer/pointer parameter), a float (double parameter), or a
    :class:`FixedMemory` (pointer parameter whose pointee is copied into
    the module as a constant global).
    """
    for idx in fixes:
        if not 0 <= idx < len(original.args):
            raise LiftError(f"fixed parameter {idx} out of range")

    # the wrapper keeps the full signature: rewritten functions are drop-in
    # replacements ("a function pointer with exactly the same function
    # signature as the original code", Sec. II); fixed parameters are simply
    # ignored at runtime
    wrapper = Function(name or f"{original.name}.fixed",
                       FunctionType(original.ftype.ret, original.ftype.params))
    module.add_function(wrapper)
    original.always_inline = True

    entry = wrapper.add_block("entry")
    b = IRBuilder(entry)
    args: list[Value] = []
    for i, ptype in enumerate(original.ftype.params):
        if i not in fixes:
            args.append(wrapper.args[i])
            continue
        fix = fixes[i]
        if isinstance(fix, FixedMemory):
            payload = memory.read(fix.addr, fix.size)
            g = GlobalVariable(
                f"{wrapper.name}.mem{i:x}", I8, payload, constant=True
            )
            module.add_global(g)
            if ptype is I64:
                args.append(b.ptrtoint(g, I64))
            else:
                args.append(b.bitcast(g, ptype))
        elif isinstance(fix, float) and ptype is DOUBLE:
            args.append(ConstantFP(DOUBLE, fix))
        elif isinstance(fix, int) and ptype is I64:
            args.append(Constant(I64, fix))
        else:
            raise LiftError(
                f"fixed value {fix!r} does not match parameter type {ptype}"
            )
    result = b.call(original, args, original.ftype.ret)
    if original.ftype.ret.is_void:
        b.ret()
    else:
        b.ret(result)
    return wrapper
