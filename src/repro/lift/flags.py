"""Status-flag modeling and the flag cache (Sec. III-D, Fig. 6).

Every flag-writing instruction eagerly computes the six flags as i1 values
(unused ones die in DCE, as the paper notes).  Signed predicates built from
raw flag bits (``sf != of``) are *not* recoverable by the optimizer —
LLVM 3.7 could not either — so the flag cache records the operands of the
latest cmp/sub/test and re-derives conditions as direct ``icmp``s.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.builder import IRBuilder
from repro.ir.irtypes import I1, I8, IntType
from repro.ir.values import Constant, Undef, Value
from repro.lift.regfile import RegFile
from repro.obs import metrics as _metrics

#: flag-cache effectiveness (Fig. 6): a hit rebuilds a condition as one
#: icmp over cached cmp operands, a miss reconstructs it from flag bits
_FLAG_HITS = _metrics.counter("lift.flag_cache.hits")
_FLAG_MISSES = _metrics.counter("lift.flag_cache.misses")


@dataclass
class FlagCacheEntry:
    """Operands of the most recent flag-setting comparison-like op."""

    kind: str  # 'sub' (cmp/sub semantics) or 'test' (and semantics)
    a: Value
    b: Value


class FlagModel:
    """Computes and queries flags through a RegFile."""

    def __init__(self, regs: RegFile, builder: IRBuilder,
                 flag_cache: bool = True) -> None:
        self.regs = regs
        self.b = builder
        self.use_cache = flag_cache
        self.cache: FlagCacheEntry | None = None

    def invalidate_cache(self) -> None:
        self.cache = None

    # -- flag computation after ALU ops ---------------------------------------

    def _parity(self, result: Value) -> Value:
        low = self.b.trunc(result, I8) if result.type is not I8 else result
        pop = self.b.call("llvm.ctpop.i8", [low], I8)
        bit = self.b.and_(pop, Constant(I8, 1))
        return self.b.icmp("eq", bit, Constant(I8, 0))

    def _szp(self, result: Value) -> None:
        t = result.type
        assert isinstance(t, IntType)
        self.regs.write_flag("z", self.b.icmp("eq", result, Constant(t, 0)))
        self.regs.write_flag("s", self.b.icmp("slt", result, Constant(t, 0)))
        self.regs.write_flag("p", self._parity(result))

    def set_after_sub(self, a: Value, b: Value, result: Value,
                      *, is_cmp: bool = False) -> None:
        t = result.type
        assert isinstance(t, IntType)
        self._szp(result)
        self.regs.write_flag("c", self.b.icmp("ult", a, b))
        # of: operands differ in sign and result sign differs from a
        ab = self.b.xor(a, b)
        ar = self.b.xor(a, result)
        both = self.b.and_(ab, ar)
        self.regs.write_flag("o", self.b.icmp("slt", both, Constant(t, 0)))
        axr = self.b.xor(self.b.xor(a, b), result)
        nib = self.b.and_(axr, Constant(t, 0x10))
        self.regs.write_flag("a", self.b.icmp("ne", nib, Constant(t, 0)))
        if self.use_cache:
            self.cache = FlagCacheEntry("sub", a, b)

    def set_after_add(self, a: Value, b: Value, result: Value) -> None:
        t = result.type
        assert isinstance(t, IntType)
        self._szp(result)
        self.regs.write_flag("c", self.b.icmp("ult", result, a))
        ar = self.b.xor(a, result)
        br = self.b.xor(b, result)
        both = self.b.and_(ar, br)
        self.regs.write_flag("o", self.b.icmp("slt", both, Constant(t, 0)))
        axr = self.b.xor(self.b.xor(a, b), result)
        nib = self.b.and_(axr, Constant(t, 0x10))
        self.regs.write_flag("a", self.b.icmp("ne", nib, Constant(t, 0)))
        self.invalidate_cache()

    def set_after_logic(self, result: Value, *, cache_test: tuple[Value, Value] | None = None) -> None:
        self._szp(result)
        self.regs.write_flag("c", Constant(I1, 0))
        self.regs.write_flag("o", Constant(I1, 0))
        self.regs.write_flag("a", Constant(I1, 0))
        if self.use_cache and cache_test is not None:
            self.cache = FlagCacheEntry("test", *cache_test)
        else:
            self.invalidate_cache()

    def set_after_incdec(self, a: Value, result: Value, *, inc: bool) -> None:
        """inc/dec: like add/sub by 1 but CF is preserved."""
        cf = self.regs.read_flag("c")
        one = Constant(result.type, 1)
        if inc:
            self.set_after_add(a, one, result)
        else:
            self.set_after_sub(a, one, result)
        self.regs.write_flag("c", cf)
        self.invalidate_cache()

    def set_after_shift(self, result: Value) -> None:
        """Shift flags: s/z/p defined from the result; c/o approximated as
        undef (lifted code in the supported subset never consumes them)."""
        self._szp(result)
        self.regs.write_flag("c", Undef(I1))
        self.regs.write_flag("o", Undef(I1))
        self.regs.write_flag("a", Undef(I1))
        self.invalidate_cache()

    def set_after_imul(self) -> None:
        for f in "oszapc":
            self.regs.write_flag(f, Undef(I1))
        self.invalidate_cache()

    def set_after_ucomisd(self, a: Value, b: Value) -> None:
        """ucomisd: zf/pf/cf per IEEE compare, unordered sets all three."""
        self.regs.write_flag("z", self.b.fcmp("ueq", a, b))
        self.regs.write_flag("c", self.b.fcmp("ult", a, b))
        self.regs.write_flag("p", self.b.fcmp("uno", a, b))
        self.regs.write_flag("o", Constant(I1, 0))
        self.regs.write_flag("s", Constant(I1, 0))
        self.regs.write_flag("a", Constant(I1, 0))
        self.invalidate_cache()

    def set_all_undef(self) -> None:
        for f in "oszapc":
            self.regs.write_flag(f, Undef(I1))
        self.invalidate_cache()

    # -- condition reconstruction ----------------------------------------------

    _CACHE_SUB_PRED = {
        "e": "eq", "ne": "ne",
        "l": "slt", "ge": "sge", "le": "sle", "g": "sgt",
        "b": "ult", "ae": "uge", "be": "ule", "a": "ugt",
    }

    def condition(self, cc: str) -> Value:
        """i1 value of a canonical condition code.

        With a valid flag cache the signed/unsigned predicates become a
        single icmp (Fig. 6c); otherwise they are reconstructed from the
        flag bits (Fig. 6b), which the optimizer cannot reduce.
        """
        if self.use_cache and self.cache is not None:
            v = self._condition_cached(cc)
            if v is not None:
                _FLAG_HITS.value += 1
                return v
        if self.use_cache:
            _FLAG_MISSES.value += 1
        return self._condition_from_bits(cc)

    def _condition_cached(self, cc: str) -> Value | None:
        """Condition from the flag cache, or None if it cannot serve cc."""
        entry = self.cache
        assert entry is not None
        if entry.kind == "sub" and cc in self._CACHE_SUB_PRED:
            return self.b.icmp(self._CACHE_SUB_PRED[cc], entry.a, entry.b)
        if entry.kind == "test" and entry.a is entry.b:
            t = entry.a.type
            if cc == "e":
                return self.b.icmp("eq", entry.a, Constant(t, 0))
            if cc == "ne":
                return self.b.icmp("ne", entry.a, Constant(t, 0))
            if cc == "l":  # sf != of, of == 0 -> sf
                return self.b.icmp("slt", entry.a, Constant(t, 0))
            if cc == "ge":
                return self.b.icmp("sge", entry.a, Constant(t, 0))
            if cc == "le":
                return self.b.icmp("sle", entry.a, Constant(t, 0))
            if cc == "g":
                return self.b.icmp("sgt", entry.a, Constant(t, 0))
        return None

    def _condition_from_bits(self, cc: str) -> Value:
        r = self.regs
        b = self.b
        one = Constant(I1, 1)
        if cc == "e":
            return r.read_flag("z")
        if cc == "ne":
            return b.xor(r.read_flag("z"), one)
        if cc == "s":
            return r.read_flag("s")
        if cc == "ns":
            return b.xor(r.read_flag("s"), one)
        if cc == "b":
            return r.read_flag("c")
        if cc == "ae":
            return b.xor(r.read_flag("c"), one)
        if cc == "be":
            return b.or_(r.read_flag("c"), r.read_flag("z"))
        if cc == "a":
            return b.xor(b.or_(r.read_flag("c"), r.read_flag("z")), one)
        if cc == "l":
            return b.xor(r.read_flag("s"), r.read_flag("o"))
        if cc == "ge":
            return b.xor(b.xor(r.read_flag("s"), r.read_flag("o")), one)
        if cc == "le":
            lt = b.xor(r.read_flag("s"), r.read_flag("o"))
            return b.or_(lt, r.read_flag("z"))
        if cc == "g":
            lt = b.xor(r.read_flag("s"), r.read_flag("o"))
            return b.xor(b.or_(lt, r.read_flag("z")), one)
        if cc == "o":
            return r.read_flag("o")
        if cc == "no":
            return b.xor(r.read_flag("o"), one)
        if cc == "p":
            return r.read_flag("p")
        if cc == "np":
            return b.xor(r.read_flag("p"), one)
        raise ValueError(f"unknown condition code {cc}")
