"""SSA register state with facet caching (Sec. III-C, Fig. 4).

Each architectural register is canonically an integer SSA value — i64 for
GPRs, i128 for SSE registers — plus a cache of *facets*: the same bits
viewed as a narrower integer, a pointer, a scalar double, or a vector.
Reading a facet materializes the conversion instructions once per block and
caches the result; writing a facet merges into the canonical value per the
hardware rules (32-bit writes zero the upper half, 8/16-bit writes are
preserved-merge, SSE scalar ops preserve the upper lane, ``movq`` zeroes it).

The facet cache is an ablation knob: the paper found that without it "the
LLVM optimizer is not able to eliminate the casts between the accessed
facets and the integer representation".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir import instructions as I
from repro.ir.builder import IRBuilder
from repro.ir.irtypes import (
    DOUBLE, FLOAT, I1 as I1_TYPE, I8, I16, I32, I64, I128, PointerType,
    Type, V2F64, V4F32, V2I64, V4I32, ptr,
)
from repro.ir.values import Constant, Undef, Value
from repro.obs import metrics as _metrics

#: GPR facets
F_I64, F_I32, F_I16, F_I8, F_I8H, F_PTR = "i64", "i32", "i16", "i8", "i8h", "ptr"
#: SSE facets
F_I128, F_F64, F_F32, F_V2F64, F_V4F32, F_V2I64, F_V4I32 = (
    "i128", "f64", "f32", "v2f64", "v4f32", "v2i64", "v4i32"
)

_SSE_VEC_TYPE = {F_V2F64: V2F64, F_V4F32: V4F32, F_V2I64: V2I64, F_V4I32: V4I32}

I8P = ptr(I8)


@dataclass
class RegState:
    """Register/flag values at one program point of one block."""

    gpr: list[Value]
    xmm: list[Value]
    flags: dict[str, Value]
    gpr_facets: list[dict[str, Value]] = field(default_factory=list)
    xmm_facets: list[dict[str, Value]] = field(default_factory=list)

    @classmethod
    def fresh(cls) -> "RegState":
        return cls(
            gpr=[Undef(I64) for _ in range(16)],
            xmm=[Undef(I128) for _ in range(16)],
            flags={f: Undef(I1_TYPE) for f in "oszapc"},
            gpr_facets=[{} for _ in range(16)],
            xmm_facets=[{} for _ in range(16)],
        )

    def copy(self) -> "RegState":
        return RegState(
            gpr=list(self.gpr),
            xmm=list(self.xmm),
            flags=dict(self.flags),
            gpr_facets=[dict(d) for d in self.gpr_facets],
            xmm_facets=[dict(d) for d in self.xmm_facets],
        )


#: facet-cache effectiveness (Sec. III-C): a hit reuses an already-built
#: facet value, a miss materializes a fresh trunc/bitcast/inttoptr
_FACET_HITS = _metrics.counter("lift.facet_cache.hits")
_FACET_MISSES = _metrics.counter("lift.facet_cache.misses")


class RegFile:
    """Facet-aware access to a RegState through an IRBuilder."""

    def __init__(self, state: RegState, builder: IRBuilder,
                 facet_cache: bool = True) -> None:
        self.state = state
        self.b = builder
        self.facet_cache = facet_cache

    # -- GPR reads ------------------------------------------------------------

    def _gpr_cached(self, index: int, facet: str) -> Value | None:
        if not self.facet_cache:
            return None
        v = self.state.gpr_facets[index].get(facet)
        if v is not None:
            _FACET_HITS.value += 1
        else:
            _FACET_MISSES.value += 1
        return v

    def _gpr_cache(self, index: int, facet: str, value: Value) -> None:
        if self.facet_cache:
            self.state.gpr_facets[index][facet] = value

    def read_gpr(self, index: int, size: int, high8: bool = False) -> Value:
        """Integer facet of a GPR (Fig. 4a: trunc, plus shift for high8)."""
        if high8:
            cached = self._gpr_cached(index, F_I8H)
            if cached is not None:
                return cached
            shifted = self.b.lshr(self.state.gpr[index], Constant(I64, 8))
            v = self.b.trunc(shifted, I8)
            self._gpr_cache(index, F_I8H, v)
            return v
        if size == 8:
            return self.state.gpr[index]
        facet, ty = {4: (F_I32, I32), 2: (F_I16, I16), 1: (F_I8, I8)}[size]
        cached = self._gpr_cached(index, facet)
        if cached is not None:
            return cached
        v = self.b.trunc(self.state.gpr[index], ty)
        self._gpr_cache(index, facet, v)
        return v

    def read_gpr_ptr(self, index: int) -> Value:
        """Pointer facet of a GPR (i8*), materializing inttoptr on demand."""
        cached = self._gpr_cached(index, F_PTR)
        if cached is not None:
            return cached
        v = self.b.inttoptr(self.state.gpr[index], I8P)
        self._gpr_cache(index, F_PTR, v)
        return v

    # -- GPR writes -----------------------------------------------------------

    def write_gpr(self, index: int, value: Value, size: int,
                  high8: bool = False, ptr_facet: Value | None = None) -> None:
        """Write an integer facet per hardware width rules (Fig. 4a)."""
        st = self.state
        if high8:
            ext = self.b.zext(value, I64)
            shifted = self.b.shl(ext, Constant(I64, 8))
            keep = self.b.and_(st.gpr[index], Constant(I64, ~0xFF00))
            st.gpr[index] = self.b.or_(keep, shifted)
            st.gpr_facets[index] = {F_I8H: value}
            return
        if size == 8:
            st.gpr[index] = value
            st.gpr_facets[index] = {}
            if ptr_facet is not None:
                self._gpr_cache(index, F_PTR, ptr_facet)
            return
        if size == 4:
            st.gpr[index] = self.b.zext(value, I64)  # upper half zeroed
            st.gpr_facets[index] = {F_I32: value}
            return
        # 8/16-bit writes preserve the untouched part via masking
        mask = (1 << (size * 8)) - 1
        ext = self.b.zext(value, I64)
        keep = self.b.and_(st.gpr[index], Constant(I64, ~mask))
        st.gpr[index] = self.b.or_(keep, ext)
        st.gpr_facets[index] = {F_I16 if size == 2 else F_I8: value}

    def write_gpr_both(self, index: int, int_value: Value, ptr_value: Value) -> None:
        """lea/add dual write: integer and pointer facet together."""
        self.state.gpr[index] = int_value
        self.state.gpr_facets[index] = {}
        self._gpr_cache(index, F_PTR, ptr_value)

    # -- SSE reads ---------------------------------------------------------------

    def _xmm_cached(self, index: int, facet: str) -> Value | None:
        if not self.facet_cache:
            return None
        v = self.state.xmm_facets[index].get(facet)
        if v is not None:
            _FACET_HITS.value += 1
        else:
            _FACET_MISSES.value += 1
        return v

    def _xmm_cache(self, index: int, facet: str, value: Value) -> None:
        if self.facet_cache:
            self.state.xmm_facets[index][facet] = value

    def read_xmm_vector(self, index: int, facet: str) -> Value:
        """Vector facet via bitcast (Fig. 4c)."""
        cached = self._xmm_cached(index, facet)
        if cached is not None:
            return cached
        v = self.b.bitcast(self.state.xmm[index], _SSE_VEC_TYPE[facet])
        self._xmm_cache(index, facet, v)
        return v

    def read_xmm_f64(self, index: int) -> Value:
        """Scalar double facet via extractelement (Fig. 4b — *not* trunc,
        so the optimizer can track the element's provenance)."""
        cached = self._xmm_cached(index, F_F64)
        if cached is not None:
            return cached
        vec = self.read_xmm_vector(index, F_V2F64)
        v = self.b.extractelement(vec, 0)
        self._xmm_cache(index, F_F64, v)
        return v

    def read_xmm_f64_lane(self, index: int, lane: int) -> Value:
        if lane == 0:
            return self.read_xmm_f64(index)
        vec = self.read_xmm_vector(index, F_V2F64)
        return self.b.extractelement(vec, lane)

    def read_xmm_i64(self, index: int) -> Value:
        """Low 64 bits of an SSE register as an integer."""
        v = self.b.trunc(self.state.xmm[index], I64)
        return v

    def read_xmm_i128(self, index: int) -> Value:
        return self.state.xmm[index]

    # -- SSE writes -----------------------------------------------------------

    def _set_xmm(self, index: int, canonical: Value,
                 facets: dict[str, Value]) -> None:
        self.state.xmm[index] = canonical
        self.state.xmm_facets[index] = dict(facets) if self.facet_cache else {}

    def write_xmm_i128(self, index: int, value: Value,
                       facets: dict[str, Value] | None = None) -> None:
        self._set_xmm(index, value, facets or {})

    def write_xmm_vector(self, index: int, facet: str, value: Value) -> None:
        canonical = self.b.bitcast(value, I128)
        self._set_xmm(index, canonical, {facet: value})
        if facet == F_V2F64:
            pass  # f64 facet will extract lazily from the cached vector

    def write_xmm_f64_low_preserve(self, index: int, value: Value) -> None:
        """Scalar write preserving the upper lane (most SSE scalar ops)."""
        vec = self.read_xmm_vector(index, F_V2F64)
        merged = self.b.insertelement(vec, value, 0)
        canonical = self.b.bitcast(merged, I128)
        self._set_xmm(index, canonical, {F_V2F64: merged, F_F64: value})

    def write_xmm_f64_zero_rest(self, index: int, value: Value) -> None:
        """Scalar write zeroing the upper lane (movsd-from-memory, movq).

        Modeled with insertelement into a zeroinitializer, which the paper
        prefers over integer zero-extension because "the LLVM optimizer has
        problems handling mixed integer and vector operations".
        """
        merged = self.b.insertelement(_zero_vector(), value, 0)
        canonical = self.b.bitcast(merged, I128)
        self._set_xmm(index, canonical, {F_V2F64: merged, F_F64: value})

    def write_xmm_i64_zero_rest(self, index: int, value: Value) -> None:
        """movq r64 -> xmm: zero-extend into the 128-bit register."""
        canonical = self.b.zext(value, I128)
        self._set_xmm(index, canonical, {})

    # -- flags -----------------------------------------------------------------

    def read_flag(self, name: str) -> Value:
        return self.state.flags[name]

    def write_flag(self, name: str, value: Value) -> None:
        self.state.flags[name] = value


def _zero_vector() -> Value:
    """<2 x double> zeroinitializer."""
    from repro.ir.values import ConstantFP, ConstantVector

    return ConstantVector(V2F64, (ConstantFP(DOUBLE, 0.0), ConstantFP(DOUBLE, 0.0)))
