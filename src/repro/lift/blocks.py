"""Basic-block discovery over decoded machine code (Sec. III-B).

Decodes from the entry point following direct control flow, collecting
leaders (branch targets and fall-throughs).  A jump into the middle of an
already-decoded block splits it, so every instruction belongs to exactly
one block — the de-duplication property the paper calls out as enabling
better optimization.

Indirect jumps are rejected (unsupported, per the paper); calls are *not*
block terminators here — they lift to IR call instructions mid-block, which
"leaves the decision on inlining to the LLVM optimizer".
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import DecodeError, LiftError
from repro.mem.memory import Memory
from repro.obs import metrics as _metrics
from repro.x86 import isa
from repro.x86.decoder import decode_one
from repro.x86.instr import Imm, Instruction, Reg

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.guard.budget import Budget

#: decode memo shared by every discovery in this process, keyed by
#: (pc, window bytes).  Instructions are immutable (repro.x86.instr), so
#: sharing decoded objects across lifts is safe; the pc is part of the key
#: because branch/call operands are decoded to absolute targets.  Repeated
#: lifts of identical byte sequences — the tiered engine re-lifting per
#: tier, farm workers churning through registration storms — skip the
#: decoder entirely.  Content-keyed, so it can never serve stale decodes
#: after a patch: patched bytes simply key a different entry.
_DECODE_MEMO: dict[tuple[int, bytes], Instruction] = {}
_DECODE_MEMO_MAX = 65_536
_DECODE_HITS = _metrics.counter("lift.decode_memo.hits")
_DECODE_MISSES = _metrics.counter("lift.decode_memo.misses")

#: decoded-trace cache (PR 9): whole discovered CFGs keyed by
#: ``(image content token, entry, max_instructions)``.  The per-instruction
#: memo above still pays the worklist walk, leader analysis and block
#: assembly on every lift; a trace hit skips *all* of it.  The token comes
#: from :meth:`repro.cpu.image.Image.content_token` — it folds the image's
#: patch generation and code-allocation cursors, so any sanctioned code
#: mutation (``patch_code``, ``add_function``, ``reserve_code``) moves the
#: token and stale CFGs simply key dead entries.  Raw ``Memory`` objects
#: with no image attached have no token and bypass this cache entirely.
#: Cached CFGs are shared read-only across lifts (the lifter only reads
#: them), exactly like the memoized ``Instruction`` objects they contain.
_CFG_CACHE: dict[tuple, "GuestCFG"] = {}
_CFG_CACHE_MAX = 4096
_CFG_LOCK = threading.Lock()
_CFG_HITS = _metrics.counter("lift.decode_trace.hits")
_CFG_MISSES = _metrics.counter("lift.decode_trace.misses")
_CFG_STORE_HITS = _metrics.counter("lift.decode_trace.store_hits")

#: optional persistent store (DiskStore-shaped: get/put) for decoded
#: traces of *stable* tokens — spec-built farm images, whose token is
#: derived from the spec digest and therefore means the same bytes in any
#: process, ever.  Local images use process-unique tokens and are never
#: published.
_TRACE_STORE = None


def attach_trace_store(store) -> None:
    """Attach (or detach, with None) a persistent decoded-trace store.

    Farm workers point this at their shared :class:`~repro.cache.DiskStore`
    so a byte-identical function decoded by any worker of any pool run is
    never decoded again on that host.
    """
    global _TRACE_STORE
    _TRACE_STORE = store


def _stable_token(token: tuple) -> bool:
    """True when the token is content-derived (safe to persist)."""
    head = token[0]
    return isinstance(head, tuple) and head and head[0] == "farmspec"


def _trace_store_key(token: tuple, entry: int, max_instructions: int) -> str:
    return f"dtrace:{token!r}:{entry:#x}:{max_instructions}"


def decode_trace_stats() -> dict[str, int]:
    """Decoded-trace cache counters (benchmarks / farm stats)."""
    with _CFG_LOCK:
        size = len(_CFG_CACHE)
    return {
        "size": size,
        "hits": _CFG_HITS.value,
        "misses": _CFG_MISSES.value,
        "store_hits": _CFG_STORE_HITS.value,
    }


def clear_decode_caches() -> None:
    """Drop the in-process decode memo and decoded-trace cache (tests)."""
    _DECODE_MEMO.clear()
    with _CFG_LOCK:
        _CFG_CACHE.clear()


@dataclass
class GuestBlock:
    """A guest basic block: consecutive instructions, one terminator."""

    start: int
    instructions: list[Instruction] = field(default_factory=list)

    @property
    def end(self) -> int:
        last = self.instructions[-1]
        return last.addr + last.length

    @property
    def terminator(self) -> Instruction:
        return self.instructions[-1]

    def successors(self) -> list[int]:
        """Guest addresses of successor blocks."""
        term = self.terminator
        cls = isa.control_class(term.mnemonic)
        if cls == "ret":
            return []
        if cls == "jmp":
            (t,) = term.operands
            assert isinstance(t, Imm)
            return [t.value]
        if cls == "jcc":
            (t,) = term.operands
            assert isinstance(t, Imm)
            return [t.value, self.end]
        return [self.end]  # fall-through (block was split)


class GuestCFG:
    """Discovered control-flow graph of one guest function."""

    def __init__(self, entry: int) -> None:
        self.entry = entry
        self.blocks: dict[int, GuestBlock] = {}

    def block_at(self, addr: int) -> GuestBlock:
        return self.blocks[addr]

    def ordered(self) -> list[GuestBlock]:
        return [self.blocks[a] for a in sorted(self.blocks)]

    def instruction_count(self) -> int:
        return sum(len(b.instructions) for b in self.blocks.values())


def discover(memory: Memory, entry: int, *, max_instructions: int = 100_000,
             budget: "Budget | None" = None) -> GuestCFG:
    """Decode the function at ``entry`` into basic blocks.

    A ``budget`` charges ``lift_instructions`` fuel per decoded instruction
    and ``lift_blocks`` per discovered leader, bounding the time an
    adversarial input (e.g. a huge self-generated jump net) can spend here.
    A decoded-trace cache hit charges nothing — same rule as the lift-stage
    facet cache, which likewise skips the work the budget meters.
    """
    from repro import speed as _speed
    token = None
    if _speed.enabled():
        token_fn = getattr(memory, "content_token_fn", None)
        token = token_fn() if token_fn is not None else None
    key = None
    if token is not None:
        key = (token, entry, max_instructions)
        with _CFG_LOCK:
            cached = _CFG_CACHE.get(key)
        if cached is not None:
            _CFG_HITS.value += 1
            return cached
        if _TRACE_STORE is not None and _stable_token(token):
            got = _TRACE_STORE.get(_trace_store_key(token, entry,
                                                    max_instructions))
            if isinstance(got, GuestCFG):
                _CFG_STORE_HITS.value += 1
                with _CFG_LOCK:
                    if len(_CFG_CACHE) >= _CFG_CACHE_MAX:
                        _CFG_CACHE.clear()
                    _CFG_CACHE[key] = got
                return got
        _CFG_MISSES.value += 1

    cfg = GuestCFG(entry)
    instr_cache: dict[int, Instruction] = {}
    # first pass: find all instructions and leaders
    leaders: set[int] = {entry}
    worklist: list[int] = [entry]
    visited: set[int] = set()
    count = 0
    while worklist:
        pc = worklist.pop()
        if pc in visited:
            continue
        while pc not in visited:
            visited.add(pc)
            ins = instr_cache.get(pc)
            if ins is None:
                window = memory.read(pc, min(16, _bytes_left(memory, pc)))
                ins = _DECODE_MEMO.get((pc, window))
                if ins is None:
                    _DECODE_MISSES.value += 1
                    try:
                        ins = decode_one(window, 0, pc)
                    except DecodeError as exc:
                        raise exc.with_context(stage="lift", addr=pc)
                    if len(_DECODE_MEMO) >= _DECODE_MEMO_MAX:
                        _DECODE_MEMO.clear()
                    _DECODE_MEMO[(pc, window)] = ins
                else:
                    _DECODE_HITS.value += 1
                instr_cache[pc] = ins
            count += 1
            if count > max_instructions:
                raise LiftError(f"function at {entry:#x} exceeds decode budget",
                                stage="lift", addr=pc)
            if budget is not None:
                budget.charge("lift_instructions", stage="lift", addr=pc)
            cls = isa.control_class(ins.mnemonic)
            if cls in ("jmp", "jcc"):
                (t,) = ins.operands
                if isinstance(t, Reg) or not isinstance(t, Imm):
                    raise LiftError(
                        f"indirect jump at {pc:#x} is not supported (Sec. III-B)",
                        stage="lift", addr=pc, instruction=ins.mnemonic,
                    )
                leaders.add(t.value)
                worklist.append(t.value)
                if cls == "jcc":
                    leaders.add(ins.end)
                    worklist.append(ins.end)
                break
            if cls == "ret":
                break
            if cls == "call":
                (t,) = ins.operands
                if not isinstance(t, Imm):
                    raise LiftError(f"indirect call at {pc:#x} is not supported",
                                    stage="lift", addr=pc,
                                    instruction=ins.mnemonic)
            pc = ins.end

    # split fall-through: any decoded addr that is a leader terminates the
    # instruction run before it
    addrs = sorted(visited)
    # second pass: build blocks
    for leader in sorted(leaders):
        if leader not in visited:
            raise LiftError(f"branch target {leader:#x} outside decoded function",
                            stage="lift", addr=leader)
        if budget is not None:
            budget.charge("lift_blocks", stage="lift", addr=leader)
        blk = GuestBlock(leader)
        pc = leader
        while True:
            ins = instr_cache[pc]
            blk.instructions.append(ins)
            cls = isa.control_class(ins.mnemonic)
            if cls in ("jmp", "jcc", "ret"):
                break
            if ins.end in leaders:
                break  # fall into the next block
            if ins.end not in visited:
                raise LiftError(f"decode ran off function at {ins.end:#x}")
            pc = ins.end
        cfg.blocks[leader] = blk

    if key is not None:
        with _CFG_LOCK:
            if len(_CFG_CACHE) >= _CFG_CACHE_MAX:
                _CFG_CACHE.clear()
            _CFG_CACHE[key] = cfg
        if _TRACE_STORE is not None and _stable_token(token):
            _TRACE_STORE.put(_trace_store_key(token, entry, max_instructions),
                             cfg)
    return cfg


def _bytes_left(memory: Memory, addr: int) -> int:
    for start, size in memory.regions():
        if start <= addr < start + size:
            return start + size - addr
    raise LiftError(f"code address {addr:#x} unmapped", stage="lift", addr=addr)
