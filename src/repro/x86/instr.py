"""Operand and instruction model for the x86-64 subset.

Three operand kinds cover the supported ISA subset:

* :class:`Reg` — a view of a GPR (1/2/4/8 bytes, optionally high-byte) or an
  SSE register (16 bytes);
* :class:`Imm` — an immediate with an explicit encoded width;
* :class:`Mem` — ``[base + index*scale + disp]`` with an access size; the
  special form without base and index is 32-bit absolute addressing, and
  ``riprel=True`` marks RIP-relative addressing.

Instances are immutable so they can be shared freely between the decoder
cache, DBrew's emulator, and the lifter.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Union

from repro.x86 import registers


@dataclass(frozen=True)
class Reg:
    """A register operand: an access-width view of an architectural register."""

    kind: str  # 'gp' or 'xmm'
    index: int
    size: int  # access width in bytes: 1/2/4/8 for gp, 4/8/16 for xmm
    high8: bool = False

    def __post_init__(self) -> None:
        if self.kind == "gp":
            if self.size not in (1, 2, 4, 8):
                raise ValueError(f"bad GPR size {self.size}")
            if self.high8 and (self.size != 1 or self.index >= 4):
                raise ValueError("high8 only valid for al..bl positions")
        elif self.kind == "xmm":
            if self.size not in (4, 8, 16):
                raise ValueError(f"bad XMM size {self.size}")
        else:
            raise ValueError(f"bad register kind {self.kind}")
        if not 0 <= self.index < 16:
            raise ValueError(f"bad register index {self.index}")

    @property
    def name(self) -> str:
        if self.kind == "xmm":
            return registers.xmm_name(self.index)
        return registers.gp_name(self.index, self.size, self.high8)

    def with_size(self, size: int) -> "Reg":
        """The same architectural register viewed at a different width."""
        return replace(self, size=size, high8=False)

    def __repr__(self) -> str:  # compact, used heavily in test diffs
        return f"Reg({self.name})"


def gp(index: int, size: int = 8, high8: bool = False) -> Reg:
    """Construct a GPR operand (defaults to the 64-bit view)."""
    return Reg("gp", index, size, high8)


def xmm(index: int, size: int = 16) -> Reg:
    """Construct an SSE register operand (defaults to the full 128-bit view)."""
    return Reg("xmm", index, size)


@dataclass(frozen=True)
class Imm:
    """An immediate operand.

    ``value`` is stored as a Python int (signed interpretation left to the
    consumer); ``size`` is the width the encoder must use in bytes.  A size
    of 0 lets the encoder pick the smallest legal encoding.
    """

    value: int
    size: int = field(default=0, compare=False)

    def __repr__(self) -> str:
        return f"Imm({self.value:#x})" if abs(self.value) > 9 else f"Imm({self.value})"


@dataclass(frozen=True)
class Mem:
    """A memory operand ``seg:[base + index*scale + disp]``.

    ``size`` is the access width in bytes.  ``riprel`` marks RIP-relative
    addressing where ``disp`` holds the *absolute target address* (the
    encoder converts it to a relative displacement; keeping the absolute
    address makes rewriting relocations explicit).  ``seg`` is ``''`` or
    one of ``'fs'``/``'gs'`` — the paper maps those to IR address spaces
    257/256 respectively.
    """

    size: int
    base: Reg | None = None
    index: Reg | None = None
    scale: int = 1
    disp: int = 0
    riprel: bool = False
    seg: str = ""

    def __post_init__(self) -> None:
        if self.scale not in (1, 2, 4, 8):
            raise ValueError(f"bad scale {self.scale}")
        if self.index is None and self.scale != 1:
            object.__setattr__(self, "scale", 1)  # scale is meaningless without index
        if self.index is not None and self.index.index == registers.RSP:
            raise ValueError("rsp cannot be an index register")
        if self.riprel and (self.base is not None or self.index is not None):
            raise ValueError("RIP-relative addressing takes no registers")
        if self.seg not in ("", "fs", "gs"):
            raise ValueError(f"bad segment override {self.seg!r}")

    @property
    def is_absolute(self) -> bool:
        """True for bare ``[disp32]`` absolute addressing."""
        return self.base is None and self.index is None and not self.riprel


Operand = Union[Reg, Imm, Mem]


@dataclass(frozen=True)
class Instruction:
    """One decoded or to-be-encoded instruction.

    ``addr`` and ``length`` are filled in by the decoder (and by
    :func:`repro.x86.encoder.encode_block`); for hand-built instructions
    they stay 0 until encoding assigns them.
    """

    mnemonic: str
    operands: tuple[Operand, ...] = ()
    addr: int = 0
    length: int = 0
    raw: bytes = field(default=b"", compare=False)

    def __repr__(self) -> str:
        ops = ", ".join(repr(o) for o in self.operands)
        return f"<{self.mnemonic} {ops}>" if ops else f"<{self.mnemonic}>"

    @property
    def end(self) -> int:
        """Address of the next sequential instruction."""
        return self.addr + self.length


def make(mnemonic: str, *operands: Operand) -> Instruction:
    """Convenience constructor used by code generators."""
    return Instruction(mnemonic, tuple(operands))
