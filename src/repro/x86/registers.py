"""Architectural registers and their sub-register geometry.

x86-64 has 16 general-purpose registers (GPRs) of 64 bits and, with SSE,
16 vector registers of 128 bits.  Instructions address *views* of these
registers — ``rax``/``eax``/``ax``/``al``/``ah`` all name storage inside
GPR 0.  The paper calls the typed views "facets" (Fig. 4); at the ISA level
we only need the untyped geometry: register index, access width, and the
high-byte quirk (``ah`` = bits 8..16 of GPR 0).

The canonical in-memory representation used throughout the project is
``(kind, index)`` with kind ``'gp'`` or ``'xmm'``; operand widths live on
the :class:`repro.x86.instr.Reg` operand, not here.
"""

from __future__ import annotations

from typing import Final

# Canonical GPR order matches the hardware encoding (REX.B/ModRM numbering).
GP: Final[tuple[str, ...]] = (
    "rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
    "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
)

XMM: Final[tuple[str, ...]] = tuple(f"xmm{i}" for i in range(16))

_GP32: Final[tuple[str, ...]] = (
    "eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi",
    "r8d", "r9d", "r10d", "r11d", "r12d", "r13d", "r14d", "r15d",
)
_GP16: Final[tuple[str, ...]] = (
    "ax", "cx", "dx", "bx", "sp", "bp", "si", "di",
    "r8w", "r9w", "r10w", "r11w", "r12w", "r13w", "r14w", "r15w",
)
_GP8: Final[tuple[str, ...]] = (
    "al", "cl", "dl", "bl", "spl", "bpl", "sil", "dil",
    "r8b", "r9b", "r10b", "r11b", "r12b", "r13b", "r14b", "r15b",
)
_GP8H: Final[tuple[str, ...]] = ("ah", "ch", "dh", "bh")

# Index constants for readability at call sites.
RAX, RCX, RDX, RBX, RSP, RBP, RSI, RDI = range(8)
R8, R9, R10, R11, R12, R13, R14, R15 = range(8, 16)

#: System V AMD64 ABI: integer/pointer argument registers, in order.
SYSV_INT_ARGS: Final[tuple[int, ...]] = (RDI, RSI, RDX, RCX, R8, R9)
#: System V AMD64 ABI: floating-point argument registers (xmm indices).
SYSV_SSE_ARGS: Final[tuple[int, ...]] = (0, 1, 2, 3, 4, 5, 6, 7)
#: Callee-saved GPRs under the System V AMD64 ABI.
SYSV_CALLEE_SAVED: Final[tuple[int, ...]] = (RBX, RBP, R12, R13, R14, R15)
#: Caller-saved (volatile) GPRs, excluding rsp.
SYSV_CALLER_SAVED: Final[tuple[int, ...]] = (
    RAX, RCX, RDX, RSI, RDI, R8, R9, R10, R11,
)


def gp_name(index: int, size: int, high8: bool = False) -> str:
    """Return the architectural name of a GPR view.

    ``size`` is the access width in bytes (1, 2, 4 or 8); ``high8`` selects
    the legacy high-byte view (only valid for ``size == 1`` and
    ``index < 4``).
    """
    if high8:
        if size != 1 or index >= 4:
            raise ValueError(f"no high-byte register for index {index} size {size}")
        return _GP8H[index]
    table = {8: GP, 4: _GP32, 2: _GP16, 1: _GP8}.get(size)
    if table is None:
        raise ValueError(f"invalid GPR access size {size}")
    return table[index]


def xmm_name(index: int) -> str:
    """Return the name of an SSE register."""
    return XMM[index]


# Name -> (index, size, high8) for the Intel-syntax parser.
_GP_BY_NAME: Final[dict[str, tuple[int, int, bool]]] = {}
for _i, _n in enumerate(GP):
    _GP_BY_NAME[_n] = (_i, 8, False)
for _i, _n in enumerate(_GP32):
    _GP_BY_NAME[_n] = (_i, 4, False)
for _i, _n in enumerate(_GP16):
    _GP_BY_NAME[_n] = (_i, 2, False)
for _i, _n in enumerate(_GP8):
    _GP_BY_NAME[_n] = (_i, 1, False)
for _i, _n in enumerate(_GP8H):
    _GP_BY_NAME[_n] = (_i, 1, True)


def lookup_gp(name: str) -> tuple[int, int, bool] | None:
    """Map a GPR name to ``(index, size, high8)``, or None if unknown."""
    return _GP_BY_NAME.get(name)


def lookup_xmm(name: str) -> int | None:
    """Map an SSE register name to its index, or None if unknown."""
    if name.startswith("xmm"):
        try:
            idx = int(name[3:])
        except ValueError:
            return None
        if 0 <= idx < 16:
            return idx
    return None
