"""Mnemonic-level metadata shared by encoder, decoder, simulator and lifter.

The tables here describe the supported x86-64 subset: integer ALU and data
movement, control flow, and SSE/SSE2/SSE3 floating point (the paper's scope —
AVX is explicitly out, matching its ``-mno-avx`` evaluation setup).

Flag effects matter twice: DBrew's emulator must know which flags an
instruction defines (to keep its meta-state sound) and the lifter must know
which flags a conditional consumes (to drive the flag cache of Fig. 6).
"""

from __future__ import annotations

from typing import Final

# ---------------------------------------------------------------------------
# Condition codes
# ---------------------------------------------------------------------------

#: canonical condition-code suffixes in hardware encoding order (0..15)
CC_NAMES: Final[tuple[str, ...]] = (
    "o", "no", "b", "ae", "e", "ne", "be", "a",
    "s", "ns", "p", "np", "l", "ge", "le", "g",
)

CC_INDEX: Final[dict[str, int]] = {n: i for i, n in enumerate(CC_NAMES)}

#: alias suffixes accepted by the parser, mapped to canonical names
CC_ALIASES: Final[dict[str, str]] = {
    "z": "e", "nz": "ne", "c": "b", "nc": "ae", "nae": "b", "nb": "ae",
    "na": "be", "nbe": "a", "pe": "p", "po": "np", "nge": "l", "nl": "ge",
    "ng": "le", "nle": "g",
}

#: flags read by each condition code (subset of "oszapc")
CC_FLAGS_READ: Final[dict[str, str]] = {
    "o": "o", "no": "o",
    "b": "c", "ae": "c",
    "e": "z", "ne": "z",
    "be": "cz", "a": "cz",
    "s": "s", "ns": "s",
    "p": "p", "np": "p",
    "l": "so", "ge": "so",
    "le": "soz", "g": "soz",
}


def canonical_cc(suffix: str) -> str | None:
    """Canonicalize a condition-code suffix, or None if it is not one."""
    if suffix in CC_INDEX:
        return suffix
    return CC_ALIASES.get(suffix)


def cc_of(mnemonic: str) -> str | None:
    """Extract the canonical condition code of a jcc/cmovcc/setcc mnemonic."""
    for prefix in ("cmov", "set", "j"):
        if mnemonic.startswith(prefix) and mnemonic not in ("jmp",):
            return canonical_cc(mnemonic[len(prefix):])
    return None


# ---------------------------------------------------------------------------
# Integer instruction families (drive both encoder and decoder)
# ---------------------------------------------------------------------------

#: classic ALU group: mnemonic -> (opcode base, /digit for the 80/81/83 group)
ALU_GROUP: Final[dict[str, tuple[int, int]]] = {
    "add": (0x00, 0),
    "or": (0x08, 1),
    "adc": (0x10, 2),
    "sbb": (0x18, 3),
    "and": (0x20, 4),
    "sub": (0x28, 5),
    "xor": (0x30, 6),
    "cmp": (0x38, 7),
}

#: shift group: mnemonic -> /digit in C0/C1/D0..D3
SHIFT_GROUP: Final[dict[str, int]] = {
    "rol": 0, "ror": 1, "shl": 4, "shr": 5, "sar": 7,
}

#: unary group F6/F7: mnemonic -> /digit
UNARY_GROUP: Final[dict[str, int]] = {
    "not": 2, "neg": 3, "mul": 4, "imul1": 5, "div": 6, "idiv": 7,
}

# ---------------------------------------------------------------------------
# SSE families
# ---------------------------------------------------------------------------

#: scalar double ops: mnemonic -> second opcode byte (prefix F2 0F xx)
SSE_SD: Final[dict[str, int]] = {
    "addsd": 0x58, "mulsd": 0x59, "subsd": 0x5C, "divsd": 0x5E,
    "minsd": 0x5D, "maxsd": 0x5F, "sqrtsd": 0x51, "cvtsd2ss": 0x5A,
}

#: scalar single ops: prefix F3 0F xx
SSE_SS: Final[dict[str, int]] = {
    "addss": 0x58, "mulss": 0x59, "subss": 0x5C, "divss": 0x5E,
    "minss": 0x5D, "maxss": 0x5F, "sqrtss": 0x51, "cvtss2sd": 0x5A,
}

#: packed double ops: prefix 66 0F xx
SSE_PD: Final[dict[str, int]] = {
    "addpd": 0x58, "mulpd": 0x59, "subpd": 0x5C, "divpd": 0x5E,
    "minpd": 0x5D, "maxpd": 0x5F, "sqrtpd": 0x51, "xorpd": 0x57,
    "andpd": 0x54, "orpd": 0x56, "unpcklpd": 0x14, "unpckhpd": 0x15,
    "haddpd": 0x7C,
}

#: packed single ops: prefix 0F xx (no mandatory prefix)
SSE_PS: Final[dict[str, int]] = {
    "addps": 0x58, "mulps": 0x59, "subps": 0x5C, "divps": 0x5E,
    "xorps": 0x57, "andps": 0x54, "orps": 0x56,
    "unpcklps": 0x14, "unpckhps": 0x15,
}

#: packed integer ops: prefix 66 0F xx
SSE_PI: Final[dict[str, int]] = {
    "pxor": 0xEF, "por": 0xEB, "pand": 0xDB, "pandn": 0xDF,
    "paddq": 0xD4, "paddd": 0xFE, "paddw": 0xFD, "paddb": 0xFC,
    "psubq": 0xFB, "psubd": 0xFA, "pcmpeqd": 0x76, "pcmpeqb": 0x74,
    "pmuludq": 0xF4,
}

#: element width in bytes accessed by scalar SSE mnemonics
SSE_SCALAR_WIDTH: Final[dict[str, int]] = (
    {m: 8 for m in SSE_SD}
    | {m: 4 for m in SSE_SS}
    | {"movsd": 8, "movss": 4, "movq": 8, "movd": 4, "movlpd": 8, "movhpd": 8,
       "ucomisd": 8, "comisd": 8, "ucomiss": 4, "comiss": 4,
       "cvtsi2sd": 8, "cvtsi2ss": 8, "cvttsd2si": 8, "cvtsd2si": 8,
       "cvttss2si": 4, "cvtss2si": 4}
)

# ---------------------------------------------------------------------------
# Flag effects
# ---------------------------------------------------------------------------

_ARITH_FLAGS = "oszapc"

#: flags *written* by a mnemonic (family members filled in below)
FLAGS_WRITTEN: Final[dict[str, str]] = {
    "inc": "oszap",  # carry preserved!
    "dec": "oszap",
    "neg": _ARITH_FLAGS,
    "imul": "oc",  # s/z/a/p undefined; we model "oc" as defined
    "imul1": "oc",
    "mul": "oc",
    "test": _ARITH_FLAGS,
    "shl": _ARITH_FLAGS,
    "shr": _ARITH_FLAGS,
    "sar": _ARITH_FLAGS,
    "rol": "oc",
    "ror": "oc",
    "ucomisd": "zpc",  # also clears o/s/a
    "ucomiss": "zpc",
    "comisd": "zpc",
    "comiss": "zpc",
    "cmp": _ARITH_FLAGS,
    "div": "",
    "idiv": "",
    "not": "",
}
for _m in ALU_GROUP:
    if _m not in ("cmp",):
        FLAGS_WRITTEN[_m] = _ARITH_FLAGS
# logic ops clear o/c and define s/z/p (a undefined; we treat as written)
for _m in ("and", "or", "xor", "test"):
    FLAGS_WRITTEN[_m] = _ARITH_FLAGS


def flags_written(mnemonic: str) -> str:
    """Flags defined by ``mnemonic`` (subset of "oszapc"); "" if none."""
    return FLAGS_WRITTEN.get(mnemonic, "")


def flags_read(mnemonic: str) -> str:
    """Flags consumed by ``mnemonic`` (subset of "oszapc"); "" if none."""
    cc = cc_of(mnemonic)
    if cc is not None:
        return CC_FLAGS_READ[cc]
    if mnemonic in ("adc", "sbb"):
        return "c"
    return ""


# ---------------------------------------------------------------------------
# Control-flow classification
# ---------------------------------------------------------------------------


def control_class(mnemonic: str) -> str:
    """Classify a mnemonic: 'jmp', 'jcc', 'call', 'ret', or 'none'."""
    if mnemonic == "jmp":
        return "jmp"
    if mnemonic == "call":
        return "call"
    if mnemonic == "ret":
        return "ret"
    if mnemonic.startswith("j") and cc_of(mnemonic) is not None:
        return "jcc"
    return "none"


def is_terminator(mnemonic: str) -> bool:
    """True when the instruction ends a basic block (Sec. III-B)."""
    return control_class(mnemonic) in ("jmp", "jcc", "call", "ret")
