"""x86-64 ISA substrate: instruction model, encoder, decoder, printer, parser.

This package is the foundation everything else consumes:

* :mod:`repro.x86.registers` — the architectural register file and the
  sub-register ("facet") geometry of Figure 4 of the paper;
* :mod:`repro.x86.instr` — operand and instruction dataclasses;
* :mod:`repro.x86.isa` — the mnemonic/encoding/flag-effect tables;
* :mod:`repro.x86.encoder` / :mod:`repro.x86.decoder` — machine-code
  round-tripping (the offline substitute for an assembler + capstone);
* :mod:`repro.x86.printer` / :mod:`repro.x86.asmparser` — Intel-syntax text.
"""

from repro.x86.instr import Imm, Instruction, Mem, Reg, gp, xmm
from repro.x86.registers import GP, XMM
from repro.x86.encoder import encode, encode_block
from repro.x86.decoder import decode_block, decode_one
from repro.x86.printer import format_instruction, format_operand
from repro.x86.asmparser import parse_asm

__all__ = [
    "GP",
    "XMM",
    "Imm",
    "Instruction",
    "Mem",
    "Reg",
    "decode_block",
    "decode_one",
    "encode",
    "encode_block",
    "format_instruction",
    "format_operand",
    "gp",
    "parse_asm",
    "xmm",
]
