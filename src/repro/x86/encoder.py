"""x86-64 machine-code encoder for the supported subset.

``encode(instr, addr)`` produces the canonical byte encoding of one
instruction.  Control-flow operands (``jmp``/``jcc``/``call``) carry the
*absolute* target address in an :class:`~repro.x86.instr.Imm`; the encoder
converts it to a rel8/rel32 displacement against ``addr``.  RIP-relative
memory operands likewise carry the absolute target in ``Mem.disp``.

The encoder is intentionally canonical rather than exhaustive: one encoding
per mnemonic/operand-shape.  The decoder accepts strictly more forms (what a
real compiler might emit) than the encoder produces.
"""

from __future__ import annotations

import struct

from repro.errors import EncodeError
from repro.x86 import isa
from repro.x86.instr import Imm, Instruction, Mem, Operand, Reg

_SEG_PREFIX = {"fs": 0x64, "gs": 0x65}


def _fits(value: int, bits: int) -> bool:
    lo = -(1 << (bits - 1))
    hi = (1 << bits) - 1  # accept unsigned forms too
    return lo <= value <= hi


def _fits_signed(value: int, bits: int) -> bool:
    lo = -(1 << (bits - 1))
    hi = (1 << (bits - 1)) - 1
    return lo <= value <= hi


def _pack(value: int, size: int) -> bytes:
    mask = (1 << (size * 8)) - 1
    return int(value & mask).to_bytes(size, "little")


class _Enc:
    """Accumulates the parts of one instruction encoding."""

    def __init__(self) -> None:
        self.legacy: list[int] = []  # 66/F2/F3/segment prefixes
        self.rex_w = False
        self.rex_r = False
        self.rex_x = False
        self.rex_b = False
        self.force_rex = False
        self.opcode: list[int] = []
        self.modrm: int | None = None
        self.sib: int | None = None
        self.disp: bytes = b""
        self.riprel_target: int | None = None
        self.imm: bytes = b""
        self.rel: tuple[int, int] | None = None  # (target, width) for jmp/call

    def set_reg_field(self, reg: Reg) -> None:
        if reg.index >= 8:
            self.rex_r = True
        self._maybe_force_rex(reg)

    def _maybe_force_rex(self, reg: Reg) -> None:
        if reg.kind == "gp" and reg.size == 1 and not reg.high8 and reg.index >= 4:
            self.force_rex = True
        if reg.high8:
            if self.force_rex or self.rex_r or self.rex_x or self.rex_b:
                raise EncodeError("high-byte register cannot combine with REX")

    def reg_field_value(self, reg: Reg) -> int:
        if reg.high8:
            return reg.index + 4
        return reg.index & 7

    def set_rm_reg(self, reg: Reg) -> None:
        if reg.index >= 8:
            self.rex_b = True
        self._maybe_force_rex(reg)
        self._rm_bits = self.reg_field_value(reg)
        self._mod_bits = 3

    def set_rm_mem(self, mem: Mem) -> None:
        if mem.seg:
            self.legacy.insert(0, _SEG_PREFIX[mem.seg])
        if mem.riprel:
            self._mod_bits, self._rm_bits = 0, 5
            self.riprel_target = mem.disp
            return
        base, index = mem.base, mem.index
        if base is not None and base.size != 8:
            raise EncodeError("address base must be 64-bit")
        if index is not None and index.size != 8:
            raise EncodeError("address index must be 64-bit")
        if index is not None and index.index >= 8:
            self.rex_x = True
        if base is not None and base.index >= 8:
            self.rex_b = True

        scale_bits = {1: 0, 2: 1, 4: 2, 8: 3}[mem.scale]
        need_sib = (
            index is not None
            or base is None
            or (base.index & 7) == 4  # rsp/r12 as base require SIB
        )
        disp = mem.disp
        if base is None:
            # [disp32] absolute or [index*scale + disp32]
            self._mod_bits, self._rm_bits = 0, 4
            idx_bits = 4 if index is None else (index.index & 7)
            self.sib = (scale_bits << 6) | (idx_bits << 3) | 5
            self.disp = _pack(disp, 4)
            return
        base_bits = base.index & 7
        # rbp/r13 base with mod=00 means disp32/riprel, so force disp8=0.
        if disp == 0 and base_bits != 5:
            mod, self.disp = 0, b""
        elif _fits_signed(disp, 8):
            mod, self.disp = 1, _pack(disp, 1)
        elif _fits_signed(disp, 32):
            mod, self.disp = 2, _pack(disp, 4)
        else:
            raise EncodeError(f"displacement {disp:#x} exceeds 32 bits")
        self._mod_bits = mod
        if need_sib:
            self._rm_bits = 4
            idx_bits = 4 if index is None else (index.index & 7)
            self.sib = (scale_bits << 6) | (idx_bits << 3) | base_bits
        else:
            self._rm_bits = base_bits

    def set_modrm(self, reg_bits: int) -> None:
        self.modrm = (self._mod_bits << 6) | ((reg_bits & 7) << 3) | self._rm_bits

    def emit(self, addr: int) -> bytes:
        rex = 0x40
        if self.rex_w:
            rex |= 8
        if self.rex_r:
            rex |= 4
        if self.rex_x:
            rex |= 2
        if self.rex_b:
            rex |= 1
        parts = bytes(self.legacy)
        if rex != 0x40 or self.force_rex:
            parts += bytes([rex])
        parts += bytes(self.opcode)
        if self.modrm is not None:
            parts += bytes([self.modrm])
        if self.sib is not None:
            parts += bytes([self.sib])
        if self.riprel_target is not None:
            total = len(parts) + 4 + len(self.imm)
            rel = self.riprel_target - (addr + total)
            if not _fits_signed(rel, 32):
                raise EncodeError("RIP-relative target out of range")
            parts += _pack(rel, 4)
        else:
            parts += self.disp
        parts += self.imm
        if self.rel is not None:
            target, width = self.rel
            total = len(parts) + width
            rel = target - (addr + total)
            if not _fits_signed(rel, width * 8):
                raise EncodeError("branch target out of range")
            parts += _pack(rel, width)
        return parts


def _op_size(*ops: Operand) -> int:
    """Determine the integer operand width in bytes from reg/mem operands."""
    for op in ops:
        if isinstance(op, Reg):
            return op.size
    for op in ops:
        if isinstance(op, Mem):
            return op.size
    raise EncodeError("cannot determine operand size")


def _setup_width(e: _Enc, size: int) -> None:
    if size == 8:
        e.rex_w = True
    elif size == 2:
        e.legacy.append(0x66)
    elif size not in (1, 4):
        raise EncodeError(f"bad integer width {size}")


def _rm_encode(
    e: _Enc, opcode: int | list[int], reg_bits: int, rm: Operand, *, op66: bool = False
) -> None:
    if op66:
        e.legacy.append(0x66)
    if isinstance(rm, Reg):
        e.set_rm_reg(rm)
    elif isinstance(rm, Mem):
        e.set_rm_mem(rm)
    else:
        raise EncodeError(f"bad r/m operand {rm!r}")
    e.opcode = [opcode] if isinstance(opcode, int) else list(opcode)
    e.set_modrm(reg_bits)


def _encode_alu(instr: Instruction, e: _Enc) -> None:
    base, digit = isa.ALU_GROUP[instr.mnemonic]
    dst, src = instr.operands
    size = _op_size(dst, src)
    _setup_width(e, size)
    wide = 0 if size == 1 else 1
    if isinstance(src, Imm):
        if size == 1:
            _rm_encode(e, 0x80, digit, dst)
            e.imm = _pack(src.value, 1)
        elif _fits_signed(src.value, 8):
            _rm_encode(e, 0x83, digit, dst)
            e.imm = _pack(src.value, 1)
        else:
            if not _fits(src.value, 32):
                raise EncodeError("ALU immediate exceeds 32 bits")
            _rm_encode(e, 0x81, digit, dst)
            e.imm = _pack(src.value, 4)
    elif isinstance(src, Reg) and isinstance(dst, (Reg, Mem)):
        e.set_reg_field(src)
        _rm_encode(e, base + wide, e.reg_field_value(src), dst)
    elif isinstance(dst, Reg) and isinstance(src, Mem):
        e.set_reg_field(dst)
        _rm_encode(e, base + 2 + wide, e.reg_field_value(dst), src)
    else:
        raise EncodeError(f"unsupported ALU operands {instr!r}")


def _encode_mov(instr: Instruction, e: _Enc) -> None:
    dst, src = instr.operands
    size = _op_size(dst, src)
    if isinstance(src, Imm):
        if isinstance(dst, Reg) and size == 8 and not _fits_signed(src.value, 32):
            # mov r64, imm64 (B8+r io)
            e.rex_w = True
            if dst.index >= 8:
                e.rex_b = True
            e.opcode = [0xB8 + (dst.index & 7)]
            e.imm = _pack(src.value, 8)
            return
        _setup_width(e, size)
        if size == 1:
            _rm_encode(e, 0xC6, 0, dst)
            e.imm = _pack(src.value, 1)
        else:
            if not _fits(src.value, 32):
                raise EncodeError("mov imm32 out of range; use 64-bit register form")
            _rm_encode(e, 0xC7, 0, dst)
            e.imm = _pack(src.value, 2 if size == 2 else 4)
        return
    _setup_width(e, size)
    wide = 0 if size == 1 else 1
    if isinstance(src, Reg):
        e.set_reg_field(src)
        _rm_encode(e, 0x88 + wide, e.reg_field_value(src), dst)
    elif isinstance(dst, Reg) and isinstance(src, Mem):
        e.set_reg_field(dst)
        _rm_encode(e, 0x8A + wide, e.reg_field_value(dst), src)
    else:
        raise EncodeError(f"unsupported mov operands {instr!r}")


def _encode_shift(instr: Instruction, e: _Enc) -> None:
    digit = isa.SHIFT_GROUP[instr.mnemonic]
    dst, src = instr.operands
    size = _op_size(dst)
    _setup_width(e, size)
    wide = 0 if size == 1 else 1
    if isinstance(src, Imm):
        if src.value == 1:
            _rm_encode(e, 0xD0 + wide, digit, dst)
        else:
            _rm_encode(e, 0xC0 + wide, digit, dst)
            e.imm = _pack(src.value, 1)
    elif isinstance(src, Reg) and src.index == 1 and src.size == 1:  # cl
        _rm_encode(e, 0xD2 + wide, digit, dst)
    else:
        raise EncodeError(f"unsupported shift operands {instr!r}")


def _encode_sse_rm(instr: Instruction, e: _Enc, prefix: int | None, opc: int) -> None:
    """xmm, xmm/m encoding (prefix 0F opc /r)."""
    dst, src = instr.operands[:2]
    if prefix is not None:
        e.legacy.append(prefix)
    if not isinstance(dst, Reg) or dst.kind != "xmm":
        raise EncodeError(f"SSE destination must be xmm: {instr!r}")
    e.set_reg_field(dst)
    _rm_encode(e, [0x0F, opc], e.reg_field_value(dst), src)
    if len(instr.operands) == 3:
        sel = instr.operands[2]
        if not isinstance(sel, Imm):
            raise EncodeError("third SSE operand must be an immediate")
        e.imm = _pack(sel.value, 1)


_COND_BASE = {"j": 0x80, "cmov": 0x40, "set": 0x90}


def encode(instr: Instruction, addr: int = 0) -> bytes:
    """Encode one instruction placed at ``addr``; returns its bytes."""
    m = instr.mnemonic
    ops = instr.operands
    e = _Enc()

    # --- no-operand instructions -----------------------------------------
    if m == "ret":
        return b"\xc3"
    if m == "nop":
        return b"\x90"
    if m == "leave":
        return b"\xc9"
    if m == "int3":
        return b"\xcc"
    if m == "ud2":
        return b"\x0f\x0b"
    if m == "cdq":
        return b"\x99"
    if m == "cqo":
        return b"\x48\x99"

    # --- control flow ------------------------------------------------------
    if m in ("jmp", "call") or isa.control_class(m) == "jcc":
        (target,) = ops
        if not isinstance(target, Imm):
            raise EncodeError("indirect branches are not supported (paper Sec. III-B)")
        if m == "call":
            e.opcode = [0xE8]
            e.rel = (target.value, 4)
        elif m == "jmp":
            rel8 = target.value - (addr + 2)
            if _fits_signed(rel8, 8):
                e.opcode = [0xEB]
                e.rel = (target.value, 1)
            else:
                e.opcode = [0xE9]
                e.rel = (target.value, 4)
        else:
            cc = isa.cc_of(m)
            assert cc is not None
            rel8 = target.value - (addr + 2)
            if _fits_signed(rel8, 8):
                e.opcode = [0x70 + isa.CC_INDEX[cc]]
                e.rel = (target.value, 1)
            else:
                e.opcode = [0x0F, 0x80 + isa.CC_INDEX[cc]]
                e.rel = (target.value, 4)
        return e.emit(addr)

    # --- push/pop -----------------------------------------------------------
    if m in ("push", "pop"):
        (op,) = ops
        if isinstance(op, Reg) and op.kind == "gp" and op.size == 8:
            if op.index >= 8:
                e.rex_b = True
            e.opcode = [(0x50 if m == "push" else 0x58) + (op.index & 7)]
            return e.emit(addr)
        if m == "push" and isinstance(op, Imm):
            if _fits_signed(op.value, 8):
                e.opcode = [0x6A]
                e.imm = _pack(op.value, 1)
            else:
                e.opcode = [0x68]
                e.imm = _pack(op.value, 4)
            return e.emit(addr)
        raise EncodeError(f"unsupported push/pop operand {op!r}")

    # --- integer families ----------------------------------------------------
    if m in isa.ALU_GROUP:
        _encode_alu(instr, e)
        return e.emit(addr)
    if m == "mov" and not any(isinstance(o, Reg) and o.kind == "xmm" for o in ops):
        _encode_mov(instr, e)
        return e.emit(addr)
    if m in isa.SHIFT_GROUP:
        _encode_shift(instr, e)
        return e.emit(addr)
    if m in ("inc", "dec"):
        (dst,) = ops
        size = _op_size(dst)
        _setup_width(e, size)
        _rm_encode(e, 0xFE if size == 1 else 0xFF, 0 if m == "inc" else 1, dst)
        return e.emit(addr)
    if m in ("not", "neg", "div", "idiv", "mul"):
        (dst,) = ops
        size = _op_size(dst)
        _setup_width(e, size)
        _rm_encode(e, 0xF6 if size == 1 else 0xF7, isa.UNARY_GROUP[m], dst)
        return e.emit(addr)
    if m == "test":
        dst, src = ops
        size = _op_size(dst, src)
        _setup_width(e, size)
        wide = 0 if size == 1 else 1
        if isinstance(src, Imm):
            _rm_encode(e, 0xF6 + wide, 0, dst)
            e.imm = _pack(src.value, 1 if size == 1 else min(size, 4))
        else:
            assert isinstance(src, Reg)
            e.set_reg_field(src)
            _rm_encode(e, 0x84 + wide, e.reg_field_value(src), dst)
        return e.emit(addr)
    if m == "imul":
        if len(ops) == 2 and not isinstance(ops[1], Imm):
            dst, src = ops
            assert isinstance(dst, Reg)
            size = _op_size(dst, src)
            _setup_width(e, size)
            e.set_reg_field(dst)
            _rm_encode(e, [0x0F, 0xAF], e.reg_field_value(dst), src)
            return e.emit(addr)
        if len(ops) == 3 or (len(ops) == 2 and isinstance(ops[1], Imm)):
            if len(ops) == 2:
                dst, src, imm = ops[0], ops[0], ops[1]
            else:
                dst, src, imm = ops
            assert isinstance(dst, Reg) and isinstance(imm, Imm)
            size = _op_size(dst, src)
            _setup_width(e, size)
            e.set_reg_field(dst)
            if _fits_signed(imm.value, 8):
                _rm_encode(e, 0x6B, e.reg_field_value(dst), src)
                e.imm = _pack(imm.value, 1)
            else:
                _rm_encode(e, 0x69, e.reg_field_value(dst), src)
                e.imm = _pack(imm.value, 4)
            return e.emit(addr)
        raise EncodeError(f"unsupported imul form {instr!r}")
    if m == "lea":
        dst, src = ops
        if not (isinstance(dst, Reg) and isinstance(src, Mem)):
            raise EncodeError("lea needs reg, mem")
        _setup_width(e, dst.size)
        e.set_reg_field(dst)
        _rm_encode(e, 0x8D, e.reg_field_value(dst), src)
        return e.emit(addr)
    if m in ("movzx", "movsx"):
        dst, src = ops
        assert isinstance(dst, Reg)
        ssize = _op_size(src)
        _setup_width(e, dst.size)
        base = 0xB6 if m == "movzx" else 0xBE
        if ssize == 2:
            base += 1
        elif ssize != 1:
            raise EncodeError(f"{m} source must be 8 or 16 bits")
        e.set_reg_field(dst)
        _rm_encode(e, [0x0F, base], e.reg_field_value(dst), src)
        return e.emit(addr)
    if m == "movsxd":
        dst, src = ops
        assert isinstance(dst, Reg) and dst.size == 8
        e.rex_w = True
        e.set_reg_field(dst)
        _rm_encode(e, 0x63, e.reg_field_value(dst), src)
        return e.emit(addr)
    if isa.cc_of(m) is not None and (m.startswith("cmov") or m.startswith("set")):
        cc = isa.cc_of(m)
        assert cc is not None
        if m.startswith("cmov"):
            dst, src = ops
            assert isinstance(dst, Reg)
            _setup_width(e, dst.size)
            e.set_reg_field(dst)
            _rm_encode(e, [0x0F, 0x40 + isa.CC_INDEX[cc]], e.reg_field_value(dst), src)
        else:
            (dst,) = ops
            _rm_encode(e, [0x0F, 0x90 + isa.CC_INDEX[cc]], 0, dst)
        return e.emit(addr)

    # --- SSE -------------------------------------------------------------
    if m in ("movsd", "movss", "movupd", "movups", "movapd", "movaps"):
        prefix = {"movsd": 0xF2, "movss": 0xF3, "movupd": 0x66, "movups": None,
                  "movapd": 0x66, "movaps": None}[m]
        load_opc = 0x28 if m in ("movapd", "movaps") else 0x10
        dst, src = ops
        if isinstance(dst, Reg) and dst.kind == "xmm":
            _encode_sse_rm(instr, e, prefix, load_opc)
        elif isinstance(src, Reg) and src.kind == "xmm":
            if prefix is not None:
                e.legacy.append(prefix)
            e.set_reg_field(src)
            _rm_encode(e, [0x0F, load_opc + 1], e.reg_field_value(src), dst)
        else:
            raise EncodeError(f"unsupported {m} operands")
        return e.emit(addr)
    if m in ("movq", "movd"):
        dst, src = ops
        wide = m == "movq"
        if isinstance(dst, Reg) and dst.kind == "xmm" and isinstance(src, Reg) and src.kind == "xmm":
            # movq xmm, xmm: F3 0F 7E
            e.legacy.append(0xF3)
            e.set_reg_field(dst)
            _rm_encode(e, [0x0F, 0x7E], e.reg_field_value(dst), src)
            return e.emit(addr)
        if isinstance(dst, Reg) and dst.kind == "xmm":
            e.legacy.append(0x66)
            e.rex_w = wide
            e.set_reg_field(dst)
            _rm_encode(e, [0x0F, 0x6E], e.reg_field_value(dst), src)
            return e.emit(addr)
        if isinstance(src, Reg) and src.kind == "xmm":
            e.legacy.append(0x66)
            e.rex_w = wide
            e.set_reg_field(src)
            _rm_encode(e, [0x0F, 0x7E], e.reg_field_value(src), dst)
            return e.emit(addr)
        raise EncodeError(f"unsupported {m} operands")
    if m == "movlpd" or m == "movhpd":
        base = 0x12 if m == "movlpd" else 0x16
        dst, src = ops
        if isinstance(dst, Reg) and dst.kind == "xmm":
            _encode_sse_rm(instr, e, 0x66, base)
        else:
            assert isinstance(src, Reg)
            e.legacy.append(0x66)
            e.set_reg_field(src)
            _rm_encode(e, [0x0F, base + 1], e.reg_field_value(src), dst)
        return e.emit(addr)
    for table, prefix in (
        (isa.SSE_SD, 0xF2), (isa.SSE_SS, 0xF3),
        (isa.SSE_PD, 0x66), (isa.SSE_PI, 0x66), (isa.SSE_PS, None),
    ):
        if m in table:
            _encode_sse_rm(instr, e, prefix, table[m])
            return e.emit(addr)
    if m in ("ucomisd", "comisd", "ucomiss", "comiss"):
        opc = 0x2E if m.startswith("u") else 0x2F
        prefix = 0x66 if m.endswith("sd") else None
        _encode_sse_rm(instr, e, prefix, opc)
        return e.emit(addr)
    if m in ("shufpd", "pshufd"):
        _encode_sse_rm(instr, e, 0x66, 0xC6 if m == "shufpd" else 0x70)
        return e.emit(addr)
    if m in ("cvtsi2sd", "cvtsi2ss"):
        dst, src = ops
        e.legacy.append(0xF2 if m.endswith("sd") else 0xF3)
        e.rex_w = _op_size(src) == 8
        assert isinstance(dst, Reg)
        e.set_reg_field(dst)
        _rm_encode(e, [0x0F, 0x2A], e.reg_field_value(dst), src)
        return e.emit(addr)
    if m in ("cvttsd2si", "cvtsd2si", "cvttss2si", "cvtss2si"):
        dst, src = ops
        e.legacy.append(0xF2 if "sd" in m else 0xF3)
        assert isinstance(dst, Reg)
        e.rex_w = dst.size == 8
        opc = 0x2C if m.startswith("cvtt") else 0x2D
        e.set_reg_field(dst)
        _rm_encode(e, [0x0F, opc], e.reg_field_value(dst), src)
        return e.emit(addr)

    raise EncodeError(f"cannot encode {instr!r}")


def encode_block(instrs: list[Instruction], base: int = 0) -> tuple[bytes, list[Instruction]]:
    """Encode a straight sequence, assigning addresses.

    Branch targets must already be absolute addresses.  Because jmp/jcc pick
    rel8 vs rel32 based on distance, the pass iterates to a fixed point on
    instruction lengths before the final emission.
    """
    lengths = [len(encode(i, 0x10000000)) for i in instrs]
    for _ in range(16):
        addrs = []
        pc = base
        for ln in lengths:
            addrs.append(pc)
            pc += ln
        new_lengths = [len(encode(i, a)) for i, a in zip(instrs, addrs)]
        if new_lengths == lengths:
            break
        lengths = new_lengths
    out = bytearray()
    placed: list[Instruction] = []
    pc = base
    for ins in instrs:
        raw = encode(ins, pc)
        out += raw
        placed.append(
            Instruction(ins.mnemonic, ins.operands, addr=pc, length=len(raw), raw=raw)
        )
        pc += len(raw)
    return bytes(out), placed
