"""Intel-syntax disassembly printing.

Used for Fig. 5/8-style listings in the examples, for debugging and for the
asmparser round-trip tests.
"""

from __future__ import annotations

from repro.x86.instr import Imm, Instruction, Mem, Operand, Reg

_SIZE_NAME = {1: "byte", 2: "word", 4: "dword", 8: "qword", 16: "xmmword"}


def format_operand(op: Operand) -> str:
    """Render one operand in Intel syntax."""
    if isinstance(op, Reg):
        return op.name
    if isinstance(op, Imm):
        v = op.value
        if -10 < v < 10:
            return str(v)
        return f"{'-' if v < 0 else ''}{abs(v):#x}"
    if isinstance(op, Mem):
        parts: list[str] = []
        if op.riprel:
            parts.append(f"rip + {op.disp:#x}")
        else:
            if op.base is not None:
                parts.append(op.base.name)
            if op.index is not None:
                parts.append(f"{op.scale} * {op.index.name}" if op.scale != 1
                             else op.index.name)
            if op.disp or not parts:
                if parts and op.disp < 0:
                    parts.append(f"- {abs(op.disp):#x}")
                elif parts:
                    parts.append(f"+ {op.disp:#x}")
                else:
                    parts.append(f"{op.disp:#x}")
        body = " ".join(parts).replace("  ", " ")
        body = body.replace(" - ", " - ").replace(" + ", " + ")
        inner = ""
        first = True
        for p in parts:
            if first:
                inner = p
                first = False
            elif p.startswith(("+", "-")):
                inner += f" {p[0]} {p[2:]}"
            else:
                inner += f" + {p}"
        seg = f"{op.seg}:" if op.seg else ""
        return f"{_SIZE_NAME[op.size]} ptr {seg}[{inner}]"
    raise TypeError(f"unknown operand {op!r}")


def format_instruction(ins: Instruction, *, with_addr: bool = False) -> str:
    """Render one instruction in Intel syntax."""
    ops = ", ".join(format_operand(o) for o in ins.operands)
    text = f"{ins.mnemonic} {ops}".rstrip()
    if with_addr:
        return f"{ins.addr:#010x}:  {text}"
    return text


def format_block(instrs: list[Instruction], *, with_addr: bool = True) -> str:
    """Render an instruction list, one per line."""
    return "\n".join(format_instruction(i, with_addr=with_addr) for i in instrs)
