"""x86-64 machine-code decoder (the offline substitute for capstone).

``decode_one(code, offset, addr)`` decodes a single instruction;
``decode_block`` decodes a byte range into a list.  The decoder accepts a
superset of what :mod:`repro.x86.encoder` emits (rel8 and rel32 branches,
both ModRM directions, redundant REX prefixes) because DBrew and the lifter
must consume compiler output, not just our own.

Branch operands are normalized to *absolute* target addresses, and
RIP-relative memory displacements to absolute addresses, so downstream
passes never deal with encoding-relative offsets.

Dispatch is table-driven: two 256-entry handler tables (one-byte opcodes
and the 0F escape map) are precomputed at import, so decoding an
instruction costs one prefix scan plus one indexed lookup instead of a
linear walk over every opcode pattern — this is a hot path of the runtime
rewriter (DBrew decodes each guest instruction; the lifter decodes every
discovered block).
"""

from __future__ import annotations

from typing import Callable

from repro.errors import DecodeError
from repro.x86 import isa
from repro.x86.instr import Imm, Instruction, Mem, Operand, Reg

_SEG_BY_PREFIX = {0x64: "fs", 0x65: "gs"}

# Reverse maps from the ISA tables.
_ALU_BY_BASE = {base: (m, digit) for m, (base, digit) in isa.ALU_GROUP.items()}
_ALU_BY_DIGIT = {digit: m for m, (_b, digit) in isa.ALU_GROUP.items()}
_SHIFT_BY_DIGIT = {d: m for m, d in isa.SHIFT_GROUP.items()}
_UNARY_BY_DIGIT = {d: m for m, d in isa.UNARY_GROUP.items()}
_SSE_0F_BY_PREFIX: dict[int | None, dict[int, str]] = {
    0xF2: {v: k for k, v in isa.SSE_SD.items()},
    0xF3: {v: k for k, v in isa.SSE_SS.items()},
    0x66: {v: k for k, v in (isa.SSE_PD | isa.SSE_PI).items()},
    None: {v: k for k, v in isa.SSE_PS.items()},
}


class _Cursor:
    def __init__(self, code: bytes, offset: int, addr: int) -> None:
        self.code = code
        self.pos = offset
        self.start = offset
        self.addr = addr

    def u8(self) -> int:
        if self.pos >= len(self.code):
            raise DecodeError(f"truncated instruction at {self.addr:#x}",
                              stage="decode", addr=self.addr,
                              data=bytes(self.code[self.start:self.pos]))
        b = self.code[self.pos]
        self.pos += 1
        return b

    def peek(self) -> int:
        if self.pos >= len(self.code):
            raise DecodeError(f"truncated instruction at {self.addr:#x}",
                              stage="decode", addr=self.addr,
                              data=bytes(self.code[self.start:self.pos]))
        return self.code[self.pos]

    def imm(self, size: int, signed: bool = True) -> int:
        if self.pos + size > len(self.code):
            raise DecodeError(f"truncated immediate at {self.addr:#x}",
                              stage="decode", addr=self.addr,
                              data=bytes(self.code[self.start:self.pos]))
        raw = self.code[self.pos : self.pos + size]
        self.pos += size
        return int.from_bytes(raw, "little", signed=signed)

    @property
    def length(self) -> int:
        return self.pos - self.start

    def end_addr(self) -> int:
        return self.addr + self.length


class _Ctx:
    """Prefix state for one instruction."""

    def __init__(self) -> None:
        self.rex = 0
        self.has_rex = False
        self.op66 = False
        self.rep_f2 = False
        self.rep_f3 = False
        self.seg = ""

    @property
    def w(self) -> bool:
        return bool(self.rex & 8)

    @property
    def r(self) -> int:
        return (self.rex >> 2) & 1

    @property
    def x(self) -> int:
        return (self.rex >> 1) & 1

    @property
    def b(self) -> int:
        return self.rex & 1

    def int_size(self, byte_op: bool) -> int:
        if byte_op:
            return 1
        if self.w:
            return 8
        if self.op66:
            return 2
        return 4

    def sse_prefix(self) -> int | None:
        if self.rep_f2:
            return 0xF2
        if self.rep_f3:
            return 0xF3
        if self.op66:
            return 0x66
        return None


def _gp(ctx: _Ctx, bits3: int, ext: int, size: int) -> Reg:
    index = bits3 | (ext << 3)
    if size == 1 and not ctx.has_rex and 4 <= index < 8:
        # without REX, encodings 4..7 are ah/ch/dh/bh
        return Reg("gp", index - 4, 1, high8=True)
    return Reg("gp", index, size, False)


def _modrm(cur: _Cursor, ctx: _Ctx, size: int, *, reg_is_xmm: bool = False,
           rm_is_xmm: bool = False, rm_size: int | None = None,
           reg_size: int | None = None) -> tuple[Reg, Operand]:
    """Decode ModRM (+SIB/displacement); returns (reg operand, r/m operand)."""
    modrm = cur.u8()
    mod = modrm >> 6
    reg_bits = (modrm >> 3) & 7
    rm_bits = modrm & 7
    if reg_is_xmm:
        reg: Reg = Reg("xmm", reg_bits | (ctx.r << 3), 16)
    else:
        reg = _gp(ctx, reg_bits, ctx.r, reg_size or size)
    msize = rm_size if rm_size is not None else size
    if mod == 3:
        if rm_is_xmm:
            return reg, Reg("xmm", rm_bits | (ctx.b << 3), 16)
        return reg, _gp(ctx, rm_bits, ctx.b, msize)

    base: Reg | None = None
    index: Reg | None = None
    scale = 1
    disp = 0
    riprel = False
    if rm_bits == 4:  # SIB
        sib = cur.u8()
        scale = 1 << (sib >> 6)
        idx_bits = (sib >> 3) & 7
        base_bits = sib & 7
        idx = idx_bits | (ctx.x << 3)
        if idx != 4:  # index 100b (rsp position, no REX.X) means "no index"
            index = Reg("gp", idx, 8)
        if base_bits == 5 and mod == 0:
            disp = cur.imm(4)
        else:
            base = Reg("gp", base_bits | (ctx.b << 3), 8)
    elif rm_bits == 5 and mod == 0:
        riprel = True
        disp = cur.imm(4)
    else:
        base = Reg("gp", rm_bits | (ctx.b << 3), 8)

    if mod == 1:
        disp = cur.imm(1)
    elif mod == 2:
        disp = cur.imm(4)
    mem = Mem(size=msize, base=base, index=index, scale=scale,
              disp=disp, riprel=riprel, seg=ctx.seg)
    return reg, mem


def _finish_riprel(mem: Operand, end_addr: int) -> Operand:
    """Convert a RIP-relative displacement to the absolute target address."""
    if isinstance(mem, Mem) and mem.riprel:
        return Mem(size=mem.size, disp=end_addr + mem.disp, riprel=True, seg=mem.seg)
    return mem


def decode_one(code: bytes, offset: int = 0, addr: int = 0) -> Instruction:
    """Decode the instruction at ``code[offset:]``, located at ``addr``."""
    cur = _Cursor(code, offset, addr)
    ctx = _Ctx()

    # prefixes
    while True:
        b = cur.peek()
        if b == 0x66:
            ctx.op66 = True
        elif b == 0xF2:
            ctx.rep_f2 = True
        elif b == 0xF3:
            ctx.rep_f3 = True
        elif b in _SEG_BY_PREFIX:
            ctx.seg = _SEG_BY_PREFIX[b]
        elif 0x40 <= b <= 0x4F:
            ctx.rex = b & 0xF
            ctx.has_rex = True
            cur.u8()
            break  # REX must be the last prefix
        else:
            break
        cur.u8()

    opc = cur.u8()
    handler = _DISPATCH[opc]
    if handler is None:
        raise DecodeError(f"unknown opcode {opc:#04x} at {cur.addr:#x}",
                          stage="decode", addr=cur.addr,
                          data=bytes(code[cur.start:cur.pos]))
    try:
        ins = handler(cur, ctx, opc)
    except DecodeError as exc:
        # handler-internal raises: stamp the uniform context (setdefault
        # semantics — a more specific context set deeper wins)
        raise exc.with_context(stage="decode", addr=addr,
                               data=bytes(code[cur.start:cur.pos]))
    raw = code[cur.start : cur.pos]
    ops = tuple(_finish_riprel(o, cur.end_addr()) for o in ins.operands)
    return Instruction(ins.mnemonic, ops, addr=addr, length=cur.length, raw=raw)


def _rel_target(cur: _Cursor, size: int) -> Imm:
    rel = cur.imm(size)
    return Imm(cur.end_addr() + rel, 8)


# --------------------------------------------------------------------------
# one-byte opcode handlers
#
# Every handler has the uniform shape (cursor, prefix ctx, opcode byte) ->
# Instruction; the tables at the bottom of this file bind them to opcode
# bytes once, at import.
# --------------------------------------------------------------------------

_Handler = Callable[[_Cursor, _Ctx, int], Instruction]


def _op_simple(mnemonic: str) -> _Handler:
    def handler(cur: _Cursor, ctx: _Ctx, opc: int) -> Instruction:
        return Instruction(mnemonic)
    return handler


def _h_nop_90(cur: _Cursor, ctx: _Ctx, opc: int) -> Instruction:
    if ctx.rep_f3:  # F3 90 = pause: unsupported
        raise DecodeError(f"unknown opcode {opc:#04x} at {cur.addr:#x}")
    return Instruction("nop")


def _h_cqo(cur: _Cursor, ctx: _Ctx, opc: int) -> Instruction:
    return Instruction("cqo" if ctx.w else "cdq")


def _h_push_reg(cur: _Cursor, ctx: _Ctx, opc: int) -> Instruction:
    return Instruction("push", (Reg("gp", (opc - 0x50) | (ctx.b << 3), 8),))


def _h_pop_reg(cur: _Cursor, ctx: _Ctx, opc: int) -> Instruction:
    return Instruction("pop", (Reg("gp", (opc - 0x58) | (ctx.b << 3), 8),))


def _h_push_imm32(cur: _Cursor, ctx: _Ctx, opc: int) -> Instruction:
    return Instruction("push", (Imm(cur.imm(4), 4),))


def _h_push_imm8(cur: _Cursor, ctx: _Ctx, opc: int) -> Instruction:
    return Instruction("push", (Imm(cur.imm(1), 1),))


def _h_call_rel32(cur: _Cursor, ctx: _Ctx, opc: int) -> Instruction:
    return Instruction("call", (_rel_target(cur, 4),))


def _h_jmp_rel32(cur: _Cursor, ctx: _Ctx, opc: int) -> Instruction:
    return Instruction("jmp", (_rel_target(cur, 4),))


def _h_jmp_rel8(cur: _Cursor, ctx: _Ctx, opc: int) -> Instruction:
    return Instruction("jmp", (_rel_target(cur, 1),))


def _h_jcc_rel8(cur: _Cursor, ctx: _Ctx, opc: int) -> Instruction:
    return Instruction("j" + isa.CC_NAMES[opc - 0x70], (_rel_target(cur, 1),))


def _h_alu(cur: _Cursor, ctx: _Ctx, opc: int) -> Instruction:
    base = opc & 0xF8
    low = opc & 7
    mnem, _digit = _ALU_BY_BASE[base]
    byte_op = (low & 1) == 0
    size = ctx.int_size(byte_op)
    if low in (0, 1):  # r/m, r
        reg, rm = _modrm(cur, ctx, size)
        return Instruction(mnem, (rm, reg))
    if low in (2, 3):  # r, r/m
        reg, rm = _modrm(cur, ctx, size)
        return Instruction(mnem, (reg, rm))
    # 4/5: al/ax/eax/rax, imm
    size = ctx.int_size(low == 4)
    acc = Reg("gp", 0, size)
    return Instruction(mnem, (acc, Imm(cur.imm(1 if low == 4 else min(size, 4)),
                                       1 if low == 4 else min(size, 4))))


def _h_alu_imm(cur: _Cursor, ctx: _Ctx, opc: int) -> Instruction:
    size = ctx.int_size(opc == 0x80)
    reg, rm = _modrm(cur, ctx, size)
    digit = (reg.index if not reg.high8 else reg.index + 4) & 7
    mnem = _ALU_BY_DIGIT[digit]
    if opc == 0x80 or opc == 0x83:
        imm = Imm(cur.imm(1), 1)
    else:
        imm = Imm(cur.imm(min(size, 4)), min(size, 4))
    return Instruction(mnem, (rm, imm))


def _h_test(cur: _Cursor, ctx: _Ctx, opc: int) -> Instruction:
    size = ctx.int_size(opc == 0x84)
    reg, rm = _modrm(cur, ctx, size)
    return Instruction("test", (rm, reg))


def _h_mov_store(cur: _Cursor, ctx: _Ctx, opc: int) -> Instruction:
    size = ctx.int_size(opc == 0x88)
    reg, rm = _modrm(cur, ctx, size)
    return Instruction("mov", (rm, reg))


def _h_mov_load(cur: _Cursor, ctx: _Ctx, opc: int) -> Instruction:
    size = ctx.int_size(opc == 0x8A)
    reg, rm = _modrm(cur, ctx, size)
    return Instruction("mov", (reg, rm))


def _h_lea(cur: _Cursor, ctx: _Ctx, opc: int) -> Instruction:
    size = ctx.int_size(False)
    reg, rm = _modrm(cur, ctx, size, rm_size=size)
    if not isinstance(rm, Mem):
        raise DecodeError("lea with register r/m")
    return Instruction("lea", (reg, rm))


def _h_movsxd(cur: _Cursor, ctx: _Ctx, opc: int) -> Instruction:
    reg, rm = _modrm(cur, ctx, 8, rm_size=4)
    return Instruction("movsxd", (reg, rm))


def _h_mov_imm_reg(cur: _Cursor, ctx: _Ctx, opc: int) -> Instruction:
    size = ctx.int_size(False)
    reg = Reg("gp", (opc - 0xB8) | (ctx.b << 3), size)
    if size == 8:
        return Instruction("mov", (reg, Imm(cur.imm(8), 8)))
    return Instruction("mov", (reg, Imm(cur.imm(min(size, 4)), min(size, 4))))


def _h_mov_imm8_reg(cur: _Cursor, ctx: _Ctx, opc: int) -> Instruction:
    reg = _gp(ctx, opc - 0xB0, ctx.b, 1)
    return Instruction("mov", (reg, Imm(cur.imm(1), 1)))


def _h_mov_imm_rm(cur: _Cursor, ctx: _Ctx, opc: int) -> Instruction:
    size = ctx.int_size(opc == 0xC6)
    reg, rm = _modrm(cur, ctx, size)
    isize = 1 if opc == 0xC6 else min(size, 4)
    return Instruction("mov", (rm, Imm(cur.imm(isize), isize)))


def _h_shift(cur: _Cursor, ctx: _Ctx, opc: int) -> Instruction:
    size = ctx.int_size(opc in (0xC0, 0xD0, 0xD2))
    reg, rm = _modrm(cur, ctx, size)
    digit = (reg.index if not reg.high8 else reg.index + 4) & 7
    mnem = _SHIFT_BY_DIGIT.get(digit)
    if mnem is None:
        raise DecodeError(f"unsupported shift /{digit}")
    if opc in (0xC0, 0xC1):
        return Instruction(mnem, (rm, Imm(cur.imm(1, signed=False), 1)))
    if opc in (0xD0, 0xD1):
        return Instruction(mnem, (rm, Imm(1, 1)))
    return Instruction(mnem, (rm, Reg("gp", 1, 1)))


def _h_unary_group(cur: _Cursor, ctx: _Ctx, opc: int) -> Instruction:
    size = ctx.int_size(opc == 0xF6)
    reg, rm = _modrm(cur, ctx, size)
    digit = (reg.index if not reg.high8 else reg.index + 4) & 7
    if digit in (0, 1):
        isize = 1 if opc == 0xF6 else min(size, 4)
        return Instruction("test", (rm, Imm(cur.imm(isize), isize)))
    mnem = _UNARY_BY_DIGIT[digit]
    if mnem == "imul1":
        mnem = "imul"  # one-operand widening form; distinguished by arity
    return Instruction(mnem, (rm,))


def _h_incdec_group(cur: _Cursor, ctx: _Ctx, opc: int) -> Instruction:
    size = ctx.int_size(opc == 0xFE)
    reg, rm = _modrm(cur, ctx, size)
    digit = (reg.index if not reg.high8 else reg.index + 4) & 7
    if digit == 0:
        return Instruction("inc", (rm,))
    if digit == 1:
        return Instruction("dec", (rm,))
    if opc == 0xFF and digit == 6:
        return Instruction("push", (rm,))
    if opc == 0xFF and digit == 4:
        return Instruction("jmp", (rm,))  # indirect; rejected by consumers
    if opc == 0xFF and digit == 2:
        return Instruction("call", (rm,))
    raise DecodeError(f"unsupported FF /{digit}")


def _h_imul_imm(cur: _Cursor, ctx: _Ctx, opc: int) -> Instruction:
    size = ctx.int_size(False)
    reg, rm = _modrm(cur, ctx, size)
    if opc == 0x6B:
        imm = Imm(cur.imm(1), 1)
    else:
        imm = Imm(cur.imm(min(size, 4)), min(size, 4))
    return Instruction("imul", (reg, rm, imm))


def _h_0f_escape(cur: _Cursor, ctx: _Ctx, opc: int) -> Instruction:
    opc2 = cur.u8()
    handler = _DISPATCH_0F[opc2]
    if handler is None:
        raise DecodeError(f"unknown 0F opcode {opc2:#04x} at {cur.addr:#x}",
                          stage="decode", addr=cur.addr,
                          data=bytes(cur.code[cur.start:cur.pos]))
    return handler(cur, ctx, opc2)


# --------------------------------------------------------------------------
# 0F escape-map handlers
# --------------------------------------------------------------------------


def _h0f_jcc_rel32(cur: _Cursor, ctx: _Ctx, opc: int) -> Instruction:
    return Instruction("j" + isa.CC_NAMES[opc - 0x80], (_rel_target(cur, 4),))


def _h0f_cmov(cur: _Cursor, ctx: _Ctx, opc: int) -> Instruction:
    size = ctx.int_size(False)
    reg, rm = _modrm(cur, ctx, size)
    return Instruction("cmov" + isa.CC_NAMES[opc - 0x40], (reg, rm))


def _h0f_setcc(cur: _Cursor, ctx: _Ctx, opc: int) -> Instruction:
    _reg, rm = _modrm(cur, ctx, 1)
    return Instruction("set" + isa.CC_NAMES[opc - 0x90], (rm,))


def _h0f_imul(cur: _Cursor, ctx: _Ctx, opc: int) -> Instruction:
    size = ctx.int_size(False)
    reg, rm = _modrm(cur, ctx, size)
    return Instruction("imul", (reg, rm))


def _h0f_movzx_movsx(cur: _Cursor, ctx: _Ctx, opc: int) -> Instruction:
    dsize = ctx.int_size(False)
    ssize = 1 if opc in (0xB6, 0xBE) else 2
    mnem = "movzx" if opc in (0xB6, 0xB7) else "movsx"
    reg, rm = _modrm(cur, ctx, dsize, rm_size=ssize)
    return Instruction(mnem, (reg, rm))


def _h0f_long_nop(cur: _Cursor, ctx: _Ctx, opc: int) -> Instruction:
    _reg, _rm = _modrm(cur, ctx, ctx.int_size(False))
    return Instruction("nop")


def _h0f_movups(cur: _Cursor, ctx: _Ctx, opc: int) -> Instruction:
    prefix = ctx.sse_prefix()
    mnem = {0xF2: "movsd", 0xF3: "movss", 0x66: "movupd", None: "movups"}[prefix]
    width = {0xF2: 8, 0xF3: 4, 0x66: 16, None: 16}[prefix]
    reg, rm = _modrm(cur, ctx, width, reg_is_xmm=True, rm_is_xmm=True)
    return Instruction(mnem, (reg, rm) if opc == 0x10 else (rm, reg))


def _h0f_movaps(cur: _Cursor, ctx: _Ctx, opc: int) -> Instruction:
    mnem = "movapd" if ctx.sse_prefix() == 0x66 else "movaps"
    reg, rm = _modrm(cur, ctx, 16, reg_is_xmm=True, rm_is_xmm=True)
    return Instruction(mnem, (reg, rm) if opc == 0x28 else (rm, reg))


def _h0f_movlhpd(cur: _Cursor, ctx: _Ctx, opc: int) -> Instruction:
    if ctx.sse_prefix() != 0x66:
        return _h0f_sse_table(cur, ctx, opc)
    mnem = "movlpd" if opc in (0x12, 0x13) else "movhpd"
    reg, rm = _modrm(cur, ctx, 8, reg_is_xmm=True, rm_is_xmm=True)
    return Instruction(mnem, (reg, rm) if opc in (0x12, 0x16) else (rm, reg))


def _h0f_comis(cur: _Cursor, ctx: _Ctx, opc: int) -> Instruction:
    prefix = ctx.sse_prefix()
    mnem = ("u" if opc == 0x2E else "") + ("comisd" if prefix == 0x66 else "comiss")
    width = 8 if prefix == 0x66 else 4
    reg, rm = _modrm(cur, ctx, width, reg_is_xmm=True, rm_is_xmm=True)
    return Instruction(mnem, (reg, rm))


def _h0f_cvtsi2(cur: _Cursor, ctx: _Ctx, opc: int) -> Instruction:
    mnem = "cvtsi2sd" if ctx.sse_prefix() == 0xF2 else "cvtsi2ss"
    size = 8 if ctx.w else 4
    reg, rm = _modrm(cur, ctx, size, reg_is_xmm=True)
    return Instruction(mnem, (reg, rm))


def _h0f_cvt2si(cur: _Cursor, ctx: _Ctx, opc: int) -> Instruction:
    sd = ctx.sse_prefix() == 0xF2
    mnem = ("cvtt" if opc == 0x2C else "cvt") + ("sd2si" if sd else "ss2si")
    size = 8 if ctx.w else 4
    reg, rm = _modrm(cur, ctx, 8 if sd else 4, rm_is_xmm=True, reg_size=size)
    return Instruction(mnem, (reg, rm))


def _h0f_cvt_ss_sd(cur: _Cursor, ctx: _Ctx, opc: int) -> Instruction:
    prefix = ctx.sse_prefix()
    mnem = "cvtsd2ss" if prefix == 0xF2 else "cvtss2sd"
    width = 8 if prefix == 0xF2 else 4
    reg, rm = _modrm(cur, ctx, width, reg_is_xmm=True, rm_is_xmm=True)
    return Instruction(mnem, (reg, rm))


def _h0f_movd_to_xmm(cur: _Cursor, ctx: _Ctx, opc: int) -> Instruction:
    mnem = "movq" if ctx.w else "movd"
    reg, rm = _modrm(cur, ctx, 8 if ctx.w else 4, reg_is_xmm=True)
    return Instruction(mnem, (reg, rm))


def _h0f_movd_from_xmm(cur: _Cursor, ctx: _Ctx, opc: int) -> Instruction:
    if ctx.sse_prefix() == 0xF3:
        reg, rm = _modrm(cur, ctx, 8, reg_is_xmm=True, rm_is_xmm=True)
        return Instruction("movq", (reg, rm))
    mnem = "movq" if ctx.w else "movd"
    reg, rm = _modrm(cur, ctx, 8 if ctx.w else 4, reg_is_xmm=True)
    return Instruction(mnem, (rm, reg))


def _h0f_movq_store(cur: _Cursor, ctx: _Ctx, opc: int) -> Instruction:
    reg, rm = _modrm(cur, ctx, 8, reg_is_xmm=True, rm_is_xmm=True)
    return Instruction("movq", (rm, reg))


def _h0f_shufpd(cur: _Cursor, ctx: _Ctx, opc: int) -> Instruction:
    if ctx.sse_prefix() != 0x66:
        return _h0f_sse_table(cur, ctx, opc)
    reg, rm = _modrm(cur, ctx, 16, reg_is_xmm=True, rm_is_xmm=True)
    return Instruction("shufpd", (reg, rm, Imm(cur.imm(1, signed=False), 1)))


def _h0f_pshufd(cur: _Cursor, ctx: _Ctx, opc: int) -> Instruction:
    if ctx.sse_prefix() != 0x66:
        return _h0f_sse_table(cur, ctx, opc)
    reg, rm = _modrm(cur, ctx, 16, reg_is_xmm=True, rm_is_xmm=True)
    return Instruction("pshufd", (reg, rm, Imm(cur.imm(1, signed=False), 1)))


def _h0f_sse_table(cur: _Cursor, ctx: _Ctx, opc: int) -> Instruction:
    """Prefix-dependent packed/scalar arithmetic from the ISA tables."""
    table = _SSE_0F_BY_PREFIX.get(ctx.sse_prefix(), {})
    mnem = table.get(opc)
    if mnem is None:
        raise DecodeError(f"unknown 0F opcode {opc:#04x} at {cur.addr:#x}")
    width = isa.SSE_SCALAR_WIDTH.get(mnem, 16)
    reg, rm = _modrm(cur, ctx, width, reg_is_xmm=True, rm_is_xmm=True)
    return Instruction(mnem, (reg, rm))


# --------------------------------------------------------------------------
# dispatch tables, built once at import
# --------------------------------------------------------------------------

_DISPATCH: list[_Handler | None] = [None] * 256
_DISPATCH_0F: list[_Handler | None] = [None] * 256


def _build_dispatch() -> None:
    d = _DISPATCH
    d[0xC3] = _op_simple("ret")
    d[0x90] = _h_nop_90
    d[0xC9] = _op_simple("leave")
    d[0xCC] = _op_simple("int3")
    d[0x99] = _h_cqo
    for opc in range(0x50, 0x58):
        d[opc] = _h_push_reg
    for opc in range(0x58, 0x60):
        d[opc] = _h_pop_reg
    d[0x68] = _h_push_imm32
    d[0x6A] = _h_push_imm8
    d[0xE8] = _h_call_rel32
    d[0xE9] = _h_jmp_rel32
    d[0xEB] = _h_jmp_rel8
    for opc in range(0x70, 0x80):
        d[opc] = _h_jcc_rel8
    for base in (0x00, 0x08, 0x10, 0x18, 0x20, 0x28, 0x30, 0x38):
        for low in range(6):
            d[base | low] = _h_alu
    for opc in (0x80, 0x81, 0x83):
        d[opc] = _h_alu_imm
    d[0x84] = d[0x85] = _h_test
    d[0x88] = d[0x89] = _h_mov_store
    d[0x8A] = d[0x8B] = _h_mov_load
    d[0x8D] = _h_lea
    d[0x63] = _h_movsxd
    for opc in range(0xB8, 0xC0):
        d[opc] = _h_mov_imm_reg
    for opc in range(0xB0, 0xB8):
        d[opc] = _h_mov_imm8_reg
    d[0xC6] = d[0xC7] = _h_mov_imm_rm
    for opc in (0xC0, 0xC1, 0xD0, 0xD1, 0xD2, 0xD3):
        d[opc] = _h_shift
    d[0xF6] = d[0xF7] = _h_unary_group
    d[0xFE] = d[0xFF] = _h_incdec_group
    d[0x69] = d[0x6B] = _h_imul_imm
    d[0x0F] = _h_0f_escape

    e = _DISPATCH_0F
    # SSE-table opcodes first; specific handlers below override overlaps
    # (e.g. 5A is both cvtsd2ss in SSE_SD and the dedicated cvt handler)
    for table in _SSE_0F_BY_PREFIX.values():
        for opc in table:
            e[opc] = _h0f_sse_table
    e[0x0B] = _op_simple("ud2")
    e[0x05] = _op_simple("syscall")
    for opc in range(0x80, 0x90):
        e[opc] = _h0f_jcc_rel32
    for opc in range(0x40, 0x50):
        e[opc] = _h0f_cmov
    for opc in range(0x90, 0xA0):
        e[opc] = _h0f_setcc
    e[0xAF] = _h0f_imul
    for opc in (0xB6, 0xB7, 0xBE, 0xBF):
        e[opc] = _h0f_movzx_movsx
    e[0x1F] = _h0f_long_nop
    e[0x10] = e[0x11] = _h0f_movups
    e[0x28] = e[0x29] = _h0f_movaps
    for opc in (0x12, 0x13, 0x16, 0x17):
        e[opc] = _h0f_movlhpd
    e[0x2E] = e[0x2F] = _h0f_comis
    e[0x2A] = _h0f_cvtsi2
    e[0x2C] = e[0x2D] = _h0f_cvt2si
    e[0x5A] = _h0f_cvt_ss_sd
    e[0x6E] = _h0f_movd_to_xmm
    e[0x7E] = _h0f_movd_from_xmm
    e[0xD6] = _h0f_movq_store
    e[0xC6] = _h0f_shufpd
    e[0x70] = _h0f_pshufd


_build_dispatch()


def decode_block(code: bytes, addr: int, length: int, *, base_addr: int = 0) -> list[Instruction]:
    """Decode ``length`` bytes located at virtual address ``addr``.

    ``base_addr`` maps virtual addresses into ``code`` offsets:
    ``offset = addr - base_addr``.
    """
    out: list[Instruction] = []
    pc = addr
    end = addr + length
    while pc < end:
        ins = decode_one(code, pc - base_addr, pc)
        out.append(ins)
        pc += ins.length
    return out
