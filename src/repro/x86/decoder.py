"""x86-64 machine-code decoder (the offline substitute for capstone).

``decode_one(code, offset, addr)`` decodes a single instruction;
``decode_block`` decodes a byte range into a list.  The decoder accepts a
superset of what :mod:`repro.x86.encoder` emits (rel8 and rel32 branches,
both ModRM directions, redundant REX prefixes) because DBrew and the lifter
must consume compiler output, not just our own.

Branch operands are normalized to *absolute* target addresses, and
RIP-relative memory displacements to absolute addresses, so downstream
passes never deal with encoding-relative offsets.
"""

from __future__ import annotations

from repro.errors import DecodeError
from repro.x86 import isa
from repro.x86.instr import Imm, Instruction, Mem, Operand, Reg

_SEG_BY_PREFIX = {0x64: "fs", 0x65: "gs"}

# Reverse maps from the ISA tables.
_ALU_BY_BASE = {base: (m, digit) for m, (base, digit) in isa.ALU_GROUP.items()}
_ALU_BY_DIGIT = {digit: m for m, (_b, digit) in isa.ALU_GROUP.items()}
_SHIFT_BY_DIGIT = {d: m for m, d in isa.SHIFT_GROUP.items()}
_UNARY_BY_DIGIT = {d: m for m, d in isa.UNARY_GROUP.items()}
_SSE_0F_BY_PREFIX: dict[int | None, dict[int, str]] = {
    0xF2: {v: k for k, v in isa.SSE_SD.items()},
    0xF3: {v: k for k, v in isa.SSE_SS.items()},
    0x66: {v: k for k, v in (isa.SSE_PD | isa.SSE_PI).items()},
    None: {v: k for k, v in isa.SSE_PS.items()},
}


class _Cursor:
    def __init__(self, code: bytes, offset: int, addr: int) -> None:
        self.code = code
        self.pos = offset
        self.start = offset
        self.addr = addr

    def u8(self) -> int:
        if self.pos >= len(self.code):
            raise DecodeError(f"truncated instruction at {self.addr:#x}")
        b = self.code[self.pos]
        self.pos += 1
        return b

    def peek(self) -> int:
        if self.pos >= len(self.code):
            raise DecodeError(f"truncated instruction at {self.addr:#x}")
        return self.code[self.pos]

    def imm(self, size: int, signed: bool = True) -> int:
        if self.pos + size > len(self.code):
            raise DecodeError(f"truncated immediate at {self.addr:#x}")
        raw = self.code[self.pos : self.pos + size]
        self.pos += size
        return int.from_bytes(raw, "little", signed=signed)

    @property
    def length(self) -> int:
        return self.pos - self.start

    def end_addr(self) -> int:
        return self.addr + self.length


class _Ctx:
    """Prefix state for one instruction."""

    def __init__(self) -> None:
        self.rex = 0
        self.has_rex = False
        self.op66 = False
        self.rep_f2 = False
        self.rep_f3 = False
        self.seg = ""

    @property
    def w(self) -> bool:
        return bool(self.rex & 8)

    @property
    def r(self) -> int:
        return (self.rex >> 2) & 1

    @property
    def x(self) -> int:
        return (self.rex >> 1) & 1

    @property
    def b(self) -> int:
        return self.rex & 1

    def int_size(self, byte_op: bool) -> int:
        if byte_op:
            return 1
        if self.w:
            return 8
        if self.op66:
            return 2
        return 4

    def sse_prefix(self) -> int | None:
        if self.rep_f2:
            return 0xF2
        if self.rep_f3:
            return 0xF3
        if self.op66:
            return 0x66
        return None


def _gp(ctx: _Ctx, bits3: int, ext: int, size: int) -> Reg:
    index = bits3 | (ext << 3)
    if size == 1 and not ctx.has_rex and 4 <= index < 8:
        # without REX, encodings 4..7 are ah/ch/dh/bh
        return Reg("gp", index - 4, 1, high8=True)
    return Reg("gp", index, size, False)


def _modrm(cur: _Cursor, ctx: _Ctx, size: int, *, reg_is_xmm: bool = False,
           rm_is_xmm: bool = False, rm_size: int | None = None,
           reg_size: int | None = None) -> tuple[Reg, Operand]:
    """Decode ModRM (+SIB/displacement); returns (reg operand, r/m operand)."""
    modrm = cur.u8()
    mod = modrm >> 6
    reg_bits = (modrm >> 3) & 7
    rm_bits = modrm & 7
    if reg_is_xmm:
        reg: Reg = Reg("xmm", reg_bits | (ctx.r << 3), 16)
    else:
        reg = _gp(ctx, reg_bits, ctx.r, reg_size or size)
    msize = rm_size if rm_size is not None else size
    if mod == 3:
        if rm_is_xmm:
            return reg, Reg("xmm", rm_bits | (ctx.b << 3), 16)
        return reg, _gp(ctx, rm_bits, ctx.b, msize)

    base: Reg | None = None
    index: Reg | None = None
    scale = 1
    disp = 0
    riprel = False
    if rm_bits == 4:  # SIB
        sib = cur.u8()
        scale = 1 << (sib >> 6)
        idx_bits = (sib >> 3) & 7
        base_bits = sib & 7
        idx = idx_bits | (ctx.x << 3)
        if idx != 4:  # index 100b (rsp position, no REX.X) means "no index"
            index = Reg("gp", idx, 8)
        if base_bits == 5 and mod == 0:
            disp = cur.imm(4)
        else:
            base = Reg("gp", base_bits | (ctx.b << 3), 8)
    elif rm_bits == 5 and mod == 0:
        riprel = True
        disp = cur.imm(4)
    else:
        base = Reg("gp", rm_bits | (ctx.b << 3), 8)

    if mod == 1:
        disp = cur.imm(1)
    elif mod == 2:
        disp = cur.imm(4)
    mem = Mem(size=msize, base=base, index=index, scale=scale,
              disp=disp, riprel=riprel, seg=ctx.seg)
    return reg, mem


def _finish_riprel(mem: Operand, end_addr: int) -> Operand:
    """Convert a RIP-relative displacement to the absolute target address."""
    if isinstance(mem, Mem) and mem.riprel:
        return Mem(size=mem.size, disp=end_addr + mem.disp, riprel=True, seg=mem.seg)
    return mem


def decode_one(code: bytes, offset: int = 0, addr: int = 0) -> Instruction:
    """Decode the instruction at ``code[offset:]``, located at ``addr``."""
    cur = _Cursor(code, offset, addr)
    ctx = _Ctx()

    # prefixes
    while True:
        b = cur.peek()
        if b == 0x66:
            ctx.op66 = True
        elif b == 0xF2:
            ctx.rep_f2 = True
        elif b == 0xF3:
            ctx.rep_f3 = True
        elif b in _SEG_BY_PREFIX:
            ctx.seg = _SEG_BY_PREFIX[b]
        elif 0x40 <= b <= 0x4F:
            ctx.rex = b & 0xF
            ctx.has_rex = True
            cur.u8()
            break  # REX must be the last prefix
        else:
            break
        cur.u8()

    opc = cur.u8()
    ins = _decode_opcode(cur, ctx, opc)
    raw = code[cur.start : cur.pos]
    ops = tuple(_finish_riprel(o, cur.end_addr()) for o in ins.operands)
    return Instruction(ins.mnemonic, ops, addr=addr, length=cur.length, raw=raw)


def _rel_target(cur: _Cursor, size: int) -> Imm:
    rel = cur.imm(size)
    return Imm(cur.end_addr() + rel, 8)


def _decode_opcode(cur: _Cursor, ctx: _Ctx, opc: int) -> Instruction:
    # --- one-byte opcodes -------------------------------------------------
    if opc in (0xC3,):
        return Instruction("ret")
    if opc == 0x90 and not ctx.rep_f3:
        return Instruction("nop")
    if opc == 0xC9:
        return Instruction("leave")
    if opc == 0xCC:
        return Instruction("int3")
    if opc == 0x99:
        return Instruction("cqo" if ctx.w else "cdq")
    if 0x50 <= opc <= 0x57:
        return Instruction("push", (Reg("gp", (opc - 0x50) | (ctx.b << 3), 8),))
    if 0x58 <= opc <= 0x5F:
        return Instruction("pop", (Reg("gp", (opc - 0x58) | (ctx.b << 3), 8),))
    if opc == 0x68:
        return Instruction("push", (Imm(cur.imm(4), 4),))
    if opc == 0x6A:
        return Instruction("push", (Imm(cur.imm(1), 1),))
    if opc == 0xE8:
        return Instruction("call", (_rel_target(cur, 4),))
    if opc == 0xE9:
        return Instruction("jmp", (_rel_target(cur, 4),))
    if opc == 0xEB:
        return Instruction("jmp", (_rel_target(cur, 1),))
    if 0x70 <= opc <= 0x7F:
        return Instruction("j" + isa.CC_NAMES[opc - 0x70], (_rel_target(cur, 1),))

    base = opc & 0xF8
    low = opc & 7
    if base in (0x00, 0x08, 0x10, 0x18, 0x20, 0x28, 0x30, 0x38) and low < 6:
        mnem, _digit = _ALU_BY_BASE[base]
        byte_op = (low & 1) == 0
        size = ctx.int_size(byte_op)
        if low in (0, 1):  # r/m, r
            reg, rm = _modrm(cur, ctx, size)
            return Instruction(mnem, (rm, reg))
        if low in (2, 3):  # r, r/m
            reg, rm = _modrm(cur, ctx, size)
            return Instruction(mnem, (reg, rm))
        # 4/5: al/ax/eax/rax, imm
        size = ctx.int_size(low == 4)
        acc = Reg("gp", 0, size)
        return Instruction(mnem, (acc, Imm(cur.imm(1 if low == 4 else min(size, 4)),
                                           1 if low == 4 else min(size, 4))))
    if opc in (0x80, 0x81, 0x83):
        size = ctx.int_size(opc == 0x80)
        reg, rm = _modrm(cur, ctx, size)
        digit = (reg.index if not reg.high8 else reg.index + 4) & 7
        mnem = _ALU_BY_DIGIT[digit]
        if opc == 0x80 or opc == 0x83:
            imm = Imm(cur.imm(1), 1)
        else:
            imm = Imm(cur.imm(min(size, 4)), min(size, 4))
        return Instruction(mnem, (rm, imm))
    if opc in (0x84, 0x85):
        size = ctx.int_size(opc == 0x84)
        reg, rm = _modrm(cur, ctx, size)
        return Instruction("test", (rm, reg))
    if opc in (0x88, 0x89):
        size = ctx.int_size(opc == 0x88)
        reg, rm = _modrm(cur, ctx, size)
        return Instruction("mov", (rm, reg))
    if opc in (0x8A, 0x8B):
        size = ctx.int_size(opc == 0x8A)
        reg, rm = _modrm(cur, ctx, size)
        return Instruction("mov", (reg, rm))
    if opc == 0x8D:
        size = ctx.int_size(False)
        reg, rm = _modrm(cur, ctx, size, rm_size=size)
        if not isinstance(rm, Mem):
            raise DecodeError("lea with register r/m")
        return Instruction("lea", (reg, rm))
    if opc == 0x63:
        reg, rm = _modrm(cur, ctx, 8, rm_size=4)
        return Instruction("movsxd", (reg, rm))
    if 0xB8 <= opc <= 0xBF:
        size = ctx.int_size(False)
        reg = Reg("gp", (opc - 0xB8) | (ctx.b << 3), size)
        if size == 8:
            return Instruction("mov", (reg, Imm(cur.imm(8), 8)))
        return Instruction("mov", (reg, Imm(cur.imm(min(size, 4)), min(size, 4))))
    if 0xB0 <= opc <= 0xB7:
        reg = _gp(ctx, opc - 0xB0, ctx.b, 1)
        return Instruction("mov", (reg, Imm(cur.imm(1), 1)))
    if opc in (0xC6, 0xC7):
        size = ctx.int_size(opc == 0xC6)
        reg, rm = _modrm(cur, ctx, size)
        isize = 1 if opc == 0xC6 else min(size, 4)
        return Instruction("mov", (rm, Imm(cur.imm(isize), isize)))
    if opc in (0xC0, 0xC1, 0xD0, 0xD1, 0xD2, 0xD3):
        size = ctx.int_size(opc in (0xC0, 0xD0, 0xD2))
        reg, rm = _modrm(cur, ctx, size)
        digit = (reg.index if not reg.high8 else reg.index + 4) & 7
        mnem = _SHIFT_BY_DIGIT.get(digit)
        if mnem is None:
            raise DecodeError(f"unsupported shift /{digit}")
        if opc in (0xC0, 0xC1):
            return Instruction(mnem, (rm, Imm(cur.imm(1, signed=False), 1)))
        if opc in (0xD0, 0xD1):
            return Instruction(mnem, (rm, Imm(1, 1)))
        return Instruction(mnem, (rm, Reg("gp", 1, 1)))
    if opc in (0xF6, 0xF7):
        size = ctx.int_size(opc == 0xF6)
        reg, rm = _modrm(cur, ctx, size)
        digit = (reg.index if not reg.high8 else reg.index + 4) & 7
        if digit in (0, 1):
            isize = 1 if opc == 0xF6 else min(size, 4)
            return Instruction("test", (rm, Imm(cur.imm(isize), isize)))
        mnem = _UNARY_BY_DIGIT[digit]
        if mnem == "imul1":
            mnem = "imul"  # one-operand widening form; distinguished by arity
        return Instruction(mnem, (rm,))
    if opc in (0xFE, 0xFF):
        size = ctx.int_size(opc == 0xFE)
        reg, rm = _modrm(cur, ctx, size)
        digit = (reg.index if not reg.high8 else reg.index + 4) & 7
        if digit == 0:
            return Instruction("inc", (rm,))
        if digit == 1:
            return Instruction("dec", (rm,))
        if opc == 0xFF and digit == 6:
            return Instruction("push", (rm,))
        if opc == 0xFF and digit == 4:
            return Instruction("jmp", (rm,))  # indirect; rejected by consumers
        if opc == 0xFF and digit == 2:
            return Instruction("call", (rm,))
        raise DecodeError(f"unsupported FF /{digit}")
    if opc in (0x69, 0x6B):
        size = ctx.int_size(False)
        reg, rm = _modrm(cur, ctx, size)
        if opc == 0x6B:
            imm = Imm(cur.imm(1), 1)
        else:
            imm = Imm(cur.imm(min(size, 4)), min(size, 4))
        return Instruction("imul", (reg, rm, imm))

    # --- 0F escape --------------------------------------------------------
    if opc == 0x0F:
        return _decode_0f(cur, ctx)

    raise DecodeError(f"unknown opcode {opc:#04x} at {cur.addr:#x}")


def _decode_0f(cur: _Cursor, ctx: _Ctx) -> Instruction:
    opc = cur.u8()
    if opc == 0x0B:
        return Instruction("ud2")
    if opc == 0x05:
        return Instruction("syscall")
    if 0x80 <= opc <= 0x8F:
        return Instruction("j" + isa.CC_NAMES[opc - 0x80], (_rel_target(cur, 4),))
    if 0x40 <= opc <= 0x4F:
        size = ctx.int_size(False)
        reg, rm = _modrm(cur, ctx, size)
        return Instruction("cmov" + isa.CC_NAMES[opc - 0x40], (reg, rm))
    if 0x90 <= opc <= 0x9F:
        _reg, rm = _modrm(cur, ctx, 1)
        return Instruction("set" + isa.CC_NAMES[opc - 0x90], (rm,))
    if opc == 0xAF:
        size = ctx.int_size(False)
        reg, rm = _modrm(cur, ctx, size)
        return Instruction("imul", (reg, rm))
    if opc in (0xB6, 0xB7, 0xBE, 0xBF):
        dsize = ctx.int_size(False)
        ssize = 1 if opc in (0xB6, 0xBE) else 2
        mnem = "movzx" if opc in (0xB6, 0xB7) else "movsx"
        reg, rm = _modrm(cur, ctx, dsize, rm_size=ssize)
        return Instruction(mnem, (reg, rm))
    if opc == 0x1F:
        _reg, _rm = _modrm(cur, ctx, ctx.int_size(False))
        return Instruction("nop")

    prefix = ctx.sse_prefix()

    if opc == 0x10 or opc == 0x11:
        mnem = {0xF2: "movsd", 0xF3: "movss", 0x66: "movupd", None: "movups"}[prefix]
        width = {0xF2: 8, 0xF3: 4, 0x66: 16, None: 16}[prefix]
        reg, rm = _modrm(cur, ctx, width, reg_is_xmm=True, rm_is_xmm=True)
        return Instruction(mnem, (reg, rm) if opc == 0x10 else (rm, reg))
    if opc in (0x28, 0x29):
        mnem = "movapd" if prefix == 0x66 else "movaps"
        reg, rm = _modrm(cur, ctx, 16, reg_is_xmm=True, rm_is_xmm=True)
        return Instruction(mnem, (reg, rm) if opc == 0x28 else (rm, reg))
    if opc in (0x12, 0x13, 0x16, 0x17) and prefix == 0x66:
        mnem = "movlpd" if opc in (0x12, 0x13) else "movhpd"
        reg, rm = _modrm(cur, ctx, 8, reg_is_xmm=True, rm_is_xmm=True)
        return Instruction(mnem, (reg, rm) if opc in (0x12, 0x16) else (rm, reg))
    if opc in (0x2E, 0x2F):
        mnem = ("u" if opc == 0x2E else "") + ("comisd" if prefix == 0x66 else "comiss")
        width = 8 if prefix == 0x66 else 4
        reg, rm = _modrm(cur, ctx, width, reg_is_xmm=True, rm_is_xmm=True)
        return Instruction(mnem, (reg, rm))
    if opc == 0x2A:
        mnem = "cvtsi2sd" if prefix == 0xF2 else "cvtsi2ss"
        size = 8 if ctx.w else 4
        reg, rm = _modrm(cur, ctx, size, reg_is_xmm=True)
        return Instruction(mnem, (reg, rm))
    if opc in (0x2C, 0x2D):
        sd = prefix == 0xF2
        mnem = ("cvtt" if opc == 0x2C else "cvt") + ("sd2si" if sd else "ss2si")
        size = 8 if ctx.w else 4
        reg, rm = _modrm(cur, ctx, 8 if sd else 4, rm_is_xmm=True, reg_size=size)
        return Instruction(mnem, (reg, rm))
    if opc == 0x5A:
        mnem = "cvtsd2ss" if prefix == 0xF2 else "cvtss2sd"
        width = 8 if prefix == 0xF2 else 4
        reg, rm = _modrm(cur, ctx, width, reg_is_xmm=True, rm_is_xmm=True)
        return Instruction(mnem, (reg, rm))
    if opc == 0x6E:
        mnem = "movq" if ctx.w else "movd"
        reg, rm = _modrm(cur, ctx, 8 if ctx.w else 4, reg_is_xmm=True)
        return Instruction(mnem, (reg, rm))
    if opc == 0x7E:
        if prefix == 0xF3:
            reg, rm = _modrm(cur, ctx, 8, reg_is_xmm=True, rm_is_xmm=True)
            return Instruction("movq", (reg, rm))
        mnem = "movq" if ctx.w else "movd"
        reg, rm = _modrm(cur, ctx, 8 if ctx.w else 4, reg_is_xmm=True)
        return Instruction(mnem, (rm, reg))
    if opc == 0xD6:
        reg, rm = _modrm(cur, ctx, 8, reg_is_xmm=True, rm_is_xmm=True)
        return Instruction("movq", (rm, reg))
    if opc == 0xC6 and prefix == 0x66:
        reg, rm = _modrm(cur, ctx, 16, reg_is_xmm=True, rm_is_xmm=True)
        return Instruction("shufpd", (reg, rm, Imm(cur.imm(1, signed=False), 1)))
    if opc == 0x70 and prefix == 0x66:
        reg, rm = _modrm(cur, ctx, 16, reg_is_xmm=True, rm_is_xmm=True)
        return Instruction("pshufd", (reg, rm, Imm(cur.imm(1, signed=False), 1)))

    table = _SSE_0F_BY_PREFIX.get(prefix, {})
    if opc in table:
        mnem = table[opc]
        width = isa.SSE_SCALAR_WIDTH.get(mnem, 16)
        reg, rm = _modrm(cur, ctx, width, reg_is_xmm=True, rm_is_xmm=True)
        return Instruction(mnem, (reg, rm))

    raise DecodeError(f"unknown 0F opcode {opc:#04x} at {cur.addr:#x}")


def decode_block(code: bytes, addr: int, length: int, *, base_addr: int = 0) -> list[Instruction]:
    """Decode ``length`` bytes located at virtual address ``addr``.

    ``base_addr`` maps virtual addresses into ``code`` offsets:
    ``offset = addr - base_addr``.
    """
    out: list[Instruction] = []
    pc = addr
    end = addr + length
    while pc < end:
        ins = decode_one(code, pc - base_addr, pc)
        out.append(ins)
        pc += ins.length
    return out
