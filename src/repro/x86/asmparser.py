"""Intel-syntax assembly text parser.

A development and test convenience: lets tests and examples write kernels as
readable text instead of builder calls.  Supports the same subset as the
encoder, plus ``label:`` definitions and label references as branch targets
(resolved by :func:`repro.x86.asm.assemble`).

Grammar (per line, ``;`` or ``#`` starts a comment)::

    label:
    mnemonic
    mnemonic op1
    mnemonic op1, op2[, op3]

Operands: registers by name, immediates (decimal, hex ``0x..``, negative),
and memory ``[base + index*scale + disp]`` with an optional size prefix
``byte/word/dword/qword/xmmword ptr`` and optional ``fs:``/``gs:`` segment.
"""

from __future__ import annotations

import re

from repro.errors import AsmSyntaxError
from repro.x86 import isa, registers
from repro.x86.asm import Item, Label, LabelRef
from repro.x86.instr import Imm, Instruction, Mem, Operand, Reg

_SIZES = {"byte": 1, "word": 2, "dword": 4, "qword": 8, "xmmword": 16}

_MEM_RE = re.compile(r"^(?:(?P<size>byte|word|dword|qword|xmmword)\s+ptr\s+)?"
                     r"(?:(?P<seg>fs|gs):)?\[(?P<body>[^\]]+)\]$")


def _parse_reg(tok: str) -> Reg | None:
    gp = registers.lookup_gp(tok)
    if gp is not None:
        index, size, high8 = gp
        return Reg("gp", index, size, high8)
    xi = registers.lookup_xmm(tok)
    if xi is not None:
        return Reg("xmm", xi, 16)
    return None


def _parse_int(tok: str) -> int | None:
    tok = tok.strip()
    neg = tok.startswith("-")
    if neg:
        tok = tok[1:].strip()
    try:
        val = int(tok, 0)
    except ValueError:
        return None
    return -val if neg else val


def _parse_mem(match: re.Match[str], default_size: int | None) -> Mem:
    size = _SIZES[match["size"]] if match["size"] else (default_size or 8)
    seg = match["seg"] or ""
    body = match["body"].replace(" ", "")
    # normalize: split into +/- terms
    terms: list[str] = []
    current = ""
    for ch in body:
        if ch in "+-" and current:
            terms.append(current)
            current = ch if ch == "-" else ""
        elif ch == "-" and not current:
            current = "-"
        elif ch != "+":
            current += ch
    if current:
        terms.append(current)

    base: Reg | None = None
    index: Reg | None = None
    scale = 1
    disp = 0
    riprel = False
    for term in terms:
        neg = term.startswith("-")
        t = term[1:] if neg else term
        if "*" in t:
            a, b = t.split("*", 1)
            if _parse_int(a) is not None:
                sc, rn = _parse_int(a), b
            else:
                sc, rn = _parse_int(b), a
            reg = _parse_reg(rn)
            if reg is None or sc is None or neg:
                raise AsmSyntaxError(f"bad scaled index {term!r}")
            index, scale = reg, sc
            continue
        reg = _parse_reg(t)
        if reg is not None:
            if neg:
                raise AsmSyntaxError(f"cannot negate register {term!r}")
            if t == "rip":
                raise AsmSyntaxError("write rip-relative as [rip + 0xADDR]")
            if base is None:
                base = reg
            elif index is None:
                index = reg
            else:
                raise AsmSyntaxError(f"too many registers in {match.group(0)!r}")
            continue
        if t == "rip":
            riprel = True
            continue
        val = _parse_int(term)
        if val is None:
            raise AsmSyntaxError(f"bad address term {term!r}")
        disp += val
    if riprel:
        if base is not None or index is not None:
            raise AsmSyntaxError("rip-relative takes no other registers")
        return Mem(size=size, disp=disp, riprel=True, seg=seg)
    # "rip" parsed as base? lookup_gp doesn't know rip, so we are fine.
    return Mem(size=size, base=base, index=index, scale=scale, disp=disp, seg=seg)


def _split_operands(text: str) -> list[str]:
    out: list[str] = []
    depth = 0
    current = ""
    for ch in text:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        if ch == "," and depth == 0:
            out.append(current.strip())
            current = ""
        else:
            current += ch
    if current.strip():
        out.append(current.strip())
    return out


def _operand_default_size(mnemonic: str, parsed: list[Operand | LabelRef]) -> int | None:
    for op in parsed:
        if isinstance(op, Reg) and op.kind == "gp":
            return op.size
        if isinstance(op, Reg) and op.kind == "xmm":
            return isa.SSE_SCALAR_WIDTH.get(mnemonic, 16)
    return None


def parse_line(line: str) -> Item | None:
    """Parse one line; returns an Instruction, a Label, or None for blanks."""
    line = re.split(r"[;#]", line, 1)[0].strip()
    if not line:
        return None
    if line.endswith(":") and " " not in line:
        return Label(line[:-1])
    parts = line.split(None, 1)
    mnemonic = parts[0].lower()
    cc = isa.cc_of(mnemonic)
    if cc is not None:
        for prefix in ("cmov", "set", "j"):
            if mnemonic.startswith(prefix) and mnemonic != "jmp":
                mnemonic = prefix + cc
                break
    raw_ops = _split_operands(parts[1]) if len(parts) > 1 else []

    # first pass: parse everything except memory (needs default size)
    staged: list[tuple[str, re.Match[str] | None]] = []
    parsed: list[Operand | LabelRef] = []
    for tok in raw_ops:
        m = _MEM_RE.match(tok)
        if m:
            staged.append((tok, m))
            parsed.append(Imm(0))  # placeholder
            continue
        staged.append((tok, None))
        reg = _parse_reg(tok.lower())
        if reg is not None:
            parsed.append(reg)
            continue
        val = _parse_int(tok)
        if val is not None:
            parsed.append(Imm(val))
            continue
        if re.fullmatch(r"\.?\w+", tok):
            parsed.append(LabelRef(tok))
            continue
        raise AsmSyntaxError(f"cannot parse operand {tok!r} in {line!r}")

    default = _operand_default_size(mnemonic, [p for p, (_t, m) in zip(parsed, staged) if m is None])
    final: list[Operand | LabelRef] = []
    for p, (_tok, m) in zip(parsed, staged):
        if m is not None:
            final.append(_parse_mem(m, default))
        else:
            final.append(p)
    return Instruction(mnemonic, tuple(final))


def parse_asm(text: str) -> list[Item]:
    """Parse a multi-line assembly listing into assembler items."""
    items: list[Item] = []
    for lineno, line in enumerate(text.splitlines(), 1):
        try:
            item = parse_line(line)
        except AsmSyntaxError as exc:
            raise AsmSyntaxError(f"line {lineno}: {exc}") from None
        if item is not None:
            items.append(item)
    return items
