"""Label-aware assembler on top of the raw instruction encoder.

Code generators (MCC's back-end, DBrew's encoder, MiniLLVM's JIT) emit a
stream of :class:`Item` s — instructions whose branch operands may reference
:class:`Label` s — and :func:`assemble` resolves labels to absolute addresses
with iterative branch relaxation (rel8 vs rel32 changes lengths, which moves
labels, which may change widths again; iteration reaches a fixed point
because lengths only shrink monotonically from the rel32 starting guess).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EncodeError
from repro.x86 import isa
from repro.x86.encoder import encode
from repro.x86.instr import Imm, Instruction, Mem, Operand, Reg


@dataclass(frozen=True)
class Label:
    """A position marker in an assembly stream."""

    name: str


@dataclass(frozen=True)
class LabelRef:
    """A branch/riprel operand naming a label that is resolved at assembly."""

    name: str


Item = Instruction | Label


def _resolve_operand(op: Operand | LabelRef, labels: dict[str, int]) -> Operand:
    if isinstance(op, LabelRef):
        if op.name not in labels:
            raise EncodeError(f"undefined label {op.name!r}")
        return Imm(labels[op.name], 8)
    if isinstance(op, Mem) and op.riprel and isinstance(op.disp, LabelRef):  # type: ignore[unreachable]
        raise EncodeError("riprel label displacement must be pre-resolved")
    return op


def _resolve(ins: Instruction, labels: dict[str, int]) -> Instruction:
    if not any(isinstance(o, LabelRef) for o in ins.operands):
        return ins
    ops = tuple(_resolve_operand(o, labels) for o in ins.operands)
    return Instruction(ins.mnemonic, ops)


def assemble(items: list[Item], base: int = 0) -> tuple[bytes, list[Instruction]]:
    """Assemble an item stream at ``base``; returns (code, placed instrs)."""
    code, placed, _labels = assemble_full(items, base)
    return code, placed


def assemble_full(
    items: list[Item], base: int = 0
) -> tuple[bytes, list[Instruction], dict[str, int]]:
    """Assemble an item stream at ``base``.

    Returns the machine code bytes, the placed instruction list (with
    ``addr``/``length``/``raw`` filled in), and the resolved label
    addresses.  Duplicate label names raise.
    """
    instrs = [it for it in items if isinstance(it, Instruction)]
    # Initial guess: every branch is rel32-sized.  Compute lengths at a fake
    # far-away address so rel8 never triggers, then relax.
    labels: dict[str, int] = {}
    lengths = []
    for it in items:
        if isinstance(it, Label):
            if it.name in labels:
                raise EncodeError(f"duplicate label {it.name!r}")
            labels[it.name] = 0
    guess_labels = {n: base + (1 << 30) for n in labels}
    for ins in instrs:
        lengths.append(len(encode(_resolve(ins, guess_labels), 0)))

    for _ in range(32):
        # place labels and instructions with current length estimates
        pc = base
        idx = 0
        addrs: list[int] = []
        for it in items:
            if isinstance(it, Label):
                labels[it.name] = pc
            else:
                addrs.append(pc)
                pc += lengths[idx]
                idx += 1
        new_lengths = [
            len(encode(_resolve(ins, labels), a)) for ins, a in zip(instrs, addrs)
        ]
        if new_lengths == lengths:
            break
        lengths = new_lengths
    else:
        raise EncodeError("assembler failed to reach a fixed point")

    out = bytearray()
    placed: list[Instruction] = []
    pc = base
    for it in items:
        if isinstance(it, Label):
            labels[it.name] = pc
            continue
        resolved = _resolve(it, labels)
        raw = encode(resolved, pc)
        placed.append(
            Instruction(
                resolved.mnemonic, resolved.operands,
                addr=pc, length=len(raw), raw=raw,
            )
        )
        out += raw
        pc += len(raw)
    return bytes(out), placed, labels


def branch_targets(instrs: list[Instruction]) -> set[int]:
    """Absolute targets of all direct branches in a placed instruction list."""
    targets: set[int] = set()
    for ins in instrs:
        if isa.control_class(ins.mnemonic) in ("jmp", "jcc", "call"):
            (op,) = ins.operands
            if isinstance(op, Imm):
                targets.add(op.value)
    return targets
