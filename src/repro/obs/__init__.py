"""Pipeline observability: span tracing, metrics registry, trace export.

Quick start::

    from repro.obs import TRACER, write_chrome_trace

    TRACER.enable()
    ...  # run the pipeline
    TRACER.disable()
    write_chrome_trace("trace.json")          # about://tracing-loadable
    python -m repro.obs.report trace.json     # per-stage breakdown
"""

from repro.obs import metrics
from repro.obs.export import (metrics_to_json, trace_to_chrome,
                              write_chrome_trace, write_metrics)
from repro.obs.metrics import (Counter, CounterFamily, Gauge, Histogram,
                               MetricsRegistry, REGISTRY)
from repro.obs.trace import Span, Tracer, TRACER

__all__ = [
    "Counter",
    "CounterFamily",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "Span",
    "TRACER",
    "Tracer",
    "metrics",
    "metrics_to_json",
    "trace_to_chrome",
    "write_chrome_trace",
    "write_metrics",
]
