"""Typed metrics registry: counters, gauges and fixed-bucket histograms.

Every subsystem used to keep its own ad-hoc stats object (``GuardStats``,
``CacheStats``, tier EWMAs ...) with its own reset semantics.  The registry
unifies them: metrics are created once (get-or-create by name), read and
reset through one authoritative ``snapshot()``/``reset()`` pair, and the
legacy stats attributes become thin views over registry-owned objects.

Design constraints:

* Increments on the hot path must stay cheap — a ``Counter`` bump is one
  attribute addition under the GIL, no lock.
* ``CounterFamily`` subclasses ``dict`` so code and tests that treat the
  old dict-valued stats fields as dicts (indexing, ``.values()``,
  ``dict(...)``) keep working unchanged.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Mapping

__all__ = [
    "Counter",
    "CounterFamily",
    "CounterView",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
    "snapshot",
    "reset",
]


class Counter:
    """A monotonically increasing integer (resettable to zero)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A value that can go up and down (queue depths, sizes)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def reset(self) -> None:
        self.value = 0.0

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Fixed-boundary histogram; ``observe`` is a bisect plus two adds.

    ``bounds`` are upper bucket edges; an implicit +inf bucket catches the
    overflow.  ``counts[i]`` holds observations with ``value <= bounds[i]``.
    """

    __slots__ = ("name", "bounds", "counts", "total", "sum")

    def __init__(self, name: str, bounds: Iterable[float]) -> None:
        self.name = name
        self.bounds = tuple(sorted(bounds))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket boundary")
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        self.counts[lo] += 1
        self.total += 1
        self.sum += value

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper edge of the bucket holding it."""
        if self.total == 0:
            return 0.0
        target = q * self.total
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= target:
                return self.bounds[i] if i < len(self.bounds) else float("inf")
        return float("inf")

    def reset(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0.0

    def snapshot(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "total": self.total,
            "sum": self.sum,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.total}, sum={self.sum:.6g})"


class CounterView:
    """Descriptor exposing a registry :class:`Counter` as a plain int.

    Legacy stats objects had int attributes that callers read and wrote
    (``stats.transforms += 1``).  Routing them through the registry keeps
    one authoritative snapshot/reset; this descriptor keeps the old
    attribute protocol working on top of the registry-owned counter stored
    at ``_<name>`` on the instance.
    """

    def __init__(self, attr: str) -> None:
        self.attr = attr

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        return getattr(obj, self.attr).value

    def __set__(self, obj, value) -> None:
        getattr(obj, self.attr).value = value


class CounterFamily(dict):
    """A dict of label -> count registered as one named metric.

    Subclassing ``dict`` keeps the legacy stats API intact: callers index
    it, iterate it and copy it with ``dict(...)`` exactly as they did when
    the stats field was a plain dict.
    """

    def __init__(self, name: str, initial: Mapping | None = None) -> None:
        super().__init__(initial or {})
        self.name = name

    def inc(self, label, amount: int = 1) -> None:
        self[label] = self.get(label, 0) + amount

    def reset(self) -> None:
        for k in self:
            self[k] = 0


class MetricsRegistry:
    """Get-or-create metric container with authoritative snapshot/reset.

    Two stats objects binding the same registry and metric names share the
    underlying counters — that is how per-subsystem stats aggregate when a
    parent (e.g. ``TieredEngine``) hands its registry to per-job children.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, object] = {}
        self._views: dict[str, Callable[[], object]] = {}

    # -- creation (get-or-create by name; type mismatch is a bug) --------
    def _get(self, name: str, factory: Callable[[], object], cls: type):
        with self._lock:
            m = self._metrics.get(name)
            if m is None:
                m = factory()
                self._metrics[name] = m
            elif not isinstance(m, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(m).__name__}, not {cls.__name__}")
            return m

    def counter(self, name: str) -> Counter:
        return self._get(name, lambda: Counter(name), Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, lambda: Gauge(name), Gauge)

    def histogram(self, name: str, bounds: Iterable[float]) -> Histogram:
        return self._get(name, lambda: Histogram(name, bounds), Histogram)

    def family(self, name: str, initial: Mapping | None = None) -> CounterFamily:
        return self._get(name, lambda: CounterFamily(name, initial),
                         CounterFamily)

    def view(self, name: str, fn: Callable[[], object]) -> None:
        """Register a read-only derived value included in snapshots.

        Views are for state owned elsewhere (tier EWMAs live in the
        governor); ``reset()`` does not touch them.
        """
        with self._lock:
            self._views[name] = fn

    # -- authoritative snapshot / reset ----------------------------------
    def snapshot(self) -> dict:
        """One flat JSON-serialisable mapping of every metric and view."""
        out: dict[str, object] = {}
        with self._lock:
            metrics = list(self._metrics.items())
            views = list(self._views.items())
        for name, m in sorted(metrics):
            if isinstance(m, Counter):
                out[name] = m.value
            elif isinstance(m, Gauge):
                out[name] = m.value
            elif isinstance(m, Histogram):
                out[name] = m.snapshot()
            elif isinstance(m, CounterFamily):
                out[name] = dict(m)
        for name, fn in sorted(views):
            try:
                out[name] = fn()
            except Exception:  # view sources may already be closed
                out[name] = None
        return out

    def reset(self) -> None:
        """Zero every owned metric (views are derived and untouched)."""
        with self._lock:
            metrics = list(self._metrics.values())
        for m in metrics:
            m.reset()  # type: ignore[attr-defined]


#: Process-global default registry.  Subsystem stats objects default to a
#: private registry (tests rely on per-instance counters); the global one
#: backs the module-level helpers and the CLI snapshot.
REGISTRY = MetricsRegistry()


def counter(name: str) -> Counter:
    return REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    return REGISTRY.gauge(name)


def histogram(name: str, bounds: Iterable[float]) -> Histogram:
    return REGISTRY.histogram(name, bounds)


def snapshot() -> dict:
    return REGISTRY.snapshot()


def reset() -> None:
    REGISTRY.reset()
