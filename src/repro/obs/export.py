"""Exporters: Chrome trace-event JSON and flat metrics snapshots.

``trace_to_chrome`` emits the Trace Event Format understood by
``about://tracing`` / Perfetto: complete events (``ph: "X"``) for spans
and instant events (``ph: "i"``) for markers, timestamps in microseconds
relative to the tracer's enable epoch.
"""

from __future__ import annotations

import json
import os

from repro.obs.metrics import MetricsRegistry, REGISTRY
from repro.obs.trace import Tracer, TRACER

__all__ = ["trace_to_chrome", "write_chrome_trace", "metrics_to_json",
           "write_metrics"]


def trace_to_chrome(tracer: Tracer | None = None) -> dict:
    """Render the tracer's finished spans as a Chrome trace-event dict."""
    tr = tracer if tracer is not None else TRACER
    pid = os.getpid()
    epoch = tr.epoch
    events = []
    for s in tr.spans:
        if s.t1 < 0:
            continue  # never finished; an open span has no duration
        ev = {
            "name": s.name,
            "ph": "X",
            "ts": (s.t0 - epoch) * 1e6,
            "dur": (s.t1 - s.t0) * 1e6,
            "pid": pid,
            "tid": s.tid,
        }
        args = dict(s.attrs) if s.attrs else {}
        args["span_id"] = s.span_id
        if s.parent_id is not None:
            args["parent_id"] = s.parent_id
        ev["args"] = args
        events.append(ev)
    for name, ts, tid, attrs in tr.events:
        ev = {
            "name": name,
            "ph": "i",
            "ts": (ts - epoch) * 1e6,
            "pid": pid,
            "tid": tid,
            "s": "t",  # thread-scoped instant
        }
        if attrs:
            ev["args"] = dict(attrs)
        events.append(ev)
    events.sort(key=lambda e: e["ts"])
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, tracer: Tracer | None = None) -> None:
    with open(path, "w") as fh:
        json.dump(trace_to_chrome(tracer), fh, indent=1)


def metrics_to_json(registry: MetricsRegistry | None = None) -> dict:
    """Flat JSON-serialisable snapshot of a registry (default: global)."""
    reg = registry if registry is not None else REGISTRY
    return reg.snapshot()


def write_metrics(path: str, registry: MetricsRegistry | None = None) -> None:
    with open(path, "w") as fh:
        json.dump(metrics_to_json(registry), fh, indent=2, sort_keys=True,
                  default=str)
