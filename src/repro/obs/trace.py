"""Hierarchical span tracer with cross-thread parent propagation.

A ``Span`` is one timed region of the pipeline (a rewrite, a lifted block,
an O3 pass).  Spans nest: the current span is tracked in a
``contextvars.ContextVar`` so children started anywhere in the same
context pick up their parent automatically.  Tier worker threads do not
inherit the submitting context, so the enqueue site captures
``TRACER.current()`` into the job and the worker calls ``adopt()``.

Cost contract (DESIGN §10): with tracing disabled every instrumentation
site is a single attribute check (``if _TR.enabled:``) — no allocation,
no lock, no clock read — so the zero-stall dispatch guarantee from the
tiered engine is preserved.  The checks below are ordered so the disabled
path returns before touching anything else.
"""

from __future__ import annotations

import contextvars
import threading
import time
from contextlib import contextmanager
from typing import Iterator

__all__ = ["Span", "Tracer", "TRACER"]

_CURRENT: contextvars.ContextVar["Span | None"] = contextvars.ContextVar(
    "repro_obs_current_span", default=None)


class Span:
    """One timed region.  ``t1 < 0`` means still open."""

    __slots__ = ("name", "span_id", "parent_id", "t0", "t1", "tid",
                 "attrs", "_token")

    def __init__(self, name: str, span_id: int, parent_id: int | None,
                 t0: float, tid: int, attrs: dict | None) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.t0 = t0
        self.t1 = -1.0
        self.tid = tid
        self.attrs = attrs
        self._token = None

    @property
    def duration(self) -> float:
        return (self.t1 - self.t0) if self.t1 >= 0 else 0.0

    def __repr__(self) -> str:
        state = f"{self.duration * 1e6:.1f}us" if self.t1 >= 0 else "open"
        return f"Span({self.name}, {state})"


class Tracer:
    """Collects spans and instant events while ``enabled`` is True.

    ``enabled`` is a plain attribute: instrumentation sites read it once
    and skip everything when False.  Finished spans append to a list under
    a lock (the enabled path may be concurrent across tier workers).
    """

    def __init__(self, clock=time.perf_counter, max_spans: int = 1_000_000):
        self.enabled = False
        self.clock = clock
        self.max_spans = max_spans
        self._lock = threading.Lock()
        self._next_id = 1
        self.spans: list[Span] = []
        self.events: list[tuple[str, float, int, dict | None]] = []
        self.epoch = 0.0  # clock value at last enable()

    # -- lifecycle -------------------------------------------------------
    def enable(self) -> None:
        self.epoch = self.clock()
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        with self._lock:
            self.spans = []
            self.events = []
            self._next_id = 1

    # -- span API --------------------------------------------------------
    def start(self, name: str, attrs: dict | None = None) -> Span:
        """Open a span as a child of the context's current span."""
        parent = _CURRENT.get()
        with self._lock:
            sid = self._next_id
            self._next_id += 1
        span = Span(name, sid, parent.span_id if parent is not None else None,
                    self.clock(), threading.get_ident(), attrs)
        span._token = _CURRENT.set(span)
        return span

    def finish(self, span: Span) -> None:
        span.t1 = self.clock()
        tok = span._token
        span._token = None
        if tok is not None:
            try:
                _CURRENT.reset(tok)
            except ValueError:
                # Token created in another context (cross-thread finish);
                # fall back to clearing the slot.
                _CURRENT.set(None)
        with self._lock:
            if len(self.spans) < self.max_spans:
                self.spans.append(span)

    @contextmanager
    def span(self, name: str, attrs: dict | None = None) -> Iterator[Span | None]:
        """``with TRACER.span("lift"):`` — no-op when disabled."""
        if not self.enabled:
            yield None
            return
        s = self.start(name, attrs)
        try:
            yield s
        finally:
            self.finish(s)

    def current(self) -> Span | None:
        return _CURRENT.get()

    def adopt(self, parent: Span | None) -> contextvars.Token:
        """Make ``parent`` the current span in this thread's context.

        Used by tier workers: the enqueue site captured ``current()``,
        the worker adopts it so its spans nest under the submit site.
        Returns a token for ``contextvars`` reset (best-effort).
        """
        return _CURRENT.set(parent)

    def release(self, token: contextvars.Token) -> None:
        """Undo an :meth:`adopt` (pool threads reuse their context)."""
        try:
            _CURRENT.reset(token)
        except ValueError:  # pragma: no cover - foreign-context token
            _CURRENT.set(None)

    def instant(self, name: str, attrs: dict | None = None) -> None:
        """Record a zero-duration marker (promotion, install, reject)."""
        if not self.enabled:
            return
        with self._lock:
            self.events.append((name, self.clock(), threading.get_ident(),
                                attrs))


#: Process-global tracer.  All pipeline instrumentation binds this at
#: import time so the disabled check is one global load + attribute read.
TRACER = Tracer()
