"""Hierarchical span tracer with cross-thread parent propagation.

A ``Span`` is one timed region of the pipeline (a rewrite, a lifted block,
an O3 pass).  Spans nest: the current span is tracked in a
``contextvars.ContextVar`` so children started anywhere in the same
context pick up their parent automatically.  Tier worker threads do not
inherit the submitting context, so the enqueue site captures
``TRACER.current()`` into the job and the worker calls ``adopt()``.

Cost contract (DESIGN §10): with tracing disabled every instrumentation
site is a single attribute check (``if _TR.enabled:``) — no allocation,
no lock, no clock read — so the zero-stall dispatch guarantee from the
tiered engine is preserved.  The checks below are ordered so the disabled
path returns before touching anything else.

**Cross-process propagation** (the compile farm): span ids and
``perf_counter`` timestamps are both process-local, so spans cannot cross
a process boundary as-is.  :meth:`Tracer.export_records` turns a window of
finished spans into a picklable record batch stamped with a *wall-clock
anchor* — one ``(time.time(), clock())`` pair sampled in the exporting
process — and :meth:`Tracer.merge_records` translates the batch into the
importing tracer's clock domain via its own anchor, remaps every span id
to freshly allocated local ids (preserving the batch-internal parent
edges), and reparents the batch's roots under a caller-supplied local
span.  The farm serializes the client's parent span id into each
``CompileJob``; the worker exports what it traced during the job; the
client merges on receipt, so one Chrome trace shows the dispatch site, the
queue hop and the remote compile as a single nested tree (worker batches
keep their origin pid in ``attrs["pid"]``).
"""

from __future__ import annotations

import contextvars
import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = ["Span", "Tracer", "TRACER"]

_CURRENT: contextvars.ContextVar["Span | None"] = contextvars.ContextVar(
    "repro_obs_current_span", default=None)


class Span:
    """One timed region.  ``t1 < 0`` means still open."""

    __slots__ = ("name", "span_id", "parent_id", "t0", "t1", "tid",
                 "attrs", "_token")

    def __init__(self, name: str, span_id: int, parent_id: int | None,
                 t0: float, tid: int, attrs: dict | None) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.t0 = t0
        self.t1 = -1.0
        self.tid = tid
        self.attrs = attrs
        self._token = None

    @property
    def duration(self) -> float:
        return (self.t1 - self.t0) if self.t1 >= 0 else 0.0

    def __repr__(self) -> str:
        state = f"{self.duration * 1e6:.1f}us" if self.t1 >= 0 else "open"
        return f"Span({self.name}, {state})"


class Tracer:
    """Collects spans and instant events while ``enabled`` is True.

    ``enabled`` is a plain attribute: instrumentation sites read it once
    and skip everything when False.  Finished spans append to a list under
    a lock (the enabled path may be concurrent across tier workers).
    """

    def __init__(self, clock=time.perf_counter, max_spans: int = 1_000_000):
        self.enabled = False
        self.clock = clock
        self.max_spans = max_spans
        self._lock = threading.Lock()
        self._next_id = 1
        self.spans: list[Span] = []
        self.events: list[tuple[str, float, int, dict | None]] = []
        self.epoch = 0.0  # clock value at last enable()

    # -- lifecycle -------------------------------------------------------
    def enable(self) -> None:
        self.epoch = self.clock()
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        with self._lock:
            self.spans = []
            self.events = []
            self._next_id = 1

    # -- span API --------------------------------------------------------
    def start(self, name: str, attrs: dict | None = None) -> Span:
        """Open a span as a child of the context's current span."""
        parent = _CURRENT.get()
        with self._lock:
            sid = self._next_id
            self._next_id += 1
        span = Span(name, sid, parent.span_id if parent is not None else None,
                    self.clock(), threading.get_ident(), attrs)
        span._token = _CURRENT.set(span)
        return span

    def finish(self, span: Span) -> None:
        span.t1 = self.clock()
        tok = span._token
        span._token = None
        if tok is not None:
            try:
                _CURRENT.reset(tok)
            except ValueError:
                # Token created in another context (cross-thread finish);
                # fall back to clearing the slot.
                _CURRENT.set(None)
        with self._lock:
            if len(self.spans) < self.max_spans:
                self.spans.append(span)

    @contextmanager
    def span(self, name: str, attrs: dict | None = None) -> Iterator[Span | None]:
        """``with TRACER.span("lift"):`` — no-op when disabled."""
        if not self.enabled:
            yield None
            return
        s = self.start(name, attrs)
        try:
            yield s
        finally:
            self.finish(s)

    def current(self) -> Span | None:
        return _CURRENT.get()

    def adopt(self, parent: Span | None) -> contextvars.Token:
        """Make ``parent`` the current span in this thread's context.

        Used by tier workers: the enqueue site captured ``current()``,
        the worker adopts it so its spans nest under the submit site.
        Returns a token for ``contextvars`` reset (best-effort).
        """
        return _CURRENT.set(parent)

    def release(self, token: contextvars.Token) -> None:
        """Undo an :meth:`adopt` (pool threads reuse their context)."""
        try:
            _CURRENT.reset(token)
        except ValueError:  # pragma: no cover - foreign-context token
            _CURRENT.set(None)

    def instant(self, name: str, attrs: dict | None = None) -> None:
        """Record a zero-duration marker (promotion, install, reject)."""
        if not self.enabled:
            return
        with self._lock:
            self.events.append((name, self.clock(), threading.get_ident(),
                                attrs))

    # -- cross-process record transport ----------------------------------

    def mark(self) -> tuple[int, int]:
        """Current (spans, events) high-water mark, for windowed export."""
        with self._lock:
            return len(self.spans), len(self.events)

    def export_records(self, mark: tuple[int, int] = (0, 0)) -> dict:
        """Picklable batch of everything finished since ``mark``.

        Timestamps stay in this process's ``clock()`` domain; the batch
        carries a wall-clock anchor so the importer can translate them
        (different processes' ``perf_counter`` epochs are unrelated, but
        ``time.time()`` is shared).  Open spans are skipped — they would
        export a zero duration and then be double-counted if re-exported
        after finishing.
        """
        with self._lock:
            spans = [(s.name, s.span_id, s.parent_id, s.t0, s.t1, s.tid,
                      s.attrs) for s in self.spans[mark[0]:] if s.t1 >= 0]
            events = list(self.events[mark[1]:])
        return {
            "pid": os.getpid(),
            "anchor_wall": time.time(),
            "anchor_clock": self.clock(),
            "spans": spans,
            "events": events,
        }

    def merge_records(self, records: dict,
                      root_parent: int | None = None) -> dict[int, int]:
        """Adopt an exported batch into this tracer's span list.

        Every imported span gets a freshly allocated local id (foreign ids
        collide with local ones — both sides count from 1); parent edges
        *inside* the batch are remapped through the same table, and spans
        whose parent is not in the batch are reparented under
        ``root_parent`` (the local span that logically caused the remote
        work, e.g. the dispatch-site span captured into a farm job).
        Returns the foreign-id -> local-id map so callers can stitch
        follow-up batches.

        Time translation: a remote timestamp ``t`` maps to
        ``t - anchor_clock + anchor_wall - local_wall + local_clock`` —
        i.e. through the shared wall clock, accurate to the wall/perf
        sampling skew (microseconds; far below queue latencies).
        """
        offset = (records["anchor_wall"] - records["anchor_clock"]
                  - time.time() + self.clock())
        pid = records.get("pid")
        idmap: dict[int, int] = {}
        merged: list[Span] = []
        with self._lock:
            for _name, sid, _pid_, _t0, _t1, _tid, _attrs in records["spans"]:
                idmap[sid] = self._next_id
                self._next_id += 1
        for name, sid, parent, t0, t1, tid, attrs in records["spans"]:
            out: dict[str, Any] = dict(attrs) if attrs else {}
            if pid is not None:
                out.setdefault("pid", pid)
            span = Span(name, idmap[sid], idmap.get(parent, root_parent),
                        t0 + offset, tid, out)
            span.t1 = t1 + offset
            merged.append(span)
        with self._lock:
            room = self.max_spans - len(self.spans)
            if room > 0:
                self.spans.extend(merged[:room])
            for name, ts, tid, attrs in records["events"]:
                out = dict(attrs) if attrs else {}
                if pid is not None:
                    out.setdefault("pid", pid)
                self.events.append((name, ts + offset, tid, out))
        return idmap


#: Process-global tracer.  All pipeline instrumentation binds this at
#: import time so the disabled check is one global load + attribute read.
TRACER = Tracer()
