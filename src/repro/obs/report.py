"""Per-stage time breakdown for a traced run.

Usage::

    python -m repro.obs.report trace.json [--metrics metrics.json]

Reads a Chrome trace-event JSON file produced by
``repro.obs.write_chrome_trace``, rebuilds the span tree from the
``span_id``/``parent_id`` args, computes per-span *self* times (duration
minus direct children) so nothing is double-counted, and buckets them
into the paper's four pipeline stages (Fig. 9/10): decode, lift, O3,
encode.  Time not attributable to a stage (cache glue, span roots) is
reported as "other" so the stage coverage of the wall-clock transform
time is explicit.
"""

from __future__ import annotations

import argparse
import json
import sys

__all__ = ["build_breakdown", "format_breakdown", "main"]

#: span-name -> stage.  Prefix match for families like ``o3.pass.*``.
_STAGE_OF = {
    "rewrite.decode": "decode",
    "lift.discover": "decode",
    "lift": "lift",
    "lift.block": "lift",
    "lift.connect": "lift",
    "fixation": "lift",
    "rewrite": "lift",          # worklist/emulation driver self-time
    "rewrite.emulate": "lift",
    "opt": "o3",
    "guard.rung.dbrew+llvm": "other",
    "rewrite.encode": "encode",
    "codegen": "encode",
    "jit.compile": "encode",
    "jit.lower": "encode",
    "jit.install": "encode",
}
_STAGE_PREFIXES = (
    ("o3.pass.", "o3"),
    ("jit.", "encode"),
    ("lift.", "lift"),
    ("tier.", "other"),
    ("guard.", "other"),
)
STAGES = ("decode", "lift", "o3", "encode")

#: top-level spans whose durations define the transform wall-clock.
_ROOTS = ("transform", "rewrite", "guard.transform")


def _stage_of(name: str) -> str:
    stage = _STAGE_OF.get(name)
    if stage is not None:
        return stage
    for prefix, stage in _STAGE_PREFIXES:
        if name.startswith(prefix):
            return stage
    return "other"


def build_breakdown(trace: dict) -> dict:
    """Compute the per-stage self-time breakdown from a trace dict."""
    spans = []  # (span_id, parent_id, name, dur_us)
    for ev in trace.get("traceEvents", []):
        if ev.get("ph") != "X":
            continue
        args = ev.get("args", {})
        sid = args.get("span_id")
        if sid is None:
            continue
        spans.append((sid, args.get("parent_id"), ev["name"],
                      float(ev.get("dur", 0.0))))

    known = {sid for sid, _p, _n, _d in spans}
    child_total: dict[int, float] = {}
    for sid, pid, _name, dur in spans:
        if pid is not None and pid in known:
            child_total[pid] = child_total.get(pid, 0.0) + dur

    stage_us = {s: 0.0 for s in STAGES}
    stage_us["other"] = 0.0
    span_counts: dict[str, int] = {}
    wall_us = 0.0
    for sid, pid, name, dur in spans:
        self_us = max(0.0, dur - child_total.get(sid, 0.0))
        stage_us[_stage_of(name)] += self_us
        span_counts[name] = span_counts.get(name, 0) + 1
        if (pid is None or pid not in known) and (
                name in _ROOTS or name.startswith("guard.transform")):
            wall_us += dur
    if wall_us == 0.0:  # no designated roots: fall back to all top-levels
        wall_us = sum(d for sid, pid, _n, d in spans
                      if pid is None or pid not in known)

    staged_us = sum(stage_us[s] for s in STAGES)
    return {
        "stages_us": stage_us,
        "staged_total_us": staged_us,
        "wall_us": wall_us,
        "coverage": (staged_us / wall_us) if wall_us else 0.0,
        "span_counts": span_counts,
        "n_spans": len(spans),
    }


def format_breakdown(b: dict) -> str:
    lines = []
    wall = b["wall_us"]
    lines.append(f"{'stage':<8} {'time':>12} {'share':>8}")
    for stage in (*STAGES, "other"):
        us = b["stages_us"][stage]
        share = (us / wall * 100.0) if wall else 0.0
        lines.append(f"{stage:<8} {us / 1e3:>10.3f}ms {share:>7.1f}%")
    lines.append("-" * 30)
    lines.append(f"{'staged':<8} {b['staged_total_us'] / 1e3:>10.3f}ms "
                 f"{b['coverage'] * 100.0:>7.1f}%")
    lines.append(f"{'wall':<8} {wall / 1e3:>10.3f}ms   100.0%")
    lines.append(f"\nspans: {b['n_spans']} total")
    for name in sorted(b["span_counts"]):
        lines.append(f"  {name:<24} x{b['span_counts'][name]}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Per-stage time breakdown of a traced pipeline run.")
    ap.add_argument("trace", help="Chrome trace JSON from write_chrome_trace")
    ap.add_argument("--metrics", help="optional metrics snapshot JSON")
    args = ap.parse_args(argv)

    with open(args.trace) as fh:
        trace = json.load(fh)
    b = build_breakdown(trace)
    print(format_breakdown(b))

    if args.metrics:
        with open(args.metrics) as fh:
            metrics = json.load(fh)
        print("\nmetrics:")
        for name in sorted(metrics):
            print(f"  {name:<32} {metrics[name]}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
