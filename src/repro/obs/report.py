"""Per-stage time breakdown for a traced run.

Usage::

    python -m repro.obs.report trace.json [--metrics metrics.json]

Reads a Chrome trace-event JSON file produced by
``repro.obs.write_chrome_trace``, rebuilds the span tree from the
``span_id``/``parent_id`` args, computes per-span *self* times (duration
minus direct children) so nothing is double-counted, and buckets them
into the paper's four pipeline stages (Fig. 9/10): decode, lift, O3,
encode.  Time not attributable to a stage (cache glue, span roots) is
reported as "other" so the stage coverage of the wall-clock transform
time is explicit.
"""

from __future__ import annotations

import argparse
import json
import sys

__all__ = ["build_breakdown", "build_hotspots", "format_breakdown",
           "format_hotspots", "main"]

#: span-name -> stage.  Prefix match for families like ``o3.pass.*``.
_STAGE_OF = {
    "rewrite.decode": "decode",
    "lift.discover": "decode",
    "lift": "lift",
    "lift.block": "lift",
    "lift.connect": "lift",
    "fixation": "lift",
    "rewrite": "lift",          # worklist/emulation driver self-time
    "rewrite.emulate": "lift",
    "opt": "o3",
    "guard.rung.dbrew+llvm": "other",
    "rewrite.encode": "encode",
    "codegen": "encode",
    "jit.compile": "encode",
    "jit.lower": "encode",
    "jit.install": "encode",
}
_STAGE_PREFIXES = (
    ("o3.pass.", "o3"),
    ("jit.", "encode"),
    ("lift.", "lift"),
    ("instrument.", "instr"),
    ("tier.", "other"),
    ("guard.", "other"),
)
STAGES = ("decode", "lift", "o3", "encode", "instr")

#: top-level spans whose durations define the transform wall-clock.
_ROOTS = ("transform", "rewrite", "guard.transform")


def _stage_of(name: str) -> str:
    stage = _STAGE_OF.get(name)
    if stage is not None:
        return stage
    for prefix, stage in _STAGE_PREFIXES:
        if name.startswith(prefix):
            return stage
    return "other"


def build_breakdown(trace: dict) -> dict:
    """Compute the per-stage self-time breakdown from a trace dict."""
    spans = []  # (span_id, parent_id, name, dur_us)
    for ev in trace.get("traceEvents", []):
        if ev.get("ph") != "X":
            continue
        args = ev.get("args", {})
        sid = args.get("span_id")
        if sid is None:
            continue
        spans.append((sid, args.get("parent_id"), ev["name"],
                      float(ev.get("dur", 0.0))))

    known = {sid for sid, _p, _n, _d in spans}
    child_total: dict[int, float] = {}
    for sid, pid, _name, dur in spans:
        if pid is not None and pid in known:
            child_total[pid] = child_total.get(pid, 0.0) + dur

    stage_us = {s: 0.0 for s in STAGES}
    stage_us["other"] = 0.0
    span_counts: dict[str, int] = {}
    wall_us = 0.0
    for sid, pid, name, dur in spans:
        self_us = max(0.0, dur - child_total.get(sid, 0.0))
        stage_us[_stage_of(name)] += self_us
        span_counts[name] = span_counts.get(name, 0) + 1
        if (pid is None or pid not in known) and (
                name in _ROOTS or name.startswith("guard.transform")):
            wall_us += dur
    if wall_us == 0.0:  # no designated roots: fall back to all top-levels
        wall_us = sum(d for sid, pid, _n, d in spans
                      if pid is None or pid not in known)

    staged_us = sum(stage_us[s] for s in STAGES)
    return {
        "stages_us": stage_us,
        "staged_total_us": staged_us,
        "wall_us": wall_us,
        "coverage": (staged_us / wall_us) if wall_us else 0.0,
        "span_counts": span_counts,
        "n_spans": len(spans),
    }


#: span args consulted (in order) for the function a span worked on
_FUNC_KEYS = ("func", "name", "handle")


def build_hotspots(trace: dict, top: int = 15) -> dict:
    """Rank ``(stage, function)`` buckets by self-time.

    Function attribution comes from the span's own args (``func`` /
    ``name`` / ``handle`` — the keys the pipeline's spans use) and is
    inherited from the nearest annotated ancestor for anonymous inner
    spans like ``lift.connect``, so e.g. all lift self-time of one
    transform lands on that transform's function.  Self-time (duration
    minus direct children) means the buckets sum to the span tree's
    total without double-counting — the profile you want before deciding
    which stage of which function to attack next.
    """
    spans: dict[int, tuple] = {}
    for ev in trace.get("traceEvents", []):
        if ev.get("ph") != "X":
            continue
        args = ev.get("args", {})
        sid = args.get("span_id")
        if sid is None:
            continue
        func = None
        for key in _FUNC_KEYS:
            v = args.get(key)
            if isinstance(v, str):
                func = v
                break
        spans[sid] = (args.get("parent_id"), ev["name"],
                      float(ev.get("dur", 0.0)), func)

    child_total: dict[int, float] = {}
    for sid, (pid, _n, dur, _f) in spans.items():
        if pid in spans:
            child_total[pid] = child_total.get(pid, 0.0) + dur

    func_cache: dict[int, str] = {}

    def func_of(sid: int) -> str:
        got = func_cache.get(sid)
        if got is not None:
            return got
        chain = []
        cur, resolved = sid, "-"
        while cur in spans and cur not in func_cache:
            chain.append(cur)
            pid, _name, _dur, func = spans[cur]
            if func is not None:
                resolved = func
                break
            cur = pid
        else:
            if cur in func_cache:
                resolved = func_cache[cur]
        for s in chain:
            func_cache[s] = resolved
        return resolved

    buckets: dict[tuple[str, str], dict] = {}
    total_us = 0.0
    for sid, (pid, name, dur, _f) in spans.items():
        self_us = max(0.0, dur - child_total.get(sid, 0.0))
        total_us += self_us
        key = (_stage_of(name), func_of(sid))
        b = buckets.get(key)
        if b is None:
            b = buckets[key] = {"stage": key[0], "func": key[1],
                                "self_us": 0.0, "spans": 0}
        b["self_us"] += self_us
        b["spans"] += 1

    ranked = sorted(buckets.values(), key=lambda b: -b["self_us"])
    return {"total_self_us": total_us, "rows": ranked[:top],
            "n_buckets": len(ranked)}


def format_hotspots(h: dict) -> str:
    total = h["total_self_us"]
    lines = [f"{'#':>3} {'stage':<8} {'function':<24} "
             f"{'self':>12} {'share':>8} {'spans':>7}"]
    for i, row in enumerate(h["rows"], 1):
        share = (row["self_us"] / total * 100.0) if total else 0.0
        lines.append(f"{i:>3} {row['stage']:<8} {row['func'][:24]:<24} "
                     f"{row['self_us'] / 1e3:>10.3f}ms {share:>7.1f}% "
                     f"{row['spans']:>7}")
    lines.append("-" * 68)
    lines.append(f"{'':>3} {'total':<8} {h['n_buckets']:<24} "
                 f"{total / 1e3:>10.3f}ms   100.0%")
    return "\n".join(lines)


def format_breakdown(b: dict) -> str:
    lines = []
    wall = b["wall_us"]
    lines.append(f"{'stage':<8} {'time':>12} {'share':>8}")
    for stage in (*STAGES, "other"):
        us = b["stages_us"][stage]
        share = (us / wall * 100.0) if wall else 0.0
        lines.append(f"{stage:<8} {us / 1e3:>10.3f}ms {share:>7.1f}%")
    lines.append("-" * 30)
    lines.append(f"{'staged':<8} {b['staged_total_us'] / 1e3:>10.3f}ms "
                 f"{b['coverage'] * 100.0:>7.1f}%")
    lines.append(f"{'wall':<8} {wall / 1e3:>10.3f}ms   100.0%")
    lines.append(f"\nspans: {b['n_spans']} total")
    for name in sorted(b["span_counts"]):
        lines.append(f"  {name:<24} x{b['span_counts'][name]}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Per-stage time breakdown of a traced pipeline run.")
    ap.add_argument("trace", help="Chrome trace JSON from write_chrome_trace")
    ap.add_argument("--metrics", help="optional metrics snapshot JSON")
    ap.add_argument("--emit-hotspots", nargs="?", const=15, default=None,
                    type=int, metavar="N",
                    help="rank (stage, function) self-times instead of the "
                         "stage breakdown (top N rows, default 15)")
    args = ap.parse_args(argv)

    with open(args.trace) as fh:
        trace = json.load(fh)
    if args.emit_hotspots is not None:
        print(format_hotspots(build_hotspots(trace, top=args.emit_hotspots)))
    else:
        b = build_breakdown(trace)
        print(format_breakdown(b))

    if args.metrics:
        with open(args.metrics) as fh:
            metrics = json.load(fh)
        instr = {n: metrics[n] for n in metrics if n.startswith("instrument.")}
        if instr:
            print("\ninstrumentation:")
            for name in sorted(instr):
                print(f"  {name:<32} {instr[name]}")
        print("\nmetrics:")
        for name in sorted(metrics):
            if name in instr:
                continue
            print(f"  {name:<32} {metrics[name]}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
