"""Architectural semantics: execute one decoded instruction.

``execute(ins, st, mem)`` mutates :class:`~repro.cpu.state.CPUState` and
:class:`~repro.mem.memory.Memory` and returns ``(taken, mem_addr)`` for the
cost model — whether a conditional branch was taken and which effective
address (if any) a memory operand touched.

Integer values are kept as unsigned Python ints masked to operand width;
floating point goes through ``struct`` so IEEE-754 double behaviour is
bit-exact with hardware for the supported operations.
"""

from __future__ import annotations

import struct

from repro.errors import SimulatorError
from repro.mem.memory import Memory
from repro.x86 import isa
from repro.x86.instr import Imm, Instruction, Mem, Operand, Reg
from repro.cpu.state import CPUState, MASK64, MASK128, to_signed

_F64 = struct.Struct("<d")
_F32 = struct.Struct("<f")


def f64_to_bits(v: float) -> int:
    return int.from_bytes(_F64.pack(v), "little")


def bits_to_f64(b: int) -> float:
    return _F64.unpack((b & MASK64).to_bytes(8, "little"))[0]


def f32_to_bits(v: float) -> int:
    return int.from_bytes(_F32.pack(v), "little")


def bits_to_f32(b: int) -> float:
    return _F32.unpack((b & 0xFFFFFFFF).to_bytes(4, "little"))[0]


def _f32_round(v: float) -> float:
    """Round a Python float to binary32 precision."""
    return bits_to_f32(f32_to_bits(v))


def effective_address(mem: Mem, st: CPUState) -> int:
    """Compute the effective address of a memory operand (mod 2^64)."""
    if mem.riprel or mem.is_absolute:
        return mem.disp & MASK64
    addr = mem.disp
    if mem.base is not None:
        addr += st.gpr[mem.base.index]
    if mem.index is not None:
        addr += st.gpr[mem.index.index] * mem.scale
    return addr & MASK64


def _opsize(ins: Instruction) -> int:
    for op in ins.operands:
        if isinstance(op, Reg) and op.kind == "gp":
            return op.size
    for op in ins.operands:
        if isinstance(op, Mem):
            return op.size
    return 8


def _read(op: Operand, st: CPUState, mem: Memory, ea: int | None, size: int) -> int:
    if isinstance(op, Reg):
        return st.read_reg(op)
    if isinstance(op, Imm):
        return op.value & ((1 << (size * 8)) - 1)
    assert ea is not None
    return mem.read_uint(ea, op.size)


def _write(op: Operand, value: int, st: CPUState, mem: Memory, ea: int | None) -> None:
    if isinstance(op, Reg):
        st.write_reg(op, value)
        return
    assert isinstance(op, Mem) and ea is not None
    mem.write_uint(ea, value, op.size)


# -- flag computation ----------------------------------------------------------


def _parity(res: int) -> bool:
    return bin(res & 0xFF).count("1") % 2 == 0


def _szp(st: CPUState, res: int, bits: int) -> None:
    st.zf = res == 0
    st.sf = bool(res >> (bits - 1))
    st.pf = _parity(res)


def _flags_add(st: CPUState, a: int, b: int, res_full: int, bits: int) -> int:
    mask = (1 << bits) - 1
    res = res_full & mask
    st.cf = res_full > mask or res_full < 0
    sa, sb, sr = a >> (bits - 1), b >> (bits - 1), res >> (bits - 1)
    st.of = (sa == sb) and (sr != sa)
    st.af = ((a & 0xF) + (b & 0xF)) > 0xF
    _szp(st, res, bits)
    return res


def _flags_sub(st: CPUState, a: int, b: int, bits: int) -> int:
    mask = (1 << bits) - 1
    res = (a - b) & mask
    st.cf = a < b
    sa, sb, sr = a >> (bits - 1), b >> (bits - 1), res >> (bits - 1)
    st.of = (sa != sb) and (sr != sa)
    st.af = (a & 0xF) < (b & 0xF)
    _szp(st, res, bits)
    return res


def _flags_logic(st: CPUState, res: int, bits: int) -> None:
    st.cf = False
    st.of = False
    st.af = False
    _szp(st, res, bits)


def eval_cc(st: CPUState, cc: str) -> bool:
    """Evaluate a canonical condition code against current flags."""
    if cc == "o":
        return st.of
    if cc == "no":
        return not st.of
    if cc == "b":
        return st.cf
    if cc == "ae":
        return not st.cf
    if cc == "e":
        return st.zf
    if cc == "ne":
        return not st.zf
    if cc == "be":
        return st.cf or st.zf
    if cc == "a":
        return not (st.cf or st.zf)
    if cc == "s":
        return st.sf
    if cc == "ns":
        return not st.sf
    if cc == "p":
        return st.pf
    if cc == "np":
        return not st.pf
    if cc == "l":
        return st.sf != st.of
    if cc == "ge":
        return st.sf == st.of
    if cc == "le":
        return st.zf or (st.sf != st.of)
    if cc == "g":
        return not st.zf and (st.sf == st.of)
    raise SimulatorError(f"unknown condition code {cc}")


# -- SSE lane helpers ----------------------------------------------------------


def _xmm_lane64(v: int, lane: int) -> int:
    return (v >> (64 * lane)) & MASK64


def _xmm_set_lane64(v: int, lane: int, bits: int) -> int:
    shift = 64 * lane
    return (v & ~(MASK64 << shift)) | ((bits & MASK64) << shift)


_SD_OPS = {
    "addsd": lambda a, b: a + b,
    "subsd": lambda a, b: a - b,
    "mulsd": lambda a, b: a * b,
    "minsd": min,
    "maxsd": max,
}
_PD_OPS = _SD_OPS  # packed double uses the same lane function per lane name


def _fp_div(a: float, b: float) -> float:
    if b == 0.0:
        if a == 0.0:
            return float("nan")
        inf = float("inf") if a > 0 else float("-inf")
        # sign of zero matters in IEEE; Python 0.0 == -0.0, check bits
        if f64_to_bits(b) >> 63:
            inf = -inf
        return inf
    return a / b


# -- main dispatch --------------------------------------------------------------


def execute(ins: Instruction, st: CPUState, mem: Memory) -> tuple[bool, int | None]:
    """Execute ``ins``; returns (branch_taken, effective_mem_addr)."""
    m = ins.mnemonic
    ops = ins.operands
    memop = next((o for o in ops if isinstance(o, Mem)), None)
    ea = effective_address(memop, st) if memop is not None else None
    st.rip = ins.end
    taken = False

    # ---- control flow ----
    cls = isa.control_class(m)
    if cls == "jmp":
        st.rip = ops[0].value  # type: ignore[union-attr]
        return False, None
    if cls == "jcc":
        cc = isa.cc_of(m)
        assert cc is not None
        if eval_cc(st, cc):
            st.rip = ops[0].value  # type: ignore[union-attr]
            taken = True
        return taken, None
    if cls == "call":
        st.gpr[4] = (st.gpr[4] - 8) & MASK64
        mem.write_u64(st.gpr[4], ins.end)
        st.rip = ops[0].value  # type: ignore[union-attr]
        return False, st.gpr[4]
    if cls == "ret":
        st.rip = mem.read_u64(st.gpr[4])
        st.gpr[4] = (st.gpr[4] + 8) & MASK64
        return False, None

    size = _opsize(ins)
    bits = size * 8

    # ---- integer data movement ----
    if m == "mov" and not any(isinstance(o, Reg) and o.kind == "xmm" for o in ops):
        dst, src = ops
        _write(dst, _read(src, st, mem, ea, size), st, mem, ea)
        return False, ea
    if m in ("movzx", "movsx", "movsxd"):
        dst, src = ops
        ssize = src.size if isinstance(src, (Reg, Mem)) else 4
        val = _read(src, st, mem, ea, ssize)
        if m != "movzx":
            val = to_signed(val, ssize * 8) & ((1 << (dst.size * 8)) - 1)  # type: ignore[union-attr]
        _write(dst, val, st, mem, ea)
        return False, ea
    if m == "lea":
        dst, src = ops
        assert isinstance(src, Mem) and isinstance(dst, Reg)
        st.write_reg(dst, ea & ((1 << (dst.size * 8)) - 1))  # type: ignore[operator]
        return False, None
    if m == "push":
        val = _read(ops[0], st, mem, ea, 8)
        if isinstance(ops[0], Imm):
            val = to_signed(val, ops[0].size * 8 if ops[0].size else 32) & MASK64
        st.gpr[4] = (st.gpr[4] - 8) & MASK64
        mem.write_u64(st.gpr[4], val)
        return False, st.gpr[4]
    if m == "pop":
        val = mem.read_u64(st.gpr[4])
        st.gpr[4] = (st.gpr[4] + 8) & MASK64
        _write(ops[0], val, st, mem, ea)
        return False, None
    if m == "leave":
        st.gpr[4] = st.gpr[5]
        st.gpr[5] = mem.read_u64(st.gpr[4])
        st.gpr[4] = (st.gpr[4] + 8) & MASK64
        return False, None

    # ---- integer ALU ----
    if m in ("add", "adc"):
        dst, src = ops
        a = _read(dst, st, mem, ea, size)
        b = _read(src, st, mem, ea, size)
        carry = int(st.cf) if m == "adc" else 0
        res = _flags_add(st, a, b, a + b + carry, bits)
        _write(dst, res, st, mem, ea)
        return False, ea
    if m in ("sub", "sbb", "cmp"):
        dst, src = ops
        a = _read(dst, st, mem, ea, size)
        b = _read(src, st, mem, ea, size)
        borrow = int(st.cf) if m == "sbb" else 0
        res = _flags_sub(st, a, (b + borrow) & ((1 << bits) - 1), bits)
        if m != "cmp":
            _write(dst, res, st, mem, ea)
        return False, ea
    if m in ("and", "or", "xor", "test"):
        dst, src = ops
        a = _read(dst, st, mem, ea, size)
        b = _read(src, st, mem, ea, size)
        res = a & b if m in ("and", "test") else (a | b if m == "or" else a ^ b)
        _flags_logic(st, res, bits)
        if m != "test":
            _write(dst, res, st, mem, ea)
        return False, ea
    if m in ("inc", "dec"):
        (dst,) = ops
        a = _read(dst, st, mem, ea, size)
        cf = st.cf  # inc/dec preserve CF
        if m == "inc":
            res = _flags_add(st, a, 1, a + 1, bits)
        else:
            res = _flags_sub(st, a, 1, bits)
        st.cf = cf
        _write(dst, res, st, mem, ea)
        return False, ea
    if m == "neg":
        (dst,) = ops
        a = _read(dst, st, mem, ea, size)
        res = _flags_sub(st, 0, a, bits)
        st.cf = a != 0
        _write(dst, res, st, mem, ea)
        return False, ea
    if m == "not":
        (dst,) = ops
        a = _read(dst, st, mem, ea, size)
        _write(dst, (~a) & ((1 << bits) - 1), st, mem, ea)
        return False, ea
    if m == "imul":
        if len(ops) == 1:
            a = to_signed(st.read_gp(0, size), bits)
            b = to_signed(_read(ops[0], st, mem, ea, size), bits)
            full = a * b
            lo = full & ((1 << bits) - 1)
            hi = (full >> bits) & ((1 << bits) - 1)
            if size == 1:
                st.write_gp(0, (hi << 8) | lo, 2)
            else:
                st.write_gp(0, lo, size)
                st.write_gp(2, hi, size)
            st.cf = st.of = full != to_signed(lo, bits)
            return False, ea
        if len(ops) == 2:
            dst, src = ops
            a = to_signed(_read(dst, st, mem, ea, size), bits)
            b = to_signed(_read(src, st, mem, ea, size), bits)
        else:
            dst, src, imm = ops
            a = to_signed(_read(src, st, mem, ea, size), bits)
            b = to_signed(imm.value, 64)  # type: ignore[union-attr]
        full = a * b
        res = full & ((1 << bits) - 1)
        st.cf = st.of = full != to_signed(res, bits)
        _szp(st, res, bits)
        _write(dst, res, st, mem, ea)
        return False, ea
    if m == "mul":
        a = st.read_gp(0, size)
        b = _read(ops[0], st, mem, ea, size)
        full = a * b
        lo = full & ((1 << bits) - 1)
        hi = (full >> bits) & ((1 << bits) - 1)
        if size == 1:
            st.write_gp(0, (hi << 8) | lo, 2)
        else:
            st.write_gp(0, lo, size)
            st.write_gp(2, hi, size)
        st.cf = st.of = hi != 0
        return False, ea
    if m in ("idiv", "div"):
        divisor_u = _read(ops[0], st, mem, ea, size)
        lo = st.read_gp(0, size)
        hi = st.read_gp(2, size) if size > 1 else (st.read_gp(0, 2) >> 8)
        dividend_u = (hi << bits) | lo
        if m == "idiv":
            dividend = to_signed(dividend_u, bits * 2)
            divisor = to_signed(divisor_u, bits)
            if divisor == 0:
                raise SimulatorError("integer division by zero")
            quot = int(dividend / divisor)  # trunc toward zero
            rem = dividend - quot * divisor
        else:
            if divisor_u == 0:
                raise SimulatorError("integer division by zero")
            quot, rem = divmod(dividend_u, divisor_u)
        if quot > (1 << bits) - 1 or quot < -(1 << (bits - 1)):
            raise SimulatorError("division overflow")
        st.write_gp(0, quot & ((1 << bits) - 1), size)
        if size > 1:
            st.write_gp(2, rem & ((1 << bits) - 1), size)
        else:
            st.write_gp(0, ((rem & 0xFF) << 8) | (quot & 0xFF), 2)
        return False, ea
    if m == "cqo":
        st.gpr[2] = MASK64 if st.gpr[0] >> 63 else 0
        return False, None
    if m == "cdq":
        st.write_gp(2, 0xFFFFFFFF if (st.read_gp(0, 4) >> 31) else 0, 4)
        return False, None
    if m in ("shl", "shr", "sar", "rol", "ror"):
        dst, src = ops
        a = _read(dst, st, mem, ea, size)
        count = _read(src, st, mem, ea, 1) & (63 if size == 8 else 31)
        if count == 0:
            return False, ea
        if m == "shl":
            full = a << count
            res = full & ((1 << bits) - 1)
            st.cf = bool((full >> bits) & 1)
        elif m == "shr":
            res = a >> count
            st.cf = bool((a >> (count - 1)) & 1)
        elif m == "sar":
            sa = to_signed(a, bits)
            res = (sa >> count) & ((1 << bits) - 1)
            st.cf = bool((sa >> (count - 1)) & 1)
        elif m == "rol":
            count %= bits
            res = ((a << count) | (a >> (bits - count))) & ((1 << bits) - 1)
            st.cf = bool(res & 1)
        else:  # ror
            count %= bits
            res = ((a >> count) | (a << (bits - count))) & ((1 << bits) - 1)
            st.cf = bool(res >> (bits - 1))
        if m in ("shl", "shr", "sar"):
            _szp(st, res, bits)
            st.of = bool((res >> (bits - 1)) != (a >> (bits - 1))) if count == 1 else st.of
        _write(dst, res, st, mem, ea)
        return False, ea
    if m.startswith("cmov"):
        cc = isa.cc_of(m)
        assert cc is not None
        dst, src = ops
        if eval_cc(st, cc):
            _write(dst, _read(src, st, mem, ea, size), st, mem, ea)
        elif isinstance(dst, Reg) and dst.size == 4:
            st.write_reg(dst, st.read_reg(dst))  # 32-bit cmov always zexts
        return False, ea
    if m.startswith("set"):
        cc = isa.cc_of(m)
        assert cc is not None
        _write(ops[0], int(eval_cc(st, cc)), st, mem, ea)
        return False, ea
    if m == "nop":
        return False, None

    # ---- SSE ----
    return _execute_sse(ins, st, mem, ea)


def _execute_sse(
    ins: Instruction, st: CPUState, mem: Memory, ea: int | None
) -> tuple[bool, int | None]:
    m = ins.mnemonic
    ops = ins.operands

    def read_xmm_or_mem(op: Operand, width: int) -> int:
        if isinstance(op, Reg):
            if op.kind == "xmm":
                return st.xmm[op.index] & ((1 << (width * 8)) - 1)
            return st.read_reg(op)
        assert isinstance(op, Mem) and ea is not None
        return mem.read_uint(ea, width)

    if m in ("movsd", "movss"):
        width = 8 if m == "movsd" else 4
        dst, src = ops
        val = read_xmm_or_mem(src, width)
        if isinstance(dst, Reg):
            if isinstance(src, Reg):
                # reg-reg: merge low lane, preserve upper
                mask = (1 << (width * 8)) - 1
                st.xmm[dst.index] = (st.xmm[dst.index] & ~mask) | val
            else:
                st.xmm[dst.index] = val  # load zero-extends
        else:
            assert ea is not None
            mem.write_uint(ea, val, width)
        return False, ea
    if m in ("movapd", "movaps", "movupd", "movups"):
        dst, src = ops
        if m in ("movapd", "movaps") and ea is not None and ea % 16 != 0:
            raise SimulatorError(f"misaligned {m} access at {ea:#x}")
        val = read_xmm_or_mem(src, 16)
        if isinstance(dst, Reg):
            st.xmm[dst.index] = val
        else:
            assert ea is not None
            mem.write_u128(ea, val)
        return False, ea
    if m in ("movq", "movd"):
        width = 8 if m == "movq" else 4
        dst, src = ops
        if isinstance(src, Reg) and src.kind == "xmm":
            val = st.xmm[src.index] & ((1 << (width * 8)) - 1)
        else:
            val = _read(src, st, mem, ea, width)
        if isinstance(dst, Reg) and dst.kind == "xmm":
            st.xmm[dst.index] = val  # zero-extends (Fig. 4b note on movq)
        else:
            _write(dst, val, st, mem, ea)
        return False, ea
    if m in ("movlpd", "movhpd"):
        lane = 0 if m == "movlpd" else 1
        dst, src = ops
        if isinstance(dst, Reg):
            val = read_xmm_or_mem(src, 8)
            st.xmm[dst.index] = _xmm_set_lane64(st.xmm[dst.index], lane, val)
        else:
            assert isinstance(src, Reg) and ea is not None
            mem.write_u64(ea, _xmm_lane64(st.xmm[src.index], lane))
        return False, ea
    if m in ("pxor", "por", "pand", "pandn", "xorpd", "xorps", "andpd", "andps",
             "orpd", "orps"):
        dst, src = ops
        assert isinstance(dst, Reg)
        a = st.xmm[dst.index]
        b = read_xmm_or_mem(src, 16)
        if m in ("pxor", "xorpd", "xorps"):
            res = a ^ b
        elif m in ("pand", "andpd", "andps"):
            res = a & b
        elif m == "pandn":
            res = (~a & MASK128) & b
        else:
            res = a | b
        st.xmm[dst.index] = res
        return False, ea
    if m in ("addsd", "subsd", "mulsd", "minsd", "maxsd", "divsd", "sqrtsd"):
        dst, src = ops
        assert isinstance(dst, Reg)
        a = bits_to_f64(st.xmm[dst.index])
        b = bits_to_f64(read_xmm_or_mem(src, 8))
        if m == "divsd":
            r = _fp_div(a, b)
        elif m == "sqrtsd":
            r = b ** 0.5 if b >= 0 else float("nan")
        else:
            r = _SD_OPS[m](a, b)
        st.xmm[dst.index] = _xmm_set_lane64(st.xmm[dst.index], 0, f64_to_bits(r))
        return False, ea
    if m in ("addss", "subss", "mulss", "divss", "minss", "maxss", "sqrtss"):
        dst, src = ops
        assert isinstance(dst, Reg)
        a = bits_to_f32(st.xmm[dst.index])
        b = bits_to_f32(read_xmm_or_mem(src, 4))
        core = m[:-2] + "sd"
        if m == "divss":
            r = _fp_div(a, b)
        elif m == "sqrtss":
            r = b ** 0.5 if b >= 0 else float("nan")
        else:
            r = _SD_OPS[core](a, b)
        r32 = f32_to_bits(_f32_round(r))
        st.xmm[dst.index] = (st.xmm[dst.index] & ~0xFFFFFFFF) | r32
        return False, ea
    if m in ("addpd", "subpd", "mulpd", "divpd", "minpd", "maxpd", "sqrtpd"):
        dst, src = ops
        assert isinstance(dst, Reg)
        a = st.xmm[dst.index]
        b = read_xmm_or_mem(src, 16)
        out = 0
        for lane in (0, 1):
            x = bits_to_f64(_xmm_lane64(a, lane))
            y = bits_to_f64(_xmm_lane64(b, lane))
            core = m[:-2] + "sd"
            if m == "divpd":
                r = _fp_div(x, y)
            elif m == "sqrtpd":
                r = y ** 0.5 if y >= 0 else float("nan")
            else:
                r = _SD_OPS[core](x, y)
            out = _xmm_set_lane64(out, lane, f64_to_bits(r))
        st.xmm[dst.index] = out
        return False, ea
    if m == "haddpd":
        dst, src = ops
        assert isinstance(dst, Reg)
        a = st.xmm[dst.index]
        b = read_xmm_or_mem(src, 16)
        lo = bits_to_f64(_xmm_lane64(a, 0)) + bits_to_f64(_xmm_lane64(a, 1))
        hi = bits_to_f64(_xmm_lane64(b, 0)) + bits_to_f64(_xmm_lane64(b, 1))
        st.xmm[dst.index] = _xmm_set_lane64(_xmm_set_lane64(0, 0, f64_to_bits(lo)), 1, f64_to_bits(hi))
        return False, ea
    if m in ("unpcklpd", "unpckhpd"):
        dst, src = ops
        assert isinstance(dst, Reg)
        lane = 0 if m == "unpcklpd" else 1
        a = _xmm_lane64(st.xmm[dst.index], lane)
        b = _xmm_lane64(read_xmm_or_mem(src, 16), lane)
        st.xmm[dst.index] = _xmm_set_lane64(_xmm_set_lane64(0, 0, a), 1, b)
        return False, ea
    if m == "shufpd":
        dst, src, sel = ops
        assert isinstance(dst, Reg) and isinstance(sel, Imm)
        a = st.xmm[dst.index]
        b = read_xmm_or_mem(src, 16)
        lo = _xmm_lane64(a, sel.value & 1)
        hi = _xmm_lane64(b, (sel.value >> 1) & 1)
        st.xmm[dst.index] = _xmm_set_lane64(_xmm_set_lane64(0, 0, lo), 1, hi)
        return False, ea
    if m == "pshufd":
        dst, src, sel = ops
        assert isinstance(dst, Reg) and isinstance(sel, Imm)
        b = read_xmm_or_mem(src, 16)
        out = 0
        for i in range(4):
            j = (sel.value >> (2 * i)) & 3
            lane = (b >> (32 * j)) & 0xFFFFFFFF
            out |= lane << (32 * i)
        st.xmm[dst.index] = out
        return False, ea
    if m in ("paddq", "psubq", "paddd", "psubd", "pcmpeqd", "pcmpeqb", "pmuludq",
             "paddw", "paddb"):
        dst, src = ops
        assert isinstance(dst, Reg)
        a = st.xmm[dst.index]
        b = read_xmm_or_mem(src, 16)
        lane_bits = {"q": 64, "d": 32, "w": 16, "b": 8}[m[-1]]
        if m == "pmuludq":
            lo = ((a & 0xFFFFFFFF) * (b & 0xFFFFFFFF)) & MASK64
            hi = (((a >> 64) & 0xFFFFFFFF) * ((b >> 64) & 0xFFFFFFFF)) & MASK64
            st.xmm[dst.index] = lo | (hi << 64)
            return False, ea
        out = 0
        mask = (1 << lane_bits) - 1
        for sh in range(0, 128, lane_bits):
            x = (a >> sh) & mask
            y = (b >> sh) & mask
            if m.startswith("padd"):
                r = (x + y) & mask
            elif m.startswith("psub"):
                r = (x - y) & mask
            else:  # pcmpeq*
                r = mask if x == y else 0
            out |= r << sh
        st.xmm[dst.index] = out
        return False, ea
    if m in ("ucomisd", "comisd", "ucomiss", "comiss"):
        dst, src = ops
        assert isinstance(dst, Reg)
        width = 8 if m.endswith("sd") else 4
        conv = bits_to_f64 if width == 8 else bits_to_f32
        a = conv(st.xmm[dst.index])
        b = conv(read_xmm_or_mem(src, width))
        st.of = st.af = st.sf = False
        if a != a or b != b:  # unordered
            st.zf = st.pf = st.cf = True
        else:
            st.zf = a == b
            st.cf = a < b
            st.pf = False
        return False, ea
    if m in ("cvtsi2sd", "cvtsi2ss"):
        dst, src = ops
        assert isinstance(dst, Reg)
        ssize = src.size if isinstance(src, (Reg, Mem)) else 8
        val = to_signed(_read(src, st, mem, ea, ssize), ssize * 8)
        if m == "cvtsi2sd":
            st.xmm[dst.index] = _xmm_set_lane64(st.xmm[dst.index], 0, f64_to_bits(float(val)))
        else:
            st.xmm[dst.index] = (st.xmm[dst.index] & ~0xFFFFFFFF) | f32_to_bits(_f32_round(float(val)))
        return False, ea
    if m in ("cvttsd2si", "cvtsd2si", "cvttss2si", "cvtss2si"):
        dst, src = ops
        assert isinstance(dst, Reg)
        width = 8 if "sd" in m else 4
        conv = bits_to_f64 if width == 8 else bits_to_f32
        val = conv(read_xmm_or_mem(src, width))
        if m.startswith("cvtt"):
            i = int(val)  # truncation toward zero
        else:
            i = round(val)  # round-to-nearest-even matches Python round()
        st.write_reg(dst, i & ((1 << (dst.size * 8)) - 1))
        return False, ea
    if m in ("cvtsd2ss", "cvtss2sd"):
        dst, src = ops
        assert isinstance(dst, Reg)
        if m == "cvtsd2ss":
            v = bits_to_f64(read_xmm_or_mem(src, 8))
            st.xmm[dst.index] = (st.xmm[dst.index] & ~0xFFFFFFFF) | f32_to_bits(_f32_round(v))
        else:
            v = bits_to_f32(read_xmm_or_mem(src, 4))
            st.xmm[dst.index] = _xmm_set_lane64(st.xmm[dst.index], 0, f64_to_bits(v))
        return False, ea

    raise SimulatorError(f"unimplemented instruction {ins!r}")
