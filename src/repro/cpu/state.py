"""Architectural CPU state: GPRs, SSE registers, RFLAGS, RIP.

Registers are stored exactly as the paper's lifter models them (Sec. III-C):
GPRs as 64-bit unsigned ints, SSE registers as 128-bit unsigned ints, and
the six status flags as individual booleans.  Facet access (al/ah/eax/...)
is implemented here once and reused by the interpreter and by DBrew's
emulator meta-state.
"""

from __future__ import annotations

from repro.x86.instr import Reg

MASK8 = 0xFF
MASK16 = 0xFFFF
MASK32 = 0xFFFFFFFF
MASK64 = 0xFFFFFFFFFFFFFFFF
MASK128 = (1 << 128) - 1


def to_signed(value: int, bits: int) -> int:
    """Reinterpret an unsigned ``bits``-wide value as signed."""
    sign = 1 << (bits - 1)
    return (value & (sign - 1)) - (value & sign)


def to_unsigned(value: int, bits: int) -> int:
    """Mask a Python int to ``bits`` width."""
    return value & ((1 << bits) - 1)


class CPUState:
    """Mutable architectural state."""

    __slots__ = ("gpr", "xmm", "rip", "cf", "zf", "sf", "of", "pf", "af")

    def __init__(self) -> None:
        self.gpr: list[int] = [0] * 16
        self.xmm: list[int] = [0] * 16
        self.rip: int = 0
        self.cf = self.zf = self.sf = self.of = self.pf = self.af = False

    # -- GPR facets ----------------------------------------------------------

    def read_gp(self, index: int, size: int, high8: bool = False) -> int:
        v = self.gpr[index]
        if high8:
            return (v >> 8) & MASK8
        if size == 8:
            return v
        return v & ((1 << (size * 8)) - 1)

    def write_gp(self, index: int, value: int, size: int, high8: bool = False) -> None:
        if high8:
            self.gpr[index] = (self.gpr[index] & ~0xFF00) | ((value & MASK8) << 8)
        elif size == 8:
            self.gpr[index] = value & MASK64
        elif size == 4:
            # 32-bit writes zero the upper half (Fig. 4a)
            self.gpr[index] = value & MASK32
        else:
            mask = (1 << (size * 8)) - 1
            self.gpr[index] = (self.gpr[index] & ~mask) | (value & mask)

    def read_reg(self, reg: Reg) -> int:
        if reg.kind == "gp":
            return self.read_gp(reg.index, reg.size, reg.high8)
        return self.xmm[reg.index] & ((1 << (reg.size * 8)) - 1)

    def write_reg(self, reg: Reg, value: int) -> None:
        if reg.kind == "gp":
            self.write_gp(reg.index, value, reg.size, reg.high8)
        else:
            # full-register xmm writes; partial writes are handled by the
            # individual instruction semantics (preserve vs zero, Fig. 4b)
            self.xmm[reg.index] = value & MASK128

    # -- flags ---------------------------------------------------------------

    def flag(self, name: str) -> bool:
        return bool(getattr(self, name + "f"))

    def set_flag(self, name: str, value: bool) -> None:
        setattr(self, name + "f", bool(value))

    def flags_byte(self) -> str:
        """Debug rendering like 'osz.p.'."""
        return "".join(
            n if self.flag(n) else "."
            for n in ("o", "s", "z", "a", "p", "c")
        )

    def snapshot(self) -> dict[str, object]:
        """Copy of the full state for test assertions."""
        return {
            "gpr": list(self.gpr),
            "xmm": list(self.xmm),
            "rip": self.rip,
            "flags": {n: self.flag(n) for n in "oszapc"},
        }
