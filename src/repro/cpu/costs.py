"""Cycle cost model for the simulator.

The model is a serialized latency/throughput hybrid: every instruction has a
base cost, memory reads/writes add fixed penalties, taken branches add a
redirect penalty, and 16-byte accesses that are not 16-byte aligned pay an
unaligned penalty (the mechanism behind the paper's "LLVM-forced
vectorization is 23% slower than GCC's aligned loops" observation).

Absolute cycle counts are *not* meant to match Haswell; only the relative
ordering of code variants matters for the reproduction (see DESIGN.md §2).
The default numbers are loosely Agner-Fog-shaped for Haswell.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.x86 import isa
from repro.x86.instr import Instruction, Mem

#: default per-mnemonic base cost in cycles
_BASE_COSTS: dict[str, float] = {
    # integer
    "mov": 1, "movzx": 1, "movsx": 1, "movsxd": 1, "lea": 1,
    "add": 1, "sub": 1, "and": 1, "or": 1, "xor": 1, "cmp": 1, "test": 1,
    "adc": 1, "sbb": 1, "inc": 1, "dec": 1, "neg": 1, "not": 1,
    "shl": 1, "shr": 1, "sar": 1, "rol": 1, "ror": 1,
    "imul": 3, "mul": 3, "idiv": 25, "div": 25, "cqo": 1, "cdq": 1,
    "push": 1, "pop": 1, "leave": 2, "nop": 0.25,
    # control
    "jmp": 1, "call": 3, "ret": 2,
    # SSE moves / logic
    "movsd": 1, "movss": 1, "movapd": 1, "movaps": 1, "movupd": 1,
    "movups": 1, "movq": 1, "movd": 1, "movlpd": 1, "movhpd": 1,
    "pxor": 1, "por": 1, "pand": 1, "pandn": 1,
    "xorpd": 1, "xorps": 1, "andpd": 1, "andps": 1, "orpd": 1, "orps": 1,
    "unpcklpd": 1, "unpckhpd": 1, "unpcklps": 1, "unpckhps": 1,
    "shufpd": 1, "pshufd": 1,
    # SSE arithmetic (scalar and packed cost the same -> packed does 2x work)
    "addsd": 3, "subsd": 3, "mulsd": 5, "divsd": 20, "sqrtsd": 20,
    "minsd": 3, "maxsd": 3,
    "addss": 3, "subss": 3, "mulss": 5, "divss": 14, "sqrtss": 14,
    "addpd": 3, "subpd": 3, "mulpd": 5, "divpd": 28, "sqrtpd": 28,
    "minpd": 3, "maxpd": 3, "haddpd": 5,
    "addps": 3, "subps": 3, "mulps": 5, "divps": 14,
    "paddq": 1, "paddd": 1, "paddw": 1, "paddb": 1, "psubq": 1, "psubd": 1,
    "pcmpeqd": 1, "pcmpeqb": 1, "pmuludq": 5,
    # conversions / compares
    "cvtsi2sd": 4, "cvtsi2ss": 4, "cvttsd2si": 4, "cvtsd2si": 4,
    "cvttss2si": 4, "cvtss2si": 4, "cvtsd2ss": 4, "cvtss2sd": 2,
    "ucomisd": 2, "comisd": 2, "ucomiss": 2, "comiss": 2,
    "int3": 0, "ud2": 0, "syscall": 100,
}
for _m in isa.CC_NAMES:
    _BASE_COSTS[f"j{_m}"] = 1
    _BASE_COSTS[f"cmov{_m}"] = 1
    _BASE_COSTS[f"set{_m}"] = 1


@dataclass(frozen=True)
class CostModel:
    """Parameterized cycle cost model.

    ``base`` may be partially overridden via :meth:`with_overrides`, which
    the ablation benchmarks use to test the sensitivity of the reproduced
    figures to individual cost assumptions.
    """

    base: dict[str, float] = field(default_factory=lambda: dict(_BASE_COSTS))
    load_penalty: float = 3.0
    store_penalty: float = 1.0
    taken_branch_penalty: float = 1.0
    unaligned16_penalty: float = 2.0
    clock_ghz: float = 3.5
    #: calibration from *serialized* simulated cycles to Haswell wall time:
    #: a 4-wide out-of-order core overlaps most of the latencies this model
    #: adds up.  The single constant is fitted so the hard-coded element
    #: kernel lands at the paper's 10.54s; it rescales the seconds axis only
    #: and cancels out of every ratio the reproduction argues about.
    effective_parallelism: float = 47.0

    def with_overrides(self, **kwargs: float) -> "CostModel":
        """Return a copy with scalar parameters replaced."""
        return replace(self, **kwargs)

    def with_base(self, overrides: dict[str, float]) -> "CostModel":
        """Return a copy with per-mnemonic base costs replaced."""
        merged = dict(self.base)
        merged.update(overrides)
        return replace(self, base=merged)

    def instruction_cost(
        self, ins: Instruction, *, taken: bool = False,
        mem_addr: int | None = None,
    ) -> float:
        """Cycles for one dynamic instance of ``ins``.

        ``taken`` applies to conditional branches; ``mem_addr`` (the
        effective address actually accessed) enables the unaligned-16-byte
        penalty.
        """
        cost = self.base.get(ins.mnemonic)
        if cost is None:
            cost = 1.0
        mem = next((o for o in ins.operands if isinstance(o, Mem)), None)
        if mem is not None and ins.mnemonic != "lea":
            is_store = ins.operands and ins.operands[0] is mem
            cost += self.store_penalty if is_store else self.load_penalty
            if mem.size == 16 and mem_addr is not None and mem_addr % 16 != 0:
                cost += self.unaligned16_penalty
        if ins.mnemonic in ("push", "pop", "call", "ret"):
            cost += self.store_penalty if ins.mnemonic in ("push", "call") else self.load_penalty
        if taken and isa.control_class(ins.mnemonic) == "jcc":
            cost += self.taken_branch_penalty
        return cost

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert simulated cycles to calibrated wall seconds."""
        return cycles / (self.clock_ghz * 1e9 * self.effective_parallelism)


#: the default model used by the benchmark harness
HASWELL = CostModel()
