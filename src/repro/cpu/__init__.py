"""Deterministic x86-64 architectural simulator with a cycle cost model.

This is the project's substitute for the paper's Haswell testbed: machine
code produced by MCC, DBrew, or the MiniLLVM JIT executes here, and "running
time" is simulated cycles under :class:`repro.cpu.costs.CostModel`.
"""

from repro.cpu.state import CPUState
from repro.cpu.costs import CostModel, HASWELL
from repro.cpu.image import Image
from repro.cpu.simulator import Simulator

__all__ = ["CPUState", "CostModel", "HASWELL", "Image", "Simulator"]
