"""Fetch/decode/execute loop with cycle accounting and a SysV call helper.

The simulator is the measurement instrument for every figure reproduced in
this project: DBrew output, MCC output, and JIT output all run here under
the same :class:`~repro.cpu.costs.CostModel`, so comparisons between code
variants are apples-to-apples by construction.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.errors import SimulatorError
from repro.cpu.costs import HASWELL, CostModel
from repro.cpu.image import RETURN_SENTINEL, STACK_TOP, Image
from repro.cpu.semantics import bits_to_f64, execute, f64_to_bits
from repro.cpu.state import MASK64, CPUState, to_signed
from repro.x86.decoder import decode_one
from repro.x86.instr import Instruction
from repro.x86.registers import SYSV_INT_ARGS


@dataclass
class RunStats:
    """Dynamic execution statistics of one or more calls."""

    instructions: int = 0
    cycles: float = 0.0
    taken_branches: int = 0
    loads: int = 0
    stores: int = 0
    per_mnemonic: dict[str, int] = field(default_factory=dict)

    def merge(self, other: "RunStats") -> None:
        self.instructions += other.instructions
        self.cycles += other.cycles
        self.taken_branches += other.taken_branches
        self.loads += other.loads
        self.stores += other.stores
        for k, v in other.per_mnemonic.items():
            self.per_mnemonic[k] = self.per_mnemonic.get(k, 0) + v


@dataclass
class CallResult:
    """Result of one simulated SysV call."""

    rax: int
    xmm0: int
    stats: RunStats

    @property
    def int_value(self) -> int:
        """Return value interpreted as signed 64-bit."""
        return to_signed(self.rax, 64)

    @property
    def f64_value(self) -> float:
        """Return value interpreted as a double in xmm0."""
        return bits_to_f64(self.xmm0)


class Simulator:
    """Executes machine code from an :class:`Image`."""

    def __init__(self, image: Image, costs: CostModel = HASWELL) -> None:
        self.image = image
        self.costs = costs
        self.state = CPUState()
        self._decode_cache: dict[int, Instruction] = {}

    def invalidate_code(self) -> None:
        """Drop the decode cache (call after writing new code to memory)."""
        self._decode_cache.clear()

    def _fetch(self, rip: int) -> Instruction:
        ins = self._decode_cache.get(rip)
        if ins is None:
            window = self.image.memory.read(
                rip, min(16, self._bytes_left(rip))
            )
            ins = decode_one(window, 0, rip)
            self._decode_cache[rip] = ins
        return ins

    def _bytes_left(self, addr: int) -> int:
        for start, size in self.image.memory.regions():
            if start <= addr < start + size:
                return start + size - addr
        raise SimulatorError(f"rip at unmapped address {addr:#x}")

    def call(
        self,
        target: int | str,
        int_args: tuple[int, ...] = (),
        f64_args: tuple[float, ...] = (),
        *,
        max_steps: int = 200_000_000,
        stats: RunStats | None = None,
    ) -> CallResult:
        """Call ``target`` with the System V calling convention.

        ``int_args`` fill rdi/rsi/rdx/rcx/r8/r9; ``f64_args`` fill
        xmm0..xmm7.  Stack arguments are not supported (the paper's kernels
        never need them).  Returns rax / xmm0 and execution statistics.
        """
        if isinstance(target, str):
            target = self.image.symbol(target)
        if len(int_args) > 6 or len(f64_args) > 8:
            raise SimulatorError("stack-passed arguments are not supported")
        st = self.state
        st.gpr = [0] * 16
        st.xmm = [0] * 16
        st.gpr[4] = STACK_TOP - 8  # ensure (rsp % 16) == 8 at entry, like call
        for reg, val in zip(SYSV_INT_ARGS, int_args):
            st.gpr[reg] = val & MASK64
        for i, val in enumerate(f64_args):
            st.xmm[i] = f64_to_bits(val)
        self.image.memory.write_u64(st.gpr[4], RETURN_SENTINEL)
        st.rip = target

        local = stats if stats is not None else RunStats()
        mem = self.image.memory
        costs = self.costs
        fetch = self._fetch
        per = local.per_mnemonic
        steps = 0
        cycles = 0.0
        while st.rip != RETURN_SENTINEL:
            ins = fetch(st.rip)
            taken, mem_addr = execute(ins, st, mem)
            cycles += costs.instruction_cost(ins, taken=taken, mem_addr=mem_addr)
            steps += 1
            per[ins.mnemonic] = per.get(ins.mnemonic, 0) + 1
            if taken:
                local.taken_branches += 1
            if steps > max_steps:
                raise SimulatorError(f"exceeded {max_steps} simulated instructions")
        local.instructions += steps
        local.cycles += cycles
        return CallResult(rax=st.gpr[0], xmm0=st.xmm[0], stats=local)

    def call_f64(self, target: int | str, int_args: tuple[int, ...] = (),
                 f64_args: tuple[float, ...] = (), **kw: object) -> float:
        """Shorthand: call and return xmm0 as a double."""
        return self.call(target, int_args, f64_args, **kw).f64_value  # type: ignore[arg-type]

    def call_int(self, target: int | str, int_args: tuple[int, ...] = (),
                 f64_args: tuple[float, ...] = (), **kw: object) -> int:
        """Shorthand: call and return rax as signed."""
        return self.call(target, int_args, f64_args, **kw).int_value  # type: ignore[arg-type]


def pack_f64(values: list[float]) -> bytes:
    """Pack doubles little-endian (helper for test fixtures)."""
    return struct.pack(f"<{len(values)}d", *values)
