"""Executable image: simulated memory + symbols + allocators.

An :class:`Image` is what MCC's linker produces and what DBrew / the JIT
extend at "runtime": it owns the simulated memory, a symbol table, a bump
allocator for data, and a code allocator for newly generated functions.
Layout mirrors a small static Linux binary:

* code at ``0x0040_0000``
* read-only data at ``0x0060_0000``
* mutable globals / heap at ``0x0080_0000``
* JIT code area at ``0x0100_0000``
* stack top at ``0x7fff_f000`` growing down
"""

from __future__ import annotations

import threading
import uuid
from typing import Callable

from repro.errors import SimulatorError
from repro.mem.layout import align_up
from repro.mem.memory import Memory

CODE_BASE = 0x0040_0000
RODATA_BASE = 0x0060_0000
DATA_BASE = 0x0080_0000
JIT_BASE = 0x0100_0000
#: runtime-owned probe counter/event buffers (repro.instrument) — mapped
#: lazily on the first alloc_probe so uninstrumented images, snapshots and
#: farm specs never carry the region
PROBE_BASE = 0x0200_0000
PROBE_SIZE = 1 << 20
STACK_TOP = 0x7FFF_F000
STACK_SIZE = 0x10_0000

#: magic return address that stops the simulator when popped by `ret`
RETURN_SENTINEL = 0x00DE_AD00


class Image:
    """A loaded program plus room for runtime code generation."""

    def __init__(self, *, code_size: int = 1 << 20, rodata_size: int = 1 << 20,
                 data_size: int = 1 << 22, jit_size: int = 1 << 20) -> None:
        self.memory = Memory()
        self.memory.map(CODE_BASE, code_size)
        self.memory.map(RODATA_BASE, rodata_size)
        self.memory.map(DATA_BASE, data_size)
        self.memory.map(JIT_BASE, jit_size)
        self.memory.map(STACK_TOP - STACK_SIZE, STACK_SIZE + 0x1000)
        self.symbols: dict[str, int] = {}
        self.func_sizes: dict[str, int] = {}
        self._code_cursor = CODE_BASE
        self._rodata_cursor = RODATA_BASE
        self._data_cursor = DATA_BASE
        self._jit_cursor = JIT_BASE
        self._code_limit = CODE_BASE + code_size
        self._rodata_limit = RODATA_BASE + rodata_size
        self._data_limit = DATA_BASE + data_size
        self._jit_limit = JIT_BASE + jit_size
        self._invalidation_hooks: list[Callable[[int, int], None]] = []
        #: serializes code *installation* (base-address computation through
        #: add_function) across threads — the JIT engine computes the base
        #: before assembling, so two concurrent installs without this lock
        #: would claim the same address.  Lift/optimize stages stay
        #: lock-free; only the install tail of each compile serializes.
        self.codegen_lock = threading.RLock()
        #: bumped once per *successful* patch_code; a failed patch rolls
        #: this back together with the bytes, so observers can use it as a
        #: cheap "did code change" check
        self.generation = 0
        #: identity component of :meth:`content_token`.  Process-unique by
        #: default; spec-built farm images override it with a spec-digest
        #: tuple so tokens mean the same bytes in any process
        self.content_key: object = uuid.uuid4().hex
        self.memory.content_token_fn = self.content_token

    def content_token(self) -> tuple:
        """Key identifying the image's current *code* content.

        Folds the patch generation and both code-allocation cursors, so
        every sanctioned path that changes executable bytes —
        ``patch_code`` (bumps ``generation``), ``add_function`` and
        ``reserve_code`` (move a cursor) — yields a fresh token.  Derived
        state keyed by the token (the lifter's decoded-trace cache) goes
        stale by construction instead of needing invalidation hooks.
        """
        return (self.content_key, self.generation,
                self._code_cursor, self._jit_cursor)

    # -- runtime patching --------------------------------------------------------

    def add_invalidation_hook(self, hook: Callable[[int, int], None]) -> None:
        """Register ``hook(addr, size)`` to fire when installed bytes are
        patched (the specialization cache uses this to drop entries whose
        content digests were memoized)."""
        if hook not in self._invalidation_hooks:
            self._invalidation_hooks.append(hook)

    def remove_invalidation_hook(self, hook: Callable[[int, int], None]) -> None:
        try:
            self._invalidation_hooks.remove(hook)
        except ValueError:
            pass

    def patch_code(self, addr: int, data: bytes) -> None:
        """Overwrite installed bytes *and tell everyone who memoized them*.

        Direct ``image.memory.write`` is still possible (and used for plain
        data), but code patches must go through here so caches keyed by
        function-content digests re-read the new bytes.

        The patch is atomic from the caller's view: if the write or any
        invalidation hook raises, the previous bytes and the generation
        counter are restored (and the hooks re-run over the restore), so a
        failed install never leaves a half-patched image behind.
        """
        previous = self.memory.read(addr, len(data))  # validates the range
        generation = self.generation
        self.memory.write(addr, data)
        self.generation = generation + 1
        try:
            for hook in list(self._invalidation_hooks):
                hook(addr, len(data))
        except BaseException:
            self.memory.write(addr, previous)
            self.generation = generation
            # the memoizers already saw (or partially saw) the new bytes:
            # re-invalidate over the restored content, tolerating repeated
            # failure so the image itself always ends up consistent
            for hook in list(self._invalidation_hooks):
                try:
                    hook(addr, len(data))
                except BaseException:
                    pass
            raise

    # -- allocation ------------------------------------------------------------

    def _bump(self, cursor: int, limit: int, size: int, align: int) -> tuple[int, int]:
        addr = align_up(cursor, align)
        if addr + size > limit:
            raise SimulatorError("image region exhausted")
        return addr, addr + size

    def reserve_code(self, size: int, align: int = 16) -> int:
        """Reserve static code space; returns its address."""
        with self.codegen_lock:
            addr, self._code_cursor = self._bump(self._code_cursor, self._code_limit, size, align)
        return addr

    def add_function(self, name: str, code: bytes, *, jit: bool = False) -> int:
        """Install machine code under ``name``; returns the entry address.

        All-or-nothing: the allocation cursor and symbol table only commit
        after the bytes are in place, so a failed install is invisible.
        """
        with self.codegen_lock:
            if jit:
                addr, cursor = self._bump(self._jit_cursor, self._jit_limit, len(code), 16)
            else:
                addr, cursor = self._bump(self._code_cursor, self._code_limit, len(code), 16)
            self.memory.write(addr, code)
            if jit:
                self._jit_cursor = cursor
            else:
                self._code_cursor = cursor
            self.symbols[name] = addr
            self.func_sizes[name] = len(code)
        return addr

    def next_code_addr(self, *, jit: bool = False, align: int = 16) -> int:
        """The address the next add_function call would use (for label layout)."""
        cursor = self._jit_cursor if jit else self._code_cursor
        return align_up(cursor, align)

    def alloc_rodata(self, data: bytes, align: int = 16) -> int:
        """Place read-only bytes; returns their address."""
        with self.codegen_lock:
            addr, self._rodata_cursor = self._bump(
                self._rodata_cursor, self._rodata_limit, len(data), align
            )
            self.memory.write(addr, data)
        return addr

    def alloc_data(self, size: int, align: int = 16, data: bytes | None = None) -> int:
        """Allocate zeroed mutable space (the "heap"); returns its address."""
        with self.codegen_lock:
            addr, self._data_cursor = self._bump(self._data_cursor, self._data_limit, size, align)
            if data is not None:
                self.memory.write(addr, data)
        return addr

    def alloc_probe(self, size: int, align: int = 16) -> int:
        """Allocate zeroed probe-buffer space (``repro.instrument``).

        The probe region is disjoint from every program region so the
        differential gate can whitelist it wholesale: instrumented code may
        differ from the original *only* here.  Mapped on first use —
        spec-built farm images and pre-instrumentation snapshots never see
        it — which also means images restored from ``Image.__new__`` paths
        (gate shadows, ``ImageSpec.build``) pick it up transparently.
        """
        with self.codegen_lock:
            cursor = getattr(self, "_probe_cursor", None)
            if cursor is None:
                self.memory.map(PROBE_BASE, PROBE_SIZE)
                cursor = PROBE_BASE
                self._probe_limit = PROBE_BASE + PROBE_SIZE
            addr, self._probe_cursor = self._bump(
                cursor, self._probe_limit, size, align)
        return addr

    @staticmethod
    def probe_extent() -> tuple[int, int]:
        """The [lo, hi) address range probe buffers live in."""
        return (PROBE_BASE, PROBE_BASE + PROBE_SIZE)

    # -- symbols ----------------------------------------------------------------

    def symbol(self, name: str) -> int:
        """Address of a defined symbol."""
        try:
            return self.symbols[name]
        except KeyError:
            raise SimulatorError(f"undefined symbol {name!r}") from None

    def function_bytes(self, name: str) -> bytes:
        """The machine code installed for a function symbol."""
        return self.memory.read(self.symbol(name), self.func_sizes[name])

    def symbol_at(self, addr: int) -> str | None:
        """Reverse-lookup a symbol name by address (exact match)."""
        for name, a in self.symbols.items():
            if a == addr:
                return name
        return None
