"""GuardedTransformer: the fault-tolerant front door for the Fig. 1 pipeline.

The paper requires rewrite failures to be *internal and recoverable*
(Sec. II: "the default error handler falls back to the original function").
Production rewriters go further — every rewriter fails on some real inputs
(Schulte et al.'s broad comparative evaluation), and LeanBin gates
recompiled code behind dynamic validation before swapping it in.  This
module composes both policies around the whole transform pipeline:

* a **degradation ladder** — transformation modes attempted in order of
  expected payoff (``dbrew+llvm`` -> ``llvm-fix`` -> ``llvm`` ->
  ``original``), each rung catching :class:`~repro.errors.ReproError` and
  recording why it failed; the last rung always succeeds, so
  :meth:`GuardedTransformer.transform` *always returns a callable entry*;
* **resource budgets** — one :class:`~repro.guard.budget.Budget` shared by
  every rung bounds wall-clock and stage fuel, so adversarial inputs
  degrade instead of hanging;
* a **differential verification gate** — each specialized candidate must
  agree with the original on probe executions before it is served
  (:mod:`repro.guard.verify`); a passing candidate's cache entry is marked
  ``gated``, a rejected candidate is *evicted* from the positive cache so
  it can never be served unverified later;
* **failure quarantine** — failed (key, rung) pairs are negative-cached
  with TTL/back-off (:mod:`repro.cache.negative`), so a function that
  cannot specialize is served its fallback instantly on repeat requests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.analysis.checkers import DEFAULT_PREGATE, run_checkers
from repro.analysis.findings import errors_only
from repro.cache import NegativeCache, NegativeEntry, SpecializationCache
from repro.cache import keys as cache_keys
from repro.cpu.image import Image
from repro.dbrew import Rewriter, raising_error_handler
from repro.errors import BudgetExceededError, ReproError, VerificationError
from repro.guard.budget import Budget
from repro.guard.verify import DifferentialGate, GateOptions, GateReport
from repro.ir.codegen import JITOptions
from repro.ir.passes import O3Options
from repro.jit import BinaryTransformer, TransformResult
from repro.lift import FunctionSignature, LiftOptions
from repro.lift.fixation import FixedMemory
from repro.obs.metrics import CounterView, MetricsRegistry
from repro.obs.trace import TRACER as _TR

#: the full degradation ladder, strongest specialization first
LADDER = ("dbrew+llvm", "llvm-fix", "llvm", "original")


@dataclass
class RungAttempt:
    """What happened on one rung of the ladder for one transform."""

    rung: str
    ok: bool = False
    seconds: float = 0.0
    error: str | None = None
    error_type: str | None = None
    #: structured ReproError.context of the failure (stage, addr, ...)
    context: dict[str, Any] = field(default_factory=dict)
    #: served from quarantine without attempting (fresh negative entry)
    quarantined: bool = False
    verified: bool = False


class GuardStats:
    """Aggregate ladder counters across one GuardedTransformer's lifetime.

    Backed by a :class:`~repro.obs.metrics.MetricsRegistry` (private by
    default; share one to aggregate across transformers — the tiered
    engine's per-job guards do this).  The legacy attributes stay usable
    exactly as before: scalars read and write as ints, the dict-valued
    counters index like dicts.
    """

    transforms = CounterView("_transforms")
    verification_rejections = CounterView("_verification_rejections")
    #: candidates rejected by the *static* pre-gate (no probe budget spent)
    static_rejections = CounterView("_static_rejections")
    #: candidates whose emitted code the machine-level verifier refuted
    #: (quarantined before installation; no probe budget spent)
    machine_rejections = CounterView("_machine_rejections")
    budget_exceeded = CounterView("_budget_exceeded")
    #: rungs skipped because a fresh quarantine entry covered them
    negative_served = CounterView("_negative_served")
    #: transforms that degraded all the way to the original function
    fallbacks = CounterView("_fallbacks")

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        r = self.registry
        #: transforms served by each rung
        self.served_by = r.family("guard.served_by", {x: 0 for x in LADDER})
        #: rung attempt failures, by rung
        self.failures = r.family("guard.failures", {x: 0 for x in LADDER})
        #: static rejections by checker name (the recorded skip reason)
        self.static_skip_reasons = r.family("guard.static_skip_reasons")
        self._transforms = r.counter("guard.transforms")
        self._verification_rejections = r.counter(
            "guard.verification_rejections")
        self._static_rejections = r.counter("guard.static_rejections")
        self._machine_rejections = r.counter("guard.machine_rejections")
        self._budget_exceeded = r.counter("guard.budget_exceeded")
        self._negative_served = r.counter("guard.negative_served")
        self._fallbacks = r.counter("guard.fallbacks")

    def reset(self) -> None:
        """Zero every counter (routes through the backing registry)."""
        self.registry.reset()

    def snapshot(self) -> dict[str, Any]:
        return {
            "transforms": self.transforms,
            "served_by": dict(self.served_by),
            "failures": dict(self.failures),
            "verification_rejections": self.verification_rejections,
            "static_rejections": self.static_rejections,
            "machine_rejections": self.machine_rejections,
            "static_skip_reasons": dict(self.static_skip_reasons),
            "budget_exceeded": self.budget_exceeded,
            "negative_served": self.negative_served,
            "fallbacks": self.fallbacks,
        }


@dataclass
class GuardResult:
    """Outcome of one guarded transform: always a callable entry address."""

    addr: int
    name: str
    #: the rung that served this transform
    mode: str
    attempts: list[RungAttempt] = field(default_factory=list)
    verified: bool = False
    gate: GateReport | None = None
    result: TransformResult | None = None
    seconds: float = 0.0

    @property
    def degraded(self) -> bool:
        return self.mode == "original"

    def failure_summary(self) -> list[str]:
        """One line per failed rung (for logs)."""
        return [f"{a.rung}: {'quarantined' if a.quarantined else a.error}"
                for a in self.attempts if not a.ok]


class GuardedTransformer:
    """Fault-tolerant, budgeted, verified runtime transformation driver."""

    def __init__(self, image: Image, *,
                 cache: SpecializationCache | None = None,
                 budget: Budget | None = None,
                 gate_options: GateOptions = GateOptions(),
                 verify: bool = True,
                 lift_options: LiftOptions | None = None,
                 o3_options: O3Options | None = None,
                 jit_options: JITOptions | None = None,
                 negative: NegativeCache | None = None,
                 static_precheck: bool = True,
                 validator: "object | None" = None,
                 machine_verify: bool = False,
                 registry: MetricsRegistry | None = None) -> None:
        self.image = image
        self.cache = cache
        self.budget = budget
        self.verify = verify
        #: run the cheap static checkers (repro.analysis) on each fresh
        #: candidate's IR before the dynamic gate — a statically-rejected
        #: candidate never spends probe budget
        self.static_precheck = static_precheck
        self.gate = DifferentialGate(image, gate_options)
        #: the registry backing this guard's stats and gate verdict
        #: counters; pass a shared one to aggregate across transformers
        self.registry = registry if registry is not None else MetricsRegistry()
        self.stats = GuardStats(self.registry)
        #: dynamic-gate verdict counters (one per gated candidate)
        self._gate_pass = self.registry.counter("guard.gate.pass")
        self._gate_reject = self.registry.counter("guard.gate.reject")
        self._gate_vacuous = self.registry.counter("guard.gate.vacuous")
        #: quarantine: the attached cache's by default, standalone otherwise
        if negative is not None:
            self.negative = negative
        elif cache is not None:
            self.negative = cache.negative
        else:
            self.negative = NegativeCache()
        self.tx = BinaryTransformer(
            image, lift_options=lift_options, o3_options=o3_options,
            jit_options=jit_options, cache=cache, budget=budget,
            validator=validator, machine_verify=machine_verify,
        )

    # -- keys ----------------------------------------------------------------

    def _guard_key(self, entry: int, signature: FunctionSignature,
                   fixes: dict[int, int | float | FixedMemory] | None,
                   mem_regions: Sequence[tuple[int, int]]) -> str:
        """Content key of one guarded request (shared by all rungs)."""
        if self.cache is not None:
            code = self.cache.code_digest(self.image, entry)
        else:
            extent = cache_keys.function_extent(self.image, entry)
            code = None if extent is None else cache_keys.digest_bytes(
                self.image.memory.read(extent[0], extent[1]))
        if code is None:
            code = f"@{entry:#x}/g{self.image.generation}"
        try:
            fdigest = cache_keys.fixes_digest(fixes, self.image.memory)
        except ReproError:
            fdigest = repr(sorted(fixes)) if fixes else "none"
        return cache_keys.digest_str(
            "guard", code, cache_keys.signature_digest(signature), fdigest,
            repr(sorted(mem_regions)),
            cache_keys.options_digest(self.tx.o3_options),
            cache_keys.options_digest(self.tx.jit_options),
        )

    # -- rungs ----------------------------------------------------------------

    def _attempt(self, rung: str, entry: int, out_name: str,
                 signature: FunctionSignature,
                 fixes: dict[int, int | float | FixedMemory] | None,
                 mem_regions: Sequence[tuple[int, int]],
                 dbrew_entry: int) -> TransformResult:
        if rung == "dbrew+llvm":
            rw = Rewriter(self.image, dbrew_entry, cache=self.cache,
                          budget=self.budget)
            rw.error_handler = raising_error_handler
            rw.set_signature(signature.params, signature.ret)
            for i, v in (fixes or {}).items():
                if isinstance(v, FixedMemory):
                    rw.set_par(i, v.addr)
                    rw.set_mem(v.addr, v.addr + v.size)
                elif isinstance(v, float):
                    rw.set_par_f64(i, v)
                else:
                    rw.set_par(i, v)
            for start, end in mem_regions:
                rw.set_mem(start, end)
            addr = rw.rewrite(name=out_name + ".dbrew")
            return self.tx.llvm_identity(addr, signature, name=out_name)
        if rung == "llvm-fix":
            return self.tx.llvm_fixed(entry, signature, fixes or {},
                                      name=out_name)
        if rung == "llvm":
            return self.tx.llvm_identity(entry, signature, name=out_name)
        raise ValueError(f"unknown ladder rung {rung!r}")

    def _static_pregate(self, result: TransformResult) -> None:
        """Reject a candidate on static findings before any probe runs.

        Raises :class:`VerificationError` with ``stage="static-verify"``
        so the ladder's existing eviction/quarantine/fall-through machinery
        applies unchanged; the dynamic gate never runs for the candidate.
        """
        func = result.function
        if func is None or func.is_declaration or not func.blocks:
            return
        findings = errors_only(run_checkers(func, DEFAULT_PREGATE))
        if findings:
            first = findings[0]
            raise VerificationError(
                f"static pre-gate: {first.format()}"
                + (f" (+{len(findings) - 1} more)" if len(findings) > 1 else ""),
                stage="static-verify", checker=first.checker,
                findings=len(findings),
            )

    # -- the guarded transform -------------------------------------------------

    def transform(self, func: str | int, signature: FunctionSignature,
                  fixes: dict[int, int | float | FixedMemory] | None = None,
                  *, mem_regions: Sequence[tuple[int, int]] = (),
                  name: str | None = None,
                  probes: Sequence[tuple] = (),
                  ladder: Sequence[str] | None = None,
                  dbrew_func: str | int | None = None) -> GuardResult:
        """Attempt the ladder; always returns a callable entry address.

        ``fixes`` drives both specializing rungs (DBrew ``set_par`` /
        ``set_mem`` and IR-level fixation); ``mem_regions`` declares extra
        fixed memory for DBrew; ``probes`` are user argument vectors for
        the verification gate (one value per non-fixed parameter);
        ``dbrew_func`` optionally rewrites a different entry on the DBrew
        rung (the paper's line kernels keep a callable element function for
        DBrew to inline).  A rung whose requirements are not met (the
        specializing rungs without ``fixes``) is skipped silently; an
        explicit ``ladder`` naming an *unknown* rung is a caller error and
        raises :class:`ValueError` up front (only pipeline failures walk
        the ladder).

        Warm-path note: a machine-stage cache hit skips the gate only when
        the entry carries the ``gated`` bit — i.e. it passed the gate when
        this (or another) guard installed it; ``verified`` is only True
        when the gate ran conclusively on *this* request.  Machine entries
        installed by an unguarded :class:`BinaryTransformer` sharing the
        cache are not gated and are verified on first guarded use; entries
        the gate rejects are evicted, so expired quarantine can never
        resurrect code proven divergent.
        """
        if not _TR.enabled:
            return self._transform_impl(func, signature, fixes,
                                        mem_regions=mem_regions, name=name,
                                        probes=probes, ladder=ladder,
                                        dbrew_func=dbrew_func)
        label = func if isinstance(func, str) else f"f{func:x}"
        with _TR.span("guard.transform", {"func": label}):
            return self._transform_impl(func, signature, fixes,
                                        mem_regions=mem_regions, name=name,
                                        probes=probes, ladder=ladder,
                                        dbrew_func=dbrew_func)

    def _transform_impl(self, func: str | int, signature: FunctionSignature,
                        fixes: dict[int, int | float | FixedMemory] | None = None,
                        *, mem_regions: Sequence[tuple[int, int]] = (),
                        name: str | None = None,
                        probes: Sequence[tuple] = (),
                        ladder: Sequence[str] | None = None,
                        dbrew_func: str | int | None = None) -> GuardResult:
        t_start = time.perf_counter()
        entry = self.image.symbol(func) if isinstance(func, str) else func
        base = func if isinstance(func, str) else f"f{func:x}"
        out_name = name or f"{base}.guarded"
        dbrew_entry = entry if dbrew_func is None else (
            self.image.symbol(dbrew_func) if isinstance(dbrew_func, str)
            else dbrew_func)

        rungs = tuple(ladder) if ladder is not None else LADDER
        unknown = [r for r in rungs if r not in LADDER]
        if unknown:
            raise ValueError(
                f"unknown ladder rung(s) {unknown!r}: valid rungs are "
                f"{', '.join(LADDER)}")
        if ladder is None and not fixes and not mem_regions:
            # nothing to specialize: don't waste budget on the fixing rungs
            rungs = tuple(r for r in rungs
                          if r not in ("dbrew+llvm", "llvm-fix"))
        if not rungs or rungs[-1] != "original":
            rungs = rungs + ("original",)

        if self.budget is not None:
            self.budget.start()
        self.stats.transforms += 1
        out = GuardResult(addr=entry, name=out_name, mode="original")

        # the guard key digests code bytes + fixed-memory contents — real
        # work on the microsecond warm path.  Compute it lazily: the happy
        # path (empty quarantine, rung succeeds) never needs it.
        key: str | None = None

        def guard_key() -> str:
            nonlocal key
            if key is None:
                key = self._guard_key(entry, signature, fixes, mem_regions)
            return key

        for rung in rungs:
            attempt = RungAttempt(rung=rung)
            out.attempts.append(attempt)
            if rung == "original":
                attempt.ok = True
                self.image.symbols[out_name] = entry
                size = _known_size(self.image, entry)
                if size is not None:
                    self.image.func_sizes[out_name] = size
                out.addr, out.mode = entry, "original"
                self.stats.served_by["original"] += 1
                self.stats.fallbacks += 1
                break

            quarantined = (self._check_negative(f"{guard_key()}:{rung}")
                           if len(self.negative) else None)
            if quarantined is not None:
                attempt.quarantined = True
                attempt.error = quarantined.reason
                attempt.error_type = "Quarantined"
                attempt.context = dict(quarantined.context)
                self.stats.negative_served += 1
                continue

            t0 = time.perf_counter()
            result: TransformResult | None = None
            rspan = _TR.start(f"guard.rung.{rung}", {"name": out_name}) \
                if _TR.enabled else None
            try:
                result = self._attempt(rung, entry, out_name, signature,
                                       fixes, mem_regions, dbrew_entry)
                # static pre-gate: free compared to probe executions, and
                # it rejects whole bug classes (malformed phis, undef
                # reaching a sink, provable out-of-region access) with an
                # instruction-precise reason the dynamic gate cannot give.
                # Machine-gated cache hits skip it like they skip the gate.
                if self.static_precheck and not result.machine_gated:
                    self._static_pregate(result)
                # a machine-stage hit whose entry carries the gated bit
                # passed the gate when it was installed (and
                # Image.patch_code invalidation keeps it honest): don't
                # re-pay the probe executions on the warm path.  Anything
                # else — fresh compiles and entries installed by an
                # unguarded BinaryTransformer — must pass the gate now.
                # An *inconclusive* machine proof downgrades to the dynamic
                # gate as mandatory: even a guard configured with
                # verify=False must not install code the static verifier
                # could neither prove nor refute.
                must_gate = result.machine_verdict == "inconclusive"
                if (self.verify or must_gate) and not result.machine_gated:
                    gspan = _TR.start("guard.gate", {"rung": rung}) \
                        if _TR.enabled else None
                    try:
                        out.gate = self.gate.gate(
                            entry, result.addr, signature, fixes, probes,
                            self.budget)
                    finally:
                        if gspan is not None:
                            _TR.finish(gspan)
                    # verified = a conclusive comparison happened on this
                    # request, not merely that the gate had no objection
                    attempt.verified = not out.gate.vacuous
                    if out.gate.vacuous:
                        self._gate_vacuous.value += 1
                    else:
                        self._gate_pass.value += 1
                    if self.cache is not None \
                            and result.machine_key is not None:
                        self.cache.mark_machine_gated(
                            self.image, result.machine_key)
            except ReproError as exc:
                attempt.seconds = time.perf_counter() - t0
                attempt.error = str(exc)
                attempt.error_type = type(exc).__name__
                attempt.context = dict(exc.context)
                self.stats.failures[rung] += 1
                if isinstance(exc, VerificationError):
                    if exc.context.get("stage") == "static-verify":
                        self.stats.static_rejections += 1
                        checker = exc.context.get("checker")
                        if checker:
                            self.stats.static_skip_reasons[checker] = (
                                self.stats.static_skip_reasons.get(checker, 0)
                                + 1)
                    elif exc.context.get("stage") == "machine-verify":
                        # refuted by the machine-level verifier before
                        # installation; the transformer already quarantined
                        # the machine key (machine:<xkey>)
                        self.stats.machine_rejections += 1
                    else:
                        self.stats.verification_rejections += 1
                        self._gate_reject.value += 1
                    # the candidate was installed (and positively cached)
                    # before the gate ran: evict it, or an expired
                    # quarantine entry would later serve code proven
                    # divergent without re-gating it
                    if self.cache is not None and result is not None \
                            and result.machine_key is not None:
                        self.cache.evict_machine(self.image,
                                                 result.machine_key)
                if isinstance(exc, BudgetExceededError):
                    self.stats.budget_exceeded += 1
                self._record_negative(f"{guard_key()}:{rung}", rung, attempt)
                continue
            finally:
                if rspan is not None:
                    _TR.finish(rspan)
            attempt.seconds = time.perf_counter() - t0
            attempt.ok = True
            out.addr, out.mode = result.addr, rung
            out.result = result
            out.verified = attempt.verified
            self.stats.served_by[rung] += 1
            if len(self.negative):
                self._forget_negative(f"{guard_key()}:{rung}")
            break

        out.seconds = time.perf_counter() - t_start
        return out

    # -- quarantine plumbing (via the shared cache when present) --------------

    def _check_negative(self, key: str) -> NegativeEntry | None:
        if self.cache is not None and self.negative is self.cache.negative:
            return self.cache.check_negative(key)
        return self.negative.check(key)

    def _record_negative(self, key: str, rung: str,
                         attempt: RungAttempt) -> None:
        reason = f"{attempt.error_type}: {attempt.error}"
        if self.cache is not None and self.negative is self.cache.negative:
            self.cache.put_negative(key, rung, reason, attempt.context)
        else:
            self.negative.record(key, rung, reason, attempt.context)

    def _forget_negative(self, key: str) -> None:
        self.negative.forget(key)


def _known_size(image: Image, addr: int) -> int | None:
    name = image.symbol_at(addr)
    if name is None:
        return None
    return image.func_sizes.get(name)
