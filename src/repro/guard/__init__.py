"""Guarded rewriting: degradation ladder, budgets, differential gate.

The paper's Sec. II error contract (fall back to the original function on
any rewrite failure) generalized into a front door for the whole pipeline:

* :class:`GuardedTransformer` — tries ``dbrew+llvm`` -> ``llvm-fix`` ->
  ``llvm`` -> ``original`` and always returns a callable entry;
* :class:`Budget` — wall-clock deadline plus per-stage fuel counters;
* :class:`DifferentialGate` — validate-before-swap probe execution;
* failure quarantine via :class:`repro.cache.NegativeCache`.
"""

from repro.guard.budget import Budget, BudgetExceededError
from repro.guard.guarded import (
    LADDER,
    GuardedTransformer,
    GuardResult,
    GuardStats,
    RungAttempt,
)
from repro.guard.verify import (
    DifferentialGate,
    GateOptions,
    GateReport,
    ProbeOutcome,
)

__all__ = [
    "LADDER",
    "Budget",
    "BudgetExceededError",
    "DifferentialGate",
    "GateOptions",
    "GateReport",
    "GuardResult",
    "GuardStats",
    "GuardedTransformer",
    "ProbeOutcome",
    "RungAttempt",
]
