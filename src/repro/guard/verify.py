"""Differential verification gate: validate-before-swap (LeanBin's policy).

Before a specialized function is allowed to serve traffic, it is executed
against the *original* function under the deterministic CPU simulator on a
set of probe argument vectors — user-supplied probes plus deterministically
sampled ones.  Both runs start from an identical memory snapshot; the gate
compares return values **and** all post-run memory (minus the stack region,
whose dead slots legitimately differ between code layouts).  Any divergence
raises :class:`~repro.errors.VerificationError`, and the guard ladder falls
back to the next rung — a wrong specialization must cost a fallback, never
a miscompile.

Probe semantics: a probe supplies one value per *free* parameter slot; the
values of fixed parameters (scalar fixations, :class:`FixedMemory` region
addresses) are substituted automatically for both sides, because the
original needs them and the specialized code ignores them.

A probe on which the *original* function itself faults (e.g. a sampled
integer used as a pointer) is inconclusive and skipped; only probes where
the original produced a result participate in the verdict.  By default at
least one conclusive probe is required for a PASS
(``GateOptions.min_conclusive``): a gate where every probe was
inconclusive proved nothing, so it must not report a verified candidate.
Functions whose free parameters are pointers need user probes carrying
real addresses — sampled integers cannot exercise them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.cpu.image import Image
from repro.cpu.simulator import Simulator
from repro.errors import ReproError, VerificationError
from repro.lift import FunctionSignature
from repro.lift.fixation import FixedMemory

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.guard.budget import Budget

#: deterministic f64 sample values (varied signs/magnitudes, no NaN — NaN
#: compare rules would need per-kernel knowledge)
_F64_SAMPLES = (0.0, 1.0, -1.5, 2.25, 0.5, -3.0, 8.0, -0.125)
#: deterministic small i64 sample values (safe loop bounds / selectors)
_I64_SAMPLES = (0, 1, 2, 3, 5, 8, 13, 21)


@dataclass(frozen=True)
class GateOptions:
    """Verification-gate configuration."""

    #: sampled argument vectors appended to the user-supplied probes
    samples: int = 4
    #: sample-rotation seed, so repeated gates on one function vary
    seed: int = 0
    #: per-probe simulated-instruction ceiling (bounds gate latency)
    max_steps: int = 2_000_000
    #: absolute tolerance for f64 return values (0.0 = bit-exact)
    tolerance: float = 0.0
    #: require at least this many conclusive probes for a PASS verdict.
    #: 0 allows a gate where every probe was inconclusive to pass
    #: *vacuously* (``GateReport.vacuous``) — no comparison ever happened,
    #: so such a pass is not verification; it is off by default
    min_conclusive: int = 1
    #: [lo, hi) address ranges the memory comparison ignores — the
    #: effects-whitelist for instrumented code: only the probe buffer may
    #: legitimately differ between original and instrumented runs.  Empty
    #: for ordinary specialization gates
    ignore_regions: tuple[tuple[int, int], ...] = ()


@dataclass
class ProbeOutcome:
    """One probe's differential result."""

    args: tuple
    expected: object | None = None
    actual: object | None = None
    expected_error: str | None = None
    actual_error: str | None = None
    agreed: bool = False
    inconclusive: bool = False
    #: first memory address whose post-run contents diverged (if any)
    diverged_addr: int | None = None


@dataclass
class GateReport:
    """Outcome of one differential verification."""

    passed: bool = False
    probes: list[ProbeOutcome] = field(default_factory=list)
    conclusive: int = 0
    #: why the gate rejected (None on pass)
    reason: str | None = None
    #: passed without a single conclusive probe (only possible with
    #: ``min_conclusive=0``): nothing was actually compared
    vacuous: bool = False


class DifferentialGate:
    """Compares a specialized function against its original by execution."""

    def __init__(self, image: Image, options: GateOptions = GateOptions()) -> None:
        self.image = image
        self.options = options

    # -- probe construction -------------------------------------------------

    def _sampled_probes(self, signature: FunctionSignature,
                        fixes: dict[int, int | float | FixedMemory] | None,
                        ) -> list[tuple]:
        free = [i for i in range(len(signature.params))
                if not (fixes and i in fixes)]
        probes = []
        for k in range(self.options.samples):
            rot = k + self.options.seed
            vec = []
            for slot, i in enumerate(free):
                idx = (rot + slot * 3) % len(_I64_SAMPLES)
                if signature.params[i] == "f":
                    vec.append(_F64_SAMPLES[idx])
                else:
                    vec.append(_I64_SAMPLES[idx])
            probes.append(tuple(vec))
        return probes

    def _full_args(self, probe: tuple, signature: FunctionSignature,
                   fixes: dict[int, int | float | FixedMemory] | None,
                   ) -> tuple[tuple[int, ...], tuple[float, ...]]:
        """Substitute fixed values, split SysV-style into int/f64 args."""
        it = iter(probe)
        int_args: list[int] = []
        f64_args: list[float] = []
        for i, cls in enumerate(signature.params):
            if fixes and i in fixes:
                v = fixes[i]
                if isinstance(v, FixedMemory):
                    value: int | float = v.addr
                else:
                    value = v
            else:
                try:
                    value = next(it)  # type: ignore[assignment]
                except StopIteration:
                    raise VerificationError(
                        f"probe {probe!r} is shorter than the free "
                        "parameters of the signature", stage="verify")
            if cls == "f":
                f64_args.append(float(value))
            else:
                int_args.append(int(value) & (2**64 - 1))
        return tuple(int_args), tuple(f64_args)

    # -- execution ----------------------------------------------------------

    def _shadow_image(self, base: list[tuple[int, bytes]]) -> Image:
        """A private image seeded from ``base`` for probe execution.

        The gate must never mutate the engine's live image: it runs on a
        shared, concurrently-served :class:`Image`, and the old
        snapshot/execute/restore-in-place scheme had a destructive race —
        a restore would revert JIT code another thread installed while
        the probes were running (the installed function kept serving its
        now-zeroed address).  Probes therefore execute on this shadow:
        same symbols, same bytes at the same guest addresses, separate
        backing store.  The live image is only ever *read* (one snapshot
        at gate start).
        """
        img = Image.__new__(Image)
        from repro.mem.memory import Memory
        img.memory = Memory()
        for start, data in base:
            img.memory.map(start, len(data), data)
        img.symbols = self.image.symbols
        img.func_sizes = self.image.func_sizes
        return img

    def _run(self, image: Image, addr: int, int_args: tuple[int, ...],
             f64_args: tuple[float, ...], ret: str | None):
        """(result, error string) of one simulated call."""
        sim = Simulator(image)
        try:
            res = sim.call(addr, int_args, f64_args,
                           max_steps=self.options.max_steps)
        except ReproError as exc:
            return None, f"{type(exc).__name__}: {exc}"
        if ret == "f":
            return res.xmm0, None  # raw bits: exact by default
        if ret == "i":
            return res.rax, None
        return None, None

    def _stack_extent(self) -> tuple[int, int]:
        from repro.cpu.image import STACK_SIZE, STACK_TOP
        return (STACK_TOP - STACK_SIZE, STACK_TOP + 0x1000)

    def _mem_diff(self, a: list[tuple[int, bytes]],
                  b: list[tuple[int, bytes]]) -> int | None:
        """First differing address outside the stack region and the
        whitelisted ``ignore_regions``, or None."""
        skip = (self._stack_extent(),) + self.options.ignore_regions
        for (sa, da), (sb, db) in zip(a, b):
            assert sa == sb
            if da == db:
                continue
            if any(lo <= sa and sa + len(da) <= hi for lo, hi in skip):
                continue  # dead stack slots / probe buffers may differ
            for off, (x, y) in enumerate(zip(da, db)):
                if x != y:
                    addr = sa + off
                    if any(lo <= addr < hi for lo, hi in skip):
                        continue
                    return addr
        return None

    def _values_agree(self, want: object, got: object, ret: str | None) -> bool:
        if want == got:
            return True
        if ret == "f" and self.options.tolerance > 0 \
                and isinstance(want, int) and isinstance(got, int):
            from repro.cpu.semantics import bits_to_f64
            w, g = bits_to_f64(want), bits_to_f64(got)
            return abs(w - g) <= self.options.tolerance
        return False

    # -- the gate ------------------------------------------------------------

    def check(self, original: int | str, specialized: int | str,
              signature: FunctionSignature,
              fixes: dict[int, int | float | FixedMemory] | None = None,
              probes: Sequence[tuple] = (),
              budget: "Budget | None" = None) -> GateReport:
        """Differentially execute and compare; never installs or uninstalls.

        Returns a :class:`GateReport`; ``report.passed`` is the verdict.
        Raising is left to the caller (:meth:`gate` wraps this with the
        raise-on-divergence contract).
        """
        orig = self.image.symbol(original) if isinstance(original, str) else original
        spec = self.image.symbol(specialized) if isinstance(specialized, str) else specialized
        report = GateReport()
        all_probes = list(probes) + self._sampled_probes(signature, fixes)
        # one read of the live image; every probe runs on a private shadow
        # (see _shadow_image — restoring the live memory in place would
        # race with concurrent installs into the same image)
        base = self.image.memory.snapshot()
        shadow = self._shadow_image(base)
        for probe in all_probes:
            if budget is not None:
                # per-probe cooperative checkpoint: the T2 admission
                # gate runs on background workers too
                budget.checkpoint("verify")
            out = ProbeOutcome(args=probe)
            report.probes.append(out)
            int_args, f64_args = self._full_args(probe, signature, fixes)
            out.expected, out.expected_error = self._run(
                shadow, orig, int_args, f64_args, signature.ret)
            mem_orig = shadow.memory.snapshot()
            shadow.memory.restore(base)
            if out.expected_error is not None:
                # the original itself rejects this input: inconclusive
                out.inconclusive = True
                continue
            out.actual, out.actual_error = self._run(
                shadow, spec, int_args, f64_args, signature.ret)
            mem_spec = shadow.memory.snapshot()
            shadow.memory.restore(base)
            report.conclusive += 1
            if out.actual_error is not None:
                report.reason = (f"specialized code failed on {probe!r}: "
                                 f"{out.actual_error}")
                return report
            out.diverged_addr = self._mem_diff(mem_orig, mem_spec)
            if out.diverged_addr is not None:
                report.reason = (f"memory divergence at "
                                 f"{out.diverged_addr:#x} on {probe!r}")
                return report
            if not self._values_agree(out.expected, out.actual,
                                      signature.ret):
                report.reason = (f"return divergence on {probe!r}: "
                                 f"expected {out.expected!r}, got "
                                 f"{out.actual!r}")
                return report
            out.agreed = True
        if report.conclusive < self.options.min_conclusive:
            report.reason = (f"only {report.conclusive} conclusive probes "
                             f"(need {self.options.min_conclusive})")
            return report
        report.passed = True
        report.vacuous = report.conclusive == 0
        return report

    def gate(self, original: int | str, specialized: int | str,
             signature: FunctionSignature,
             fixes: dict[int, int | float | FixedMemory] | None = None,
             probes: Sequence[tuple] = (),
             budget: "Budget | None" = None) -> GateReport:
        """:meth:`check`, raising :class:`VerificationError` on rejection."""
        report = self.check(original, specialized, signature, fixes,
                            probes, budget)
        if not report.passed:
            raise VerificationError(
                report.reason or "differential verification failed",
                stage="verify", conclusive=report.conclusive,
            )
        return report
