"""Resource budgets for runtime transformations (fuel + deadline).

A :class:`Budget` bounds what one transformation attempt may consume:
wall-clock time plus *fuel counters* for the stages that can blow up on
adversarial inputs — DBrew trace points and emulated instructions, lifter
blocks/instructions, -O3 sweep iterations.  The drivers charge the budget
as they work; exhaustion raises
:class:`~repro.errors.BudgetExceededError`, which is a
:class:`~repro.errors.RewriteError`, so the guard ladder (and DBrew's own
error handler) degrade to a fallback instead of hanging.

The same budget instance is shared across all rungs of one
:meth:`GuardedTransformer.transform` call: the deadline is for the whole
request, not per attempt.
"""

from __future__ import annotations

import time
from typing import Any, Callable

from repro.errors import BudgetExceededError

#: fuel counters a budget can bound, in charge() order of appearance
COUNTERS = ("trace_points", "emulated", "lift_blocks", "lift_instructions",
            "opt_iterations")

#: deadline is only consulted every N fuel charges (clock calls are not
#: free and charge() sits on per-instruction paths)
_DEADLINE_STRIDE = 64


class Budget:
    """Fuel counters plus a wall-clock deadline for one transform request.

    ``None`` limits are unlimited.  Call :meth:`start` when the request
    begins (re-arming the deadline and zeroing the spent counters); the
    pipeline stages call :meth:`charge` / :meth:`check_deadline`.

    ``yield_hook`` makes the budget *cooperative*: the pipeline stages call
    it at their charge/checkpoint sites (per trace point in the rewriter,
    per sweep in the -O3 pipeline, at stage boundaries), so a scheduler —
    the tiered engine's background workers — can deprioritize a compile
    mid-flight (sleep, wait on a throttle gate) without the stages knowing
    anything about threads.  The hook must return promptly or raise
    ``BudgetExceededError``-compatible errors; it runs on the compile
    thread.
    """

    def __init__(self, *, deadline_seconds: float | None = None,
                 max_trace_points: int | None = None,
                 max_emulated: int | None = None,
                 max_lift_blocks: int | None = None,
                 max_lift_instructions: int | None = None,
                 max_opt_iterations: int | None = None,
                 clock: Callable[[], float] = time.monotonic,
                 yield_hook: Callable[[], None] | None = None) -> None:
        self.deadline_seconds = deadline_seconds
        self.limits: dict[str, int | None] = {
            "trace_points": max_trace_points,
            "emulated": max_emulated,
            "lift_blocks": max_lift_blocks,
            "lift_instructions": max_lift_instructions,
            "opt_iterations": max_opt_iterations,
        }
        self.spent: dict[str, int] = {c: 0 for c in COUNTERS}
        self._clock = clock
        self._t0: float | None = None
        self._charges = 0
        self.yield_hook = yield_hook

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "Budget":
        """Arm the deadline and reset the spent counters; returns self."""
        self._t0 = self._clock()
        self._charges = 0
        for c in self.spent:
            self.spent[c] = 0
        return self

    def elapsed_seconds(self) -> float:
        return 0.0 if self._t0 is None else self._clock() - self._t0

    def remaining_seconds(self) -> float | None:
        """Seconds until the deadline (None = no deadline)."""
        if self.deadline_seconds is None:
            return None
        return self.deadline_seconds - self.elapsed_seconds()

    # -- charging ----------------------------------------------------------

    def charge(self, counter: str, n: int = 1, *, stage: str,
               addr: int | None = None) -> None:
        """Spend ``n`` units of ``counter`` fuel; raises on exhaustion.

        Also polls the deadline every few charges, so a stage that only
        charges fuel still honors the wall clock.
        """
        spent = self.spent[counter] + n
        self.spent[counter] = spent
        limit = self.limits[counter]
        if limit is not None and spent > limit:
            raise BudgetExceededError(
                f"{counter} budget exhausted ({spent} > {limit})",
                stage=stage, addr=addr, counter=counter, limit=limit,
            )
        self._charges += 1
        if self._charges % _DEADLINE_STRIDE == 0:
            self.checkpoint(stage, addr=addr)

    def checkpoint(self, stage: str, *, addr: int | None = None) -> None:
        """Cooperative yield point: run the yield hook, then the deadline.

        Stages call this where pausing is safe (between trace points,
        between -O3 sweeps, before codegen).  The hook runs *before* the
        deadline check so a throttled compile that overslept its deadline
        fails here, at a clean boundary, instead of deep inside a stage.
        """
        if self.yield_hook is not None:
            self.yield_hook()
        self.check_deadline(stage, addr=addr)

    def check_deadline(self, stage: str, *, addr: int | None = None) -> None:
        """Raise when the wall-clock deadline has passed."""
        if self.deadline_seconds is None:
            return
        if self._t0 is None:
            # arm only the clock: a budget used without an explicit
            # start() must keep its already-charged fuel counters
            self._t0 = self._clock()
        elapsed = self.elapsed_seconds()
        if elapsed > self.deadline_seconds:
            raise BudgetExceededError(
                f"deadline exceeded ({elapsed:.3f}s > "
                f"{self.deadline_seconds:.3f}s)",
                stage=stage, addr=addr, counter="deadline",
                limit=self.deadline_seconds,
            )

    def snapshot(self) -> dict[str, Any]:
        """Spent fuel and elapsed time (for GuardResult / logs)."""
        return {
            "elapsed_seconds": self.elapsed_seconds(),
            "deadline_seconds": self.deadline_seconds,
            "spent": dict(self.spent),
            "limits": dict(self.limits),
        }
