"""Liveness analysis and linear-scan register allocation over TAC.

Pools
-----
Integer vregs are allocated from rsi/rdi/r8..r11 (caller-saved) and
rbx/r12..r15 (callee-saved); rax/rcx/rdx are reserved as emitter scratch
(idiv, shifts, materialization).  Float/vector vregs share xmm0..xmm13;
xmm14/xmm15 are emitter scratch.

Call handling is by construction rather than by interference: an interval
that spans a call site may only receive a callee-saved register (integers)
or is spilled (floats — all xmm registers are caller-saved in SysV).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.backend.tac import TFunc, VReg
from repro.x86.registers import RBX, RDI, RSI, R8, R9, R10, R11, R12, R13, R14, R15

INT_CALLER_POOL: tuple[int, ...] = (RSI, RDI, R8, R9, R10, R11)
INT_CALLEE_POOL: tuple[int, ...] = (RBX, R12, R13, R14, R15)
FLOAT_POOL: tuple[int, ...] = tuple(range(14))  # xmm0..xmm13


@dataclass
class Interval:
    vreg: VReg
    start: int
    end: int
    crosses_call: bool = False


@dataclass
class Assignment:
    """Where a vreg lives: a physical register or a spill slot id."""

    kind: str  # 'reg' or 'spill'
    value: int  # register index, or slot id (keyed into frame layout)

    @property
    def is_reg(self) -> bool:
        return self.kind == "reg"


@dataclass
class AllocResult:
    assignments: dict[VReg, Assignment]
    spill_slots: dict[int, tuple[int, int]]  # slot id -> (size, align)
    used_callee_saved: list[int]


def _liveness(func: TFunc) -> tuple[dict[str, set[VReg]], dict[str, set[VReg]]]:
    """Classic backward dataflow; returns (live_in, live_out) per block."""
    blocks = func.blocks
    succ: dict[str, tuple[str, ...]] = {}
    uevar: dict[str, set[VReg]] = {}
    varkill: dict[str, set[VReg]] = {}
    for blk in blocks:
        succ[blk.label] = blk.terminator.successor_labels()
        ue: set[VReg] = set()
        kill: set[VReg] = set()
        for ins in blk.instrs:
            for u in ins.uses():
                if u not in kill:
                    ue.add(u)
            for d in ins.defs():
                kill.add(d)
        uevar[blk.label] = ue
        varkill[blk.label] = kill

    live_in: dict[str, set[VReg]] = {b.label: set() for b in blocks}
    live_out: dict[str, set[VReg]] = {b.label: set() for b in blocks}
    changed = True
    while changed:
        changed = False
        for blk in reversed(blocks):
            out: set[VReg] = set()
            for s in succ[blk.label]:
                out |= live_in[s]
            inn = uevar[blk.label] | (out - varkill[blk.label])
            if out != live_out[blk.label] or inn != live_in[blk.label]:
                live_out[blk.label] = out
                live_in[blk.label] = inn
                changed = True
    return live_in, live_out


def build_intervals(func: TFunc) -> tuple[list[Interval], list[int]]:
    """Compute conservative live intervals and call positions.

    Positions are 2 apart; block boundaries participate so values live
    across loop back-edges cover the whole loop body.
    """
    live_in, live_out = _liveness(func)
    pos = 0
    starts: dict[VReg, int] = {}
    ends: dict[VReg, int] = {}
    call_positions: list[int] = []

    def touch(v: VReg, p: int) -> None:
        if v not in starts:
            starts[v] = p
            ends[v] = p
        else:
            starts[v] = min(starts[v], p)
            ends[v] = max(ends[v], p)

    for v in func.iparams + func.fparams:
        touch(v, 0)

    for blk in func.blocks:
        block_start = pos
        for v in live_in[blk.label]:
            touch(v, block_start)
        for ins in blk.instrs:
            for u in ins.uses():
                touch(u, pos)
            for d in ins.defs():
                touch(d, pos + 1)
            if ins.op == "call":
                call_positions.append(pos)
            pos += 2
        block_end = pos - 1
        for v in live_out[blk.label]:
            touch(v, block_end)

    intervals = [Interval(v, starts[v], ends[v]) for v in starts]
    for iv in intervals:
        # start <= cp: a value live *at* the call (e.g. an incoming parameter
        # used afterwards) is clobbered too; values defined by the call start
        # at cp+1 and are unaffected
        iv.crosses_call = any(iv.start <= cp < iv.end for cp in call_positions)
    intervals.sort(key=lambda iv: (iv.start, iv.end))
    return intervals, call_positions


def allocate(func: TFunc) -> AllocResult:
    """Linear-scan allocation; never fails (falls back to spilling)."""
    intervals, _calls = build_intervals(func)
    assignments: dict[VReg, Assignment] = {}
    spill_slots: dict[int, tuple[int, int]] = {}
    next_slot = [10_000]  # spill slot ids live above frame-object ids
    used_callee: set[int] = set()

    free_int_caller = list(INT_CALLER_POOL)
    free_int_callee = list(INT_CALLEE_POOL)
    free_float = list(FLOAT_POOL)
    active: list[tuple[Interval, int, str]] = []  # (interval, reg, pool)

    def spill(v: VReg) -> Assignment:
        next_slot[0] += 1
        size, align = (16, 16) if v.cls == "v" else (8, 8)
        spill_slots[next_slot[0]] = (size, align)
        return Assignment("spill", next_slot[0])

    def expire(current_start: int) -> None:
        still: list[tuple[Interval, int, str]] = []
        for iv, reg, pool in active:
            if iv.end < current_start:
                {"ic": free_int_caller, "ik": free_int_callee, "f": free_float}[pool].append(reg)
            else:
                still.append((iv, reg, pool))
        active[:] = still

    # allocation hints: parameters prefer their incoming ABI register so the
    # prologue parallel move degenerates to nothing for leaf-ish functions
    from repro.x86.registers import SYSV_INT_ARGS

    hints: dict[VReg, tuple[str, int]] = {}
    for i, v in enumerate(func.iparams):
        if i < len(SYSV_INT_ARGS) and SYSV_INT_ARGS[i] in INT_CALLER_POOL:
            hints[v] = ("ic", SYSV_INT_ARGS[i])
    for i, v in enumerate(func.fparams):
        hints[v] = ("f", i)

    # move-coalescing hints: `mov dst, src` prefers sharing a register (the
    # peephole then deletes the self-move).  Resolved lazily at allocation
    # time through `move_partners`.
    move_partners: dict[VReg, list[VReg]] = {}
    for ins in func.instructions():
        if ins.op == "mov" and ins.dst is not None and isinstance(ins.a, VReg):
            move_partners.setdefault(ins.dst, []).append(ins.a)
            move_partners.setdefault(ins.a, []).append(ins.dst)

    for iv in intervals:
        expire(iv.start)
        v = iv.vreg
        if v.cls == "i":
            if iv.crosses_call:
                pools = [("ik", free_int_callee)]
            else:
                pools = [("ic", free_int_caller), ("ik", free_int_callee)]
        else:
            if iv.crosses_call:
                assignments[v] = spill(v)
                continue
            pools = [("f", free_float)]
        assigned = False
        # try the explicit hint, then any move partner's register
        candidates: list[tuple[str, int]] = []
        hint = hints.get(v)
        if hint is not None:
            candidates.append(hint)
        for partner in move_partners.get(v, ()):
            pa = assignments.get(partner)
            if pa is not None and pa.is_reg:
                pool_name = "f" if v.cls != "i" else (
                    "ic" if pa.value in INT_CALLER_POOL else "ik"
                )
                candidates.append((pool_name, pa.value))
        for pool_name, reg in candidates:
            for pn, pool in pools:
                if pn == pool_name and reg in pool:
                    pool.remove(reg)
                    assignments[v] = Assignment("reg", reg)
                    active.append((iv, reg, pool_name))
                    if pool_name == "ik":
                        used_callee.add(reg)
                    assigned = True
                    break
            if assigned:
                break
        if not assigned:
            for pool_name, pool in pools:
                if pool:
                    reg = pool.pop(0)
                    assignments[v] = Assignment("reg", reg)
                    active.append((iv, reg, pool_name))
                    if pool_name == "ik":
                        used_callee.add(reg)
                    assigned = True
                    break
        if not assigned:
            assignments[v] = spill(v)

    return AllocResult(assignments, spill_slots, sorted(used_callee))
