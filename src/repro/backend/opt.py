"""TAC-level cleanup passes: local constant/copy propagation and global DCE.

These run between lowering and register allocation for both compilers.
They are deliberately *local* (per basic block) — the heavyweight global
optimizations belong to MiniLLVM's pass pipeline, because the paper's whole
point is comparing "cheap rewriting" against "full compiler pipeline".
"""

from __future__ import annotations

from dataclasses import replace

from repro.backend.tac import TFunc, TInstr, VReg

_FOLDABLE = {"add", "sub", "mul", "and", "or", "xor", "shl", "shr", "sar"}
_PURE_OPS = {
    "li", "lf", "mov", "add", "sub", "mul", "div", "rem", "and", "or", "xor",
    "shl", "shr", "sar", "neg", "not", "ext", "setcc", "lea", "frame",
    "fadd", "fsub", "fmul", "fdiv", "fneg", "i2f", "f2i", "load", "fload",
    "vload", "vload_split", "vadd", "vsub", "vmul", "vbroadcast", "vlow", "vhadd",
    "vhigh", "vxor", "vand", "vor", "vinsert0", "vinsert1", "vshuf",
    "fsetcc", "bits2f", "f2bits",
}


def _fold(op: str, a: int, b: int) -> int:
    if op == "add":
        return a + b
    if op == "sub":
        return a - b
    if op == "mul":
        return a * b
    if op == "and":
        return a & b
    if op == "or":
        return a | b
    if op == "xor":
        return a ^ b
    if op == "shl":
        return a << (b & 63)
    if op == "shr":
        return (a & (2**64 - 1)) >> (b & 63)
    if op == "sar":
        return a >> (b & 63)
    raise AssertionError(op)


def _multi_def_vregs(func: TFunc) -> set[VReg]:
    seen: set[VReg] = set(func.iparams) | set(func.fparams)
    multi: set[VReg] = set()
    for ins in func.instructions():
        for d in ins.defs():
            if d in seen:
                multi.add(d)
            seen.add(d)
    return multi


def local_propagate(func: TFunc) -> None:
    """Per-block constant and copy propagation.

    Only single-def vregs participate as *sources* (their value cannot
    change behind our back); any vreg may be a propagation target within
    the block until redefined.
    """
    multi = _multi_def_vregs(func)
    for blk in func.blocks:
        consts: dict[VReg, int] = {}
        copies: dict[VReg, VReg] = {}

        def resolve(v: object) -> object:
            while isinstance(v, VReg) and v in copies:
                v = copies[v]
            if isinstance(v, VReg) and v in consts:
                return consts[v]
            return v

        for i, ins in enumerate(blk.instrs):
            # rewrite sources
            a, b = resolve(ins.a), resolve(ins.b)
            addr = ins.addr
            if addr is not None:
                base = resolve(addr.base) if addr.base is not None else None
                index = resolve(addr.index) if addr.index is not None else None
                disp = addr.disp
                scale = addr.scale
                if isinstance(base, int):
                    disp += base
                    base = None
                if isinstance(index, int):
                    disp += index * scale
                    index, scale = None, 1
                if (base, index, scale, disp) != (addr.base, addr.index, addr.scale, addr.disp):
                    addr = replace(addr, base=base, index=index, scale=scale, disp=disp)
            def _arg(v: VReg) -> VReg:
                rv = resolve(v)
                return rv if isinstance(rv, VReg) else v

            iargs = tuple(_arg(v) for v in ins.iargs) if ins.iargs else ins.iargs
            fargs = tuple(_arg(v) for v in ins.fargs) if ins.fargs else ins.fargs

            changed = (a is not ins.a or b is not ins.b or addr is not ins.addr
                       or iargs != ins.iargs or fargs != ins.fargs)
            # fold fully-constant integer ops
            if ins.op in _FOLDABLE and isinstance(a, int) and isinstance(b, int):
                blk.instrs[i] = TInstr(op="li", dst=ins.dst, imm=_fold(ins.op, a, b))
                ins = blk.instrs[i]
            elif ins.op == "mov" and isinstance(a, int):
                blk.instrs[i] = TInstr(op="li", dst=ins.dst, imm=a)
                ins = blk.instrs[i]
            elif changed:
                # immediates are only legal in specific operand slots
                if isinstance(a, int):
                    if ins.op in _FOLDABLE:
                        if ins.op in ("add", "mul", "and", "or", "xor") \
                                and not isinstance(b, int):
                            a, b = b, a
                        else:
                            a = ins.a  # keep original vreg
                    elif ins.op not in ("store", "div", "rem", "cmp"):
                        a = ins.a  # op requires a register operand
                if isinstance(b, int) and ins.op not in (
                    *_FOLDABLE, "br", "setcc", "div", "rem", "cmp",
                ):
                    b = ins.b
                blk.instrs[i] = replace(
                    ins, a=a, b=b, addr=addr, iargs=iargs, fargs=fargs
                )
                ins = blk.instrs[i]

            # record facts
            dst = ins.dst
            if dst is not None:
                consts.pop(dst, None)
                copies.pop(dst, None)
                # any copies pointing at dst are invalidated
                for k in [k for k, v in copies.items() if v == dst]:
                    del copies[k]
                if ins.op == "li":
                    consts[dst] = ins.imm
                elif ins.op == "mov" and isinstance(ins.a, VReg) and ins.a not in multi:
                    copies[dst] = ins.a


def dead_code_elim(func: TFunc) -> None:
    """Remove pure instructions whose results are never used (global)."""
    while True:
        used: set[VReg] = set()
        for ins in func.instructions():
            used.update(ins.uses())
        removed = False
        for blk in func.blocks:
            kept: list[TInstr] = []
            for ins in blk.instrs:
                if (
                    ins.op in _PURE_OPS
                    and ins.dst is not None
                    and ins.dst not in used
                ):
                    removed = True
                    continue
                kept.append(ins)
            blk.instrs = kept
        if not removed:
            return


def remove_empty_blocks(func: TFunc) -> None:
    """Merge blocks that only jump elsewhere (compacts lowering artifacts)."""
    # map labels of trivial 'jmp'-only blocks to their final target
    forward: dict[str, str] = {}
    for blk in func.blocks:
        if len(blk.instrs) == 1 and blk.instrs[0].op == "jmp":
            forward[blk.label] = blk.instrs[0].labels[0]

    def final(label: str) -> str:
        seen = set()
        while label in forward and label not in seen:
            seen.add(label)
            label = forward[label]
        return label

    entry = func.blocks[0].label
    for blk in func.blocks:
        term = blk.terminator
        if term.labels:
            term.labels = tuple(final(lb) for lb in term.labels)
    reachable = {final(entry)}
    work = [final(entry)]
    bmap = func.block_map()
    while work:
        blk = bmap[work.pop()]
        for s in blk.terminator.successor_labels():
            if s not in reachable:
                reachable.add(s)
                work.append(s)
    func.blocks = [b for b in func.blocks if b.label in reachable]
    # keep the (possibly forwarded) entry block first
    entry_label = final(entry)
    func.blocks.sort(key=lambda b: b.label != entry_label)


def fuse_movs(func: TFunc) -> None:
    """Fuse ``X dst=v1 ...; mov v2, v1`` into ``X dst=v2`` when v1 has no
    other use — removes out-of-SSA copy artifacts without a full coalescer."""
    use_counts: dict[VReg, int] = {}
    for ins in func.instructions():
        for u in ins.uses():
            use_counts[u] = use_counts.get(u, 0) + 1
    for blk in func.blocks:
        i = 0
        while i + 1 < len(blk.instrs):
            first = blk.instrs[i]
            second = blk.instrs[i + 1]
            if (
                second.op == "mov"
                and isinstance(second.a, VReg)
                and first.dst is not None
                and second.a == first.dst
                and second.dst is not None
                and use_counts.get(first.dst, 0) == 1
                and first.op in _PURE_OPS
                and first.dst != second.dst
                and first.dst not in first.uses()
                and _fusable_dst(first, second.dst)
            ):
                first.dst = second.dst
                del blk.instrs[i + 1]
                continue
            i += 1


_RMW_FIRST_OK = {
    "add", "sub", "mul", "and", "or", "xor", "shl", "shr", "sar",
    "fadd", "fsub", "fmul", "fdiv", "vadd", "vsub", "vmul",
    "vand", "vor", "vxor",
}


def _fusable_dst(first: TInstr, new_dst: VReg) -> bool:
    """The emitter loads operand `a` into dst first; fusing is unsafe when
    new_dst is read anywhere except as that first operand."""
    if new_dst not in first.uses():
        return True
    if first.op not in _RMW_FIRST_OK:
        return False
    if first.a != new_dst:
        return False
    if first.b == new_dst:
        return False
    if first.addr is not None and new_dst in first.addr.regs():
        return False
    return True


def optimize(func: TFunc) -> TFunc:
    """Run the standard cleanup sequence in place; returns the function."""
    local_propagate(func)
    dead_code_elim(func)
    fuse_movs(func)
    remove_empty_blocks(func)
    return func
