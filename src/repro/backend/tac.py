"""Three-address code (TAC): the shared pre-allocation representation.

Virtual registers are typed by class: ``'i'`` (64-bit integer/pointer),
``'f'`` (IEEE double), ``'v'`` (128-bit vector of 2 doubles).  Narrower C
integer types exist only at loads/stores and explicit ``ext`` instructions;
everything in registers is 64-bit, mirroring how compilers actually use
x86-64.

Instruction set (op -> semantics):

====================  =========================================================
``li dst, imm``        integer constant
``lf dst, fimm``       double constant (materialized from the rodata pool)
``mov dst, a``         copy (same class)
``add/sub/mul/and/or/xor/shl/shr/sar dst, a, b``  b may be an int immediate
``div/rem dst, a, b``  signed 64-bit division
``neg/not dst, a``     unary integer
``ext dst, a, width, signed``  extend from width bytes to 64
``setcc dst, cc, a, b, signed``  compare -> 0/1
``br cc, a, b, signed, lt, lf``  integer compare & branch
``fbr cc, a, b, lt, lf``         double compare & branch (ucomisd semantics)
``jmp label``
``load dst, addr, width, signed``   integer load
``store addr, a, width``            integer store
``fload dst, addr`` / ``fstore addr, a``   double load/store
``lea dst, addr``      address computation
``fadd/fsub/fmul/fdiv dst, a, b``  double arithmetic
``fneg dst, a``        double negation
``i2f dst, a`` / ``f2i dst, a``    conversions (f2i truncates)
``call dst?, name, iargs, fargs``  direct call (SysV)
``ret a?``             return
``frame dst, slot``    address of a frame object (locals with storage)
``vload dst, addr, aligned`` / ``vstore addr, a, aligned``  2xf64 vector
``vadd/vsub/vmul dst, a, b``  lane-wise vector arithmetic
``vbroadcast dst, a``  f64 -> both lanes
``vlow dst, a``        vector low lane -> f64
``vhigh dst, a``       vector high lane -> f64
``vhadd dst, a``       horizontal sum of lanes -> f64
``vxor/vand/vor dst, a, b``   bitwise 128-bit ops
``vinsert0/vinsert1 dst, a, b``  insert f64 ``b`` into lane of vector ``a``
``vshuf dst, a, b, imm``  shufpd-style lane select
``cmp a, b``           integer compare (sets flags for following cmov)
``cmov dst, cc, a``    conditional move (dst also read!)
``fsetcc dst, cc, a, b``  double compare -> 0/1 (ucomisd semantics)
``bits2f dst, a`` / ``f2bits dst, a``  raw i64 <-> f64 register moves
====================  =========================================================

The ``cmp``+``cmov`` pair must stay adjacent (only register moves in
between); the emitters guarantee any spill reloads they insert are
flag-preserving ``mov``s.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Optional, Union


@dataclass(frozen=True)
class VReg:
    """A typed virtual register."""

    id: int
    cls: str  # 'i', 'f', 'v'

    def __repr__(self) -> str:
        return f"%{self.cls}{self.id}"


#: operand that may be a virtual register or an integer immediate
IntOperand = Union[VReg, int]


@dataclass(frozen=True)
class TAddr:
    """Memory address: base + index*scale + disp (+ link-time symbol)."""

    base: Optional[VReg] = None
    index: Optional[VReg] = None
    scale: int = 1
    disp: int = 0
    sym: Optional[str] = None  # resolved by the linker; added to disp

    def regs(self) -> list[VReg]:
        out = []
        if self.base is not None:
            out.append(self.base)
        if self.index is not None:
            out.append(self.index)
        return out

    def __repr__(self) -> str:
        parts = []
        if self.sym:
            parts.append(f"@{self.sym}")
        if self.base:
            parts.append(repr(self.base))
        if self.index:
            parts.append(f"{repr(self.index)}*{self.scale}")
        if self.disp:
            parts.append(f"{self.disp:+#x}")
        return "[" + "+".join(parts) + "]"


@dataclass
class TInstr:
    """One TAC instruction (fields used depend on ``op``)."""

    op: str
    dst: Optional[VReg] = None
    a: Optional[IntOperand] = None
    b: Optional[IntOperand] = None
    addr: Optional[TAddr] = None
    width: int = 8
    signed: bool = True
    cc: str = ""
    imm: int = 0
    fimm: float = 0.0
    labels: tuple[str, ...] = ()
    func: str = ""
    iargs: tuple[VReg, ...] = ()
    fargs: tuple[VReg, ...] = ()
    slot: int = -1
    aligned: bool = False

    def uses(self) -> list[VReg]:
        """Virtual registers read by this instruction."""
        out: list[VReg] = []
        for v in (self.a, self.b):
            if isinstance(v, VReg):
                out.append(v)
        if self.addr is not None:
            out.extend(self.addr.regs())
        out.extend(self.iargs)
        out.extend(self.fargs)
        if self.op == "cmov" and self.dst is not None:
            out.append(self.dst)  # read-modify-write destination
        return out

    def defs(self) -> list[VReg]:
        """Virtual registers written by this instruction."""
        return [self.dst] if self.dst is not None else []

    @property
    def is_terminator(self) -> bool:
        return self.op in ("jmp", "br", "fbr", "ret")

    def successor_labels(self) -> tuple[str, ...]:
        return self.labels if self.op in ("jmp", "br", "fbr") else ()

    def __repr__(self) -> str:  # debugging aid
        parts = [self.op]
        if self.dst is not None:
            parts.append(f"{self.dst!r} <-")
        if self.cc:
            parts.append(self.cc)
        for v in (self.a, self.b):
            if v is not None:
                parts.append(repr(v))
        if self.addr is not None:
            parts.append(repr(self.addr))
        if self.op == "li":
            parts.append(str(self.imm))
        if self.op == "lf":
            parts.append(str(self.fimm))
        if self.labels:
            parts.append("->" + ",".join(self.labels))
        if self.func:
            parts.append(f"@{self.func}({', '.join(map(repr, self.iargs + self.fargs))})")
        return " ".join(parts)


@dataclass
class TBlock:
    """A labeled basic block; the last instruction must be a terminator."""

    label: str
    instrs: list[TInstr] = field(default_factory=list)

    @property
    def terminator(self) -> TInstr:
        return self.instrs[-1]


@dataclass
class TFunc:
    """A function in TAC form plus its frame objects."""

    name: str
    blocks: list[TBlock] = field(default_factory=list)
    ret_cls: Optional[str] = None  # 'i', 'f', or None for void
    #: SysV incoming parameters in order, with their vreg homes
    iparams: tuple[VReg, ...] = ()
    fparams: tuple[VReg, ...] = ()
    #: frame objects: slot id -> (size, align)
    frame_objects: dict[int, tuple[int, int]] = field(default_factory=dict)
    _next_vreg: int = 0
    _next_slot: int = 0
    _next_label: int = 0

    def new_vreg(self, cls: str) -> VReg:
        self._next_vreg += 1
        return VReg(self._next_vreg, cls)

    def new_slot(self, size: int, align: int = 8) -> int:
        self._next_slot += 1
        self.frame_objects[self._next_slot] = (size, align)
        return self._next_slot

    def new_label(self, hint: str = "L") -> str:
        self._next_label += 1
        return f".{hint}{self._next_label}"

    def block(self, label: str) -> TBlock:
        blk = TBlock(label)
        self.blocks.append(blk)
        return blk

    def block_map(self) -> dict[str, TBlock]:
        return {b.label: b for b in self.blocks}

    def instructions(self) -> Iterable[TInstr]:
        for blk in self.blocks:
            yield from blk.instrs

    def has_calls(self) -> bool:
        return any(i.op == "call" for i in self.instructions())

    def dump(self) -> str:
        lines = [f"func {self.name}:"]
        for blk in self.blocks:
            lines.append(f"{blk.label}:")
            lines.extend(f"    {i!r}" for i in blk.instrs)
        return "\n".join(lines)


#: condition-code inversion map shared by optimizers and emitters
INVERT_CC = {
    "e": "ne", "ne": "e", "l": "ge", "ge": "l", "le": "g", "g": "le",
    "b": "ae", "ae": "b", "be": "a", "a": "be",
}

#: swap-operand map: cc' such that (a cc b) == (b cc' a)
SWAP_CC = {
    "e": "e", "ne": "ne", "l": "g", "g": "l", "le": "ge", "ge": "le",
    "b": "a", "a": "b", "be": "ae", "ae": "be",
}
