"""TAC -> x86-64 emission.

Produces a label-resolved item stream for :func:`repro.x86.asm.assemble`.
The emitter owns the SysV frame protocol (prologue/epilogue, 16-byte call
alignment), spill-slot access through reserved scratch registers
(rax/rcx/rdx, xmm14/xmm15), and a parallel-move resolver for argument
shuffling at function entry and call sites.

Instruction-selection knobs live in :class:`EmitOptions`:

* ``mul_style='lea'`` synthesizes constant multiplies as lea/shl chains
  (GCC's ``synth_mult``, visible in the paper's Sec. VI-A observation);
  ``'imul'`` always uses one imul (LLVM's choice).
* ``const_addressing`` selects RIP-relative (compiler-style) or absolute
  (DBrew-style, Fig. 8) addressing for pool constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

from repro.backend.regalloc import AllocResult, Assignment, allocate
from repro.backend.tac import TAddr, TFunc, TInstr, VReg
from repro.errors import CodegenError
from repro.mem.layout import align_up
from repro.x86.asm import Item, Label, LabelRef
from repro.x86.instr import Imm, Instruction, Mem, Operand, Reg, gp, make, xmm
from repro.x86.registers import RAX, RBP, RCX, RDX, RSP, SYSV_INT_ARGS

_SCRATCH0, _SCRATCH1, _SCRATCH2 = RAX, RCX, RDX
_FSCRATCH0, _FSCRATCH1 = 14, 15


class ConstPool(Protocol):
    """Interning allocator for literal pool constants."""

    def f64(self, value: float) -> int:
        """Address of an 8-byte double constant."""
        ...

    def data(self, payload: bytes, align: int = 16) -> int:
        """Address of arbitrary rodata bytes."""
        ...


@dataclass(frozen=True)
class EmitOptions:
    """Code-generation style knobs (see module docstring)."""

    mul_style: str = "lea"  # 'lea' (GCC-like) or 'imul' (LLVM-like)
    const_addressing: str = "riprel"  # 'riprel' or 'absolute'
    frame_pointer: bool = True


def _fits32(v: int) -> bool:
    return -(2**31) <= v < 2**31


# -- constant-multiply synthesis (GCC synth_mult flavour) -----------------------

# step kinds: ('scale', s) R=R*s via lea [R*s]; ('lea', s) R=R+R*s;
# ('leax', s) R=X+R*s; ('shl', k) R<<=k
_SynthStep = tuple[str, int]


def _synth_mult(imm: int, max_steps: int = 3) -> list[_SynthStep] | None:
    """Find a short lea/shl chain computing x*imm, or None."""
    if imm <= 0:
        return None
    from collections import deque

    start = 1
    seen = {start: []}
    queue: deque[int] = deque([start])
    while queue:
        m = queue.popleft()
        steps = seen[m]
        if m == imm:
            return steps
        if len(steps) >= max_steps:
            continue
        nexts: list[tuple[int, _SynthStep]] = []
        for s in (2, 4, 8):
            nexts.append((m * s, ("scale", s)))
        for s in (2, 4, 8):
            nexts.append((m * (s + 1), ("lea", s)))
        for s in (1, 2, 4, 8):
            nexts.append((m * s + 1, ("leax", s)))
        for k in range(1, 32):
            if m << k > imm:
                break
            nexts.append((m << k, ("shl", k)))
        for nm, step in nexts:
            if nm <= imm * 8 and nm not in seen:
                seen[nm] = steps + [step]
                queue.append(nm)
    return None


class _FrameLayout:
    """Offsets of frame objects and spill slots relative to rbp."""

    def __init__(self, func: TFunc, alloc: AllocResult) -> None:
        self.offsets: dict[int, int] = {}
        cursor = -8 * len(alloc.used_callee_saved)
        objects = list(func.frame_objects.items()) + list(alloc.spill_slots.items())
        # place large-alignment objects first for dense packing
        for slot, (size, align) in sorted(objects, key=lambda kv: -kv[1][1]):
            cursor -= size
            cursor = -align_up(-cursor, align)
            self.offsets[slot] = cursor
        below_saves = -cursor - 8 * len(alloc.used_callee_saved)
        pad = (-(8 * len(alloc.used_callee_saved) + below_saves)) % 16
        self.local_size = below_saves + pad


class Emitter:
    """Emits one TFunc as an item stream."""

    def __init__(
        self,
        func: TFunc,
        pool: ConstPool,
        options: EmitOptions = EmitOptions(),
        symbols: dict[str, int] | None = None,
    ) -> None:
        self.func = func
        self.pool = pool
        self.options = options
        self.symbols = symbols or {}
        self.alloc = allocate(func)
        self.frame = _FrameLayout(func, self.alloc)
        self.items: list[Item] = []
        self._epilogue = f".epilogue.{func.name}"
        self._label_prefix = f"{func.name}$"

    # -- item helpers -------------------------------------------------------

    def emit(self, ins: Instruction) -> None:
        self.items.append(ins)

    def op(self, mnemonic: str, *operands: Operand | LabelRef) -> None:
        self.items.append(Instruction(mnemonic, tuple(operands)))  # type: ignore[arg-type]

    def label(self, name: str) -> None:
        self.items.append(Label(self._label_prefix + name))

    def labelref(self, name: str) -> LabelRef:
        return LabelRef(self._label_prefix + name)

    # -- location helpers --------------------------------------------------

    def _assignment(self, v: VReg) -> Assignment:
        try:
            return self.alloc.assignments[v]
        except KeyError:
            raise CodegenError(f"{self.func.name}: vreg {v!r} never assigned") from None

    def _slot_mem(self, slot: int, size: int) -> Mem:
        return Mem(size, base=gp(RBP), disp=self.frame.offsets[slot])

    def ireg(self, v: VReg, scratch: int = _SCRATCH0) -> Reg:
        """Integer vreg as a 64-bit register, loading spills into scratch."""
        a = self._assignment(v)
        if a.is_reg:
            return gp(a.value)
        self.op("mov", gp(scratch), self._slot_mem(a.value, 8))
        return gp(scratch)

    def iout(self, v: VReg) -> tuple[Reg, Callable[[], None]]:
        """Destination register + commit callback (stores spills back)."""
        a = self._assignment(v)
        if a.is_reg:
            return gp(a.value), lambda: None
        slot = a.value
        return gp(_SCRATCH2), lambda: self.op("mov", self._slot_mem(slot, 8), gp(_SCRATCH2))

    def freg(self, v: VReg, scratch: int = _FSCRATCH0) -> Reg:
        a = self._assignment(v)
        if a.is_reg:
            return xmm(a.value)
        size = 8 if v.cls == "f" else 16
        self.op("movsd" if v.cls == "f" else "movupd",
                xmm(scratch), self._slot_mem(a.value, size))
        return xmm(scratch)

    def fout(self, v: VReg) -> tuple[Reg, Callable[[], None]]:
        a = self._assignment(v)
        if a.is_reg:
            return xmm(a.value), lambda: None
        slot = a.value
        mn = "movsd" if v.cls == "f" else "movupd"
        sz = 8 if v.cls == "f" else 16
        return xmm(_FSCRATCH1), lambda: self.op(mn, self._slot_mem(slot, sz), xmm(_FSCRATCH1))

    def addr_mem(self, addr: TAddr, size: int, scratch: int = _SCRATCH1) -> Mem:
        """Materialize a TAddr as an x86 memory operand."""
        disp = addr.disp
        if addr.sym is not None:
            disp += self._symbol(addr.sym)
        base = None
        if addr.base is not None:
            base = self.ireg(addr.base, scratch)
        index = None
        if addr.index is not None:
            index = self.ireg(addr.index, _SCRATCH2 if scratch != _SCRATCH2 else _SCRATCH1)
        if base is None and index is None and not _fits32(disp):
            self.op("mov", gp(scratch), Imm(disp, 8))
            return Mem(size, base=gp(scratch))
        return Mem(size, base=base, index=index, scale=addr.scale, disp=disp)

    def _symbol(self, name: str) -> int:
        try:
            return self.symbols[name]
        except KeyError:
            raise CodegenError(f"unresolved symbol {name!r}") from None

    def const_mem(self, addr: int, size: int) -> Mem:
        if self.options.const_addressing == "riprel":
            return Mem(size, disp=addr, riprel=True)
        return Mem(size, disp=addr)

    # -- parallel moves -----------------------------------------------------

    def _parallel_move(
        self, moves: list[tuple[object, object, str]]
    ) -> None:
        """Resolve moves (src, dst, cls) where src/dst are Reg or Mem.

        Registers may form cycles; memory never does (slots are unique).
        """

        def key(loc: object) -> object:
            if isinstance(loc, Reg):
                return (loc.kind, loc.index)
            return None  # memory locations never alias registers here

        pending = [m for m in moves if key(m[0]) != key(m[1]) or key(m[0]) is None]
        pending = [m for m in pending if not self._same_loc(m[0], m[1])]
        while pending:
            progressed = False
            for i, (src, dst, cls) in enumerate(pending):
                dst_key = key(dst)
                blocked = dst_key is not None and any(
                    key(s) == dst_key for s, _d, _c in pending[:i] + pending[i + 1:]
                )
                if not blocked:
                    self._move(src, dst, cls)
                    pending.pop(i)
                    progressed = True
                    break
            if not progressed:
                # cycle: rotate through scratch
                src, dst, cls = pending[0]
                scratch = gp(_SCRATCH0) if cls == "i" else xmm(_FSCRATCH0)
                self._move(src, scratch, cls)
                pending[0] = (scratch, dst, cls)
        return

    @staticmethod
    def _same_loc(a: object, b: object) -> bool:
        if isinstance(a, Reg) and isinstance(b, Reg):
            return a.kind == b.kind and a.index == b.index
        if isinstance(a, Mem) and isinstance(b, Mem):
            return a == b
        return False

    def _move(self, src: object, dst: object, cls: str) -> None:
        if isinstance(src, Mem) and isinstance(dst, Mem):
            scratch = gp(_SCRATCH0) if cls == "i" else xmm(_FSCRATCH0)
            self._move(src, scratch, cls)
            self._move(scratch, dst, cls)
            return
        if cls == "i":
            self.op("mov", dst, src)  # type: ignore[arg-type]
        elif cls == "f":
            self.op("movsd", dst, src)  # type: ignore[arg-type]
        else:
            self.op("movupd", dst, src)  # type: ignore[arg-type]

    def _loc(self, v: VReg) -> object:
        a = self._assignment(v)
        if v.cls == "i":
            return gp(a.value) if a.is_reg else self._slot_mem(a.value, 8)
        size = 8 if v.cls == "f" else 16
        return xmm(a.value) if a.is_reg else self._slot_mem(a.value, size)

    # -- prologue / epilogue ------------------------------------------------

    def _prologue(self) -> None:
        self.items.append(Label(self.func.name))
        self.op("push", gp(RBP))
        self.op("mov", gp(RBP), gp(RSP))
        for reg in self.alloc.used_callee_saved:
            self.op("push", gp(reg))
        if self.frame.local_size:
            self.op("sub", gp(RSP), Imm(self.frame.local_size))
        moves: list[tuple[object, object, str]] = []
        for i, v in enumerate(self.func.iparams):
            if v in self.alloc.assignments:
                moves.append((gp(SYSV_INT_ARGS[i]), self._loc(v), "i"))
        for i, v in enumerate(self.func.fparams):
            if v in self.alloc.assignments:
                moves.append((xmm(i), self._loc(v), "f"))
        self._parallel_move(moves)

    def _emit_epilogue(self) -> None:
        self.items.append(Label(self._label_prefix + self._epilogue))
        if self.frame.local_size:
            self.op("add", gp(RSP), Imm(self.frame.local_size))
        for reg in reversed(self.alloc.used_callee_saved):
            self.op("pop", gp(reg))
        self.op("pop", gp(RBP))
        self.op("ret")

    # -- main loop ------------------------------------------------------------

    def run(self) -> list[Item]:
        self._prologue()
        for blk in self.func.blocks:
            self.label(blk.label)
            for ins in blk.instrs:
                self._instr(ins)
        self._emit_epilogue()
        return peephole(self.items)

    # -- per-op emission ---------------------------------------------------------

    def _instr(self, ins: TInstr) -> None:
        handler = getattr(self, f"_op_{ins.op}", None)
        if handler is None:
            raise CodegenError(f"no emitter for TAC op {ins.op!r}")
        handler(ins)

    def _op_li(self, ins: TInstr) -> None:
        dst, commit = self.iout(ins.dst)
        if ins.imm == 0:
            self.op("xor", dst.with_size(4), dst.with_size(4))
        else:
            self.op("mov", dst, Imm(ins.imm, 8 if not _fits32(ins.imm) else 4))
        commit()

    def _op_lf(self, ins: TInstr) -> None:
        dst, commit = self.fout(ins.dst)
        if ins.fimm == 0.0 and not _is_negzero(ins.fimm):
            self.op("pxor", dst, dst)
        else:
            addr = self.pool.f64(ins.fimm)
            self.op("movsd", dst, self.const_mem(addr, 8))
        commit()

    def _op_mov(self, ins: TInstr) -> None:
        assert isinstance(ins.a, VReg) and ins.dst is not None
        self._parallel_move([(self._loc(ins.a), self._loc(ins.dst), ins.dst.cls)])

    _COMMUTATIVE = {"add", "and", "or", "xor", "mul"}
    _INT_MNEM = {"add": "add", "sub": "sub", "and": "and", "or": "or",
                 "xor": "xor", "shl": "shl", "shr": "shr", "sar": "sar"}

    def _int_binop(self, ins: TInstr, mnemonic: str) -> None:
        dst, commit = self.iout(ins.dst)
        a = ins.a
        b = ins.b
        # width 4 selects 32-bit operation forms, whose register writes
        # zero-extend — keeping narrow IR values in canonical zext form for
        # free, exactly like hardware (Fig. 4a)
        w = 4 if ins.width == 4 else 8
        dw = dst.with_size(w)
        if mnemonic in ("shl", "shr", "sar") and isinstance(b, VReg):
            # variable shift count must be in cl
            self.op("mov", gp(RCX), self.ireg(b, _SCRATCH1))
            self._load_int(dst, a)
            self.op(mnemonic, dw, gp(RCX, 1))
            commit()
            return
        if isinstance(b, int):
            self._load_int(dst, a)
            if mnemonic in ("shl", "shr", "sar"):
                self.op(mnemonic, dw, Imm(b & 63, 1))
            elif _fits32(b):
                self.op(mnemonic, dw, Imm(b))
            else:
                self.op("mov", gp(_SCRATCH1), Imm(b, 8))
                self.op(mnemonic, dw, gp(_SCRATCH1, w))
            commit()
            return
        assert isinstance(b, VReg)
        breg = self.ireg(b, _SCRATCH1)
        if isinstance(a, VReg):
            areg_assign = self._assignment(a)
            if (not areg_assign.is_reg or areg_assign.value != dst.index) and \
                    breg.index == dst.index:
                if mnemonic in self._COMMUTATIVE:
                    self.op(mnemonic, dw, self.ireg(a, _SCRATCH2).with_size(w))
                    commit()
                    return
                # non-commutative with b in dst: go through scratch
                tmp = gp(_SCRATCH2)
                self._load_int(tmp, a)
                self.op(mnemonic, tmp.with_size(w), breg.with_size(w))
                self.op("mov", dst, tmp)
                commit()
                return
        self._load_int(dst, a)
        self.op(mnemonic, dw, breg.with_size(w))
        commit()

    def _load_int(self, dst: Reg, a: object) -> None:
        if isinstance(a, VReg):
            src = self._loc(a)
            if not (isinstance(src, Reg) and src.index == dst.index):
                self.op("mov", dst, src)  # type: ignore[arg-type]
        elif isinstance(a, int):
            if a == 0:
                self.op("xor", dst.with_size(4), dst.with_size(4))
            else:
                self.op("mov", dst, Imm(a, 8 if not _fits32(a) else 4))
        else:
            raise CodegenError(f"bad int operand {a!r}")

    def _op_add(self, ins: TInstr) -> None:
        self._int_binop(ins, "add")

    def _op_sub(self, ins: TInstr) -> None:
        self._int_binop(ins, "sub")

    def _op_and(self, ins: TInstr) -> None:
        self._int_binop(ins, "and")

    def _op_or(self, ins: TInstr) -> None:
        self._int_binop(ins, "or")

    def _op_xor(self, ins: TInstr) -> None:
        self._int_binop(ins, "xor")

    def _op_shl(self, ins: TInstr) -> None:
        self._int_binop(ins, "shl")

    def _op_shr(self, ins: TInstr) -> None:
        self._int_binop(ins, "shr")

    def _op_sar(self, ins: TInstr) -> None:
        self._int_binop(ins, "sar")

    def _op_mul(self, ins: TInstr) -> None:
        dst, commit = self.iout(ins.dst)
        a, b = ins.a, ins.b
        w = 4 if ins.width == 4 else 8
        dw = dst.with_size(w)
        if isinstance(a, int):
            a, b = b, a
        if isinstance(b, int):
            assert isinstance(a, VReg)
            if self.options.mul_style == "lea" and w == 8:
                steps = _synth_mult(b)
                if steps is not None:
                    self._emit_synth_mult(dst, a, steps)
                    commit()
                    return
            src = self._loc(a)
            if isinstance(src, Reg) and _fits32(b):
                self.op("imul", dw, src.with_size(w), Imm(b))
            else:
                self._load_int(dst, a)
                if _fits32(b):
                    self.op("imul", dw, dw, Imm(b))
                else:
                    self.op("mov", gp(_SCRATCH1), Imm(b, 8))
                    self.op("imul", dst, gp(_SCRATCH1))
            commit()
            return
        assert isinstance(a, VReg) and isinstance(b, VReg)
        breg = self.ireg(b, _SCRATCH1)
        if breg.index == dst.index:
            self.op("imul", dw, self.ireg(a, _SCRATCH2).with_size(w))
        else:
            self._load_int(dst, a)
            self.op("imul", dw, breg.with_size(w))
        commit()

    def _emit_synth_mult(self, dst: Reg, a: VReg, steps: list[_SynthStep]) -> None:
        """GCC-style multiply-by-constant as lea/shl chain."""
        x = self.ireg(a, _SCRATCH1)
        if not steps:
            # imm == 1: the chain is empty, but dst must still receive the
            # multiplicand — falling through would leave dst unwritten
            if x.index != dst.index:
                self.op("mov", dst, x)
            return
        if x.index == dst.index:
            # need the original value later; stash it
            self.op("mov", gp(_SCRATCH1), x)
            x = gp(_SCRATCH1)
        cur = dst
        first = True
        for kind, s in steps:
            if first:
                if kind == "scale":
                    self.op("lea", cur, Mem(8, index=x, scale=s))
                elif kind == "lea":
                    self.op("lea", cur, Mem(8, base=x, index=x, scale=s))
                elif kind == "leax":
                    # m = 1*s + 1
                    self.op("lea", cur, Mem(8, base=x, index=x, scale=s))
                else:  # shl
                    self.op("mov", cur, x)
                    self.op("shl", cur, Imm(s, 1))
                first = False
                continue
            if kind == "scale":
                self.op("lea", cur, Mem(8, index=cur, scale=s))
            elif kind == "lea":
                self.op("lea", cur, Mem(8, base=cur, index=cur, scale=s))
            elif kind == "leax":
                self.op("lea", cur, Mem(8, base=x, index=cur, scale=s))
            else:
                self.op("shl", cur, Imm(s, 1))

    def _op_div(self, ins: TInstr) -> None:
        self._divrem(ins, want_rem=False)

    def _op_rem(self, ins: TInstr) -> None:
        self._divrem(ins, want_rem=True)

    def _divrem(self, ins: TInstr, want_rem: bool) -> None:
        w = 4 if ins.width == 4 else 8
        self._load_int(gp(RAX), ins.a)
        if isinstance(ins.b, int):
            self.op("mov", gp(RCX), Imm(ins.b, 8 if not _fits32(ins.b) else 4))
            breg = gp(RCX)
        else:
            assert isinstance(ins.b, VReg)
            breg = self.ireg(ins.b, _SCRATCH1)
        self.op("cqo" if w == 8 else "cdq")
        self.op("idiv", breg.with_size(w))
        dst, commit = self.iout(ins.dst)
        src_reg = RDX if want_rem else RAX
        if w == 4:
            self.op("mov", dst.with_size(4), gp(src_reg, 4))
        else:
            self.op("mov", dst, gp(src_reg))
        commit()

    def _op_neg(self, ins: TInstr) -> None:
        dst, commit = self.iout(ins.dst)
        self._load_int(dst, ins.a)
        self.op("neg", dst)
        commit()

    def _op_not(self, ins: TInstr) -> None:
        dst, commit = self.iout(ins.dst)
        self._load_int(dst, ins.a)
        self.op("not", dst)
        commit()

    def _op_ext(self, ins: TInstr) -> None:
        dst, commit = self.iout(ins.dst)
        assert isinstance(ins.a, VReg)
        src = self.ireg(ins.a, _SCRATCH1)
        if ins.width == 8:
            if src.index != dst.index:
                self.op("mov", dst, src)
        elif ins.width == 4:
            if ins.signed:
                self.op("movsxd", dst, src.with_size(4))
            else:
                self.op("mov", dst.with_size(4), src.with_size(4))
        elif ins.signed:
            self.op("movsx", dst, src.with_size(ins.width))
        else:
            self.op("movzx", dst.with_size(4), src.with_size(ins.width))
        commit()

    def _cmp(self, a: object, b: object, width: int = 8) -> None:
        w = 4 if width == 4 else 8
        if isinstance(a, int):
            self.op("mov", gp(_SCRATCH2), Imm(a, 8 if not _fits32(a) else 4))
            areg: Reg = gp(_SCRATCH2)
        else:
            assert isinstance(a, VReg)
            areg = self.ireg(a, _SCRATCH2)
        areg = areg.with_size(w)
        if isinstance(b, int):
            if _fits32(b):
                self.op("cmp", areg, Imm(b))
            else:
                self.op("mov", gp(_SCRATCH1), Imm(b, 8))
                self.op("cmp", areg, gp(_SCRATCH1, w))
        else:
            assert isinstance(b, VReg)
            self.op("cmp", areg, self.ireg(b, _SCRATCH1).with_size(w))

    def _op_setcc(self, ins: TInstr) -> None:
        self._cmp(ins.a, ins.b, ins.width)
        dst, commit = self.iout(ins.dst)
        self.op("set" + ins.cc, gp(_SCRATCH1, 1))
        self.op("movzx", dst.with_size(4), gp(_SCRATCH1, 1))
        commit()

    def _op_br(self, ins: TInstr) -> None:
        self._cmp(ins.a, ins.b, ins.width)
        lt, lf = ins.labels
        self.op("j" + ins.cc, self.labelref(lt))
        self.op("jmp", self.labelref(lf))

    def _op_fbr(self, ins: TInstr) -> None:
        assert isinstance(ins.a, VReg) and isinstance(ins.b, VReg)
        areg = self.freg(ins.a, _FSCRATCH0)
        breg = self.freg(ins.b, _FSCRATCH1)
        self.op("ucomisd", areg, breg)
        lt, lf = ins.labels
        self.op("j" + ins.cc, self.labelref(lt))
        self.op("jmp", self.labelref(lf))

    def _op_jmp(self, ins: TInstr) -> None:
        self.op("jmp", self.labelref(ins.labels[0]))

    def _op_load(self, ins: TInstr) -> None:
        assert ins.addr is not None
        mem = self.addr_mem(ins.addr, ins.width)
        dst, commit = self.iout(ins.dst)
        if ins.width == 8:
            self.op("mov", dst, mem)
        elif ins.width == 4:
            if ins.signed:
                self.op("movsxd", dst, mem)
            else:
                self.op("mov", dst.with_size(4), mem)
        elif ins.signed:
            self.op("movsx", dst, mem)  # extend to the full 64-bit invariant
        else:
            self.op("movzx", dst.with_size(4), mem)
        commit()

    def _op_store(self, ins: TInstr) -> None:
        assert ins.addr is not None
        mem = self.addr_mem(ins.addr, ins.width)
        if isinstance(ins.a, int):
            if _fits32(ins.a):
                self.op("mov", mem, Imm(ins.a, min(ins.width, 4)))
            else:
                self.op("mov", gp(_SCRATCH0), Imm(ins.a, 8))
                self.op("mov", mem, gp(_SCRATCH0))
            return
        assert isinstance(ins.a, VReg)
        src = self.ireg(ins.a, _SCRATCH0)
        self.op("mov", mem, src.with_size(ins.width))

    def _op_fload(self, ins: TInstr) -> None:
        assert ins.addr is not None
        mem = self.addr_mem(ins.addr, 8)
        dst, commit = self.fout(ins.dst)
        self.op("movsd", dst, mem)
        commit()

    def _op_fstore(self, ins: TInstr) -> None:
        assert ins.addr is not None and isinstance(ins.a, VReg)
        mem = self.addr_mem(ins.addr, 8)
        self.op("movsd", mem, self.freg(ins.a))

    def _op_lea(self, ins: TInstr) -> None:
        assert ins.addr is not None
        dst, commit = self.iout(ins.dst)
        mem = self.addr_mem(ins.addr, 8)
        if mem.base is None and mem.index is None and not mem.riprel:
            self.op("mov", dst, Imm(mem.disp, 8 if not _fits32(mem.disp) else 4))
        else:
            self.op("lea", dst, mem)
        commit()

    def _op_frame(self, ins: TInstr) -> None:
        dst, commit = self.iout(ins.dst)
        self.op("lea", dst, Mem(8, base=gp(RBP), disp=self.frame.offsets[ins.slot]))
        commit()

    def _fbinop(self, ins: TInstr, mnemonic: str) -> None:
        assert isinstance(ins.a, VReg) and isinstance(ins.b, VReg)
        dst, commit = self.fout(ins.dst)
        a_assign = self._assignment(ins.a)
        b_assign = self._assignment(ins.b)
        commutative = mnemonic in ("addsd", "mulsd", "addpd", "mulpd")
        if b_assign.is_reg and b_assign.value == dst.index and \
                not (a_assign.is_reg and a_assign.value == dst.index):
            if commutative:
                self.op(mnemonic, dst, self.freg(ins.a, _FSCRATCH0))
                commit()
                return
            tmp = xmm(_FSCRATCH0)
            self._move(self._loc(ins.a), tmp, ins.dst.cls)
            self.op(mnemonic, tmp, self.freg(ins.b, _FSCRATCH1))
            self._move(tmp, dst, ins.dst.cls)
            commit()
            return
        self._move_if_needed(ins.a, dst, ins.dst.cls)
        self.op(mnemonic, dst, self.freg(ins.b, _FSCRATCH1))
        commit()

    def _move_if_needed(self, src: VReg, dst: Reg, cls: str) -> None:
        loc = self._loc(src)
        if isinstance(loc, Reg) and loc.index == dst.index:
            return
        self._move(loc, dst, cls)

    def _op_fadd(self, ins: TInstr) -> None:
        self._fbinop(ins, "addsd")

    def _op_fsub(self, ins: TInstr) -> None:
        self._fbinop(ins, "subsd")

    def _op_fmul(self, ins: TInstr) -> None:
        self._fbinop(ins, "mulsd")

    def _op_fdiv(self, ins: TInstr) -> None:
        self._fbinop(ins, "divsd")

    def _op_fneg(self, ins: TInstr) -> None:
        assert isinstance(ins.a, VReg)
        dst, commit = self.fout(ins.dst)
        sign_mask = (0x8000000000000000).to_bytes(8, "little") * 2
        addr = self.pool.data(sign_mask, align=16)
        self._move_if_needed(ins.a, dst, "f")
        self.op("xorpd", dst, self.const_mem(addr, 16))
        commit()

    def _op_i2f(self, ins: TInstr) -> None:
        assert isinstance(ins.a, VReg)
        dst, commit = self.fout(ins.dst)
        self.op("cvtsi2sd", dst, self.ireg(ins.a))
        commit()

    def _op_f2i(self, ins: TInstr) -> None:
        assert isinstance(ins.a, VReg)
        dst, commit = self.iout(ins.dst)
        self.op("cvttsd2si", dst, self.freg(ins.a))
        commit()

    def _op_call(self, ins: TInstr) -> None:
        moves: list[tuple[object, object, str]] = []
        for i, v in enumerate(ins.iargs):
            moves.append((self._loc(v), gp(SYSV_INT_ARGS[i]), "i"))
        for i, v in enumerate(ins.fargs):
            moves.append((self._loc(v), xmm(i), "f"))
        self._parallel_move(moves)
        if ins.func in self.symbols:
            self.op("call", Imm(self.symbols[ins.func], 8))
        else:
            self.op("call", LabelRef(ins.func))
        if ins.dst is not None:
            if ins.dst.cls == "i":
                self._parallel_move([(gp(RAX), self._loc(ins.dst), "i")])
            else:
                self._parallel_move([(xmm(0), self._loc(ins.dst), "f")])

    def _op_ret(self, ins: TInstr) -> None:
        if ins.a is not None:
            if isinstance(ins.a, int):
                self.op("mov", gp(RAX), Imm(ins.a, 8 if not _fits32(ins.a) else 4))
            elif ins.a.cls == "i":
                self._parallel_move([(self._loc(ins.a), gp(RAX), "i")])
            else:
                self._parallel_move([(self._loc(ins.a), xmm(0), "f")])
        self.op("jmp", self.labelref(self._epilogue))

    # -- vector ops -----------------------------------------------------------

    def _op_vload(self, ins: TInstr) -> None:
        assert ins.addr is not None
        mem = self.addr_mem(ins.addr, 16)
        dst, commit = self.fout(ins.dst)
        self.op("movapd" if ins.aligned else "movupd", dst, mem)
        commit()

    def _op_vload_split(self, ins: TInstr) -> None:
        """Conservative unaligned vector load: movsd + movhpd pair."""
        assert ins.addr is not None
        lo = self.addr_mem(ins.addr, 8)
        from dataclasses import replace as _replace
        hi = _replace(lo, disp=lo.disp + 8)
        dst, commit = self.fout(ins.dst)
        self.op("movsd", dst, lo)
        self.op("movhpd", dst, hi)
        commit()

    def _op_vstore(self, ins: TInstr) -> None:
        assert ins.addr is not None and isinstance(ins.a, VReg)
        mem = self.addr_mem(ins.addr, 16)
        self.op("movapd" if ins.aligned else "movupd", mem, self.freg(ins.a))

    def _op_vadd(self, ins: TInstr) -> None:
        self._fbinop(ins, "addpd")

    def _op_vsub(self, ins: TInstr) -> None:
        self._fbinop(ins, "subpd")

    def _op_vmul(self, ins: TInstr) -> None:
        self._fbinop(ins, "mulpd")

    def _op_vbroadcast(self, ins: TInstr) -> None:
        assert isinstance(ins.a, VReg)
        dst, commit = self.fout(ins.dst)
        self._move_if_needed(ins.a, dst, "f")
        self.op("unpcklpd", dst, dst)
        commit()

    def _op_vlow(self, ins: TInstr) -> None:
        assert isinstance(ins.a, VReg)
        dst, commit = self.fout(ins.dst)
        self._move_if_needed(ins.a, dst, "f")
        commit()

    def _op_vhadd(self, ins: TInstr) -> None:
        assert isinstance(ins.a, VReg)
        dst, commit = self.fout(ins.dst)
        self._move_if_needed(ins.a, dst, "v")
        self.op("haddpd", dst, dst)
        commit()

    def _op_vhigh(self, ins: TInstr) -> None:
        assert isinstance(ins.a, VReg)
        dst, commit = self.fout(ins.dst)
        self._move_if_needed(ins.a, dst, "v")
        self.op("unpckhpd", dst, dst)
        commit()

    def _op_vxor(self, ins: TInstr) -> None:
        self._vbitop(ins, "pxor")

    def _op_vand(self, ins: TInstr) -> None:
        self._vbitop(ins, "pand")

    def _op_vor(self, ins: TInstr) -> None:
        self._vbitop(ins, "por")

    def _vbitop(self, ins: TInstr, mnemonic: str) -> None:
        assert isinstance(ins.a, VReg) and isinstance(ins.b, VReg)
        dst, commit = self.fout(ins.dst)
        b_assign = self._assignment(ins.b)
        if b_assign.is_reg and b_assign.value == dst.index:
            self.op(mnemonic, dst, self.freg(ins.a, _FSCRATCH0))  # commutative
        else:
            self._move_if_needed(ins.a, dst, "v")
            self.op(mnemonic, dst, self.freg(ins.b, _FSCRATCH1))
        commit()

    def _op_vinsert0(self, ins: TInstr) -> None:
        # dst = [b, a.high]
        assert isinstance(ins.a, VReg) and isinstance(ins.b, VReg)
        dst, commit = self.fout(ins.dst)
        b_assign = self._assignment(ins.b)
        if b_assign.is_reg and b_assign.value == dst.index:
            # the scalar already sits in dst's low lane: merge a's high lane
            tmp = xmm(_FSCRATCH0)
            self._move(self._loc(ins.a), tmp, "v")
            self.op("movsd", tmp, self.freg(ins.b, _FSCRATCH1))
            self._move(tmp, dst, "v")
        else:
            self._move_if_needed(ins.a, dst, "v")
            self.op("movsd", dst, self.freg(ins.b, _FSCRATCH1))
        commit()

    def _op_vinsert1(self, ins: TInstr) -> None:
        # dst = [a.low, b]
        assert isinstance(ins.a, VReg) and isinstance(ins.b, VReg)
        dst, commit = self.fout(ins.dst)
        b_assign = self._assignment(ins.b)
        if b_assign.is_reg and b_assign.value == dst.index:
            tmp = xmm(_FSCRATCH0)
            self._move(self._loc(ins.a), tmp, "v")
            self.op("unpcklpd", tmp, self.freg(ins.b, _FSCRATCH1))
            self._move(tmp, dst, "v")
        else:
            self._move_if_needed(ins.a, dst, "v")
            self.op("unpcklpd", dst, self.freg(ins.b, _FSCRATCH1))
        commit()

    def _op_vshuf(self, ins: TInstr) -> None:
        # dst = [a[imm&1], b[(imm>>1)&1]]
        assert isinstance(ins.a, VReg) and isinstance(ins.b, VReg)
        dst, commit = self.fout(ins.dst)
        b_assign = self._assignment(ins.b)
        if b_assign.is_reg and b_assign.value == dst.index and ins.a != ins.b:
            tmp = xmm(_FSCRATCH0)
            self._move(self._loc(ins.a), tmp, "v")
            self.op("shufpd", tmp, self.freg(ins.b, _FSCRATCH1), Imm(ins.imm, 1))
            self._move(tmp, dst, "v")
        else:
            self._move_if_needed(ins.a, dst, "v")
            self.op("shufpd", dst, self.freg(ins.b, _FSCRATCH1), Imm(ins.imm, 1))
        commit()

    def _op_cmp(self, ins: TInstr) -> None:
        self._cmp(ins.a, ins.b, ins.width)

    def _op_cmov(self, ins: TInstr) -> None:
        # dst must already hold the else-value; only flag-preserving movs may
        # be emitted here (spill reloads are plain movs, which are fine)
        dst, commit = self.iout(ins.dst)
        a = self._assignment(ins.dst)
        if not a.is_reg:
            # reload current dst value without touching flags
            self.op("mov", dst, self._slot_mem(a.value, 8))
        assert isinstance(ins.a, VReg)
        self.op("cmov" + ins.cc, dst, self.ireg(ins.a, _SCRATCH1))
        commit()

    def _op_fsetcc(self, ins: TInstr) -> None:
        assert isinstance(ins.a, VReg) and isinstance(ins.b, VReg)
        self.op("ucomisd", self.freg(ins.a, _FSCRATCH0), self.freg(ins.b, _FSCRATCH1))
        dst, commit = self.iout(ins.dst)
        self.op("set" + ins.cc, gp(_SCRATCH1, 1))
        self.op("movzx", dst.with_size(4), gp(_SCRATCH1, 1))
        commit()

    def _op_bits2f(self, ins: TInstr) -> None:
        assert isinstance(ins.a, VReg)
        dst, commit = self.fout(ins.dst)
        self.op("movq", dst, self.ireg(ins.a))
        commit()

    def _op_f2bits(self, ins: TInstr) -> None:
        assert isinstance(ins.a, VReg)
        dst, commit = self.iout(ins.dst)
        self.op("movq", dst, self.freg(ins.a))
        commit()


def _is_negzero(v: float) -> bool:
    import struct as _s
    return _s.pack("<d", v) == _s.pack("<d", -0.0)


def peephole(items: list[Item]) -> list[Item]:
    """Cheap cleanups: drop self-moves, invert branch+jump pairs whose
    conditional target is the fall-through label, drop jumps to next label."""
    from repro.x86 import isa as _isa

    out: list[Item] = []
    for it in items:
        if isinstance(it, Instruction):
            if it.mnemonic in ("mov", "movsd", "movapd", "movupd") and len(it.operands) == 2:
                a, b = it.operands
                if isinstance(a, Reg) and isinstance(b, Reg) and \
                        a.kind == b.kind and a.index == b.index and a.size == b.size:
                    # NOT a no-op for 32-bit GPR moves: `mov esi, esi`
                    # zero-extends into the upper half (Fig. 4a)
                    if a.kind == "xmm" or a.size == 8:
                        continue
        out.append(it)

    # invert [jcc X; jmp Y; X:] -> [j!cc Y; X:] so loop bodies fall through
    inverted: list[Item] = []
    i = 0
    while i < len(out):
        it = out[i]
        if (
            isinstance(it, Instruction)
            and _isa.control_class(it.mnemonic) == "jcc"
            and i + 2 < len(out)
            and isinstance(out[i + 1], Instruction)
            and out[i + 1].mnemonic == "jmp"  # type: ignore[union-attr]
            and isinstance(out[i + 2], Label)
            and isinstance(it.operands[0], LabelRef)
            and out[i + 2].name == it.operands[0].name  # type: ignore[union-attr]
        ):
            cc = _isa.cc_of(it.mnemonic)
            assert cc is not None
            inv = _isa.CC_NAMES[_isa.CC_INDEX[cc] ^ 1]  # flip the low bit
            jmp_target = out[i + 1].operands[0]  # type: ignore[union-attr]
            inverted.append(Instruction("j" + inv, (jmp_target,)))
            inverted.append(out[i + 2])
            i += 3
            continue
        inverted.append(it)
        i += 1
    out = inverted
    # remove jmp-to-next-label
    result: list[Item] = []
    for i, it in enumerate(out):
        if isinstance(it, Instruction) and it.mnemonic == "jmp" and it.operands:
            target = it.operands[0]
            if isinstance(target, LabelRef):
                j = i + 1
                skip = False
                while j < len(out) and isinstance(out[j], Label):
                    if out[j].name == target.name:  # type: ignore[union-attr]
                        skip = True
                        break
                    j += 1
                if skip:
                    continue
        result.append(it)
    return result


def emit_function(
    func: TFunc,
    pool: ConstPool,
    options: EmitOptions = EmitOptions(),
    symbols: dict[str, int] | None = None,
) -> list[Item]:
    """Emit one TAC function as an assembler item stream."""
    return Emitter(func, pool, options, symbols).run()


@dataclass
class EmitInfo:
    """Register-allocation and frame facts the machine verifier needs:
    vreg assignments, frame-slot offsets and sizes, and the prologue shape."""

    assignments: dict[VReg, Assignment]
    frame_offsets: dict[int, int]          # slot id -> rbp-relative offset
    slot_sizes: dict[int, tuple[int, int]]  # slot id -> (size, align)
    local_size: int
    used_callee_saved: tuple[int, ...]


def emit_function_info(
    func: TFunc,
    pool: ConstPool,
    options: EmitOptions = EmitOptions(),
    symbols: dict[str, int] | None = None,
) -> tuple[list[Item], EmitInfo]:
    """Like :func:`emit_function`, also returning allocation/frame facts."""
    em = Emitter(func, pool, options, symbols)
    items = em.run()
    slot_sizes = dict(func.frame_objects)
    slot_sizes.update(em.alloc.spill_slots)
    info = EmitInfo(
        assignments=dict(em.alloc.assignments),
        frame_offsets=dict(em.frame.offsets),
        slot_sizes=slot_sizes,
        local_size=em.frame.local_size,
        used_callee_saved=tuple(em.alloc.used_callee_saved),
    )
    return items, info
