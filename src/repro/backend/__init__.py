"""Shared low-level back-end: TAC, register allocation, x86-64 emission.

Both compilers in this project target this layer:

* MCC (``repro.cc``) lowers its checked AST to TAC;
* the MiniLLVM JIT (``repro.ir.codegen``) lowers optimized SSA IR to TAC
  after phi elimination.

The emitter has small instruction-selection knobs (``mul_style``) so the two
compilers can keep their characteristic code idioms — the paper observes
GCC's lea-chain multiplies vs LLVM's single ``imul`` (Sec. VI-A).
"""

from repro.backend.tac import TAddr, TBlock, TFunc, TInstr, VReg
from repro.backend.emit import EmitOptions, emit_function

__all__ = [
    "EmitOptions", "TAddr", "TBlock", "TFunc", "TInstr", "VReg",
    "emit_function",
]
