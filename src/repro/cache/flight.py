"""In-flight request coalescing ("single-flight") for compile pipelines.

A cache answers *completed* compiles; it does nothing for the thundering
herd — N concurrent callers that all miss on the same key start N identical
pipeline runs, and N-1 of them are pure waste (worse: they race to install
N copies of the same code).  :class:`FlightTable` closes that window the
way Go's ``singleflight`` does for HTTP caches: the first caller of a key
becomes the *leader* and runs the compile; every concurrent caller of the
same key becomes a *follower* and blocks until the leader finishes, then
observes the leader's outcome.

The table is keyed by opaque tuples (the engine uses the machine-stage
cache key, the tiered engine adds tier and epoch), holds its lock only for
bookkeeping — never across a compile — and propagates the leader's
exception to all followers, so a failing compile fails every coalesced
request identically (the guard ladder then quarantines the key once).

:class:`FileFlightTable` promotes the same invariant from threads to
*processes* for the compile farm: leadership is a held POSIX advisory lock
on a per-key file under the shared cache directory, and the "result" a
follower observes is whatever the leader published to the shared disk
store (followers poll a ``probe`` callable rather than parking on an
in-process event).  ``flock`` ownership dies with its process, which gives
the failure semantics for free: a SIGKILLed leader drops the lock, the
next polling follower acquires it, sees the result unpublished, and takes
over as the new leader — no cross-process refcounts, no stale-owner
recovery protocol.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Callable, Hashable

from repro.cache.store import advisory_lock
from repro.obs.metrics import Counter


class _Flight:
    """One in-flight compile: an event the followers park on."""

    __slots__ = ("done", "result", "error", "followers")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.result: Any = None
        self.error: BaseException | None = None
        self.followers = 0


class FlightTable:
    """Coalesces concurrent calls with the same key into one execution.

    ``run(key, thunk)`` returns ``(result, leader)`` — ``leader`` tells the
    caller whether its own thunk ran (a follower's never does).  A follower
    re-raises the leader's exception.  Counters: ``led`` completed leader
    runs, ``coalesced`` follower joins, ``in_flight`` current table size.
    """

    def __init__(self, *, led: Counter | None = None,
                 coalesced: Counter | None = None,
                 timeouts: Counter | None = None) -> None:
        self._lock = threading.Lock()
        self._flights: dict[Hashable, _Flight] = {}
        # counters may be injected by a metrics registry owner (the
        # specialization cache), unifying flight accounting with the one
        # authoritative snapshot/reset; standalone tables own private ones
        self._led = led if led is not None else Counter("flight.led")
        self._coalesced = coalesced if coalesced is not None \
            else Counter("flight.coalesced")
        self._timeouts = timeouts if timeouts is not None \
            else Counter("flight.timeouts")

    @property
    def led(self) -> int:
        return self._led.value

    @property
    def coalesced(self) -> int:
        return self._coalesced.value

    @property
    def in_flight(self) -> int:
        with self._lock:
            return len(self._flights)

    def run(self, key: Hashable, thunk: Callable[[], Any],
            timeout: float | None = None) -> tuple[Any, bool]:
        """Execute ``thunk`` once per concurrent ``key``; join otherwise.

        ``timeout`` bounds a *follower's* wait (the leader is never
        interrupted); on timeout the follower falls back to running the
        thunk itself rather than hanging a caller on a stuck leader.
        """
        with self._lock:
            flight = self._flights.get(key)
            if flight is None:
                flight = _Flight()
                self._flights[key] = flight
                leader = True
            else:
                leader = False
                flight.followers += 1
                self._coalesced.value += 1
        if leader:
            try:
                flight.result = thunk()
            except BaseException as exc:
                flight.error = exc
                raise
            finally:
                with self._lock:
                    self._flights.pop(key, None)
                    self._led.value += 1
                flight.done.set()
            return flight.result, True
        if not flight.done.wait(timeout):
            # stuck leader: don't hang the caller, compile independently
            self._timeouts.value += 1
            return thunk(), True
        if flight.error is not None:
            raise flight.error
        return flight.result, False

    @property
    def timeouts(self) -> int:
        return self._timeouts.value

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return {"led": self._led.value, "coalesced": self._coalesced.value,
                    "timeouts": self._timeouts.value,
                    "in_flight": len(self._flights)}


class FileFlightTable:
    """Cross-process single-flight over a shared directory.

    ``run(key, thunk, probe)`` guarantees that of all *processes*
    concurrently calling with the same key, one runs ``thunk`` (the
    leader) while the rest poll ``probe`` — a cheap shared-state check
    (e.g. a :class:`~repro.cache.store.DiskStore` get) that returns the
    published result or None.  The thunk must publish its result where the
    probe can see it *before* returning; the table itself moves no data
    between processes, only the right to compile.

    Leadership is a non-blocking ``flock`` on ``<root>/<key>.lock``.  Lock
    files are never unlinked: removal would hand a later acquirer a fresh
    inode while the current leader still holds the old one, and two
    "leaders" would run concurrently.  A directory of empty ``.lock``
    files is the (tiny) price of a race-free protocol; ``sweep()`` exists
    for offline cleanup.

    Failure semantics (the farm's worker-lifecycle contract):

    * leader killed mid-compile -> its ``flock`` evaporates; the first
      follower whose poll acquires the lock re-probes and, still seeing no
      result, becomes the new leader (counted in ``takeovers``);
    * follower exceeds ``timeout`` -> it stops waiting and runs the thunk
      itself (counted in ``timeouts``), so one wedged-but-alive leader
      degrades to duplicated work, never to a stalled caller.
    """

    def __init__(self, root: str, *, poll_interval: float = 0.005,
                 led: Counter | None = None,
                 coalesced: Counter | None = None,
                 takeovers: Counter | None = None,
                 timeouts: Counter | None = None) -> None:
        self.root = root
        self.poll_interval = poll_interval
        os.makedirs(root, exist_ok=True)
        self._led = led if led is not None else Counter("file_flight.led")
        self._coalesced = coalesced if coalesced is not None \
            else Counter("file_flight.coalesced")
        self._takeovers = takeovers if takeovers is not None \
            else Counter("file_flight.takeovers")
        self._timeouts = timeouts if timeouts is not None \
            else Counter("file_flight.timeouts")

    @property
    def led(self) -> int:
        return self._led.value

    @property
    def coalesced(self) -> int:
        return self._coalesced.value

    @property
    def takeovers(self) -> int:
        return self._takeovers.value

    @property
    def timeouts(self) -> int:
        return self._timeouts.value

    def _lock_path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.lock")

    def run(self, key: str, thunk: Callable[[], Any],
            probe: Callable[[], Any | None],
            timeout: float | None = None) -> tuple[Any, bool]:
        """Execute ``thunk`` in exactly one process per concurrent ``key``.

        Returns ``(result, leader)``.  A follower's result comes from
        ``probe``; the leader's from its own thunk.  The fast path — the
        result is already published — probes once and returns without
        touching the lock at all.
        """
        hit = probe()
        if hit is not None:
            self._coalesced.value += 1
            return hit, False
        deadline = None if timeout is None else time.monotonic() + timeout
        path = self._lock_path(key)
        waited = False
        while True:
            with advisory_lock(path, blocking=False) as held:
                if held:
                    # the lock serializes leaders; re-probe inside it — a
                    # prior leader may have published between our probe
                    # and our acquire (or died after publishing)
                    hit = probe()
                    if hit is not None:
                        self._coalesced.value += 1
                        return hit, False
                    if waited:
                        self._takeovers.value += 1
                    result = thunk()
                    self._led.value += 1
                    return result, True
            waited = True
            if deadline is not None and time.monotonic() >= deadline:
                # wedged-but-alive leader: duplicate the work rather than
                # hang the caller (mirrors FlightTable's follower timeout)
                self._timeouts.value += 1
                return thunk(), True
            time.sleep(self.poll_interval)
            hit = probe()
            if hit is not None:
                self._coalesced.value += 1
                return hit, False

    def sweep(self) -> int:
        """Remove all lock files (offline maintenance only).

        Never call while any process may be inside :meth:`run` on this
        directory — see the class docstring for why unlinking live lock
        files breaks mutual exclusion.
        """
        removed = 0
        for name in os.listdir(self.root):
            if name.endswith(".lock"):
                try:
                    os.unlink(os.path.join(self.root, name))
                    removed += 1
                except OSError:
                    pass
        return removed

    def snapshot(self) -> dict[str, int]:
        return {"led": self._led.value, "coalesced": self._coalesced.value,
                "takeovers": self._takeovers.value,
                "timeouts": self._timeouts.value}
