"""In-flight request coalescing ("single-flight") for compile pipelines.

A cache answers *completed* compiles; it does nothing for the thundering
herd — N concurrent callers that all miss on the same key start N identical
pipeline runs, and N-1 of them are pure waste (worse: they race to install
N copies of the same code).  :class:`FlightTable` closes that window the
way Go's ``singleflight`` does for HTTP caches: the first caller of a key
becomes the *leader* and runs the compile; every concurrent caller of the
same key becomes a *follower* and blocks until the leader finishes, then
observes the leader's outcome.

The table is keyed by opaque tuples (the engine uses the machine-stage
cache key, the tiered engine adds tier and epoch), holds its lock only for
bookkeeping — never across a compile — and propagates the leader's
exception to all followers, so a failing compile fails every coalesced
request identically (the guard ladder then quarantines the key once).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Hashable

from repro.obs.metrics import Counter


class _Flight:
    """One in-flight compile: an event the followers park on."""

    __slots__ = ("done", "result", "error", "followers")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.result: Any = None
        self.error: BaseException | None = None
        self.followers = 0


class FlightTable:
    """Coalesces concurrent calls with the same key into one execution.

    ``run(key, thunk)`` returns ``(result, leader)`` — ``leader`` tells the
    caller whether its own thunk ran (a follower's never does).  A follower
    re-raises the leader's exception.  Counters: ``led`` completed leader
    runs, ``coalesced`` follower joins, ``in_flight`` current table size.
    """

    def __init__(self, *, led: Counter | None = None,
                 coalesced: Counter | None = None) -> None:
        self._lock = threading.Lock()
        self._flights: dict[Hashable, _Flight] = {}
        # counters may be injected by a metrics registry owner (the
        # specialization cache), unifying flight accounting with the one
        # authoritative snapshot/reset; standalone tables own private ones
        self._led = led if led is not None else Counter("flight.led")
        self._coalesced = coalesced if coalesced is not None \
            else Counter("flight.coalesced")

    @property
    def led(self) -> int:
        return self._led.value

    @property
    def coalesced(self) -> int:
        return self._coalesced.value

    @property
    def in_flight(self) -> int:
        with self._lock:
            return len(self._flights)

    def run(self, key: Hashable, thunk: Callable[[], Any],
            timeout: float | None = None) -> tuple[Any, bool]:
        """Execute ``thunk`` once per concurrent ``key``; join otherwise.

        ``timeout`` bounds a *follower's* wait (the leader is never
        interrupted); on timeout the follower falls back to running the
        thunk itself rather than hanging a caller on a stuck leader.
        """
        with self._lock:
            flight = self._flights.get(key)
            if flight is None:
                flight = _Flight()
                self._flights[key] = flight
                leader = True
            else:
                leader = False
                flight.followers += 1
                self._coalesced.value += 1
        if leader:
            try:
                flight.result = thunk()
            except BaseException as exc:
                flight.error = exc
                raise
            finally:
                with self._lock:
                    self._flights.pop(key, None)
                    self._led.value += 1
                flight.done.set()
            return flight.result, True
        if not flight.done.wait(timeout):
            # stuck leader: don't hang the caller, compile independently
            return thunk(), True
        if flight.error is not None:
            raise flight.error
        return flight.result, False

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return {"led": self._led.value, "coalesced": self._coalesced.value,
                    "in_flight": len(self._flights)}
