"""Specialization code cache: content-addressed, two-level, per-stage.

See :mod:`repro.cache.cache` for the stage model and
:mod:`repro.cache.keys` for what goes into a key.
"""

from repro.cache.cache import CacheStats, MachineEntry, SpecializationCache
from repro.cache.flight import FileFlightTable, FlightTable
from repro.cache.negative import NegativeCache, NegativeEntry
from repro.cache.store import DiskStore, LRUStore, advisory_lock

__all__ = [
    "CacheStats", "DiskStore", "FileFlightTable", "FlightTable", "LRUStore",
    "MachineEntry", "NegativeCache", "NegativeEntry", "SpecializationCache",
    "advisory_lock",
]
