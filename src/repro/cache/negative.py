"""Failure quarantine: negative entries for transforms that did not work.

A specialization that fails (unsupported construct, budget exhaustion,
verification divergence) costs the *whole* pipeline before the ladder can
fall back.  Re-running that pipeline on every request for the same function
turns one pathological input into a standing CPU tax.  The quarantine
remembers failures the same way the positive stores remember successes —
content-addressed keys — so a repeat request is served its fallback
instantly.

Entries carry a TTL and a retry budget:

* while an entry is *fresh* (``now < expiry``) the failed rung is skipped;
* when the TTL lapses the rung is retried — the input may have been
  patched, or a transient budget squeeze may be gone;
* every repeated failure doubles the TTL (capped) up to ``max_retries``
  re-attempts, after which the entry becomes permanent: the quarantine
  stops burning pipeline time on an input that provably never transforms.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.cache.store import LRUStore


@dataclass
class NegativeEntry:
    """One quarantined failure (a rung that failed for a given key)."""

    key: str
    rung: str
    reason: str
    #: structured ReproError.context of the recorded failure
    context: dict[str, Any] = field(default_factory=dict)
    failures: int = 1
    ttl: float = 30.0
    expiry: float = 0.0
    permanent: bool = False
    #: times this entry short-circuited the pipeline
    served: int = 0

    def fresh(self, now: float) -> bool:
        return self.permanent or now < self.expiry


class NegativeCache:
    """LRU-bounded quarantine with TTL back-off and a retry budget.

    ``ttl`` is the initial quarantine window; each repeated failure doubles
    it up to ``max_ttl``.  After ``max_retries`` failures the entry stops
    expiring.  ``clock`` is injectable for deterministic tests.

    Thread-safe: :meth:`check` mutates served counters and :meth:`record`
    is a read-modify-write of the TTL back-off state, so both hold one
    lock — concurrent failures of the same key from background compile
    workers must not lose failure counts (a lost count under-backs-off
    and re-runs a provably failing pipeline).
    """

    def __init__(self, *, capacity: int = 1024, ttl: float = 30.0,
                 max_ttl: float = 3600.0, max_retries: int = 8,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.ttl = ttl
        self.max_ttl = max_ttl
        self.max_retries = max_retries
        self._clock = clock
        self._store = LRUStore(capacity)
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.expirations = 0

    def check(self, key: str) -> NegativeEntry | None:
        """A fresh quarantine entry for ``key``, or None (miss/expired).

        An expired entry stays in the store (its failure count drives the
        back-off when the retry fails again) but is not served.
        """
        with self._lock:
            entry: NegativeEntry | None = self._store.get(key)
            if entry is None:
                self.misses += 1
                return None
            if not entry.fresh(self._clock()):
                self.expirations += 1
                self.misses += 1
                return None
            self.hits += 1
            entry.served += 1
            return entry

    def record(self, key: str, rung: str, reason: str,
               context: dict[str, Any] | None = None) -> NegativeEntry:
        """Quarantine (or re-quarantine, with back-off) a failure."""
        with self._lock:
            now = self._clock()
            entry: NegativeEntry | None = self._store.get(key)
            if entry is None:
                entry = NegativeEntry(key=key, rung=rung, reason=reason,
                                      context=dict(context or {}),
                                      ttl=self.ttl)
            else:
                entry.failures += 1
                entry.rung = rung
                entry.reason = reason
                entry.context = dict(context or {})
                entry.ttl = min(entry.ttl * 2, self.max_ttl)
            entry.expiry = now + entry.ttl
            if entry.failures > self.max_retries:
                entry.permanent = True
            self._store.put(key, entry)
            return entry

    def forget(self, key: str) -> None:
        """Drop a quarantine entry (e.g. after a successful retry)."""
        self._store.discard(key)

    def clear(self) -> None:
        self._store.clear()

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return {"entries": len(self._store), "hits": self.hits,
                    "misses": self.misses, "expirations": self.expirations}

    def __len__(self) -> int:
        return len(self._store)
