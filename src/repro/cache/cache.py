"""The specialization code cache (two-level, per-stage memoization).

Runtime rewriting pays its compile latency on the request path (the paper's
Fig. 10 measures decode -> lift -> -O3 -> codegen stage by stage), yet a
server that specializes the same function for the same parameters twice
repeats all of it.  :class:`SpecializationCache` amortizes that the way
production rewriters do (Instrew/Rellume keep lifted functions keyed by
address+bytes; BAAR caches accelerated regions), but content-addressed, so
a hit can land at any stage boundary:

``machine``
    The strongest hit: this exact specialization was already compiled and
    installed *in this image*.  Nothing runs; the existing entry address is
    returned (and aliased under the newly requested name).  Machine entries
    are per-image and die on :meth:`Image.patch_code` invalidation.

``module``
    The post--O3 IR module for (code bytes, fixation, O3 options) is known.
    Only code generation runs.

``lifted``
    The lifted (pre-fixation, pre-O3) module for (code bytes, signature,
    lift options) is known.  Decode+lift are skipped; fixation, -O3 and
    codegen run.  This is the stage that fires when the *same* function is
    re-specialized for *different* parameters.

``rewrite``
    DBrew whole-rewrite memoization (per image): same entry bytes + same
    ``set_par``/``set_mem`` configuration -> the previously emitted code.

IR-stage entries (``lifted``/``module``) are position-independent pickles:
with a ``disk_dir`` they survive process restarts and are promoted back
into the in-memory LRU on first use.
"""

from __future__ import annotations

import copy
import threading
import weakref
from dataclasses import dataclass
from typing import Any

from repro.cache import keys as K
from repro.cache.flight import FlightTable
from repro.cache.negative import NegativeCache, NegativeEntry
from repro.cache.store import DiskStore, LRUStore
from repro.cpu.image import Image
from repro.ir.module import Function, Module
from repro.obs.metrics import CounterView, MetricsRegistry

STAGES = ("machine", "module", "lifted", "rewrite")


class CacheStats:
    """Hit/miss accounting, per stage and per transform.

    Backed by a :class:`~repro.obs.metrics.MetricsRegistry` (private by
    default, shareable via the ``registry`` argument) so one
    ``snapshot()``/``reset()`` is authoritative across cache, guard and
    tier accounting.  The legacy attributes remain thin read/write views
    over the registry-owned metrics.
    """

    disk_hits = CounterView("_disk_hits")
    stores = CounterView("_stores")
    invalidations = CounterView("_invalidations")
    #: whole-transform outcomes: a transform is a hit if *any* stage hit
    transforms = CounterView("_transforms")
    transform_hits = CounterView("_transform_hits")
    #: failure-quarantine traffic (see repro.cache.negative)
    negative_hits = CounterView("_negative_hits")
    negative_misses = CounterView("_negative_misses")
    negative_stores = CounterView("_negative_stores")

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        r = self.registry
        self.stage_hits = r.family("cache.stage_hits",
                                   {s: 0 for s in STAGES})
        self.stage_misses = r.family("cache.stage_misses",
                                     {s: 0 for s in STAGES})
        self._disk_hits = r.counter("cache.disk_hits")
        self._stores = r.counter("cache.stores")
        self._invalidations = r.counter("cache.invalidations")
        self._transforms = r.counter("cache.transforms")
        self._transform_hits = r.counter("cache.transform_hits")
        self._negative_hits = r.counter("cache.negative.hits")
        self._negative_misses = r.counter("cache.negative.misses")
        self._negative_stores = r.counter("cache.negative.stores")

    @property
    def hit_rate(self) -> float:
        """Fraction of transforms served (at least partially) from cache."""
        if self.transforms == 0:
            return 0.0
        return self.transform_hits / self.transforms

    def reset(self) -> None:
        """Zero every counter (routes through the backing registry)."""
        self.registry.reset()

    def snapshot(self) -> dict[str, Any]:
        return {
            "stage_hits": dict(self.stage_hits),
            "stage_misses": dict(self.stage_misses),
            "disk_hits": self.disk_hits,
            "stores": self.stores,
            "invalidations": self.invalidations,
            "transforms": self.transforms,
            "transform_hits": self.transform_hits,
            "hit_rate": self.hit_rate,
            "negative_hits": self.negative_hits,
            "negative_misses": self.negative_misses,
            "negative_stores": self.negative_stores,
        }


@dataclass
class MachineEntry:
    """An installed specialization: everything needed to answer without
    compiling (the function/module references let :class:`TransformResult`
    stay fully populated on a machine-stage hit)."""

    addr: int
    name: str
    size: int
    function: Function
    module: Module
    #: the installed code passed a differential verification gate; only
    #: gated entries may be served by :class:`GuardedTransformer` without
    #: re-running the gate (entries installed by an unguarded
    #: BinaryTransformer stay ungated and are verified on first guarded use)
    gated: bool = False
    #: machine-level translation-validation verdict recorded at install
    #: time ("proved"/"inconclusive"; refuted entries are never installed).
    #: None when the installing transformer ran without ``machine_verify``.
    #: Served with every machine-stage hit, so the proof is paid once per
    #: installed-code key.
    machine_verdict: str | None = None


class _ImageState:
    """Per-image mutable cache state (machine + rewrite entries, digest
    memo).  Dropped wholesale when the image's guest bytes are patched."""

    def __init__(self, capacity: int, stats: CacheStats) -> None:
        self.generation = 0
        self.machine = LRUStore(capacity)
        self.rewrites = LRUStore(capacity)
        self.code_digests: dict[tuple[int, int], str] = {}
        self._stats = stats

    def on_patch(self, addr: int, size: int) -> None:
        """Invalidation hook: guest bytes changed somewhere.

        Deliberately coarse — one patch drops every position-dependent
        entry for this image.  Correctness never depends on precision here
        (stage keys are content digests), only the memoized digests and the
        skip-everything machine entries do.
        """
        self.generation += 1
        self.machine.clear()
        self.rewrites.clear()
        self.code_digests.clear()
        self._stats.invalidations += 1


class SpecializationCache:
    """Content-addressed cache for compiled specializations.

    ``capacity`` bounds each in-memory IR stage store (entries, LRU);
    ``machine_capacity`` bounds the per-image installed-code stores;
    ``disk_dir`` enables the on-disk second level for IR stages.

    Thread-safe: the stage stores and the quarantine lock internally (see
    :mod:`repro.cache.store` / :mod:`repro.cache.negative`), image binding
    holds the cache's own lock, and :attr:`flights` coalesces concurrent
    compiles of one key into a single pipeline run.  Stats counters are
    plain int increments — atomic enough under the GIL for telemetry.
    """

    def __init__(self, *, capacity: int = 256, machine_capacity: int = 1024,
                 disk_dir: str | None = None,
                 negative: NegativeCache | None = None,
                 registry: MetricsRegistry | None = None) -> None:
        #: the metrics registry backing all of this cache's accounting —
        #: stats counters and flight-table counters alike; pass a shared
        #: registry to aggregate with other subsystems
        self.registry = registry if registry is not None else MetricsRegistry()
        self.stats = CacheStats(self.registry)
        self._lifted = LRUStore(capacity)
        self._modules = LRUStore(capacity)
        self._machine_capacity = machine_capacity
        self._disk = DiskStore(disk_dir) if disk_dir else None
        self._images: "weakref.WeakKeyDictionary[Image, _ImageState]" = \
            weakref.WeakKeyDictionary()
        self._attach_lock = threading.Lock()
        #: failure quarantine (see repro.cache.negative); shared with the
        #: guard ladder so a failed specialization is served its fallback
        #: without re-running the pipeline
        self.negative = negative if negative is not None \
            else NegativeCache(capacity=capacity * 4)
        #: in-flight compile coalescing (see repro.cache.flight); shared by
        #: every transformer attached to this cache, so N concurrent misses
        #: on one machine key run one pipeline.  Its led/coalesced counters
        #: live in this cache's registry (unified snapshot/reset).
        self.flights = FlightTable(
            led=self.registry.counter("cache.flight.led"),
            coalesced=self.registry.counter("cache.flight.coalesced"))

    # -- image binding ---------------------------------------------------------

    def attach_image(self, image: Image) -> _ImageState:
        """Bind to an image: registers the patch-invalidation hook.

        Locked — two threads racing the first attach must not register two
        invalidation hooks (the loser's machine store would survive a
        ``patch_code`` unflushed).
        """
        state = self._images.get(image)
        if state is None:
            with self._attach_lock:
                state = self._images.get(image)
                if state is None:
                    state = _ImageState(self._machine_capacity, self.stats)
                    image.add_invalidation_hook(state.on_patch)
                    self._images[image] = state
        return state

    def code_digest(self, image: Image, func: str | int) -> str | None:
        """Memoized digest of a function's installed bytes (cleared when
        the image is patched, so it can never go stale)."""
        extent = K.function_extent(image, func)
        if extent is None:
            return None
        state = self.attach_image(image)
        d = state.code_digests.get(extent)
        if d is None:
            d = K.digest_bytes(image.memory.read(extent[0], extent[1]))
            state.code_digests[extent] = d
        return d

    # -- machine stage ---------------------------------------------------------

    def get_machine(self, image: Image, mkey: str) -> MachineEntry | None:
        entry = self.attach_image(image).machine.get(mkey)
        self._count("machine", entry is not None)
        return entry

    def put_machine(self, image: Image, mkey: str, entry: MachineEntry) -> None:
        self.attach_image(image).machine.put(mkey, entry)
        self.stats.stores += 1

    def mark_machine_gated(self, image: Image, mkey: str) -> None:
        """Record that the installed entry passed the verification gate."""
        entry = self.attach_image(image).machine.get(mkey)
        if entry is not None:
            entry.gated = True

    def evict_machine(self, image: Image, mkey: str) -> None:
        """Drop one installed entry (e.g. proven divergent by the gate).

        Without this, gate-rejected code would survive in the positive
        store and be served unverified once its quarantine entry expires.
        """
        self.attach_image(image).machine.discard(mkey)
        self.stats.invalidations += 1

    # -- IR stages (module / lifted) -------------------------------------------

    def get_module(self, mkey: str) -> tuple[Module, str] | None:
        return self._get_ir(self._modules, "module", mkey)

    def put_module(self, mkey: str, module: Module, func_name: str) -> None:
        self._put_ir(self._modules, "module", mkey, module, func_name)

    def get_lifted(self, lkey: str) -> tuple[Module, str] | None:
        return self._get_ir(self._lifted, "lifted", lkey)

    def put_lifted(self, lkey: str, module: Module, func_name: str) -> None:
        self._put_ir(self._lifted, "lifted", lkey, module, func_name)

    def _get_ir(self, store: LRUStore, stage: str,
                key: str) -> tuple[Module, str] | None:
        entry = store.get(key)
        if entry is None and self._disk is not None:
            entry = self._disk.get(f"{stage}-{key}")
            if entry is not None:
                self.stats.disk_hits += 1
                store.put(key, entry)
        self._count(stage, entry is not None)
        if entry is None:
            return None
        module, func_name = entry
        # the caller will mutate (fixation/O3/global placement): hand out a
        # private copy, keep the cached one pristine
        return copy.deepcopy(module), func_name

    def _put_ir(self, store: LRUStore, stage: str, key: str,
                module: Module, func_name: str) -> None:
        entry = (copy.deepcopy(module), func_name)
        store.put(key, entry)
        if self._disk is not None:
            self._disk.put(f"{stage}-{key}", entry)
        self.stats.stores += 1

    # -- DBrew rewrites ---------------------------------------------------------

    def get_rewrite(self, image: Image, rkey: str) -> tuple[int, str] | None:
        entry = self.attach_image(image).rewrites.get(rkey)
        self._count("rewrite", entry is not None)
        return entry

    def put_rewrite(self, image: Image, rkey: str, addr: int, name: str) -> None:
        self.attach_image(image).rewrites.put(rkey, (addr, name))
        self.stats.stores += 1

    # -- failure quarantine ------------------------------------------------------

    def check_negative(self, key: str) -> NegativeEntry | None:
        """A fresh quarantine entry for this transform key, or None."""
        entry = self.negative.check(key)
        if entry is not None:
            self.stats.negative_hits += 1
        else:
            self.stats.negative_misses += 1
        return entry

    def put_negative(self, key: str, rung: str, reason: str,
                     context: dict | None = None) -> NegativeEntry:
        """Quarantine a failed transform under its content key."""
        self.stats.negative_stores += 1
        return self.negative.record(key, rung, reason, context)

    def forget_negative(self, key: str) -> None:
        self.negative.forget(key)

    # -- accounting --------------------------------------------------------------

    def _count(self, stage: str, hit: bool) -> None:
        if hit:
            self.stats.stage_hits[stage] += 1
        else:
            self.stats.stage_misses[stage] += 1

    def note_transform(self, cache_stage: str | None) -> None:
        """Record one whole transform's outcome (called by the engine)."""
        self.stats.transforms += 1
        if cache_stage is not None:
            self.stats.transform_hits += 1

    @property
    def evictions(self) -> int:
        n = self._lifted.evictions + self._modules.evictions
        for state in self._images.values():
            n += state.machine.evictions + state.rewrites.evictions
        return n

    def __len__(self) -> int:
        n = len(self._lifted) + len(self._modules)
        for state in self._images.values():
            n += len(state.machine) + len(state.rewrites)
        return n
