"""Cache storage backends: a bounded in-memory LRU and a pickle disk store.

The LRU is the first level: recently used entries stay hot and eviction is
strictly bounded by entry count (IR modules dominate the footprint, and the
entry count maps directly to the number of distinct specializations kept
warm).  The disk store is an optional second level for the
position-independent stages (lifted / post-O3 IR): those survive process
restarts, so a service that re-specializes the same kernels on every boot
skips straight past decode+lift+O3.

Both backends are thread-safe: the tiered execution engine compiles in
background workers that hit the same stores as foreground dispatch, so
every compound operation (put+evict, check-then-move) holds a lock.  The
``OrderedDict`` operations underneath are *not* individually atomic —
``move_to_end`` during ``popitem`` or iteration during ``put`` corrupts or
raises — which is exactly what tests/tier/test_thread_safety.py hammers.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from typing import Any, Iterator


class LRUStore:
    """Ordered-dict LRU with a hard entry capacity.

    All operations hold an internal lock; ``keys`` returns a snapshot list
    so callers can iterate while other threads mutate the store.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("LRU capacity must be >= 1")
        self.capacity = capacity
        self.evictions = 0
        self._data: OrderedDict[str, Any] = OrderedDict()
        self._lock = threading.RLock()

    def get(self, key: str) -> Any | None:
        with self._lock:
            try:
                self._data.move_to_end(key)
            except KeyError:
                return None
            return self._data[key]

    def put(self, key: str, value: Any) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self.evictions += 1

    def discard(self, key: str) -> None:
        with self._lock:
            self._data.pop(key, None)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def keys(self) -> Iterator[str]:
        with self._lock:
            return iter(list(self._data.keys()))

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._data

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)


class DiskStore:
    """One pickle file per cache entry under ``root``.

    Best-effort by design: a corrupt, unreadable or unwritable entry is a
    miss, never an error — the compile pipeline is always available as the
    slow path.  Writes go through a temp file + ``os.replace`` so a
    concurrent reader (another thread *or* another process sharing the
    directory) can never observe a torn entry; the rename is atomic on
    POSIX, so no additional lock is needed for readers.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)

    def _path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.pkl")

    def get(self, key: str) -> Any | None:
        try:
            with open(self._path(key), "rb") as fh:
                return pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            return None

    def put(self, key: str, value: Any) -> bool:
        try:
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, self._path(key))
            except BaseException:
                os.unlink(tmp)
                raise
            return True
        except (OSError, pickle.PicklingError, TypeError):
            return False

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self._path(key))

    def __len__(self) -> int:
        return sum(1 for n in os.listdir(self.root) if n.endswith(".pkl"))
