"""Cache storage backends: a bounded in-memory LRU and a pickle disk store.

The LRU is the first level: recently used entries stay hot and eviction is
strictly bounded by entry count (IR modules dominate the footprint, and the
entry count maps directly to the number of distinct specializations kept
warm).  The disk store is an optional second level for the
position-independent stages (lifted / post-O3 IR): those survive process
restarts, so a service that re-specializes the same kernels on every boot
skips straight past decode+lift+O3.

Both backends are thread-safe: the tiered execution engine compiles in
background workers that hit the same stores as foreground dispatch, so
every compound operation (put+evict, check-then-move) holds a lock.  The
``OrderedDict`` operations underneath are *not* individually atomic —
``move_to_end`` during ``popitem`` or iteration during ``put`` corrupts or
raises — which is exactly what tests/tier/test_thread_safety.py hammers.

The disk store is additionally *multi-process* safe (the compile farm
shares one directory across a worker pool): publication is always
temp-file + atomic ``os.replace``, so a concurrent reader in any process
sees either the old entry or the new one, never a torn pickle; with
``durable=True`` the data and the directory entry are fsynced before the
rename commits, so a machine crash cannot leave a renamed-but-empty file
behind.  Crashed writers leak only ``.tmp`` files, which every store
construction sweeps.  ``locked()`` exposes the advisory file lock the
cross-process single-flight table builds on
(:class:`repro.cache.flight.FileFlightTable`).

**Record integrity**: atomic rename protects against *torn* reads, not
against bytes damaged after publication (a partially synced page after
power loss, bit rot, an operator truncating a file).  The farm dispatches
machine code derived from store contents, so a silently corrupt record is
the one cache failure that could violate the paper's never-diverge
contract.  Every record therefore carries a 16-byte header — magic, CRC32
and payload length — verified on every read; a record that fails the check
is **quarantined** (moved into ``<root>/quarantine/``, counted, and never
served — a miss, so the pipeline recompiles) rather than deleted, keeping
the evidence for post-mortems.  Pre-header records (plain pickles from
older stores) still load via a legacy fallback; unreadable legacy records
quarantine the same way.  Construction runs a recovery sweep that reaps
stale ``.tmp`` debris and expires old quarantine evidence.
"""

from __future__ import annotations

import contextlib
import itertools
import os
import pickle
import struct
import tempfile
import threading
import time
import zlib
from collections import OrderedDict
from typing import Any, Iterator

from repro.obs import metrics as _metrics

try:  # POSIX advisory locks; farm coordination degrades gracefully without
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None  # type: ignore[assignment]

#: a ``.tmp`` file this old was leaked by a crashed writer, not in-flight
_STALE_TMP_SECONDS = 300.0
#: quarantined evidence older than this is reaped by the recovery sweep
_STALE_QUARANTINE_SECONDS = 86400.0
#: checksummed record header: magic, CRC32 of payload, payload length
_MAGIC = b"RPS1"
_HEADER = struct.Struct("<4sIQ")
#: subdirectory corrupt records are moved into (never served from)
QUARANTINE_DIR = "quarantine"
#: unpickle errors that mean "not loadable here", not "not a pickle"
_UNPICKLE_ERRORS = (pickle.UnpicklingError, EOFError, AttributeError,
                    ImportError, IndexError, ValueError, TypeError,
                    MemoryError)


class LRUStore:
    """Ordered-dict LRU with a hard entry capacity.

    All operations hold an internal lock; ``keys`` returns a snapshot list
    so callers can iterate while other threads mutate the store.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("LRU capacity must be >= 1")
        self.capacity = capacity
        self.evictions = 0
        self._data: OrderedDict[str, Any] = OrderedDict()
        self._lock = threading.RLock()

    def get(self, key: str) -> Any | None:
        with self._lock:
            try:
                self._data.move_to_end(key)
            except KeyError:
                return None
            return self._data[key]

    def put(self, key: str, value: Any) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self.evictions += 1

    def discard(self, key: str) -> None:
        with self._lock:
            self._data.pop(key, None)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def keys(self) -> Iterator[str]:
        with self._lock:
            return iter(list(self._data.keys()))

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._data

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)


@contextlib.contextmanager
def advisory_lock(path: str, *, shared: bool = False,
                  blocking: bool = True) -> Iterator[bool]:
    """Hold a POSIX advisory lock on ``path`` for the ``with`` body.

    Yields True when the lock is held.  ``blocking=False`` yields False
    instead of waiting when another process holds it.  The lock file is
    created if missing and *never unlinked* — unlinking would let a later
    locker acquire a fresh inode while an earlier one still holds the old
    file, silently breaking mutual exclusion.  ``flock`` locks die with
    their holder, so a killed process can never wedge the others.

    On platforms without ``fcntl`` this is a no-op that yields True: the
    callers (disk store, single-flight) are coordination optimizations
    layered over atomic-rename publication, never correctness.
    """
    if fcntl is None:  # pragma: no cover - non-POSIX platform
        yield True
        return
    fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
    try:
        flags = fcntl.LOCK_SH if shared else fcntl.LOCK_EX
        if not blocking:
            flags |= fcntl.LOCK_NB
        try:
            fcntl.flock(fd, flags)
        except OSError:
            yield False
            return
        try:
            yield True
        finally:
            fcntl.flock(fd, fcntl.LOCK_UN)
    finally:
        os.close(fd)


class DiskStore:
    """One pickle file per cache entry under ``root``.

    Best-effort by design: a corrupt, unreadable or unwritable entry is a
    miss, never an error — the compile pipeline is always available as the
    slow path.  Writes go through a temp file + ``os.replace`` so a
    concurrent reader (another thread *or* another process sharing the
    directory) can never observe a torn entry; the rename is atomic on
    POSIX, so no additional lock is needed for readers.

    ``durable=True`` adds crash durability on top of atomicity: the temp
    file is fsynced before the rename and the directory after it, so a
    published entry survives power loss.  The compile farm leaves it off —
    a lost cache entry after a crash is just a future miss — but a store
    used as a build-artifact channel can opt in.
    """

    def __init__(self, root: str, *, durable: bool = False) -> None:
        self.root = root
        self.durable = durable
        #: per-instance integrity accounting (global counters mirror these)
        self.integrity_failures = 0
        self.quarantined = 0
        self._integrity_ctr = _metrics.counter("cache.store.integrity_failures")
        self._quarantined_ctr = _metrics.counter("cache.store.quarantined")
        self._qseq = itertools.count()
        os.makedirs(root, exist_ok=True)
        self._recover()

    # -- startup recovery --------------------------------------------------

    def _recover(self) -> None:
        """Startup sweep: reap crashed-writer tmp files and old quarantine
        evidence (both best-effort; a sweep failure is never an error)."""
        self._sweep_stale_tmp()
        self._sweep_stale_quarantine()

    def _sweep_stale_tmp(self) -> None:
        """Reap temp files leaked by crashed writers (best-effort).

        Only files older than :data:`_STALE_TMP_SECONDS` go: a young
        ``.tmp`` may be another process's in-flight write whose rename has
        not landed yet.
        """
        try:
            cutoff = time.time() - _STALE_TMP_SECONDS
            for name in os.listdir(self.root):
                if not name.endswith(".tmp"):
                    continue
                path = os.path.join(self.root, name)
                try:
                    if os.path.getmtime(path) < cutoff:
                        os.unlink(path)
                except OSError:
                    pass
        except OSError:  # pragma: no cover - unreadable root
            pass

    def _sweep_stale_quarantine(self) -> None:
        """Expire quarantine evidence older than a day — long enough for a
        post-mortem, short enough that a flaky disk does not fill the cache
        directory with corpses."""
        qdir = os.path.join(self.root, QUARANTINE_DIR)
        try:
            cutoff = time.time() - _STALE_QUARANTINE_SECONDS
            for name in os.listdir(qdir):
                path = os.path.join(qdir, name)
                try:
                    if os.path.getmtime(path) < cutoff:
                        os.unlink(path)
                except OSError:
                    pass
        except OSError:  # no quarantine dir yet (the common case)
            pass

    # -- integrity ---------------------------------------------------------

    def _quarantine(self, path: str) -> None:
        """Move a checksum-failing record aside so it is never served again.

        The move is an ``os.replace`` into ``<root>/quarantine/`` — atomic,
        so a concurrent reader sees either the (corrupt) record or a miss,
        and a racing quarantine from another process simply loses the
        rename and counts the failure without the move.
        """
        self.integrity_failures += 1
        self._integrity_ctr.value += 1
        qdir = os.path.join(self.root, QUARANTINE_DIR)
        dest = os.path.join(
            qdir, f"{os.path.basename(path)}.{os.getpid()}."
                  f"{next(self._qseq)}.corrupt")
        try:
            os.makedirs(qdir, exist_ok=True)
            os.replace(path, dest)
        except OSError:
            return
        self.quarantined += 1
        self._quarantined_ctr.value += 1

    def _path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.pkl")

    def locked(self, key: str, *, blocking: bool = True):
        """Advisory per-key lock (see :func:`advisory_lock`).

        Readers and the normal :meth:`put` path never need it — atomic
        rename already serializes publication — but multi-process callers
        doing read-modify-write sequences on one key (or coordinating who
        compiles, like the farm's single-flight) hold this.
        """
        return advisory_lock(os.path.join(self.root, f"{key}.lock"),
                             blocking=blocking)

    def get(self, key: str) -> Any | None:
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                data = fh.read()
        except OSError:
            return None
        if data.startswith(_MAGIC):
            payload = data[_HEADER.size:]
            if len(data) >= _HEADER.size:
                _magic, crc, length = _HEADER.unpack_from(data)
                if len(payload) == length and zlib.crc32(payload) == crc:
                    try:
                        return pickle.loads(payload)
                    except _UNPICKLE_ERRORS:
                        # checksum passed: the bytes are exactly what the
                        # writer published, they just do not load in this
                        # environment (schema drift) — a miss, not damage
                        return None
            self._quarantine(path)
            return None
        # legacy pre-header record: a plain pickle from an older store
        try:
            return pickle.loads(data)
        except _UNPICKLE_ERRORS:
            self._quarantine(path)
            return None

    def put(self, key: str, value: Any) -> bool:
        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except (pickle.PicklingError, TypeError):
            return False
        header = _HEADER.pack(_MAGIC, zlib.crc32(payload), len(payload))
        try:
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(header)
                    fh.write(payload)
                    if self.durable:
                        fh.flush()
                        os.fsync(fh.fileno())
                os.replace(tmp, self._path(key))
                if self.durable:
                    self._fsync_dir()
            except BaseException:
                os.unlink(tmp)
                raise
            return True
        except OSError:
            return False

    def _fsync_dir(self) -> None:
        try:
            dfd = os.open(self.root, os.O_RDONLY)
            try:
                os.fsync(dfd)
            finally:
                os.close(dfd)
        except OSError:  # pragma: no cover - fs without dir fsync
            pass

    def discard(self, key: str) -> None:
        try:
            os.unlink(self._path(key))
        except OSError:
            pass

    def keys(self) -> list[str]:
        """Snapshot of every published key (entries only, no locks/tmp)."""
        try:
            return [n[:-4] for n in os.listdir(self.root)
                    if n.endswith(".pkl")]
        except OSError:
            return []

    def contains(self, key: str) -> bool:
        """Cheap existence probe: one ``stat``, no read, no checksum.

        Used where a full :meth:`get` would deserialize megabytes just to
        learn the record is still published (e.g. the farm client's image
        memo).  A corrupt record still counts as present here; the
        checksum verdict belongs to the reader that actually loads it.
        """
        return os.path.exists(self._path(key))

    def __contains__(self, key: str) -> bool:
        return self.contains(key)

    def __len__(self) -> int:
        return sum(1 for n in os.listdir(self.root) if n.endswith(".pkl"))

    def snapshot(self) -> dict[str, int]:
        return {"integrity_failures": self.integrity_failures,
                "quarantined": self.quarantined}
