"""Content-addressed cache keys for runtime transformations.

A specialization is identified by *what goes into the compile*, never by
where its inputs happen to live:

* the machine-code bytes of the function being transformed (and of every
  known callee the lifter will turn into a definition),
* the declared :class:`~repro.lift.FunctionSignature`,
* the lifter configuration,
* the fixation values — for :class:`~repro.lift.fixation.FixedMemory`
  arguments this includes the *contents* of the fixed region, because
  fixation bakes those bytes into the module as constant globals,
* the :class:`~repro.ir.passes.O3Options` pipeline configuration,
* the :class:`~repro.ir.codegen.JITOptions` code-generation knobs.

Keys are layered so a hit can land at any stage boundary (see
:mod:`repro.cache.cache`):

========  ==========================================================
lifted    H(code bytes, callees, signature, lift options)
module    H(lifted key, mode, fixes, O3 options)
machine   H(module key, JIT options)   [valid per image generation]
========  ==========================================================
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import fields, is_dataclass

from repro.cpu.image import Image
from repro.lift import FunctionSignature, LiftOptions
from repro.lift.fixation import FixedMemory
from repro.mem.memory import Memory

_SEP = b"\x00\xff"


def digest_bytes(*parts: bytes) -> str:
    """Stable short digest of a byte sequence."""
    h = hashlib.blake2b(digest_size=16)
    for p in parts:
        h.update(p)
        h.update(_SEP)
    return h.hexdigest()


def digest_str(*parts: str) -> str:
    return digest_bytes(*(p.encode() for p in parts))


#: value-keyed memo for frozen options dataclasses (a handful of distinct
#: configurations exist per process; hashing them per transform is waste)
_OPTS_MEMO: dict[object, str] = {}


def options_digest(opts: object) -> str:
    """Digest of a flat (frozen) options dataclass by field name/value."""
    if not is_dataclass(opts):
        raise TypeError(f"expected a dataclass, got {type(opts).__name__}")
    try:
        memo = _OPTS_MEMO.get(opts)
    except TypeError:  # unhashable (mutable dataclass): no memo
        memo = None
    if memo is not None:
        return memo
    items = []
    for f in sorted(fields(opts), key=lambda f: f.name):
        items.append(f"{f.name}={getattr(opts, f.name)!r}")
    d = digest_str(type(opts).__name__, *items)
    try:
        _OPTS_MEMO[opts] = d
    except TypeError:
        pass
    return d


#: value-keyed memo for frozen FunctionSignature digests — the signature
#: digest sits on every transform/guard/dispatch key computation, and a
#: process sees a handful of distinct signatures, not a stream
_SIG_MEMO: dict[FunctionSignature, str] = {}


def signature_digest(sig: FunctionSignature) -> str:
    d = _SIG_MEMO.get(sig)
    if d is None:
        d = digest_str("sig", ",".join(sig.params), sig.ret or "-")
        _SIG_MEMO[sig] = d
    return d


def function_extent(image: Image, func: str | int) -> tuple[int, int] | None:
    """(address, size) of a function's installed bytes, if known.

    Works for named symbols and for raw addresses that match an installed
    function (e.g. a DBrew rewrite result) — this is how the rewritten-code
    digest feeds the key for the DBrew+LLVM composition.
    """
    if isinstance(func, str):
        name: str | None = func
    else:
        name = image.symbol_at(func)
    if name is None or name not in image.func_sizes:
        return None
    return image.symbol(name), image.func_sizes[name]


def fixes_digest(fixes: dict[int, int | float | FixedMemory] | None,
                 memory: Memory) -> str:
    """Digest of a fixation configuration, content-addressing fixed memory.

    A :class:`FixedMemory` region hashes its *bytes*: two configs that point
    at the same address but see different data must not collide, and two
    that see identical data at different addresses still differ (the region
    address is folded into lifted pointer arithmetic by specialization).
    """
    if not fixes:
        return digest_str("fixes", "none")
    items: list[bytes] = []
    for idx in sorted(fixes):
        v = fixes[idx]
        if isinstance(v, FixedMemory):
            payload = memory.read(v.addr, v.size)
            items.append(b"m%d:%d:%d:" % (idx, v.addr, v.size) + payload)
        elif isinstance(v, float):
            items.append(b"f%d:" % idx + struct.pack("<d", v))
        else:
            items.append(b"i%d:%d" % (idx, v & (2**64 - 1)))
    return digest_bytes(b"fixes", *items)


def lift_options_digest(opts: LiftOptions, image: Image) -> str:
    """Digest of the lifter configuration including known-callee *bytes*.

    ``known_functions`` entries become lifted definitions in the module, so
    their machine code is a compile input exactly like the entry function's.
    """
    items = [
        f"flag_cache={opts.flag_cache}",
        f"facet_cache={opts.facet_cache}",
        f"stack_size={opts.stack_size}",
    ]
    for addr in sorted(opts.known_functions):
        cname, csig = opts.known_functions[addr]
        extent = function_extent(image, addr)
        if extent is not None:
            code = image.memory.read(extent[0], extent[1]).hex()
        else:
            code = f"@{addr:#x}"
        items.append(f"callee:{cname}:{signature_digest(csig)}:{code}")
    return digest_str("lift", *items)


def lifted_key(image: Image, func: str | int, signature: FunctionSignature,
               lift_opts: LiftOptions) -> str | None:
    """Stage-1 key, or None when the function's extent is unknown."""
    extent = function_extent(image, func)
    if extent is None:
        return None
    addr, size = extent
    code = image.memory.read(addr, size)
    return digest_str(
        "lifted", digest_bytes(code), signature_digest(signature),
        lift_options_digest(lift_opts, image),
    )


def module_key(lkey: str, mode: str, fdigest: str, o3_digest: str) -> str:
    """Stage-2 key: the post-O3 module is determined by the lifted IR plus
    the transformation mode, fixation values and pipeline configuration."""
    return digest_str("module", lkey, mode, fdigest, o3_digest)


def machine_key(mkey: str, jit_digest: str) -> str:
    """Stage-3 key: installed machine code additionally depends on the
    code-generation options (and, implicitly, on the image it lives in —
    machine entries are stored per image and per generation)."""
    return digest_str("machine", mkey, jit_digest)
