"""The farm worker: one process of the compile service.

``worker_main`` is the process entry point (top-level, so it pickles under
``spawn``).  The loop is deliberately simple — take a batch off the job
queue, announce each job (``("start", wid, seq)`` on the result queue, so
the pool can attribute an in-progress job if this process dies), run it,
push the result — with all the interesting parts in ``run_job``:

1. **warm path** — the job's result may already be in the shared disk
   store (published by any worker of any pool, ever): return it without
   rebuilding anything.  This is the cross-worker shared-cache hit the
   farm exists for.
2. **single-flight** — otherwise enter the
   :class:`~repro.cache.FileFlightTable` for the job key: one process
   compiles, the rest poll the store.  A killed leader's lock evaporates
   and a follower takes over (see the flight-table docstring).
3. **compile** — rebuild the client's image from its :class:`ImageSpec`
   (fresh per job: gate probes execute candidate code against the image
   and may mutate data/stack; a pristine rebuild per job keeps jobs
   independent), run the same T1/T2 pipelines the tiered engine runs
   locally, then pull the *pristine post-O3 module* back out of the
   module-stage cache and publish it.  The worker's own codegen output is
   throwaway — it exists so the T2 differential gate has machine code to
   execute — because machine code is position-dependent and the client
   must assemble into its own image.

Failure mapping: :class:`~repro.errors.ReproError` is a content verdict
(the client would hit the same wall) and comes back ``retryable=False``;
anything else — missing image spec, unkeyed module, internal errors — is a
farm deficiency and comes back ``retryable=True`` so the client compiles
in-process.  One deliberate exception: a T2 degradation whose failures
include a budget exhaustion is **not** published as a negative verdict.
The budget is not part of the job key (two clients with different budgets
share one key), so a verdict produced under a starved budget would poison
the shared store for every well-budgeted client; it comes back retryable
instead.

Liveness: the worker runs a beat thread stamping a shared-memory heartbeat
cell every ``heartbeat_interval``; the pool's watchdog reads it to tell a
*hung* worker (alive, silent) from a crashed one.  ``config["chaos"]``
optionally arms scripted faults (die/hang on job-name prefix, dropped or
delayed results) interpreted here — the chaos harness and the resilience
tests drive every failure path above through real processes.
"""

from __future__ import annotations

import os
import random
import signal
import threading
import time
from typing import Any

from repro.cache import DiskStore, FileFlightTable, SpecializationCache
from repro.errors import BudgetExceededError, ReproError
from repro.farm import protocol
from repro.farm.protocol import CompileJob, CompileResult, ImageSpec
from repro.guard import Budget, GuardedTransformer
from repro.ir.passes import O3Options
from repro.obs import metrics as _metrics
from repro.obs.trace import TRACER as _TR
from repro.tier.policy import T1


class _RecordingCache(SpecializationCache):
    """A specialization cache that remembers the last module-stage key it
    touched.  The pipeline stores the pristine (pre-codegen) module under
    a key derived from inputs the worker does not always know up front
    (the dbrew+llvm rung keys on *rewritten* bytes); recording the key at
    the put/get site lets ``run_job`` retrieve that exact module after the
    pipeline finishes, without re-deriving key plumbing here."""

    last_module_key: str | None = None

    def put_module(self, mkey: str, module, func_name: str) -> None:
        super().put_module(mkey, module, func_name)
        self.last_module_key = mkey

    def get_module(self, mkey: str):
        out = super().get_module(mkey)
        if out is not None:
            self.last_module_key = mkey
        return out


class _WorkerChaos:
    """Scripted per-worker faults, armed from ``config["chaos"]``.

    All decisions draw from a private ``random.Random`` seeded with
    ``seed ^ worker_id`` so a chaos scenario replays bit-identically.
    Recognized keys: ``die_on_name_prefix`` (SIGKILL self before running a
    matching job), ``hang_on_name_prefix`` (stop heartbeating and sleep —
    alive-but-silent, the watchdog's HUNG case), ``drop_result_rate``
    (complete the job, never report it), ``slow_job_s``/``slow_rate``
    (sleep before running), ``seed``.
    """

    def __init__(self, spec: dict, worker_id: int,
                 stop_beating: threading.Event) -> None:
        self.spec = spec
        self.rng = random.Random(int(spec.get("seed", 0)) ^ worker_id)
        self.stop_beating = stop_beating

    def before_job(self, job: CompileJob) -> None:
        die = self.spec.get("die_on_name_prefix")
        if die is not None and job.name.startswith(die):
            os.kill(os.getpid(), signal.SIGKILL)
        hang = self.spec.get("hang_on_name_prefix")
        if hang is not None and job.name.startswith(hang):
            self.stop_beating.set()
            while True:  # pragma: no cover - killed by the watchdog
                time.sleep(3600.0)
        slow = float(self.spec.get("slow_job_s", 0.0))
        if slow > 0.0 and self.rng.random() < float(
                self.spec.get("slow_rate", 1.0)):
            time.sleep(slow)

    def drop_result(self) -> bool:
        rate = float(self.spec.get("drop_result_rate", 0.0))
        return rate > 0.0 and self.rng.random() < rate


class FarmWorker:
    """Per-process worker state: shared store, flight table, spec memo."""

    def __init__(self, worker_id: int, disk_dir: str,
                 poll_interval: float = 0.005,
                 flight_timeout: float | None = 120.0) -> None:
        self.worker_id = worker_id
        self.store = DiskStore(disk_dir)
        self.flights = FileFlightTable(
            os.path.join(disk_dir, "flights"), poll_interval=poll_interval)
        self.flight_timeout = flight_timeout
        self.cache = _RecordingCache(disk_dir=disk_dir)
        self._specs: dict[str, ImageSpec] = {}
        #: previous values of the process-global counters reported per job
        self._counter_marks: dict[str, int] = {}
        # decoded traces of spec-built images are content-keyed, so the
        # shared store can serve them across jobs, workers and pool runs
        # (the fix for BENCH_farm's decode_memo_hit_rate: 0.0 cold runs)
        from repro.lift import blocks as _blocks
        _blocks.attach_trace_store(self.store)

    # -- shared state ------------------------------------------------------

    def _spec(self, image_key: str) -> ImageSpec | None:
        spec = self._specs.get(image_key)
        if spec is None:
            spec = self.store.get(image_key)
            if spec is not None:
                self._specs[image_key] = spec
        return spec

    def _counter_deltas(self) -> list[tuple[str, float]]:
        """Per-job deltas of the lifter memo counters (process-global)."""
        out = []
        for name in ("lift.facet_cache.hits", "lift.facet_cache.misses",
                     "lift.decode_memo.hits", "lift.decode_memo.misses",
                     "lift.decode_trace.hits", "lift.decode_trace.misses",
                     "lift.decode_trace.store_hits"):
            value = _metrics.counter(name).value
            out.append((name, float(value - self._counter_marks.get(name, 0))))
            self._counter_marks[name] = value
        return out

    # -- one job -----------------------------------------------------------

    def run_job(self, job: CompileJob) -> CompileResult:
        t0 = time.perf_counter()
        if job.trace and not _TR.enabled:
            _TR.enable()
        mark = _TR.mark() if job.trace else (0, 0)
        span = _TR.start("farm.job", {"name": job.name, "tier": job.tier,
                                      "worker": self.worker_id}) \
            if job.trace else None
        try:
            result = self._run_job_inner(job, t0)
        finally:
            if span is not None:
                _TR.finish(span)
        if job.trace:
            result = _replace(result,
                              trace_records=_TR.export_records(mark))
        return result

    def _run_job_inner(self, job: CompileJob, t0: float) -> CompileResult:
        rkey = protocol.result_key(job.key)

        def probe() -> dict | None:
            return self.store.get(rkey)

        payload = probe()
        if payload is not None:
            return self._finish(job, t0, payload, cache_stage="farm")

        spec = self._spec(job.image_key)
        if spec is None:
            return self._fail(job, t0, "image spec unavailable",
                              retryable=True)
        try:
            payload, leader = self.flights.run(
                job.key, lambda: self._compile_and_publish(job, spec, rkey),
                probe, timeout=self.flight_timeout)
        except _BudgetStarved as exc:
            return self._fail(job, t0, str(exc), retryable=True)
        except BudgetExceededError as exc:
            # T1 analogue of _BudgetStarved: the budget is this job's, not
            # the content's — let the client retry with its own budget
            return self._fail(job, t0, f"budget exhausted worker-side: "
                                       f"{exc}", retryable=True)
        except ReproError as exc:
            return self._fail(job, t0, f"{type(exc).__name__}: {exc}",
                              retryable=False)
        except BaseException as exc:  # pragma: no cover - defensive
            return self._fail(job, t0, f"internal error: {exc!r}",
                              retryable=True)
        return self._finish(job, t0, payload,
                            cache_stage=None if leader else "farm",
                            coalesced=not leader)

    def _compile_and_publish(self, job: CompileJob, spec: ImageSpec,
                             rkey: str) -> dict:
        """The leader path: full pipeline in a fresh image, then publish.

        Returns (and publishes) the shared payload dict; negative verdicts
        (gate rejection, ladder exhaustion) are published too, so every
        follower observes the same content-determined outcome without
        re-running the pipeline — the cross-process analogue of the
        negative cache.
        """
        image = spec.build()
        budget = protocol.thaw_budget(job.budget) or Budget()
        lift_options = protocol.thaw_lift_options(job.lift)
        fixes = job.thawed_fixes()
        o3 = job.o3 if job.o3 is not None else O3Options()
        self.cache.last_module_key = None

        verdict: str | None = None
        if job.tier == T1:
            from repro.errors import VerificationError
            from repro.jit import BinaryTransformer
            budget.start()
            tx = BinaryTransformer(
                image, o3_options=o3, cache=self.cache, budget=budget,
                lift_options=lift_options, jit_options=job.jit,
                machine_verify=job.machine_verify)
            try:
                if fixes:
                    res = tx.llvm_fixed(job.func, job.signature, fixes,
                                        name=job.name)
                    mode: str | None = "llvm-fix"
                else:
                    res = tx.llvm_identity(job.func, job.signature,
                                           name=job.name)
                    mode = "llvm"
            except VerificationError as exc:
                # machine-level refutation is content-determined: publish
                # it so every follower/store hit observes the rejection
                # without re-running the pipeline or the proof
                payload = {"ok": False, "reject_reason": str(exc),
                           "mode": None, "verified": False,
                           "module": None, "main_name": None,
                           "machine_verdict": "refuted"}
                self.store.put(rkey, payload)
                return payload
            verdict = res.machine_verdict
            verified = False
            reject = None
        else:
            guard = GuardedTransformer(
                image, cache=self.cache, budget=budget,
                gate_options=job.gate, lift_options=lift_options,
                o3_options=o3, jit_options=job.jit,
                machine_verify=job.machine_verify)
            gres = guard.transform(
                job.func, job.signature, fixes,
                mem_regions=job.mem_regions, name=job.name,
                probes=job.probes, ladder=job.ladder or None,
                dbrew_func=job.dbrew_func)
            if gres.degraded:
                reject = "; ".join(gres.failure_summary()) or "ladder degraded"
                if any(a.error_type == "BudgetExceededError"
                       for a in gres.attempts):
                    # the budget is not part of the job key: a verdict
                    # produced under a starved budget must not be published
                    # for every well-budgeted client sharing this key
                    raise _BudgetStarved(f"budget-starved degradation "
                                         f"not published: {reject}")
                if any(a.context.get("stage") == "machine-verify"
                       for a in gres.attempts):
                    verdict = "refuted"
                payload = {"ok": False, "reject_reason": reject,
                           "mode": None, "verified": False,
                           "module": None, "main_name": None,
                           "machine_verdict": verdict}
                self.store.put(rkey, payload)
                return payload
            mode = gres.mode
            verified = gres.verified or (gres.result is not None
                                         and gres.result.machine_gated)
            if gres.result is not None:
                verdict = gres.result.machine_verdict
            reject = None

        mkey = self.cache.last_module_key
        hit = self.cache.get_module(mkey) if mkey is not None else None
        if hit is None:
            # unkeyable function (no extent digest): nothing shippable —
            # the client must compile locally; do not publish a verdict
            raise _Unshippable("post-O3 module not in the module cache")
        module, main_name = hit
        payload = {"ok": True, "reject_reason": reject, "mode": mode,
                   "verified": verified, "module": module,
                   "main_name": main_name, "machine_verdict": verdict}
        self.store.put(rkey, payload)
        return payload

    # -- result assembly ---------------------------------------------------

    def _finish(self, job: CompileJob, t0: float, payload: dict, *,
                cache_stage: str | None = None,
                coalesced: bool = False) -> CompileResult:
        return CompileResult(
            key=job.key, name=job.name, tier=job.tier, epoch=job.epoch,
            seq=job.seq, attempt=job.attempt, ok=bool(payload.get("ok")),
            retryable=False, mode=payload.get("mode"),
            verified=bool(payload.get("verified")),
            reject_reason=payload.get("reject_reason"),
            module=payload.get("module"),
            main_name=payload.get("main_name"),
            cache_stage=cache_stage, coalesced=coalesced,
            stats=tuple(self._job_stats()),
            worker_pid=os.getpid(), seconds=time.perf_counter() - t0,
            machine_verdict=payload.get("machine_verdict"))

    def _fail(self, job: CompileJob, t0: float, reason: str, *,
              retryable: bool) -> CompileResult:
        return CompileResult(
            key=job.key, name=job.name, tier=job.tier, epoch=job.epoch,
            seq=job.seq, attempt=job.attempt, ok=False, retryable=retryable,
            reject_reason=reason, stats=tuple(self._job_stats()),
            worker_pid=os.getpid(), seconds=time.perf_counter() - t0)

    def _job_stats(self) -> list[tuple[str, float]]:
        stats = self._counter_deltas()
        fl = self.flights.snapshot()
        stats.extend((f"farm.flight.{k}", float(v)) for k, v in fl.items())
        return stats


class _Unshippable(Exception):
    """Pipeline succeeded but produced nothing position-independent."""


class _BudgetStarved(Exception):
    """T2 degraded only because the budget ran out; verdict not publishable."""


def _beat_loop(cell: Any, interval: float, stop: threading.Event) -> None:
    """Stamp the shared heartbeat cell until told to stop.

    ``time.monotonic`` is system-wide on Linux, so the pool-side watchdog
    can compare the stamp against its own clock directly.
    """
    cell.value = time.monotonic()
    while not stop.wait(interval):
        cell.value = time.monotonic()


def worker_main(worker_id: int, job_q: Any, result_q: Any,
                config: dict, heartbeat: Any = None) -> None:
    """Process entry point: batches in, results out, None drains."""
    stop_beating = threading.Event()
    if heartbeat is not None:
        threading.Thread(
            target=_beat_loop,
            args=(heartbeat, config.get("heartbeat_interval", 0.5),
                  stop_beating),
            name="farm-beat", daemon=True).start()
    chaos = _WorkerChaos(config["chaos"], worker_id, stop_beating) \
        if config.get("chaos") else None
    worker = FarmWorker(
        worker_id, config["disk_dir"],
        poll_interval=config.get("poll_interval", 0.005),
        flight_timeout=config.get("flight_timeout", 120.0))
    while True:
        try:
            msg = job_q.get()
        except (EOFError, OSError):  # queue torn down under us
            return
        if msg is None:
            return
        kind, jobs = msg
        assert kind == "batch"
        for job in jobs:
            try:
                # announced before any work so the pool can attribute the
                # in-progress job if this process dies mid-compile
                result_q.put(("start", worker_id, job.seq))
            except (EOFError, OSError):  # pragma: no cover - shutdown race
                return
            if chaos is not None:
                chaos.before_job(job)
            try:
                result = worker.run_job(job)
            except _Unshippable as exc:
                result = worker._fail(job, time.perf_counter(), str(exc),
                                      retryable=True)
            except BaseException as exc:  # pragma: no cover - defensive
                result = worker._fail(job, time.perf_counter(),
                                      f"worker error: {exc!r}",
                                      retryable=True)
            if chaos is not None and chaos.drop_result():
                continue
            try:
                result_q.put(("result", result))
            except (EOFError, OSError):  # pragma: no cover - shutdown race
                return


def _replace(result: CompileResult, **changes: Any) -> CompileResult:
    import dataclasses
    return dataclasses.replace(result, **changes)
