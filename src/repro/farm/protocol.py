"""The farm wire protocol: picklable jobs, results and image snapshots.

Everything that crosses the process boundary lives here, and everything
here must pickle identically under both ``fork`` and ``spawn`` start
methods (tests/farm/test_protocol_roundtrip.py round-trips every field).

Three design constraints shape the records:

* **machine code is position-dependent, IR modules are not** — lifted IR
  bakes absolute guest addresses into address arithmetic, and codegen
  assembles against a concrete image base.  So a job ships an
  :class:`ImageSpec` reference (guest bytes + symbols + allocator state)
  the worker rebuilds *at the original addresses*, and a result ships the
  pristine post-O3 :class:`~repro.ir.module.Module` — the client runs the
  (cheap) code generation itself, into its own image, under its own
  ``codegen_lock``.  Worker-side codegen still happens, but only to give
  the T2 differential gate something to execute.
* **budgets and tracers do not pickle** — a job carries plain budget
  *limits* (re-armed worker-side) and a parent *span id* plus a wall-clock
  anchor (re-anchored by :meth:`repro.obs.trace.Tracer.merge_records`),
  never the live objects.
* **image snapshots are big, jobs are small** — an :class:`ImageSpec` for
  the default layout is megabytes; shipping one per job would swamp the
  queues.  Jobs reference the spec by content key in the shared disk
  store; the client publishes it once per image generation and workers
  memoize the parsed spec per key.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.cache import keys as cache_keys
from repro.cpu.image import Image
from repro.guard.budget import Budget
from repro.guard.verify import GateOptions
from repro.ir.codegen import JITOptions
from repro.ir.module import Module
from repro.ir.passes import O3Options
from repro.lift import FunctionSignature, LiftOptions
from repro.lift.fixation import FixedMemory
from repro.mem.memory import Memory

#: disk-store key prefixes for the farm's shared-state channels
IMAGE_SPEC_PREFIX = "farmimg"
RESULT_PREFIX = "farmres"


# -- image snapshot ----------------------------------------------------------


@dataclass(frozen=True)
class MemSegment:
    """One mapped region: ``data`` is the zero-trimmed prefix of ``size``
    bytes at ``addr`` (guest images are mostly zeroes — trimming keeps the
    pickled spec proportional to actual content, not address space)."""

    addr: int
    size: int
    data: bytes


@dataclass(frozen=True)
class ImageSpec:
    """Everything needed to rebuild a client image bit-identically.

    Cursors and limits are captured so worker-side allocations (rodata for
    fixed-memory globals, JIT space for gate candidates) land in the same
    *free* space they would client-side — addresses allocated by the
    worker must not collide with client allocations baked into the IR.
    """

    segments: tuple[MemSegment, ...]
    symbols: tuple[tuple[str, int], ...]
    func_sizes: tuple[tuple[str, int], ...]
    #: (code, rodata, data, jit) bump-allocator cursors
    cursors: tuple[int, int, int, int]
    #: (code, rodata, data, jit) region limits
    limits: tuple[int, int, int, int]
    generation: int = 0

    @classmethod
    def capture(cls, image: Image) -> "ImageSpec":
        segments = tuple(
            MemSegment(start, len(data), data.rstrip(b"\x00"))
            for start, data in image.memory.snapshot())
        return cls(
            segments=segments,
            symbols=tuple(sorted(image.symbols.items())),
            func_sizes=tuple(sorted(image.func_sizes.items())),
            cursors=(image._code_cursor, image._rodata_cursor,
                     image._data_cursor, image._jit_cursor),
            limits=(image._code_limit, image._rodata_limit,
                    image._data_limit, image._jit_limit),
            generation=image.generation,
        )

    def build(self) -> Image:
        """A fresh image with this spec's exact memory/symbol/cursor state.

        Bypasses ``Image.__init__`` (which maps the default layout): the
        spec's own regions are authoritative, including custom sizes.
        """
        img = Image.__new__(Image)
        img.memory = Memory()
        for seg in self.segments:
            img.memory.map(seg.addr, seg.size, seg.data)
        img.symbols = dict(self.symbols)
        img.func_sizes = dict(self.func_sizes)
        (img._code_cursor, img._rodata_cursor,
         img._data_cursor, img._jit_cursor) = self.cursors
        (img._code_limit, img._rodata_limit,
         img._data_limit, img._jit_limit) = self.limits
        img._invalidation_hooks = []
        img.codegen_lock = threading.RLock()
        img.generation = self.generation
        # spec-derived content identity: every build of this spec, in any
        # process, produces byte-identical code — so decoded-trace cache
        # entries keyed by this token are shareable across builds, workers
        # and pool runs (Image.__init__ would mint a process-unique key)
        img.content_key = ("farmspec", self.digest())
        img.memory.content_token_fn = img.content_token
        return img

    def digest(self) -> str:
        """Content key: identical guest state -> identical key, in any
        process (drives worker-side spec memoization).  Memoized on the
        instance — ``build()`` calls this per job."""
        d = self.__dict__.get("_digest_memo")
        if d is None:
            parts = [b"%d:%d:" % (s.addr, s.size) + s.data for s in self.segments]
            parts.append(repr(self.symbols).encode())
            parts.append(repr(self.func_sizes).encode())
            parts.append(repr((self.cursors, self.limits,
                               self.generation)).encode())
            d = cache_keys.digest_bytes(*parts)
            object.__setattr__(self, "_digest_memo", d)
        return d


# -- option sanitizers -------------------------------------------------------


def freeze_fixes(
    fixes: dict[int, int | float | FixedMemory] | None,
) -> tuple[tuple[int, int | float | FixedMemory], ...] | None:
    """Fixation dict -> sorted tuple (hashable, deterministic pickle)."""
    if not fixes:
        return None
    return tuple(sorted(fixes.items()))


def thaw_fixes(
    frozen: tuple[tuple[int, int | float | FixedMemory], ...] | None,
) -> dict[int, int | float | FixedMemory] | None:
    return dict(frozen) if frozen else None


def freeze_lift_options(
    opts: LiftOptions | None,
) -> tuple | None:
    """Strip the unpicklable budget; flatten to a plain tuple.

    The budget is deliberately *not* part of the lift configuration that
    crosses the wire — the job's own ``budget_limits`` govern the worker.
    """
    if opts is None:
        return None
    return (opts.flag_cache, opts.facet_cache, opts.stack_size, opts.name,
            tuple(sorted(opts.known_functions.items())))


def thaw_lift_options(frozen: tuple | None) -> LiftOptions | None:
    if frozen is None:
        return None
    flag_cache, facet_cache, stack_size, name, known = frozen
    return LiftOptions(flag_cache=flag_cache, facet_cache=facet_cache,
                       stack_size=stack_size, name=name,
                       known_functions=dict(known))


def freeze_budget(budget: Budget | None) -> tuple | None:
    """A budget's *limits* (deadline + fuel); the worker re-arms a fresh
    :class:`Budget` from them — clocks and yield hooks never travel."""
    if budget is None:
        return None
    return (budget.deadline_seconds, tuple(sorted(budget.limits.items())))


def thaw_budget(frozen: tuple | None) -> Budget | None:
    if frozen is None:
        return None
    deadline, limits = frozen
    kwargs = {f"max_{name}": limit for name, limit in limits}
    return Budget(deadline_seconds=deadline, **kwargs)


# -- the job/result records --------------------------------------------------


@dataclass(frozen=True)
class CompileJob:
    """One rewrite request shipped to a worker.

    ``key`` is the content-addressed identity of the *work* (function
    bytes + fixation + tier + options): the cross-process single-flight
    key, the shared-store result key and the client-side machine-cache
    key are all derived from it.
    """

    key: str
    name: str
    #: target tier (repro.tier.policy.T1 / T2)
    tier: int
    func: str | int
    signature: FunctionSignature
    fixes: tuple[tuple[int, int | float | FixedMemory], ...] | None
    mem_regions: tuple[tuple[int, int], ...]
    probes: tuple
    dbrew_func: str | int | None
    #: guard ladder for T2 jobs; () means unguarded T1
    ladder: tuple[str, ...]
    #: shared-store key of the ImageSpec to rebuild (publishes once per
    #: image generation; see ImageSpec docstring)
    image_key: str
    lift: tuple | None
    o3: O3Options | None
    jit: JITOptions | None
    gate: GateOptions = GateOptions()
    budget: tuple | None = None
    epoch: int = 0
    seq: int = 0
    #: dispatch count stamped by the pool (1 = first try); lets workers
    #: and results attribute retries after worker death
    attempt: int = 0
    #: tracing requested: the worker records spans and returns them
    trace: bool = False
    #: client-side span id the merged worker spans re-root under
    parent_span_id: int | None = None
    #: run the machine-level verifier on the worker's emission; the
    #: verdict travels back in the published payload, so the proof is paid
    #: once per job key and every follower/store hit gets it for free.
    #: Deliberately *not* part of the job key: verification only rejects
    #: output, it cannot change accepted code.
    machine_verify: bool = False

    def thawed_fixes(self) -> dict[int, int | float | FixedMemory] | None:
        return thaw_fixes(self.fixes)


@dataclass(frozen=True)
class CompileResult:
    """What comes back: a position-independent module, never an address.

    ``ok=False`` splits on ``retryable``: True means the farm could not do
    the work (unkeyed function, worker crash, transport loss) and the
    client should compile in-process; False means the *pipeline verdict*
    is negative (gate rejection, ladder exhaustion) — content-determined,
    so retrying locally would only repeat it, and the engine records a
    rejection instead.
    """

    key: str
    name: str
    tier: int
    epoch: int = 0
    seq: int = 0
    #: dispatches the job took (mirrors CompileJob.attempt)
    attempt: int = 0
    ok: bool = False
    retryable: bool = False
    mode: str | None = None
    verified: bool = False
    reject_reason: str | None = None
    module: Module | None = None
    main_name: str | None = None
    #: "farm" when served from the shared store without compiling
    cache_stage: str | None = None
    #: this worker joined another process's in-flight compile
    coalesced: bool = False
    #: worker-side counters folded into the client registry (facet-cache
    #: hits, flight accounting, pipeline stage seconds, ...)
    stats: tuple[tuple[str, float], ...] = ()
    trace_records: dict | None = field(default=None, hash=False)
    worker_pid: int = 0
    seconds: float = 0.0
    #: machine-level translation-validation verdict recorded by whichever
    #: worker compiled this job key first (None = verification not run)
    machine_verdict: str | None = None


# -- content keys ------------------------------------------------------------


def compute_job_key(image: Image, func: str | int,
                    signature: FunctionSignature,
                    fixes: dict[int, int | float | FixedMemory] | None,
                    mem_regions, probes, tier: int,
                    ladder: tuple[str, ...],
                    dbrew_func: str | int | None,
                    lift_options: LiftOptions | None,
                    o3: O3Options, jit: JITOptions,
                    gate: GateOptions,
                    image_key: str | None = None,
                    instrument: str | None = None) -> str | None:
    """Content identity of one farm job, or None when unkeyable.

    Built from the same ingredients as the staged cache keys (function
    bytes, signature, fixation *contents*, option digests) plus the farm-
    level coordinates the staged keys do not see: tier, guard ladder,
    probe vectors and gate configuration — two jobs that would gate
    differently must never collapse into one single-flight.

    ``instrument`` is the :meth:`InstrumentOptions.digest` of an
    instrumented job (None for plain compiles): an instrumented artifact
    writes probe effects a plain one does not, so the two must stay
    digest-distinct even when every other ingredient matches.

    ``image_key`` folds the published :class:`ImageSpec`'s content key in
    when given.  Shipped modules are position-dependent on the snapshot
    the worker rebuilds (allocator cursors decide where worker-side
    allocations land), so results computed against *different* snapshots
    must never be served interchangeably under one key.  Identical images
    produce identical spec keys, so legitimate cross-client sharing is
    unaffected.

    None (unknown function extent, unreadable fixed memory) means the farm
    cannot prove two requests identical, so the caller compiles locally.
    """
    extent = cache_keys.function_extent(image, func)
    if extent is None:
        return None
    code = cache_keys.digest_bytes(image.memory.read(extent[0], extent[1]))
    if dbrew_func is not None:
        dextent = cache_keys.function_extent(image, dbrew_func)
        if dextent is None:
            return None
        dbrew_code = cache_keys.digest_bytes(
            image.memory.read(dextent[0], dextent[1]))
    else:
        dbrew_code = "-"
    try:
        fdigest = cache_keys.fixes_digest(fixes, image.memory)
    except Exception:
        return None
    return cache_keys.digest_str(
        "farmjob", code, dbrew_code,
        cache_keys.signature_digest(signature), fdigest,
        repr(sorted(mem_regions)), repr(tuple(probes)),
        f"t{tier}", ",".join(ladder),
        cache_keys.lift_options_digest(lift_options or LiftOptions(), image),
        cache_keys.options_digest(o3), cache_keys.options_digest(jit),
        cache_keys.options_digest(gate),
        image_key or "-",
        instrument or "-",
    )


def image_spec_key(digest: str) -> str:
    return f"{IMAGE_SPEC_PREFIX}-{digest}"


def result_key(job_key: str) -> str:
    return f"{RESULT_PREFIX}-{job_key}"
