"""The in-process farm facade the tiered engine talks to.

Thin by design — the pool owns transport and the worker owns compilation —
but four client-side responsibilities live here:

* **thread-level coalescing**: the engine's tier workers may request the
  same job key concurrently; a :class:`~repro.cache.FlightTable` keyed on
  ``(key, epoch)`` collapses them into one queue round-trip before the
  cross-*process* single-flight even comes into play.  Followers wait at
  most the same timeout as the leader; a timed-out request is *forgotten*
  pool-side (:meth:`FarmPool.forget`) so nothing retries or crash-accounts
  a job whose caller already compiled locally.
* **circuit breaking**: every farm outcome feeds a
  :class:`~repro.farm.health.CircuitBreaker`.  While the farm answers —
  any structured :class:`CompileResult`, even a negative verdict — the
  breaker stays closed.  ``failure_threshold`` consecutive *transport*
  failures (timeout, broken pipe, closed pool) open it, and every request
  until the reset timeout degrades to in-process compilation immediately
  instead of paying ``farm_timeout`` each; a single half-open probe then
  restores service.  State changes surface as a gauge, counters and a
  trace instant.
* **image publication**: the lifted IR a worker produces bakes in absolute
  guest addresses, so the worker's image must match the client's.
  :meth:`ensure_image` captures an :class:`ImageSpec` once per image
  generation, publishes it to the shared store under its content key and
  memoizes the key *and the snapshot* — jobs then carry a small string,
  not megabytes.  The memo re-verifies the record still exists on every
  hit; a quarantined or swept spec is republished from the memoized
  snapshot under the same key, never re-captured (cursors drift within a
  generation, and in-flight jobs still reference the original key).
* **observability folding**: worker trace batches merge into the client
  tracer under the dispatch-site span (one Chrome trace spans the process
  hop); worker-side counters fold into the client registry under
  ``farm.worker.*``.
"""

from __future__ import annotations

import threading
from concurrent.futures import TimeoutError as FutureTimeoutError

from repro.cache import FlightTable
from repro.cpu.image import Image
from repro.farm.health import BREAKER_STATE_VALUES, CLOSED, CircuitBreaker, \
    OPEN
from repro.farm.pool import FarmPool
from repro.farm.protocol import CompileJob, CompileResult, ImageSpec, \
    image_spec_key
from repro.obs.metrics import MetricsRegistry, REGISTRY
from repro.obs.trace import TRACER


class FarmClient:
    """Submit jobs, wait for results, fold telemetry back in.

    ``compile`` never raises for farm trouble: timeouts, closed pools,
    transport loss and an open breaker all come back as ``None`` (caller
    compiles locally).
    """

    def __init__(self, pool: FarmPool, *, timeout: float = 60.0,
                 breaker: CircuitBreaker | None = None,
                 failure_threshold: int = 5,
                 reset_timeout: float = 5.0,
                 registry: MetricsRegistry | None = None,
                 tracer=None) -> None:
        self.pool = pool
        self.timeout = timeout
        self.tracer = tracer if tracer is not None else TRACER
        r = registry if registry is not None else REGISTRY
        self._registry = r
        self._requests = r.counter("farm.client.requests")
        self._timeouts = r.counter("farm.client.timeouts")
        self._errors = r.counter("farm.client.errors")
        self._fastfails = r.counter("farm.client.breaker_fastfails")
        self._opens = r.counter("farm.client.breaker_opens")
        self._closes = r.counter("farm.client.breaker_closes")
        self._state_gauge = r.gauge("farm.client.breaker_state")
        self.breaker = breaker if breaker is not None else CircuitBreaker(
            failure_threshold=failure_threshold, reset_timeout=reset_timeout)
        # observe transitions whoever owns the breaker; an injected one may
        # already carry a hook (chaos harness) — chain rather than replace
        prior = self.breaker.on_transition
        def _observe(old: str, new: str) -> None:
            self._state_gauge.value = BREAKER_STATE_VALUES[new]
            if new == OPEN:
                self._opens.value += 1
            elif new == CLOSED:
                self._closes.value += 1
            if self.tracer.enabled:
                self.tracer.instant("farm.breaker",
                                    {"from": old, "to": new})
            if prior is not None:
                prior(old, new)
        self.breaker.on_transition = _observe
        self._flights = FlightTable(
            timeouts=r.counter("farm.client.flight_timeouts"))
        self._image_specs: dict[tuple[int, int], tuple[str, ImageSpec]] = {}
        self._image_lock = threading.Lock()

    # -- availability ------------------------------------------------------

    def available(self) -> bool:
        """Cheap, non-mutating: would the breaker admit a request now?

        The tiered engine checks this before computing job keys and
        publishing images — while the breaker is open that work would be
        thrown away anyway.  Never claims the half-open probe.
        """
        return self.breaker.would_allow()

    # -- image publication -------------------------------------------------

    def ensure_image(self, image: Image) -> str:
        """Publish ``image`` to the shared store; return its spec key.

        Memoized per ``(id(image), generation)``: a patch bumps the
        generation, forcing a re-capture, while repeated promotions on an
        unpatched image reuse the published spec.  The store side is
        content-keyed, so identical images across clients share one entry.
        A memo hit still confirms the record exists — integrity quarantine
        or an external sweep may have removed it — and republishes the
        *memoized* snapshot under the *same* key.  Re-capturing here would
        be unsound: JIT installs advance allocator cursors without bumping
        the generation, so a fresh capture mid-generation yields a
        different snapshot (and key) while in-flight jobs and cached
        results still reference the old one.
        """
        memo = (id(image), image.generation)
        with self._image_lock:
            known = self._image_specs.get(memo)
        if known is not None:
            key, spec = known
            if not self.pool.store.contains(key):
                self.pool.store.put(key, spec)
            return key
        spec = ImageSpec.capture(image)
        key = image_spec_key(spec.digest())
        if self.pool.store.get(key) is None:
            self.pool.store.put(key, spec)
        with self._image_lock:
            # lost a capture race? keep the first snapshot — in-flight jobs
            # already carry its key
            known = self._image_specs.setdefault(memo, (key, spec))
        return known[0]

    # -- compilation -------------------------------------------------------

    def compile(self, job: CompileJob,
                timeout: float | None = None) -> CompileResult | None:
        """One farm round-trip; None means "compile locally instead"."""
        self._requests.value += 1
        if not self.breaker.allow():
            self._fastfails.value += 1
            return None
        wait = self.timeout if timeout is None else timeout

        def thunk() -> CompileResult | None:
            try:
                fut = self.pool.submit(job)
            except RuntimeError:  # pool closed
                self._errors.value += 1
                self.breaker.record_failure()
                return None
            try:
                result = fut.result(timeout=wait)
            except FutureTimeoutError:
                self._timeouts.value += 1
                fut.cancel()
                # stop the pool from retrying / crash-accounting a job
                # nobody is waiting for any more
                self.pool.forget(fut)
                self.breaker.record_failure()
                return None
            except (BrokenPipeError, OSError):
                self._errors.value += 1
                self.breaker.record_failure()
                return None
            # any structured result — even a negative verdict — proves the
            # farm transport alive
            self.breaker.record_success()
            self._absorb(result, job)
            return result

        result, _led = self._flights.run((job.key, job.epoch), thunk,
                                         timeout=wait)
        return result

    # -- telemetry folding -------------------------------------------------

    def _absorb(self, result: CompileResult, job: CompileJob) -> None:
        for name, value in result.stats:
            if name.startswith("farm.flight."):
                continue  # cumulative worker-lifetime gauges, not deltas
            self._registry.counter(f"farm.worker.{name}").value += int(value)
        if result.trace_records is not None and self.tracer.enabled:
            self.tracer.merge_records(result.trace_records,
                                      root_parent=job.parent_span_id)

    def snapshot(self) -> dict:
        return {
            "requests": self._requests.value,
            "timeouts": self._timeouts.value,
            "errors": self._errors.value,
            "breaker": self.breaker.snapshot(),
            "flights": self._flights.snapshot(),
        }
