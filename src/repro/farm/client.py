"""The in-process farm facade the tiered engine talks to.

Thin by design — the pool owns transport and the worker owns compilation —
but three client-side responsibilities live here:

* **thread-level coalescing**: the engine's tier workers may request the
  same job key concurrently; a :class:`~repro.cache.FlightTable` keyed on
  ``(key, epoch)`` collapses them into one queue round-trip before the
  cross-*process* single-flight even comes into play.
* **image publication**: the lifted IR a worker produces bakes in absolute
  guest addresses, so the worker's image must match the client's.
  :meth:`ensure_image` captures an :class:`ImageSpec` once per image
  generation, publishes it to the shared store under its content key and
  memoizes the key — jobs then carry a small string, not megabytes.
* **observability folding**: worker trace batches merge into the client
  tracer under the dispatch-site span (one Chrome trace spans the process
  hop); worker-side counters fold into the client registry under
  ``farm.worker.*``.
"""

from __future__ import annotations

import threading
from concurrent.futures import TimeoutError as FutureTimeoutError

from repro.cache import FlightTable
from repro.cpu.image import Image
from repro.farm.pool import FarmPool
from repro.farm.protocol import CompileJob, CompileResult, ImageSpec, \
    image_spec_key
from repro.obs.metrics import MetricsRegistry, REGISTRY
from repro.obs.trace import TRACER


class FarmClient:
    """Submit jobs, wait for results, fold telemetry back in.

    ``compile`` never raises for farm trouble: timeouts, closed pools and
    transport loss all come back as ``None`` (caller compiles locally).
    """

    def __init__(self, pool: FarmPool, *, timeout: float = 60.0,
                 registry: MetricsRegistry | None = None,
                 tracer=None) -> None:
        self.pool = pool
        self.timeout = timeout
        self.tracer = tracer if tracer is not None else TRACER
        r = registry if registry is not None else REGISTRY
        self._registry = r
        self._requests = r.counter("farm.client.requests")
        self._timeouts = r.counter("farm.client.timeouts")
        self._errors = r.counter("farm.client.errors")
        self._flights = FlightTable()
        self._image_keys: dict[tuple[int, int], str] = {}
        self._image_lock = threading.Lock()

    # -- image publication -------------------------------------------------

    def ensure_image(self, image: Image) -> str:
        """Publish ``image`` to the shared store; return its spec key.

        Memoized per ``(id(image), generation)``: a patch bumps the
        generation, forcing a re-capture, while repeated promotions on an
        unpatched image reuse the published spec.  The store side is
        content-keyed, so identical images across clients share one entry.
        """
        memo = (id(image), image.generation)
        with self._image_lock:
            key = self._image_keys.get(memo)
        if key is not None:
            return key
        spec = ImageSpec.capture(image)
        key = image_spec_key(spec.digest())
        if self.pool.store.get(key) is None:
            self.pool.store.put(key, spec)
        with self._image_lock:
            self._image_keys[memo] = key
        return key

    # -- compilation -------------------------------------------------------

    def compile(self, job: CompileJob,
                timeout: float | None = None) -> CompileResult | None:
        """One farm round-trip; None means "compile locally instead"."""
        self._requests.value += 1
        wait = self.timeout if timeout is None else timeout

        def thunk() -> CompileResult | None:
            try:
                fut = self.pool.submit(job)
            except RuntimeError:  # pool closed
                self._errors.value += 1
                return None
            try:
                result = fut.result(timeout=wait)
            except FutureTimeoutError:
                self._timeouts.value += 1
                fut.cancel()
                return None
            except (BrokenPipeError, OSError):
                self._errors.value += 1
                return None
            self._absorb(result, job)
            return result

        result, _led = self._flights.run((job.key, job.epoch), thunk)
        return result

    # -- telemetry folding -------------------------------------------------

    def _absorb(self, result: CompileResult, job: CompileJob) -> None:
        for name, value in result.stats:
            if name.startswith("farm.flight."):
                continue  # cumulative worker-lifetime gauges, not deltas
            self._registry.counter(f"farm.worker.{name}").value += int(value)
        if result.trace_records is not None and self.tracer.enabled:
            self.tracer.merge_records(result.trace_records,
                                      root_parent=job.parent_span_id)
