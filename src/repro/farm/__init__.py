"""Compile farm: a multi-process rewrite service over a shared disk cache.

PR 4's :class:`~repro.tier.TieredEngine` moved LLVM-grade optimization off
the application's critical path into background *threads*; this package
moves it off the application's *cores* into a pool of worker processes —
the offload model BAAR argues for, built from four pieces:

* :mod:`repro.farm.protocol` — picklable :class:`CompileJob` /
  :class:`CompileResult` records plus :class:`ImageSpec`, a content-keyed
  snapshot of the guest image that workers rebuild bit-identically at the
  original guest addresses (lifted IR bakes absolute addresses in, so the
  worker's image must agree with the client's);
* :mod:`repro.farm.pool` — :class:`FarmPool`: worker lifecycle (spawn,
  respawn-on-crash, graceful drain), batched job transport over
  ``multiprocessing`` queues, result collection;
* :mod:`repro.farm.worker` — the worker process main loop: rebuild the
  image, run the T1/T2 pipeline under a per-job
  :class:`~repro.guard.Budget`, publish the position-independent post-O3
  module to the shared :class:`~repro.cache.DiskStore`, all under the
  cross-process single-flight of
  :class:`~repro.cache.FileFlightTable`;
* :mod:`repro.farm.client` — :class:`FarmClient`: the in-process facade
  the tiered engine calls; adds thread-level request coalescing and
  merges worker trace records into the client tracer.

Failure is always soft: a dead pool, a lost job, a timeout or an unkeyed
function all surface as ``None``/``retryable`` results, and the engine
falls back to compiling in-process — exactly the degradation ladder the
rest of the system already follows.  :mod:`repro.farm.health` holds the
policy pieces that bound every failure in *time* as well: the per-worker
heartbeat watchdog (hung vs crashed workers), bounded retry with backoff
and jitter, poisoned-job quarantine, and the client-side
:class:`CircuitBreaker` that degrades a sick farm to in-process tiers
immediately instead of one timeout per request.
"""

from repro.farm.client import FarmClient
from repro.farm.health import (
    CircuitBreaker,
    HealthEvent,
    RetryPolicy,
    WorkerWatchdog,
)
from repro.farm.pool import FarmPool
from repro.farm.protocol import (
    CompileJob,
    CompileResult,
    ImageSpec,
    MemSegment,
)

__all__ = [
    "CircuitBreaker",
    "CompileJob",
    "CompileResult",
    "FarmClient",
    "FarmPool",
    "HealthEvent",
    "ImageSpec",
    "MemSegment",
    "RetryPolicy",
    "WorkerWatchdog",
]
