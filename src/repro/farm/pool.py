"""Worker-pool lifecycle, batched job transport, and worker health.

:class:`FarmPool` owns the processes and the queues; it knows nothing
about compilation.  Four moving parts:

* a **dispatcher thread** drains the submit buffer into batch messages.
  Batching is load-adaptive rather than timer-based: while workers are
  keeping up, each job ships alone (lowest latency); when submissions
  outpace the dispatcher — a registration storm promoting hundreds of
  tiny functions — the buffer grows between wakeups and whole batches of
  up to ``batch_max`` jobs cross the queue in one pickle, amortizing the
  per-message transport cost exactly when it matters.  The dispatcher
  also owns the **retry heap**: jobs lost inside a dead worker come back
  through it after a :class:`~repro.farm.health.RetryPolicy` backoff.
* a **collector thread** resolves futures from the result queue and, on
  a poll cadence, runs the **watchdog** over every worker slot.  Each
  worker owns a shared-memory heartbeat cell refreshed by a beat thread
  inside the process, so the watchdog can tell a *hung* worker (alive,
  stale heartbeat — SIGSTOPped, wedged in a syscall, livelocked) from a
  *crashed* one (``is_alive`` false); hangs get SIGKILL first, both get
  respawned, and the jobs the dead worker held are retried, failed, or
  quarantined (below).
* a **poison quarantine**: the worker announces each job before running
  it (``("start", wid, seq)`` on the result queue), so when a worker
  dies the pool knows which job it was chewing.  A job whose execution
  has killed or hung ``poison_threshold`` successive workers is
  blacklisted into a :class:`~repro.cache.NegativeCache` — its future
  (and every later submit of the same key while the entry is fresh)
  resolves immediately with a retryable failure, and the pool stops
  crash-looping on it.  Innocent jobs merely *queued* on the dead worker
  are retried without poison accounting.
* the **worker processes** run :func:`repro.farm.worker.worker_main`.
  Start method comes from ``start_method`` / ``REPRO_FARM_START_METHOD``
  (default ``fork`` where available — workers inherit nothing mutable of
  consequence; everything they need arrives via the job or the shared
  store, which is also what makes ``spawn`` work unchanged).

``close()`` drains gracefully and is **idempotent and race-free** against
the collector: closing takes the same lock the watchdog respawns under,
so a crash during shutdown can neither resurrect a worker after the
teardown snapshot nor double-fail a future.  Stragglers are escalated
``terminate()`` → ``kill()`` — SIGTERM never reaches a SIGSTOPped worker,
SIGKILL always does.  Unresolved futures get ``BrokenPipeError`` so no
client waits on a dead pool.
"""

from __future__ import annotations

import dataclasses
import heapq
import multiprocessing as mp
import os
import queue as queue_mod
import random
import tempfile
import threading
import time
from concurrent.futures import Future, InvalidStateError

from repro.cache.negative import NegativeCache
from repro.cache.store import DiskStore
from repro.farm.health import (
    ALIVE,
    BOOTING,
    CRASHED,
    HUNG,
    HealthEvent,
    RetryPolicy,
    WorkerWatchdog,
)
from repro.farm.protocol import CompileJob, CompileResult
from repro.farm.worker import worker_main
from repro.obs.metrics import MetricsRegistry, REGISTRY
from repro.obs.trace import TRACER as _TR

#: environment override for the multiprocessing start method
START_METHOD_ENV = "REPRO_FARM_START_METHOD"


def _pick_start_method(requested: str | None) -> str:
    method = requested or os.environ.get(START_METHOD_ENV) or ""
    if method:
        return method
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


class _WorkerSlot:
    """One worker process plus its private job queue and heartbeat cell."""

    __slots__ = ("wid", "proc", "job_q", "hb", "spawned_at", "current_seq")

    def __init__(self, wid, proc, job_q, hb, spawned_at) -> None:
        self.wid = wid
        self.proc = proc
        self.job_q = job_q
        #: shared double the worker's beat thread stamps with monotonic time
        self.hb = hb
        self.spawned_at = spawned_at
        #: seq of the job the worker last announced (0 = idle/unknown)
        self.current_seq = 0


class _JobState:
    """Pool-side bookkeeping for one unresolved job."""

    __slots__ = ("job", "attempts", "wid")

    def __init__(self, job: CompileJob) -> None:
        self.job = job
        #: dispatches so far (bumped when handed to a worker queue)
        self.attempts = 0
        #: slot the job was last dispatched to (None = pending/retrying)
        self.wid: int | None = None


class FarmPool:
    """A pool of compile-worker processes over one shared disk store."""

    def __init__(self, *, workers: int = 2, disk_dir: str | None = None,
                 start_method: str | None = None,
                 batch_max: int = 16, respawn: bool = True,
                 poll_interval: float = 0.05,
                 flight_timeout: float | None = 120.0,
                 heartbeat_interval: float = 0.5,
                 hang_timeout: float | None = None,
                 boot_timeout: float = 60.0,
                 retry: RetryPolicy | None = None,
                 retry_seed: int | None = None,
                 poison_threshold: int = 2,
                 quarantine: NegativeCache | None = None,
                 worker_chaos: dict | None = None,
                 registry: MetricsRegistry | None = None) -> None:
        if disk_dir is None:
            self._own_dir = tempfile.TemporaryDirectory(prefix="repro-farm-")
            disk_dir = self._own_dir.name
        else:
            self._own_dir = None
        self.disk_dir = disk_dir
        #: the client-side handle on the shared store (image specs go in
        #: through this; warm results can be probed without a worker)
        self.store = DiskStore(disk_dir)
        self.batch_max = batch_max
        self.respawn = respawn
        self.poll_interval = poll_interval
        self.watchdog = WorkerWatchdog(heartbeat_interval=heartbeat_interval,
                                       hang_timeout=hang_timeout,
                                       boot_timeout=boot_timeout)
        self.retry = retry if retry is not None else RetryPolicy()
        self._retry_rng = random.Random(retry_seed)
        self.poison_threshold = max(1, poison_threshold)
        #: poisoned-job blacklist; injectable so an engine can share one
        self.quarantine = quarantine if quarantine is not None \
            else NegativeCache(ttl=60.0)
        self._worker_config = {
            "disk_dir": disk_dir,
            "flight_timeout": flight_timeout,
            "heartbeat_interval": heartbeat_interval,
        }
        if worker_chaos:
            #: scripted fault plan interpreted by the worker main loop
            #: (repro.testing.chaos) — absent in production configs
            self._worker_config["chaos"] = dict(worker_chaos)

        r = registry if registry is not None else REGISTRY
        self._jobs_ctr = r.counter("farm.jobs")
        self._batches = r.counter("farm.batches")
        self._batched_jobs = r.counter("farm.batched_jobs")
        self._results_ctr = r.counter("farm.results")
        self._respawns = r.counter("farm.respawns")
        self._lost = r.counter("farm.lost_futures")
        self._crashes = r.counter("farm.health.crashes")
        self._hangs = r.counter("farm.health.hangs")
        self._retries = r.counter("farm.health.retries")
        self._exhausted = r.counter("farm.health.exhausted")
        self._quarantined = r.counter("farm.health.quarantined")
        self._quarantine_served = r.counter("farm.health.quarantine_served")
        r.view("farm.heartbeat_age", self.heartbeat_ages)

        self._ctx = mp.get_context(_pick_start_method(start_method))
        self._result_q = self._ctx.Queue()
        #: every mutation of slots/futures/jobs/pending happens under this
        #: one lock (the condition wraps it); the watchdog's respawn and
        #: ``close``'s teardown serialize here, which is what makes a crash
        #: during shutdown unable to resurrect a worker
        self._lock = threading.Lock()
        self._cv = threading.Condition(self._lock)
        #: (process, private job queue, heartbeat) per slot.  One job queue
        #: PER WORKER, not one shared: ``mp.Queue.get`` holds the queue's
        #: reader lock while blocked, so a worker SIGKILLed while idle
        #: would leave a shared queue poisoned for every successor.  A
        #: private queue dies with its worker; the respawn gets a fresh one.
        self._slots: list[_WorkerSlot] = []
        self._slot_by_wid: dict[int, _WorkerSlot] = {}
        self._next_worker_id = 0
        self._rr = 0
        self._pending: list[CompileJob] = []
        self._futures: dict[int, Future] = {}
        self._jobs: dict[int, _JobState] = {}
        #: (due, seq) backoff heap drained by the dispatcher
        self._retry_heap: list[tuple[float, int]] = []
        #: job key -> successive workers its execution took down
        self._poison_counts: dict[str, int] = {}
        self._next_seq = 1
        self._closed = False
        #: serializes whole close() bodies (idempotence under racing closes)
        self._close_lock = threading.Lock()
        self._last_watchdog = time.monotonic()
        #: append-only log of watchdog/retry/quarantine decisions (reports,
        #: recovery-latency benches); bounded to keep long-lived pools sane
        self.health_events: list[HealthEvent] = []
        self._max_events = 4096

        with self._lock:
            for _ in range(max(1, workers)):
                self._slots.append(self._spawn())

        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="farm-dispatch", daemon=True)
        self._collector = threading.Thread(
            target=self._collect_loop, name="farm-collect", daemon=True)
        self._dispatcher.start()
        self._collector.start()

    # -- worker lifecycle --------------------------------------------------

    def _spawn(self) -> _WorkerSlot:
        """Start one worker; caller holds ``self._lock``."""
        wid = self._next_worker_id
        self._next_worker_id += 1
        job_q = self._ctx.Queue()
        hb = self._ctx.Value("d", 0.0, lock=False)
        proc = self._ctx.Process(
            target=worker_main,
            args=(wid, job_q, self._result_q, self._worker_config, hb),
            name=f"farm-worker-{wid}", daemon=True)
        proc.start()
        slot = _WorkerSlot(wid, proc, job_q, hb, time.monotonic())
        self._slot_by_wid[wid] = slot
        return slot

    def _event(self, kind: str, **kw) -> None:
        if len(self.health_events) < self._max_events:
            self.health_events.append(
                HealthEvent(t=time.monotonic(), kind=kind, **kw))

    def _run_watchdog(self) -> None:
        """Classify every slot; kill hung workers, respawn, reassign jobs.

        Runs on the collector thread.  Futures are resolved outside the
        lock (client callbacks attached to them must not re-enter).
        """
        to_fail: list[tuple[Future, CompileResult]] = []
        with self._cv:
            if self._closed:
                return
            dead: list[int] = []
            for i, slot in enumerate(self._slots):
                verdict = self.watchdog.classify(
                    alive=slot.proc.is_alive(), heartbeat=slot.hb.value,
                    spawned_at=slot.spawned_at)
                if verdict in (ALIVE, BOOTING):
                    continue
                if verdict == HUNG:
                    # hung-but-alive: is_alive() can never reap it and its
                    # job queue is wedged with it — SIGKILL is the only
                    # transition that frees both
                    self._hangs.value += 1
                    self._event("hang", worker_id=slot.wid,
                                seq=slot.current_seq or None)
                    slot.proc.kill()
                    slot.proc.join(timeout=5.0)
                else:
                    self._crashes.value += 1
                    self._event("crash", worker_id=slot.wid,
                                seq=slot.current_seq or None)
                    slot.proc.join(timeout=0)
                try:
                    slot.job_q.close()
                except (OSError, ValueError):  # pragma: no cover
                    pass
                to_fail.extend(self._reassign_lost_jobs(slot, verdict))
                self._slot_by_wid.pop(slot.wid, None)
                if self.respawn:
                    self._slots[i] = self._spawn()
                    self._respawns.value += 1
                    self._event("respawn", worker_id=self._slots[i].wid)
                else:
                    dead.append(i)
            for i in reversed(dead):
                del self._slots[i]
            self._cv.notify_all()
        for fut, result in to_fail:
            self._resolve(fut, result)
        if _TR.enabled and to_fail:
            for _fut, result in to_fail:
                _TR.instant("farm.job_failed",
                            {"key": result.key,
                             "reason": result.reject_reason})

    def _reassign_lost_jobs(self, slot: _WorkerSlot, verdict: str,
                            ) -> list[tuple[Future, CompileResult]]:
        """Retry / fail / quarantine the jobs a dead worker held.

        Caller holds the lock.  Returns (future, result) pairs to resolve
        outside it.  The job the worker *announced* before dying is the
        poison suspect; jobs merely queued behind it are innocent and
        retried without poison accounting.
        """
        now = time.monotonic()
        out: list[tuple[Future, CompileResult]] = []
        lost = [seq for seq, st in self._jobs.items() if st.wid == slot.wid]
        culprit = slot.current_seq
        if not culprit and len(lost) == 1:
            # The start announcement rides the result queue's feeder
            # thread; a worker that dies fast enough (SIGKILL right after
            # pickup) loses it.  With a single job on the slot there is no
            # ambiguity — attribute it anyway so a fast-poisoning job
            # still hits the quarantine instead of burning every retry.
            culprit = lost[0]
        for seq in lost:
            st = self._jobs[seq]
            key = st.job.key
            if seq == culprit:
                count = self._poison_counts.get(key, 0) + 1
                self._poison_counts[key] = count
                if count >= self.poison_threshold:
                    self.quarantine.record(
                        key, "farm",
                        f"job {verdict} {count} successive workers",
                        {"verdict": verdict, "workers": count})
                    self._quarantined.value += 1
                    self._event("quarantine", seq=seq, key=key,
                                detail=verdict)
                    out.append(self._take_failed(
                        seq, f"quarantined: {verdict} {count} "
                             f"successive workers"))
                    continue
            if self.retry.exhausted(st.attempts):
                self._exhausted.value += 1
                self._event("exhausted", seq=seq, key=key)
                out.append(self._take_failed(
                    seq, f"farm retries exhausted after "
                         f"{st.attempts} dispatches ({verdict} worker)"))
                continue
            st.wid = None
            due = now + self.retry.delay(st.attempts, self._retry_rng)
            heapq.heappush(self._retry_heap, (due, seq))
            self._retries.value += 1
            self._event("retry", seq=seq, key=key, worker_id=slot.wid)
        return out

    def _take_failed(self, seq: int,
                     reason: str) -> tuple[Future, CompileResult]:
        """Remove one job's state; build its retryable failure result."""
        st = self._jobs.pop(seq)
        fut = self._futures.pop(seq)
        result = CompileResult(
            key=st.job.key, name=st.job.name, tier=st.job.tier,
            epoch=st.job.epoch, seq=seq, ok=False, retryable=True,
            reject_reason=reason, attempt=st.attempts)
        return fut, result

    @staticmethod
    def _resolve(fut: Future, result: CompileResult) -> None:
        try:
            if not fut.done():
                fut.set_result(result)
        except InvalidStateError:  # lost a race against cancel/close
            pass

    def alive_workers(self) -> int:
        with self._lock:
            return sum(1 for s in self._slots if s.proc.is_alive())

    @property
    def workers(self) -> int:
        return len(self._slots)

    def heartbeat_ages(self) -> dict[int, float]:
        """Per-worker heartbeat age in seconds (registry view)."""
        with self._lock:
            return {s.wid: round(self.watchdog.heartbeat_age(
                s.hb.value, s.spawned_at), 6) for s in self._slots}

    # -- submission --------------------------------------------------------

    def submit(self, job: CompileJob) -> Future:
        """Queue one job; the Future resolves to its CompileResult.

        A job whose key sits fresh in the poison quarantine never reaches
        a worker: its future resolves immediately with a retryable
        failure, so the client compiles in-process instead of feeding the
        crash loop another worker.
        """
        if self._closed:
            raise RuntimeError("farm pool is closed")
        fut: Future = Future()
        entry = self.quarantine.check(job.key) if job.key else None
        if entry is not None:
            self._quarantine_served.value += 1
            fut.set_result(CompileResult(
                key=job.key, name=job.name, tier=job.tier, epoch=job.epoch,
                seq=0, ok=False, retryable=True,
                reject_reason=f"quarantined: {entry.reason}"))
            return fut
        with self._cv:
            if self._closed:
                raise RuntimeError("farm pool is closed")
            seq = self._next_seq
            self._next_seq += 1
            job = dataclasses.replace(job, seq=seq)
            fut._farm_seq = seq  # lets FarmClient.forget find the entry
            self._futures[seq] = fut
            self._jobs[seq] = _JobState(job)
            self._pending.append(job)
            self._jobs_ctr.value += 1
            self._cv.notify()
        return fut

    def forget(self, fut: Future) -> None:
        """Abandon a submitted job: drop its future, job state and any
        scheduled retry so nothing is compiled (or crash-accounted) for a
        caller that has stopped waiting.  Idempotent; unknown futures are
        ignored.  (Retry-heap entries are dropped lazily — a popped seq
        with no job state is skipped.)
        """
        seq = getattr(fut, "_farm_seq", None)
        if seq is None:
            return
        with self._lock:
            self._futures.pop(seq, None)
            self._jobs.pop(seq, None)
            try:
                self._pending.remove(
                    next(j for j in self._pending if j.seq == seq))
            except StopIteration:
                pass

    def _dispatch_loop(self) -> None:
        while True:
            with self._cv:
                while True:
                    now = time.monotonic()
                    self._promote_due_retries(now)
                    if self._pending or self._closed:
                        break
                    timeout = None
                    if self._retry_heap:
                        timeout = max(0.0, self._retry_heap[0][0] - now)
                    self._cv.wait(timeout)
                if self._closed and not self._pending:
                    return
                batch = self._pending[:self.batch_max]
                del self._pending[:len(batch)]
                self._batches.value += 1
                if len(batch) > 1:
                    self._batched_jobs.value += len(batch)
                # round-robin over alive workers; a batch landing on a
                # worker that dies before draining it comes back through
                # the watchdog's retry path
                slots = [s for s in self._slots if s.proc.is_alive()] \
                    or list(self._slots)
                if not slots:  # every worker dead, respawn disabled
                    self._pending[:0] = batch
                    if self._closed:
                        return
                    self._cv.wait(self.poll_interval)
                    continue
                self._rr = (self._rr + 1) % len(slots)
                slot = slots[self._rr]
                for job in batch:
                    st = self._jobs.get(job.seq)
                    if st is not None:
                        st.attempts += 1
                        st.wid = slot.wid
                batch = [dataclasses.replace(
                    j, attempt=self._jobs[j.seq].attempts)
                    for j in batch if j.seq in self._jobs]
            if not batch:  # every job was forgotten while pending
                continue
            try:
                slot.job_q.put(("batch", batch))
            except (ValueError, OSError):
                # queue closed under us: worker died between pick and put;
                # the watchdog will reap it and retry the assigned jobs
                continue

    def _promote_due_retries(self, now: float) -> None:
        """Move due retry-heap entries back into the pending list."""
        while self._retry_heap and self._retry_heap[0][0] <= now:
            _due, seq = heapq.heappop(self._retry_heap)
            st = self._jobs.get(seq)
            if st is not None and st.wid is None:
                self._pending.append(st.job)

    # -- collection --------------------------------------------------------

    def _collect_loop(self) -> None:
        while True:
            try:
                msg = self._result_q.get(timeout=self.poll_interval)
            except queue_mod.Empty:
                msg = None
                if self._closed and not self._futures:
                    return
            except (EOFError, OSError, ValueError):
                return
            else:
                if msg is None:
                    return
            now = time.monotonic()
            if now - self._last_watchdog >= self.poll_interval:
                # time-based, not timeout-based: a steady result stream
                # must not starve hang detection on the other workers
                self._last_watchdog = now
                self._run_watchdog()
            if msg is None:
                continue
            kind = msg[0]
            if kind == "start":
                _, wid, seq = msg
                with self._lock:
                    slot = self._slot_by_wid.get(wid)
                    if slot is not None:
                        slot.current_seq = seq
                continue
            _, result = msg
            self._results_ctr.value += 1
            with self._lock:
                fut = self._futures.pop(result.seq, None)
                self._jobs.pop(result.seq, None)
                self._poison_counts.pop(result.key, None)
                for s in self._slots:
                    if s.current_seq == result.seq:
                        s.current_seq = 0
            if fut is not None:
                self._resolve(fut, result)

    # -- drain / shutdown --------------------------------------------------

    def drain(self, timeout: float = 30.0) -> bool:
        """Block until every submitted job has resolved (or timeout)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                if not self._futures and not self._pending:
                    return True
            time.sleep(0.01)
        return False

    def close(self, *, timeout: float = 5.0) -> None:
        """Graceful drain: sentinels, join, then terminate stragglers.

        Idempotent (a second call — even concurrent — is a no-op that
        waits for the first to finish) and race-free against the
        watchdog: ``_closed`` flips under the same lock the watchdog
        respawns under, so once the teardown snapshot is taken no new
        worker can appear.  Stragglers escalate ``terminate()`` →
        ``kill()``: SIGTERM is never delivered to a SIGSTOPped worker,
        SIGKILL reaps even those.
        """
        with self._close_lock:
            with self._cv:
                if self._closed:
                    return
                self._closed = True
                slots = list(self._slots)
                self._cv.notify_all()
            for slot in slots:
                try:
                    slot.job_q.put(None)
                except (ValueError, OSError):
                    pass
            for slot in slots:
                slot.proc.join(timeout=timeout)
            for slot in slots:
                if slot.proc.is_alive():
                    slot.proc.terminate()
                    slot.proc.join(timeout=1.0)
            for slot in slots:
                if slot.proc.is_alive():
                    slot.proc.kill()
                    slot.proc.join(timeout=5.0)
            # fail any future that will never resolve now
            with self._lock:
                leftovers = list(self._futures.values())
                self._futures.clear()
                self._jobs.clear()
                self._pending.clear()
                self._retry_heap.clear()
            for fut in leftovers:
                try:
                    if not fut.done():
                        self._lost.value += 1
                        fut.set_exception(
                            BrokenPipeError("farm pool closed"))
                except InvalidStateError:  # racing collector resolution
                    pass
            for slot in slots:
                try:
                    slot.job_q.close()
                except (OSError, ValueError):
                    pass
            self._result_q.close()
            self._collector.join(timeout=1.0)
            self._dispatcher.join(timeout=1.0)
            if self._own_dir is not None:
                try:
                    self._own_dir.cleanup()
                except OSError:  # pragma: no cover - windows file locks etc.
                    pass

    def __enter__(self) -> "FarmPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            inflight = len(self._futures)
            retry_pending = sum(1 for _d, s in self._retry_heap
                                if s in self._jobs)
        return {
            "jobs": self._jobs_ctr.value,
            "batches": self._batches.value,
            "batched_jobs": self._batched_jobs.value,
            "results": self._results_ctr.value,
            "respawns": self._respawns.value,
            "lost_futures": self._lost.value,
            "alive_workers": self.alive_workers(),
            "inflight": inflight,
            "retry_pending": retry_pending,
            "crashes": self._crashes.value,
            "hangs": self._hangs.value,
            "retries": self._retries.value,
            "exhausted": self._exhausted.value,
            "quarantined": self._quarantined.value,
            "quarantine_served": self._quarantine_served.value,
        }
