"""Worker-pool lifecycle and batched job transport.

:class:`FarmPool` owns the processes and the queues; it knows nothing
about compilation.  Three moving parts:

* a **dispatcher thread** drains the submit buffer into batch messages.
  Batching is load-adaptive rather than timer-based: while workers are
  keeping up, each job ships alone (lowest latency); when submissions
  outpace the dispatcher — a registration storm promoting hundreds of
  tiny functions — the buffer grows between wakeups and whole batches of
  up to ``batch_max`` jobs cross the queue in one pickle, amortizing the
  per-message transport cost exactly when it matters.
* a **collector thread** resolves futures from the result queue and, on
  every poll timeout, reaps dead workers and respawns replacements
  (``respawn=True``).  Jobs lost inside a crashed worker are *not*
  replayed — the future times out client-side and the tiered engine
  compiles in-process; replaying would double-compile on the far more
  common slow-worker case.
* the **worker processes** run :func:`repro.farm.worker.worker_main`.
  Start method comes from ``start_method`` / ``REPRO_FARM_START_METHOD``
  (default ``fork`` where available — workers inherit nothing mutable of
  consequence; everything they need arrives via the job or the shared
  store, which is also what makes ``spawn`` work unchanged).

``close()`` drains gracefully: sentinels in, join with timeout, then
terminate stragglers.  Unresolved futures get ``BrokenPipeError`` so no
client waits on a dead pool.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_mod
import tempfile
import threading
from concurrent.futures import Future

from repro.cache.store import DiskStore
from repro.farm.protocol import CompileJob, CompileResult
from repro.farm.worker import worker_main
from repro.obs.metrics import MetricsRegistry, REGISTRY

#: environment override for the multiprocessing start method
START_METHOD_ENV = "REPRO_FARM_START_METHOD"


def _pick_start_method(requested: str | None) -> str:
    method = requested or os.environ.get(START_METHOD_ENV) or ""
    if method:
        return method
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


class FarmPool:
    """A pool of compile-worker processes over one shared disk store."""

    def __init__(self, *, workers: int = 2, disk_dir: str | None = None,
                 start_method: str | None = None,
                 batch_max: int = 16, respawn: bool = True,
                 poll_interval: float = 0.05,
                 flight_timeout: float | None = 120.0,
                 registry: MetricsRegistry | None = None) -> None:
        if disk_dir is None:
            self._own_dir = tempfile.TemporaryDirectory(prefix="repro-farm-")
            disk_dir = self._own_dir.name
        else:
            self._own_dir = None
        self.disk_dir = disk_dir
        #: the client-side handle on the shared store (image specs go in
        #: through this; warm results can be probed without a worker)
        self.store = DiskStore(disk_dir)
        self.batch_max = batch_max
        self.respawn = respawn
        self.poll_interval = poll_interval
        self._worker_config = {
            "disk_dir": disk_dir,
            "flight_timeout": flight_timeout,
        }

        r = registry if registry is not None else REGISTRY
        self._jobs_ctr = r.counter("farm.jobs")
        self._batches = r.counter("farm.batches")
        self._batched_jobs = r.counter("farm.batched_jobs")
        self._results_ctr = r.counter("farm.results")
        self._respawns = r.counter("farm.respawns")
        self._lost = r.counter("farm.lost_futures")

        self._ctx = mp.get_context(_pick_start_method(start_method))
        self._result_q = self._ctx.Queue()
        #: (process, its private job queue) per slot.  One job queue PER
        #: WORKER, not one shared: ``mp.Queue.get`` holds the queue's
        #: reader lock while blocked, so a worker SIGKILLed while idle
        #: would leave a shared queue poisoned for every successor.  A
        #: private queue dies with its worker; the respawn gets a fresh
        #: one and only the jobs trapped in the dead queue are lost
        #: (their futures time out and the client compiles locally).
        self._workers: list = []
        self._next_worker_id = 0
        self._rr = 0
        for _ in range(max(1, workers)):
            self._workers.append(self._spawn())

        self._lock = threading.Lock()
        self._cv = threading.Condition(self._lock)
        self._pending: list[CompileJob] = []
        self._futures: dict[int, Future] = {}
        self._next_seq = 1
        self._closed = False

        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="farm-dispatch", daemon=True)
        self._collector = threading.Thread(
            target=self._collect_loop, name="farm-collect", daemon=True)
        self._dispatcher.start()
        self._collector.start()

    # -- worker lifecycle --------------------------------------------------

    def _spawn(self):
        wid = self._next_worker_id
        self._next_worker_id += 1
        job_q = self._ctx.Queue()
        proc = self._ctx.Process(
            target=worker_main,
            args=(wid, job_q, self._result_q, self._worker_config),
            name=f"farm-worker-{wid}", daemon=True)
        proc.start()
        return (proc, job_q)

    def _reap(self) -> None:
        """Replace dead workers (crash, OOM-kill, test-inflicted SIGKILL)."""
        if self._closed or not self.respawn:
            return
        for i, (proc, job_q) in enumerate(self._workers):
            if not proc.is_alive():
                proc.join(timeout=0)
                job_q.close()
                self._workers[i] = self._spawn()
                self._respawns.value += 1

    def alive_workers(self) -> int:
        return sum(1 for p, _q in self._workers if p.is_alive())

    @property
    def workers(self) -> int:
        return len(self._workers)

    # -- submission --------------------------------------------------------

    def submit(self, job: CompileJob) -> Future:
        """Queue one job; the Future resolves to its CompileResult."""
        fut: Future = Future()
        with self._cv:
            if self._closed:
                raise RuntimeError("farm pool is closed")
            seq = self._next_seq
            self._next_seq += 1
            import dataclasses
            job = dataclasses.replace(job, seq=seq)
            self._futures[seq] = fut
            self._pending.append(job)
            self._jobs_ctr.value += 1
            self._cv.notify()
        return fut

    def _dispatch_loop(self) -> None:
        while True:
            with self._cv:
                while not self._pending and not self._closed:
                    self._cv.wait()
                if self._closed and not self._pending:
                    return
                batch = self._pending[:self.batch_max]
                del self._pending[:len(batch)]
            self._batches.value += 1
            if len(batch) > 1:
                self._batched_jobs.value += len(batch)
            # round-robin over alive workers; a batch landing on a worker
            # that dies before draining it is lost (futures time out)
            targets = [q for p, q in self._workers if p.is_alive()] \
                or [q for _p, q in self._workers]
            self._rr = (self._rr + 1) % len(targets)
            try:
                targets[self._rr].put(("batch", batch))
            except (ValueError, OSError):  # queue closed under us
                return

    # -- collection --------------------------------------------------------

    def _collect_loop(self) -> None:
        while True:
            try:
                msg = self._result_q.get(timeout=self.poll_interval)
            except queue_mod.Empty:
                if self._closed and not self._futures:
                    return
                self._reap()
                continue
            except (EOFError, OSError, ValueError):
                return
            if msg is None:
                return
            _, result = msg
            self._results_ctr.value += 1
            with self._lock:
                fut = self._futures.pop(result.seq, None)
            if fut is not None and not fut.done():
                fut.set_result(result)

    # -- drain / shutdown --------------------------------------------------

    def drain(self, timeout: float = 30.0) -> bool:
        """Block until every submitted job has resolved (or timeout)."""
        import time
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                if not self._futures and not self._pending:
                    return True
            time.sleep(0.01)
        return False

    def close(self, *, timeout: float = 5.0) -> None:
        """Graceful drain: sentinels, join, then terminate stragglers."""
        with self._cv:
            if self._closed:
                return
            self._closed = True
            self._cv.notify_all()
        for _proc, job_q in self._workers:
            try:
                job_q.put(None)
            except (ValueError, OSError):
                pass
        for proc, _job_q in self._workers:
            proc.join(timeout=timeout)
        for proc, _job_q in self._workers:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        # fail any future that will never resolve now
        with self._lock:
            leftovers = list(self._futures.values())
            self._futures.clear()
            self._pending.clear()
        for fut in leftovers:
            if not fut.done():
                self._lost.value += 1
                fut.set_exception(BrokenPipeError("farm pool closed"))
        for _proc, job_q in self._workers:
            job_q.close()
        self._result_q.close()
        self._collector.join(timeout=1.0)
        self._dispatcher.join(timeout=1.0)
        if self._own_dir is not None:
            try:
                self._own_dir.cleanup()
            except OSError:  # pragma: no cover - windows file locks etc.
                pass

    def __enter__(self) -> "FarmPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def snapshot(self) -> dict[str, int]:
        return {
            "jobs": self._jobs_ctr.value,
            "batches": self._batches.value,
            "batched_jobs": self._batched_jobs.value,
            "results": self._results_ctr.value,
            "respawns": self._respawns.value,
            "lost_futures": self._lost.value,
            "alive_workers": self.alive_workers(),
        }
