"""Farm resilience primitives: heartbeats, retry policy, circuit breaker.

The paper's contract is that runtime rewriting may always *degrade* —
serve the original code — but must never make the program wrong or
unavailable.  PR 6's multi-process farm multiplied the ways a compile can
go sideways (a worker can crash, hang, be OOM-killed or SIGSTOPped, a
result can be lost on the queue) and this module holds the three policy
pieces that keep every one of those failures soft and *bounded in time*:

* :class:`WorkerWatchdog` — classifies each worker slot from two cheap
  observations: process liveness and the age of a shared-memory heartbeat
  cell the worker's beat thread refreshes every ``heartbeat_interval``.
  A dead process is a **crash** (the existing reap path); an alive
  process with a stale heartbeat is a **hang** — something ``Process.is_alive``
  can never see — and the pool answers it with SIGKILL + respawn.  The
  distinction matters for accounting (hangs indicate wedged compiles or
  stopped processes, crashes indicate faults) and for the kill step: a
  crashed worker needs none.
* :class:`RetryPolicy` — bounded per-job retry with exponential backoff
  and seeded jitter.  Backoff prevents a dead-on-arrival job from being
  re-dispatched in a tight loop while the pool is still respawning;
  jitter prevents every lost job of one dead worker from landing on the
  respawn in a single thundering batch.  The jitter stream is a private
  ``random.Random`` so chaos scenarios replay bit-identically by seed.
* :class:`CircuitBreaker` — the classic closed → open → half-open
  machine, guarding the *client* against a sick farm.  Without it every
  request pays ``farm_timeout`` before degrading to the in-process
  tiers; with it, ``failure_threshold`` consecutive transport failures
  open the circuit and subsequent requests degrade immediately, until a
  half-open probe proves the farm answers again.  Only transport-level
  outcomes (timeouts, broken pipes, a closed pool) count as failures:
  a structured ``CompileResult`` — even a negative verdict — proves the
  farm alive and counts as success.

Everything here is clock-injectable and process-free, so the whole layer
is unit-testable with fake clocks (tests/farm/test_health.py,
tests/farm/test_breaker.py) before the chaos harness exercises it against
real SIGKILL/SIGSTOP (repro.testing.chaos).
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

#: breaker states (values double as the ``farm.client.breaker_state`` gauge)
CLOSED, HALF_OPEN, OPEN = "closed", "half_open", "open"
BREAKER_STATE_VALUES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with seeded jitter for lost farm jobs.

    ``max_attempts`` counts *dispatches*: a job is handed to a worker at
    most that many times before its future is failed (retryable, so the
    tiered engine compiles in-process).  The delay before re-dispatch
    number ``n`` (n >= 2) is ``base * 2**(n-2)`` capped at ``max_delay``,
    stretched by up to ``jitter`` (a fraction) of itself.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.5

    def delay(self, attempts: int, rng: random.Random) -> float:
        """Backoff before the next dispatch, given ``attempts`` so far."""
        exp = max(0, attempts - 1)
        raw = min(self.base_delay * (2.0 ** exp), self.max_delay)
        return raw * (1.0 + self.jitter * rng.random())

    def exhausted(self, attempts: int) -> bool:
        return attempts >= self.max_attempts


@dataclass
class HealthEvent:
    """One watchdog/retry/quarantine decision, for reports and benches."""

    t: float
    kind: str  # "crash" | "hang" | "respawn" | "retry" | "quarantine" | "exhausted"
    worker_id: int | None = None
    seq: int | None = None
    key: str | None = None
    detail: str | None = None

    def as_dict(self) -> dict[str, Any]:
        return {"t": self.t, "kind": self.kind, "worker_id": self.worker_id,
                "seq": self.seq, "key": self.key, "detail": self.detail}


#: verdicts the watchdog can return for one worker slot
ALIVE, BOOTING, CRASHED, HUNG = "alive", "booting", "crashed", "hung"


class WorkerWatchdog:
    """Classify a worker from liveness + heartbeat age (policy only).

    The pool owns the processes; the watchdog owns the *decision*.  A
    worker that has never beaten (heartbeat cell still 0.0) is ``BOOTING``
    until ``boot_timeout`` — interpreter start-up under the ``spawn``
    method imports the whole package and legitimately takes seconds —
    after which it is declared ``HUNG`` like any other silent-but-alive
    process.
    """

    def __init__(self, *, heartbeat_interval: float = 0.5,
                 hang_timeout: float | None = None,
                 boot_timeout: float = 60.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.heartbeat_interval = heartbeat_interval
        #: heartbeat age beyond which an alive worker counts as hung; the
        #: default leaves slack for scheduler stalls on loaded hosts while
        #: staying detectable well inside one farm timeout
        self.hang_timeout = hang_timeout if hang_timeout is not None \
            else 5.0 * heartbeat_interval
        self.boot_timeout = boot_timeout
        self.clock = clock

    def classify(self, *, alive: bool, heartbeat: float,
                 spawned_at: float) -> str:
        if not alive:
            return CRASHED
        now = self.clock()
        if heartbeat <= 0.0:
            return HUNG if now - spawned_at > self.boot_timeout else BOOTING
        return HUNG if now - heartbeat > self.hang_timeout else ALIVE

    def heartbeat_age(self, heartbeat: float, spawned_at: float) -> float:
        return self.clock() - (heartbeat if heartbeat > 0.0 else spawned_at)


class CircuitBreaker:
    """Closed → open → half-open breaker over consecutive failures.

    * **closed**: every request allowed; ``failure_threshold`` consecutive
      failures trip to open.
    * **open**: every request refused (the client degrades to in-process
      compilation immediately) until ``reset_timeout`` has elapsed.
    * **half-open**: one probe request is allowed through; its success
      closes the breaker, its failure re-opens it (and restarts the
      timer).  Concurrent requests while the probe is in flight are
      refused, so a recovering farm is never stormed.

    Thread-safe; the clock is injectable (deterministic tests, and the
    chaos harness skews it deliberately — the machine must only ever
    degrade *availability of the farm path*, never correctness).
    ``on_transition(old, new)`` fires under the lock on every state
    change; keep it cheap (the client uses it for a gauge + counters +
    trace instant).
    """

    def __init__(self, *, failure_threshold: int = 5,
                 reset_timeout: float = 5.0,
                 clock: Callable[[], float] = time.monotonic,
                 on_transition: Callable[[str, str], None] | None = None,
                 ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.clock = clock
        self.on_transition = on_transition
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0  # consecutive, in closed state
        self._opened_at = 0.0
        self._probe_in_flight = False
        # lifetime accounting (plain ints; the client mirrors what it needs
        # into its metrics registry)
        self.opens = 0
        self.closes = 0
        self.probes = 0
        self.refusals = 0

    # -- state machine -----------------------------------------------------

    def _transition(self, new: str) -> None:
        old, self._state = self._state, new
        if old != new and self.on_transition is not None:
            self.on_transition(old, new)

    @property
    def state(self) -> str:
        """Current state, applying the open → half-open timer lazily."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _maybe_half_open(self) -> None:
        if self._state == OPEN and \
                self.clock() - self._opened_at >= self.reset_timeout:
            self._probe_in_flight = False
            self._transition(HALF_OPEN)

    def allow(self) -> bool:
        """May this request go to the farm?  (Mutating: claims the probe.)"""
        with self._lock:
            self._maybe_half_open()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN and not self._probe_in_flight:
                self._probe_in_flight = True
                self.probes += 1
                return True
            self.refusals += 1
            return False

    def would_allow(self) -> bool:
        """Non-mutating peek: does the breaker currently admit requests?

        Unlike :meth:`allow` this never claims the half-open probe slot —
        the engine uses it to skip job-key/image work for requests the
        breaker would refuse anyway, without consuming the probe.
        """
        with self._lock:
            self._maybe_half_open()
            return self._state == CLOSED or (
                self._state == HALF_OPEN and not self._probe_in_flight)

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            if self._state in (HALF_OPEN, OPEN):
                # OPEN can still see a success: a request admitted just
                # before the trip may resolve late; treat it as proof of
                # life exactly like a probe success
                self._probe_in_flight = False
                self.closes += 1
                self._transition(CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self._probe_in_flight = False
                self._reopen()
                return
            if self._state == OPEN:
                return
            self._failures += 1
            if self._failures >= self.failure_threshold:
                self._reopen()

    def _reopen(self) -> None:
        self._failures = 0
        self._opened_at = self.clock()
        self.opens += 1
        self._transition(OPEN)

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            self._maybe_half_open()
            return {
                "state": self._state,
                "consecutive_failures": self._failures,
                "opens": self.opens,
                "closes": self.closes,
                "probes": self.probes,
                "refusals": self.refusals,
            }


__all__ = [
    "ALIVE",
    "BOOTING",
    "BREAKER_STATE_VALUES",
    "CLOSED",
    "CRASHED",
    "CircuitBreaker",
    "HALF_OPEN",
    "HUNG",
    "HealthEvent",
    "OPEN",
    "RetryPolicy",
    "WorkerWatchdog",
]
