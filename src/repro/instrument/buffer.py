"""Runtime-owned probe counter/event buffers.

Instrumented code (``repro.instrument.passes``) writes *only* here: the
buffer lives in the image's dedicated probe region (disjoint from code,
rodata, globals, JIT space and the stack), which is what lets the
differential gate whitelist it wholesale and the probe-ops pregate prove
every probe store lands inside one buffer's extent.

Layout — all slots are u64, little-endian, 8-byte aligned::

    +0                        call counter (entry probe)
    +8                        event cursor (monotonic sequence number)
    +16 .. +16+8n             per-block edge counters, plan order
    ...                       watch value slots (last observed bits)
    ...                       watch hit counters
    ...                       event ring: capacity x 16 bytes (tag, payload)

The event ring is power-of-two sized and indexed by ``cursor & (cap-1)``;
the cursor itself never wraps, so ``dropped()`` is exact.  An event tag
packs ``kind << 56 | site`` — kinds are :data:`EV_LOAD` / :data:`EV_STORE`.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import InstrumentError

_U64 = struct.Struct("<Q")

#: slots before the per-block counters
HEADER_SLOTS = 2
#: byte size of one event ring entry (tag u64 + payload u64)
EVENT_BYTES = 16

#: event kinds (high byte of the tag word)
EV_LOAD = 1
EV_STORE = 2

_KIND_NAMES = {EV_LOAD: "load", EV_STORE: "store"}


@dataclass(frozen=True)
class ProbeEvent:
    """One decoded memory-trace event."""

    seq: int
    kind: str
    site: int
    payload: int


class ProbeBuffer:
    """One instrumented function's counters, watch slots and event ring."""

    def __init__(self, image, addr: int, *, n_blocks: int, n_watch: int,
                 ring_capacity: int, block_names: tuple[str, ...] = ()) -> None:
        if ring_capacity & (ring_capacity - 1) or ring_capacity <= 0:
            raise InstrumentError(
                f"ring capacity must be a power of two, got {ring_capacity}")
        self.image = image
        self.addr = addr
        self.n_blocks = n_blocks
        self.n_watch = n_watch
        self.ring_capacity = ring_capacity
        self.block_names = tuple(block_names)
        self.calls_addr = addr
        self.cursor_addr = addr + 8
        self.blocks_addr = addr + 8 * HEADER_SLOTS
        self.watch_addr = self.blocks_addr + 8 * n_blocks
        self.watch_hits_addr = self.watch_addr + 8 * n_watch
        self.ring_addr = self.watch_hits_addr + 8 * n_watch
        self.size = (self.ring_addr - addr) + ring_capacity * EVENT_BYTES

    @classmethod
    def allocate(cls, image, plan) -> "ProbeBuffer":
        """Allocate a zeroed buffer in ``image``'s probe region for ``plan``."""
        names = tuple(plan.block_names)
        probe = cls(image, 0, n_blocks=len(names), n_watch=plan.n_watch,
                    ring_capacity=plan.options.ring_capacity,
                    block_names=names)
        addr = image.alloc_probe(probe.size, align=16)
        return cls(image, addr, n_blocks=len(names), n_watch=plan.n_watch,
                   ring_capacity=plan.options.ring_capacity, block_names=names)

    # -- addresses -----------------------------------------------------------

    def extent(self) -> tuple[int, int]:
        """[lo, hi) byte range of this buffer (the gate whitelist entry)."""
        return (self.addr, self.addr + self.size)

    def block_counter_addr(self, index: int) -> int:
        return self.blocks_addr + 8 * index

    def watch_slot_addr(self, index: int) -> int:
        return self.watch_addr + 8 * index

    def watch_hit_addr(self, index: int) -> int:
        return self.watch_hits_addr + 8 * index

    # -- readers -------------------------------------------------------------

    def _u64(self, addr: int) -> int:
        return _U64.unpack(self.image.memory.read(addr, 8))[0]

    def call_count(self) -> int:
        return self._u64(self.calls_addr)

    def cursor(self) -> int:
        return self._u64(self.cursor_addr)

    def block_counts(self) -> dict[str, int]:
        """Edge heat per basic block, keyed by block name."""
        return {name: self._u64(self.block_counter_addr(i))
                for i, name in enumerate(self.block_names)}

    def watch_values(self) -> list[int]:
        return [self._u64(self.watch_slot_addr(i)) for i in range(self.n_watch)]

    def watch_hits(self) -> list[int]:
        return [self._u64(self.watch_hit_addr(i)) for i in range(self.n_watch)]

    def hotness(self) -> int:
        """Edge-profile heat: the hottest block's counter.

        For straight-line code this equals the call counter; for loopy code
        it grows per iteration — which is exactly why edge heat promotes a
        hot kernel no later than call counting would.
        """
        if self.n_blocks == 0:
            return self.call_count()
        base = self.blocks_addr
        return max(self._u64(base + 8 * i) for i in range(self.n_blocks))

    def dropped(self) -> int:
        """Events overwritten because the ring wrapped."""
        return max(0, self.cursor() - self.ring_capacity)

    def events(self) -> list[ProbeEvent]:
        """Decode the retained tail of the event ring, in sequence order."""
        cur = self.cursor()
        first = max(0, cur - self.ring_capacity)
        out = []
        for seq in range(first, cur):
            slot = self.ring_addr + (seq & (self.ring_capacity - 1)) * EVENT_BYTES
            tag = self._u64(slot)
            payload = self._u64(slot + 8)
            kind = _KIND_NAMES.get(tag >> 56, f"kind{tag >> 56}")
            out.append(ProbeEvent(seq=seq, kind=kind,
                                  site=tag & ((1 << 56) - 1), payload=payload))
        return out

    def drain(self) -> list[ProbeEvent]:
        """Decode retained events, then reset the cursor (counters stay)."""
        out = self.events()
        self.image.memory.write(self.cursor_addr, b"\x00" * 8)
        return out

    def reset(self) -> None:
        """Zero every counter, watch slot and the ring."""
        self.image.memory.write(self.addr, b"\x00" * self.size)

    def snapshot(self) -> dict:
        return {
            "addr": self.addr,
            "size": self.size,
            "calls": self.call_count(),
            "cursor": self.cursor(),
            "dropped": self.dropped(),
            "blocks": self.block_counts(),
            "watch_values": self.watch_values(),
            "watch_hits": self.watch_hits(),
        }
