"""Instrumentation as a first-class workload (DESIGN §15).

IR-level probes — call/edge profiling counters, memory-access tracing,
value watchpoints — injected as passes over the lifted module and
re-JITted through the standard pipeline, guarded by the same boundaries
as any specialization: the probe-ops pregate, machine-level translation
validation, and the differential gate under an effects-whitelist.
:func:`strip_instrumentation` is the machine-checkable inverse; the
:class:`~repro.tier.EdgeProfile` governor source closes the
instrument -> optimize loop (Instrew-style).
"""

from repro.instrument.api import (
    InstrumentedFunction, Instrumenter, audit_probe_state,
)
from repro.instrument.buffer import (
    EV_LOAD, EV_STORE, ProbeBuffer, ProbeEvent,
)
from repro.instrument.passes import (
    PROBE_CALL, PROBE_EDGE, PROBE_MEM, PROBE_WATCH,
    InstrumentOptions, ProbePlan, inject_probes, is_instrumented,
    plan_probes, strip_instrumentation,
)

__all__ = [
    "EV_LOAD",
    "EV_STORE",
    "InstrumentOptions",
    "InstrumentedFunction",
    "Instrumenter",
    "PROBE_CALL",
    "PROBE_EDGE",
    "PROBE_MEM",
    "PROBE_WATCH",
    "ProbeBuffer",
    "ProbeEvent",
    "ProbePlan",
    "audit_probe_state",
    "inject_probes",
    "is_instrumented",
    "plan_probes",
    "strip_instrumentation",
]
