"""Effect-only IR probes: plan, inject, strip.

Probes are *ordinary IR* — load/add/store chains through
``inttoptr(const)`` pointers, the exact addressing shape the lifter
itself emits — so every downstream engine handles them natively: both
interpreters, the JIT back-end (which folds constant bases into
addressing), and the machine-level verifier.  No new opcodes, no
intrinsics, no engine special cases.

Every injected instruction carries a ``probe = (kind, site)`` tag.  The
tag is the whole contract:

* :func:`strip_instrumentation` removes exactly the tagged instructions,
  restoring the function to its pre-injection text (the hypothesis
  property ``strip(instrument(f)) == f`` is checked structurally);
* the probe-ops pregate (:func:`repro.analysis.probes.check_probe_ops`)
  proves every tagged store targets the probe buffer and that no program
  instruction consumes a tagged value — "effect-only", machine-checkable.

Probe taxonomy (DESIGN §15):

``call``   one counter bump in the entry block — call profiling.
``edge``   one counter bump per basic block (after phis) — block/edge
           heat for the :class:`~repro.tier.EdgeProfile` governor source.
``mem``    an event-ring append of the accessed address before every
           program load/store — memory-access tracing.
``watch``  last-value slot + hit counter before every ``ret`` — value
           watchpoints on the function result.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InstrumentError
from repro.instrument.buffer import EV_LOAD, EV_STORE, ProbeBuffer
from repro.ir import instructions as I
from repro.ir.irtypes import DOUBLE, I64, VOID, IntType, ptr
from repro.ir.module import Function
from repro.ir.values import Constant

PROBE_CALL = "call"
PROBE_EDGE = "edge"
PROBE_MEM = "mem"
PROBE_WATCH = "watch"

_P64 = ptr(I64)


@dataclass(frozen=True)
class InstrumentOptions:
    """Which probe families to inject, and the event-ring size."""

    #: per-block counters (the EdgeProfile feed)
    edge_counters: bool = True
    #: entry-block call counter
    call_counter: bool = True
    #: memory-access event tracing (one ring append per program load/store)
    trace_memory: bool = False
    #: return-value watchpoints (last value + hit count per ret site)
    watch_returns: bool = False
    #: event-ring capacity in entries; must be a power of two
    ring_capacity: int = 256

    def digest(self) -> str:
        """Stable component for cache/job keys — instrumented artifacts
        must never alias uninstrumented ones (or differently-probed ones)."""
        return (f"instr:e{int(self.edge_counters)}c{int(self.call_counter)}"
                f"m{int(self.trace_memory)}w{int(self.watch_returns)}"
                f"r{self.ring_capacity}")


@dataclass
class ProbePlan:
    """What :func:`inject_probes` will add to one function."""

    func_name: str
    options: InstrumentOptions
    #: block names in layout order; index = edge-counter slot
    block_names: tuple[str, ...] = ()
    #: names of blocks whose terminator is a ``ret`` (audit: their counters
    #: must sum to the call counter)
    ret_blocks: tuple[str, ...] = ()
    #: (site id, block name, opcode) per traced memory access
    mem_sites: tuple[tuple[int, str, str], ...] = ()
    #: (site id, block name) per watched return
    watch_sites: tuple[tuple[int, str], ...] = ()

    @property
    def n_watch(self) -> int:
        return len(self.watch_sites)


def is_instrumented(func: Function) -> bool:
    """True when any instruction carries a probe tag."""
    return any(ins.probe is not None for ins in func.instructions())


def plan_probes(func: Function, options: InstrumentOptions) -> ProbePlan:
    """Enumerate probe sites; raises :class:`InstrumentError` on re-entry.

    Double instrumentation is rejected outright: a second probe layer
    would observe the first one's effects, so neither the strip inverse
    nor the effect-only audit could hold.
    """
    if is_instrumented(func):
        raise InstrumentError(
            f"@{func.name} is already instrumented", function=func.name)
    block_names = tuple(b.name for b in func.blocks) \
        if (options.edge_counters or options.call_counter) else ()
    ret_blocks = tuple(b.name for b in func.blocks
                       if isinstance(b.terminator, I.Ret))
    mem_sites: list[tuple[int, str, str]] = []
    watch_sites: list[tuple[int, str]] = []
    for blk in func.blocks:
        for ins in blk.instructions:
            if options.trace_memory and isinstance(ins, (I.Load, I.Store)):
                mem_sites.append((len(mem_sites), blk.name, ins.opcode))
            elif options.watch_returns and isinstance(ins, I.Ret) \
                    and ins.operands and _watchable(ins.operands[0].type):
                watch_sites.append((len(watch_sites), blk.name))
    return ProbePlan(func_name=func.name, options=options,
                     block_names=block_names, ret_blocks=ret_blocks,
                     mem_sites=tuple(mem_sites),
                     watch_sites=tuple(watch_sites))


def _watchable(type_) -> bool:
    return type_ is DOUBLE or isinstance(type_, IntType)


class _Emitter:
    """Inserts tagged probe instructions at a moving index in one block."""

    def __init__(self, func: Function, block, index: int) -> None:
        self.func = func
        self.block = block
        self.index = index

    def ins(self, instr: I.Instruction, tag: tuple) -> I.Instruction:
        if instr.type is not VOID and not instr.name:
            instr.name = self.func.next_name("p")
        instr.probe = tag
        self.block.insert(self.index, instr)
        self.index += 1
        return instr

    def bump_u64(self, addr: int, tag: tuple) -> None:
        """``*(u64*)addr += 1`` as three tagged instructions."""
        p = self.ins(I.Cast("inttoptr", Constant(I64, addr), _P64), tag)
        v = self.ins(I.Load(p, align=8), tag)
        v1 = self.ins(I.BinOp("add", v, Constant(I64, 1)), tag)
        self.ins(I.Store(v1, p, align=8), tag)

    def store_u64(self, addr: int, value, tag: tuple) -> None:
        p = self.ins(I.Cast("inttoptr", Constant(I64, addr), _P64), tag)
        self.ins(I.Store(value, p, align=8), tag)


def inject_probes(func: Function, plan: ProbePlan,
                  buffer: ProbeBuffer) -> None:
    """Inject the planned probes, writing into ``buffer``.

    Runs *after* optimization (the instrumenter pipeline is
    lift -> O3 -> inject -> JIT): probes must count the code that actually
    executes, and no later pass may move, merge or delete them.
    """
    if is_instrumented(func):
        raise InstrumentError(
            f"@{func.name} is already instrumented", function=func.name)
    if tuple(b.name for b in func.blocks) != plan.block_names \
            and plan.block_names:
        raise InstrumentError(
            f"probe plan for @{plan.func_name} does not match @{func.name}",
            function=func.name)
    opts = plan.options
    block_index = {name: i for i, name in enumerate(plan.block_names)}
    mem_iter = iter(plan.mem_sites)
    watch_iter = iter(plan.watch_sites)
    for bi, blk in enumerate(func.blocks):
        em = _Emitter(func, blk, blk.first_non_phi())
        if bi == 0 and opts.call_counter:
            em.bump_u64(buffer.calls_addr, (PROBE_CALL, 0))
        if opts.edge_counters:
            slot = buffer.block_counter_addr(block_index[blk.name])
            em.bump_u64(slot, (PROBE_EDGE, block_index[blk.name]))
        # walk the *program* instructions after the prologue probes;
        # insertions shift indices, so scan by position
        i = em.index
        while i < len(blk.instructions):
            ins = blk.instructions[i]
            if ins.probe is not None:
                i += 1
                continue
            if opts.trace_memory and isinstance(ins, (I.Load, I.Store)):
                site = next(mem_iter)
                em.index = i
                _emit_mem_event(em, buffer, site, ins)
                i = em.index + 1  # skip over the access itself
                continue
            if opts.watch_returns and isinstance(ins, I.Ret) \
                    and ins.operands and _watchable(ins.operands[0].type):
                site = next(watch_iter)
                em.index = i
                _emit_watch(em, buffer, site, ins.operands[0])
                i = em.index + 1
                continue
            i += 1
    func.bump_version()


def _emit_mem_event(em: _Emitter, buffer: ProbeBuffer,
                    site: tuple[int, str, str], access) -> None:
    """Append ``(kind|site, address)`` to the event ring before ``access``."""
    site_id, _blk, opcode = site
    tag = (PROBE_MEM, site_id)
    kind = EV_LOAD if opcode == "load" else EV_STORE
    curp = em.ins(I.Cast("inttoptr", Constant(I64, buffer.cursor_addr), _P64),
                  tag)
    cur = em.ins(I.Load(curp, align=8), tag)
    idx = em.ins(I.BinOp("and", cur, Constant(I64, buffer.ring_capacity - 1)),
                 tag)
    off = em.ins(I.BinOp("mul", idx, Constant(I64, 16)), tag)
    slot = em.ins(I.BinOp("add", Constant(I64, buffer.ring_addr), off), tag)
    tagp = em.ins(I.Cast("inttoptr", slot, _P64), tag)
    em.ins(I.Store(Constant(I64, (kind << 56) | site_id), tagp, align=8), tag)
    pay = em.ins(I.BinOp("add", slot, Constant(I64, 8)), tag)
    payp = em.ins(I.Cast("inttoptr", pay, _P64), tag)
    addr = em.ins(I.Cast("ptrtoint", access.operands[-1], I64), tag)
    em.ins(I.Store(addr, payp, align=8), tag)
    cur1 = em.ins(I.BinOp("add", cur, Constant(I64, 1)), tag)
    em.ins(I.Store(cur1, curp, align=8), tag)


def _emit_watch(em: _Emitter, buffer: ProbeBuffer,
                site: tuple[int, str], value) -> None:
    site_id, _blk = site
    tag = (PROBE_WATCH, site_id)
    if value.type is DOUBLE:
        bits = em.ins(I.Cast("bitcast", value, I64), tag)
    elif isinstance(value.type, IntType) and value.type.bits < 64:
        bits = em.ins(I.Cast("zext", value, I64), tag)
    else:
        bits = value
    em.store_u64(buffer.watch_slot_addr(site_id), bits, tag)
    em.bump_u64(buffer.watch_hit_addr(site_id), tag)


def strip_instrumentation(func: Function) -> int:
    """Remove every probe-tagged instruction; returns how many.

    The exact inverse of :func:`inject_probes`: probes are pure insertions
    whose values feed only other probes, so removal restores the original
    body text.  If any *program* instruction consumes a probe value the
    function was corrupted (a pass moved a probe into program dataflow) —
    that is an :class:`InstrumentError`, not a silent miscompile.
    """
    removed = 0
    for blk in func.blocks:
        kept = [ins for ins in blk.instructions if ins.probe is None]
        removed += len(blk.instructions) - len(kept)
        blk.instructions[:] = kept
    for ins in func.instructions():
        for op in ins.operands:
            if isinstance(op, I.Instruction) and op.probe is not None:
                raise InstrumentError(
                    f"@{func.name}: program instruction {ins.name or ins.opcode!r} "
                    "depends on a probe value — effect-only contract broken",
                    function=func.name)
    if removed:
        func.bump_version()
    return removed
