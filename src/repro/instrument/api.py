"""The instrumenter: lift -> O3 -> inject -> JIT -> prove -> gate -> install.

Instrumentation is a *workload*, not a debug mode: an instrumented
function flows through the same pipeline and the same trust boundaries
as any specialization —

1. lift the machine code to IR and optimize it (probes are injected
   *after* O3 so they count the code that actually runs, and no pass can
   move, merge or delete them);
2. plan + allocate a :class:`~repro.instrument.buffer.ProbeBuffer` in the
   image's probe region and inject the tagged probe instructions;
3. statically prove the probes effect-only
   (:func:`repro.analysis.probes.check_probe_ops`);
4. JIT the instrumented module; with ``machine_verify`` the emitted bytes
   are proven equivalent to the instrumented IR (probe stores included);
5. differentially gate instrumented vs original execution under the
   effects-whitelist: identical return values, identical program memory,
   only the probe buffer may differ.

Only then is the install handed back.  A rejected step raises exactly
like a rejected specialization would.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

from repro.analysis.probes import check_probe_ops
from repro.cpu.image import Image
from repro.errors import VerificationError
from repro.guard.verify import DifferentialGate, GateOptions, GateReport
from repro.instrument.buffer import ProbeBuffer
from repro.instrument.passes import (
    InstrumentOptions, ProbePlan, inject_probes, plan_probes,
)
from repro.ir import verify
from repro.ir.codegen import JITEngine, JITOptions
from repro.ir.module import Function, Module
from repro.ir.passes import O3Options, run_o3
from repro.jit.engine import verify_emitted
from repro.lift import FunctionSignature, LiftOptions, lift_function
from repro.obs import metrics as _metrics
from repro.obs.trace import TRACER as _TR


@dataclass
class InstrumentedFunction:
    """One installed instrumented function plus its probe state."""

    name: str
    addr: int
    #: original entry the instrumented copy was lifted from
    source: int
    signature: FunctionSignature
    options: InstrumentOptions
    function: Function
    module: Module
    plan: ProbePlan
    buffer: ProbeBuffer
    gate_report: GateReport | None = None
    machine_verdict: str | None = None
    #: per-stage wall time: lift/opt/inject/pregate/codegen/verify/gate
    seconds: dict = field(default_factory=dict)

    def profile(self):
        """An :class:`~repro.tier.EdgeProfile` reading this buffer."""
        from repro.tier.policy import EdgeProfile
        return EdgeProfile(self.buffer)


class Instrumenter:
    """Builds gate-verified instrumented copies of image functions."""

    def __init__(self, image: Image, *,
                 lift_options: LiftOptions | None = None,
                 o3_options: O3Options | None = None,
                 jit_options: JITOptions | None = None,
                 gate_options: GateOptions | None = None,
                 machine_verify: bool = True,
                 run_gate: bool = True) -> None:
        self.image = image
        self.lift_options = lift_options or LiftOptions()
        self.o3_options = o3_options or O3Options.lightweight()
        self.jit_options = jit_options or JITOptions()
        self.gate_options = gate_options or GateOptions()
        self.machine_verify = machine_verify
        self.run_gate = run_gate

    def instrument(self, func: str | int, signature: FunctionSignature,
                   *, options: InstrumentOptions | None = None,
                   probes: tuple = (), name: str | None = None,
                   ) -> InstrumentedFunction:
        """Install an instrumented copy of ``func``; returns its handle.

        ``probes`` are differential-gate argument vectors (one value per
        signature parameter), exactly as for specialization gates.
        """
        options = options or InstrumentOptions()
        entry = self.image.symbol(func) if isinstance(func, str) else func
        out_name = name or (f"{func}.instr" if isinstance(func, str)
                            else f"fn_{entry:#x}.instr")
        if not _TR.enabled:
            return self._instrument(entry, signature, options, probes,
                                    out_name)
        with _TR.span("instrument.apply", {"name": out_name,
                                           "options": options.digest()}):
            return self._instrument(entry, signature, options, probes,
                                    out_name)

    def _instrument(self, entry: int, signature: FunctionSignature,
                    options: InstrumentOptions, probes: tuple,
                    out_name: str) -> InstrumentedFunction:
        seconds: dict = {}
        t0 = time.perf_counter()
        module = Module(f"instr_{out_name}")
        opts = replace(self.lift_options, name=out_name)
        main = lift_function(self.image.memory, entry, signature, opts,
                             module)
        seconds["lift"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        run_o3(main, self.o3_options)
        seconds["opt"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        plan = plan_probes(main, options)
        buffer = ProbeBuffer.allocate(self.image, plan)
        inject_probes(main, plan, buffer)
        verify(main)
        seconds["inject"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        findings = check_probe_ops(main, buffer.extent())
        seconds["pregate"] = time.perf_counter() - t0
        if findings:
            _metrics.counter("instrument.pregate.rejected").inc()
            raise VerificationError(
                "probe-ops pregate rejected instrumented "
                f"{out_name!r}: " + "; ".join(f.format() for f in findings),
                stage="instrument-pregate", findings=tuple(findings))

        t0 = time.perf_counter()
        jit = JITEngine(self.image, self.jit_options)
        addr = jit.compile_function(main, name=out_name)
        seconds["codegen"] = time.perf_counter() - t0

        verdict = None
        if self.machine_verify:
            t0 = time.perf_counter()
            report = verify_emitted(jit, out_name)
            seconds["machine_verify"] = time.perf_counter() - t0
            verdict = report.verdict
            if verdict == "refuted":
                _metrics.counter("instrument.machine.refuted").inc()
                detail = "; ".join(
                    f.format() for f in report.findings if f.is_error) \
                    or "machine-level proof refuted"
                raise VerificationError(
                    f"machine verification refuted instrumented "
                    f"{out_name!r}: {detail}",
                    stage="machine-verify", name=out_name,
                    findings=tuple(report.findings))

        gate_report = None
        if self.run_gate:
            t0 = time.perf_counter()
            gate_opts = replace(
                self.gate_options,
                ignore_regions=self.gate_options.ignore_regions
                + (buffer.extent(),))
            gate = DifferentialGate(self.image, gate_opts)
            if _TR.enabled:
                with _TR.span("instrument.gate", {"name": out_name}):
                    gate_report = gate.gate(entry, addr, signature,
                                            None, probes)
            else:
                gate_report = gate.gate(entry, addr, signature, None, probes)
            seconds["gate"] = time.perf_counter() - t0

        _metrics.counter("instrument.installs").inc()
        fam = _metrics.REGISTRY.family("instrument.probes")
        if options.call_counter:
            fam.inc("call", 1)
        if options.edge_counters:
            fam.inc("edge", len(plan.block_names))
        fam.inc("mem", len(plan.mem_sites))
        fam.inc("watch", len(plan.watch_sites))
        return InstrumentedFunction(
            name=out_name, addr=addr, source=entry, signature=signature,
            options=options, function=main, module=module, plan=plan,
            buffer=buffer, gate_report=gate_report,
            machine_verdict=verdict, seconds=seconds)


def audit_probe_state(result: InstrumentedFunction, *,
                      expected_calls: int | None = None) -> list[str]:
    """Internal-consistency violations of a buffer's recorded state.

    The differential corpus runs this after driving the instrumented
    engine: edge counts must tie out against call counts (entry block
    executes once per call; return blocks sum to the call count), watch
    hits must tie out against returns, and every memory-trace address
    must fall inside a mapped region of the image.
    """
    buf, plan = result.buffer, result.plan
    violations: list[str] = []
    calls = buf.call_count()
    if expected_calls is not None and plan.options.call_counter \
            and calls != expected_calls:
        violations.append(
            f"call counter {calls} != expected {expected_calls}")
    if plan.options.edge_counters and plan.block_names:
        counts = buf.block_counts()
        if plan.options.call_counter:
            entry = plan.block_names[0]
            if counts[entry] != calls:
                violations.append(
                    f"entry block {entry!r} count {counts[entry]} != "
                    f"call count {calls}")
            rets = sum(counts[b] for b in plan.ret_blocks)
            if plan.ret_blocks and rets != calls:
                violations.append(
                    f"return-block counts sum {rets} != call count {calls}")
    if plan.options.watch_returns and plan.options.call_counter \
            and plan.watch_sites \
            and len(plan.watch_sites) == len(plan.ret_blocks):
        hits = sum(buf.watch_hits())
        if hits != calls:
            violations.append(
                f"watch hits {hits} != call count {calls}")
    if plan.options.trace_memory:
        regions = result.buffer.image.memory.regions()
        for ev in buf.events():
            if not any(s <= ev.payload < s + n for s, n in regions):
                violations.append(
                    f"memory-trace event #{ev.seq} ({ev.kind} site "
                    f"{ev.site}) address {ev.payload:#x} outside every "
                    "mapped region")
                break
    return violations
