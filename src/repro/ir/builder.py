"""IRBuilder: positional instruction construction with auto-naming."""

from __future__ import annotations

from typing import Sequence

from repro.ir import instructions as I
from repro.ir.irtypes import IntType, PointerType, Type
from repro.ir.module import BasicBlock, Function
from repro.ir.values import Constant, ConstantFP, Value


class IRBuilder:
    """Appends instructions to a basic block (LLVM's IRBuilder shape)."""

    def __init__(self, block: BasicBlock | None = None) -> None:
        self.block = block

    def position_at_end(self, block: BasicBlock) -> None:
        self.block = block

    @property
    def function(self) -> Function:
        assert self.block is not None and self.block.function is not None
        return self.block.function

    def _ins(self, ins: I.Instruction, name: str) -> I.Instruction:
        assert self.block is not None, "builder is not positioned"
        if not ins.type.is_void:
            ins.name = name or self.function.next_name()
        return self.block.append(ins)

    # -- constants ------------------------------------------------------------

    def const(self, type_: Type, value: int) -> Constant:
        return Constant(type_, value)

    def fconst(self, type_: Type, value: float) -> ConstantFP:
        return ConstantFP(type_, value)

    # -- arithmetic -----------------------------------------------------------

    def binop(self, opcode: str, a: Value, b: Value, name: str = "") -> Value:
        return self._ins(I.BinOp(opcode, a, b), name)

    def add(self, a: Value, b: Value, name: str = "") -> Value:
        return self.binop("add", a, b, name)

    def sub(self, a: Value, b: Value, name: str = "") -> Value:
        return self.binop("sub", a, b, name)

    def mul(self, a: Value, b: Value, name: str = "") -> Value:
        return self.binop("mul", a, b, name)

    def and_(self, a: Value, b: Value, name: str = "") -> Value:
        return self.binop("and", a, b, name)

    def or_(self, a: Value, b: Value, name: str = "") -> Value:
        return self.binop("or", a, b, name)

    def xor(self, a: Value, b: Value, name: str = "") -> Value:
        return self.binop("xor", a, b, name)

    def shl(self, a: Value, b: Value, name: str = "") -> Value:
        return self.binop("shl", a, b, name)

    def lshr(self, a: Value, b: Value, name: str = "") -> Value:
        return self.binop("lshr", a, b, name)

    def ashr(self, a: Value, b: Value, name: str = "") -> Value:
        return self.binop("ashr", a, b, name)

    def fadd(self, a: Value, b: Value, name: str = "") -> Value:
        return self.binop("fadd", a, b, name)

    def fsub(self, a: Value, b: Value, name: str = "") -> Value:
        return self.binop("fsub", a, b, name)

    def fmul(self, a: Value, b: Value, name: str = "") -> Value:
        return self.binop("fmul", a, b, name)

    def fdiv(self, a: Value, b: Value, name: str = "") -> Value:
        return self.binop("fdiv", a, b, name)

    def icmp(self, pred: str, a: Value, b: Value, name: str = "") -> Value:
        return self._ins(I.ICmp(pred, a, b), name)

    def fcmp(self, pred: str, a: Value, b: Value, name: str = "") -> Value:
        return self._ins(I.FCmp(pred, a, b), name)

    def select(self, cond: Value, a: Value, b: Value, name: str = "") -> Value:
        return self._ins(I.Select(cond, a, b), name)

    # -- casts -----------------------------------------------------------------

    def cast(self, opcode: str, v: Value, to: Type, name: str = "") -> Value:
        if v.type is to and opcode in ("bitcast", "trunc", "zext", "sext"):
            return v
        return self._ins(I.Cast(opcode, v, to), name)

    def trunc(self, v: Value, to: Type, name: str = "") -> Value:
        return self.cast("trunc", v, to, name)

    def zext(self, v: Value, to: Type, name: str = "") -> Value:
        return self.cast("zext", v, to, name)

    def sext(self, v: Value, to: Type, name: str = "") -> Value:
        return self.cast("sext", v, to, name)

    def bitcast(self, v: Value, to: Type, name: str = "") -> Value:
        return self.cast("bitcast", v, to, name)

    def inttoptr(self, v: Value, to: Type, name: str = "") -> Value:
        return self.cast("inttoptr", v, to, name)

    def ptrtoint(self, v: Value, to: Type, name: str = "") -> Value:
        return self.cast("ptrtoint", v, to, name)

    def sitofp(self, v: Value, to: Type, name: str = "") -> Value:
        return self.cast("sitofp", v, to, name)

    def fptosi(self, v: Value, to: Type, name: str = "") -> Value:
        return self.cast("fptosi", v, to, name)

    # -- memory ---------------------------------------------------------------

    def load(self, pointer: Value, name: str = "", align: int = 1) -> Value:
        return self._ins(I.Load(pointer, align=align), name)

    def store(self, value: Value, pointer: Value, align: int = 1) -> Value:
        return self._ins(I.Store(value, pointer, align=align), "")

    def alloca(self, pointee: Type, size: int | None = None, align: int = 16,
               name: str = "") -> Value:
        size = size if size is not None else pointee.size_bytes()
        return self._ins(I.Alloca(pointee, size, align), name)

    def gep(self, pointer: Value, index: Value, name: str = "",
            elem: Type | None = None) -> Value:
        return self._ins(I.GEP(pointer, index, elem=elem), name)

    def gep_i(self, pointer: Value, index: int, name: str = "",
              elem: Type | None = None) -> Value:
        from repro.ir.irtypes import I64
        return self.gep(pointer, Constant(I64, index), name, elem)

    # -- vectors ----------------------------------------------------------------

    def extractelement(self, vec: Value, index: int, name: str = "") -> Value:
        from repro.ir.irtypes import I32
        return self._ins(I.ExtractElement(vec, Constant(I32, index)), name)

    def insertelement(self, vec: Value, value: Value, index: int,
                      name: str = "") -> Value:
        from repro.ir.irtypes import I32
        return self._ins(I.InsertElement(vec, value, Constant(I32, index)), name)

    def shufflevector(self, a: Value, b: Value, mask: Sequence[int],
                      name: str = "") -> Value:
        return self._ins(I.ShuffleVector(a, b, tuple(mask)), name)

    # -- control / calls -----------------------------------------------------------

    def phi(self, type_: Type, name: str = "") -> I.Phi:
        assert self.block is not None
        p = I.Phi(type_, name or self.function.next_name("phi"))
        self.block.insert(self.block.first_non_phi(), p)
        return p

    def call(self, callee: "Function | str", args: Sequence[Value],
             ret_type: Type, name: str = "") -> Value:
        c = I.Call(callee, args, ret_type)
        if ret_type.is_void:
            assert self.block is not None
            return self.block.append(c)
        return self._ins(c, name)

    def br(self, target: BasicBlock) -> Value:
        assert self.block is not None
        return self.block.append(I.Br(None, target))

    def cond_br(self, cond: Value, then: BasicBlock, otherwise: BasicBlock) -> Value:
        assert self.block is not None
        return self.block.append(I.Br(cond, then, otherwise))

    def ret(self, value: Value | None = None) -> Value:
        assert self.block is not None
        return self.block.append(I.Ret(value))

    def unreachable(self) -> Value:
        assert self.block is not None
        return self.block.append(I.Unreachable())
