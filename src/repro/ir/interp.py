"""MiniLLVM IR interpreter.

Executes IR functions against the same simulated :class:`~repro.mem.memory.
Memory` the x86 simulator uses, which enables the project's strongest
correctness check: *lifted IR interpreted over the image must compute the
same result as the original machine code simulated over the image*.

Value representation: iN -> unsigned-masked int, double/float -> Python
float, pointer -> int address, vector -> tuple of elements, undef -> zeros.
"""

from __future__ import annotations

import struct

from repro.errors import IRInterpError
from repro.ir import instructions as I
from repro.ir.irtypes import (
    DoubleType, FloatType, IntType, PointerType, Type, VectorType,
)
from repro.ir.module import BasicBlock, Function, GlobalVariable, Module
from repro.ir.values import Argument, Constant, ConstantFP, ConstantVector, Undef, Value
from repro.mem.memory import Memory


def _to_signed(v: int, bits: int) -> int:
    sign = 1 << (bits - 1)
    return (v & (sign - 1)) - (v & sign)


def _trunc_div(n: int, d: int) -> int:
    """Exact C-style truncating division (``int(n / d)`` rounds through a
    float and is wrong for 64-bit magnitudes)."""
    q = abs(n) // abs(d)
    return -q if (n < 0) != (d < 0) else q


def _zero_of(t: Type) -> object:
    if isinstance(t, IntType):
        return 0
    if isinstance(t, (DoubleType, FloatType)):
        return 0.0
    if isinstance(t, PointerType):
        return 0
    if isinstance(t, VectorType):
        return tuple(_zero_of(t.elem) for _ in range(t.count))
    raise IRInterpError(f"no zero for {t}")


def _f32(v: float) -> float:
    return struct.unpack("<f", struct.pack("<f", v))[0]


class Interpreter:
    """Interprets functions of one module over a Memory."""

    def __init__(self, module: Module, memory: Memory | None = None,
                 stack_base: int = 0x7000_0000, stack_size: int = 1 << 20,
                 extern_functions: dict[str, object] | None = None) -> None:
        self.module = module
        self.memory = memory if memory is not None else Memory()
        if not self.memory.is_mapped(stack_base - stack_size, 1):
            self.memory.map(stack_base - stack_size, stack_size)
        self._stack_top = stack_base
        self._globals_placed = False
        self._global_cursor = 0x6800_0000
        self.extern_functions = extern_functions or {}
        self.steps = 0
        self.max_steps = 10_000_000

    # -- globals ---------------------------------------------------------------

    def _place_globals(self) -> None:
        if self._globals_placed:
            return
        self._globals_placed = True
        total = sum(len(g.initializer) + 32 for g in self.module.globals.values())
        if total:
            self.memory.map(self._global_cursor, total + 4096)
        for g in self.module.globals.values():
            if g.addr is not None:
                continue  # already placed (e.g. by the JIT in an image)
            addr = (self._global_cursor + 15) & ~15
            self.memory.write(addr, g.initializer)
            g.addr = addr
            self._global_cursor = addr + len(g.initializer)

    # -- entry ---------------------------------------------------------------

    def run(self, func: Function | str, args: list[object]) -> object:
        """Interpret ``func`` with Python-level argument values."""
        if isinstance(func, str):
            func = self.module.function(func)
        self._place_globals()
        return self._run_function(func, args, self._stack_top)

    def _run_function(self, func: Function, args: list[object], sp: int) -> object:
        if len(args) != len(func.args):
            raise IRInterpError(
                f"@{func.name} expects {len(func.args)} args, got {len(args)}"
            )
        env: dict[int, object] = {}
        for formal, actual in zip(func.args, args):
            env[id(formal)] = self._coerce(actual, formal.type)

        block = func.entry
        prev: BasicBlock | None = None
        alloca_sp = sp
        while True:
            # phis evaluate atomically against the edge just taken
            phis = block.phis()
            if phis:
                assert prev is not None
                new_vals = []
                for phi in phis:
                    v = phi.incoming_for(prev)
                    if v is None:
                        raise IRInterpError(
                            f"@{func.name}: phi %{phi.name} missing incoming "
                            f"for {prev.name}"
                        )
                    new_vals.append(self._value(v, env))
                for phi, v in zip(phis, new_vals):
                    env[id(phi)] = v

            for ins in block.instructions[len(phis):]:
                self.steps += 1
                if self.steps > self.max_steps:
                    raise IRInterpError("interpreter step limit exceeded")
                opcode = ins.opcode
                if opcode == "ret":
                    rv = ins.value  # type: ignore[attr-defined]
                    return self._value(rv, env) if rv is not None else None
                if opcode == "br":
                    assert isinstance(ins, I.Br)
                    if ins.is_conditional:
                        cond = self._value(ins.operands[0], env)
                        target = ins.targets[0] if cond else ins.targets[1]
                    else:
                        target = ins.targets[0]
                    prev, block = block, target
                    break
                if opcode == "unreachable":
                    raise IRInterpError(f"@{func.name}: reached unreachable")
                if opcode == "alloca":
                    assert isinstance(ins, I.Alloca)
                    alloca_sp -= ins.size
                    alloca_sp &= ~(ins.align - 1)
                    env[id(ins)] = alloca_sp
                    continue
                env[id(ins)] = self._exec(func, ins, env, alloca_sp)
            else:
                raise IRInterpError(f"@{func.name}: block {block.name} fell through")

    # -- values -------------------------------------------------------------------

    def _value(self, v: Value, env: dict[int, object]) -> object:
        if isinstance(v, Constant):
            return v.value
        if isinstance(v, ConstantFP):
            return v.value
        if isinstance(v, ConstantVector):
            return tuple(self._value(e, env) for e in v.elements)
        if isinstance(v, Undef):
            return _zero_of(v.type)
        if isinstance(v, GlobalVariable):
            if v.addr is None:
                raise IRInterpError(f"global @{v.name} not placed")
            return v.addr
        if isinstance(v, Function):
            raise IRInterpError("function pointers are not interpretable")
        try:
            return env[id(v)]
        except KeyError:
            raise IRInterpError(f"use of unevaluated value %{v.name}") from None

    def _coerce(self, value: object, t: Type) -> object:
        if isinstance(t, IntType):
            assert isinstance(value, int)
            return value & t.mask
        if isinstance(t, PointerType):
            assert isinstance(value, int)
            return value & (2**64 - 1)
        if isinstance(t, (DoubleType, FloatType)):
            assert isinstance(value, (int, float))
            return float(value)
        if isinstance(t, VectorType):
            assert isinstance(value, (tuple, list)) and len(value) == t.count
            return tuple(self._coerce(x, t.elem) for x in value)
        raise IRInterpError(f"cannot coerce to {t}")

    # -- memory ------------------------------------------------------------------

    def _load(self, t: Type, addr: int) -> object:
        if isinstance(t, IntType):
            if t.bits == 1:
                return self.memory.read_u8(addr) & 1
            return self.memory.read_uint(addr, t.size_bytes())
        if isinstance(t, DoubleType):
            return self.memory.read_f64(addr)
        if isinstance(t, FloatType):
            return self.memory.read_f32(addr)
        if isinstance(t, PointerType):
            return self.memory.read_u64(addr)
        if isinstance(t, VectorType):
            es = t.elem.size_bytes()
            return tuple(self._load(t.elem, addr + i * es) for i in range(t.count))
        raise IRInterpError(f"cannot load {t}")

    def _store(self, t: Type, addr: int, value: object) -> None:
        if isinstance(t, IntType):
            self.memory.write_uint(addr, int(value), t.size_bytes())  # type: ignore[arg-type]
        elif isinstance(t, DoubleType):
            self.memory.write_f64(addr, float(value))  # type: ignore[arg-type]
        elif isinstance(t, FloatType):
            self.memory.write_f32(addr, float(value))  # type: ignore[arg-type]
        elif isinstance(t, PointerType):
            self.memory.write_u64(addr, int(value))  # type: ignore[arg-type]
        elif isinstance(t, VectorType):
            es = t.elem.size_bytes()
            for i, x in enumerate(value):  # type: ignore[arg-type]
                self._store(t.elem, addr + i * es, x)
        else:
            raise IRInterpError(f"cannot store {t}")

    # -- execution ----------------------------------------------------------------

    def _exec(self, func: Function, ins: I.Instruction, env: dict[int, object],
              sp: int) -> object:
        opcode = ins.opcode
        if isinstance(ins, I.BinOp):
            a = self._value(ins.operands[0], env)
            b = self._value(ins.operands[1], env)
            if isinstance(ins.type, VectorType):
                return tuple(
                    self._scalar_binop(opcode, x, y, ins.type.elem)
                    for x, y in zip(a, b)  # type: ignore[arg-type]
                )
            return self._scalar_binop(opcode, a, b, ins.type)
        if isinstance(ins, I.ICmp):
            a = self._value(ins.operands[0], env)
            b = self._value(ins.operands[1], env)
            t = ins.operands[0].type
            bits = t.bits if isinstance(t, IntType) else 64
            return int(_icmp(ins.pred, a, b, bits))  # type: ignore[arg-type]
        if isinstance(ins, I.FCmp):
            a = self._value(ins.operands[0], env)
            b = self._value(ins.operands[1], env)
            return int(_fcmp(ins.pred, a, b))  # type: ignore[arg-type]
        if isinstance(ins, I.Select):
            c, a, b = (self._value(o, env) for o in ins.operands)
            return a if c else b
        if isinstance(ins, I.Cast):
            return self._cast(ins, env)
        if isinstance(ins, I.Load):
            addr = self._value(ins.operands[0], env)
            return self._load(ins.type, int(addr))  # type: ignore[arg-type]
        if isinstance(ins, I.Store):
            v = self._value(ins.operands[0], env)
            addr = self._value(ins.operands[1], env)
            self._store(ins.operands[0].type, int(addr), v)  # type: ignore[arg-type]
            return None
        if isinstance(ins, I.GEP):
            base = self._value(ins.operands[0], env)
            idx = self._value(ins.operands[1], env)
            it = ins.operands[1].type
            bits = it.bits if isinstance(it, IntType) else 64
            return (int(base) + _to_signed(int(idx), bits) * ins.elem.size_bytes()) & (2**64 - 1)  # type: ignore[arg-type]
        if isinstance(ins, I.ExtractElement):
            vec = self._value(ins.operands[0], env)
            idx = int(self._value(ins.operands[1], env))  # type: ignore[arg-type]
            return vec[idx]  # type: ignore[index]
        if isinstance(ins, I.InsertElement):
            vec = list(self._value(ins.operands[0], env))  # type: ignore[arg-type]
            val = self._value(ins.operands[1], env)
            idx = int(self._value(ins.operands[2], env))  # type: ignore[arg-type]
            vec[idx] = val
            return tuple(vec)
        if isinstance(ins, I.ShuffleVector):
            a = self._value(ins.operands[0], env)
            b = self._value(ins.operands[1], env)
            joined = tuple(a) + tuple(b)  # type: ignore[arg-type]
            return tuple(joined[m] for m in ins.mask)
        if isinstance(ins, I.Call):
            args = [self._value(a, env) for a in ins.operands]
            if ins.intrinsic:
                return self._intrinsic(ins.callee_name, args, ins)
            callee = ins.callee
            if isinstance(callee, str):
                callee = self.module.function(callee)
            assert isinstance(callee, Function)
            if callee.is_declaration:
                ext = self.extern_functions.get(callee.name)
                if ext is None:
                    raise IRInterpError(f"call to undefined @{callee.name}")
                return ext(*args)  # type: ignore[operator]
            return self._run_function(callee, args, sp - 64)
        raise IRInterpError(f"cannot interpret {opcode}")

    def _scalar_binop(self, opcode: str, a: object, b: object, t: Type) -> object:
        if opcode in I.FP_BINOPS:
            x, y = float(a), float(b)  # type: ignore[arg-type]
            if opcode == "fadd":
                r = x + y
            elif opcode == "fsub":
                r = x - y
            elif opcode == "fmul":
                r = x * y
            else:
                if y == 0.0:
                    if x == 0.0 or x != x:
                        r = float("nan")
                    else:
                        r = float("inf") if (x > 0) == (not _signbit(y)) else float("-inf")
                else:
                    r = x / y
            return _f32(r) if isinstance(t, FloatType) else r
        assert isinstance(t, IntType)
        ai, bi = int(a) & t.mask, int(b) & t.mask  # type: ignore[arg-type]
        bits = t.bits
        if opcode == "add":
            return (ai + bi) & t.mask
        if opcode == "sub":
            return (ai - bi) & t.mask
        if opcode == "mul":
            return (ai * bi) & t.mask
        if opcode == "and":
            return ai & bi
        if opcode == "or":
            return ai | bi
        if opcode == "xor":
            return ai ^ bi
        if opcode == "shl":
            return (ai << (bi % bits)) & t.mask
        if opcode == "lshr":
            return ai >> (bi % bits)
        if opcode == "ashr":
            return (_to_signed(ai, bits) >> (bi % bits)) & t.mask
        if opcode == "sdiv":
            d = _to_signed(bi, bits)
            if d == 0:
                raise IRInterpError("sdiv by zero")
            return _trunc_div(_to_signed(ai, bits), d) & t.mask
        if opcode == "srem":
            d = _to_signed(bi, bits)
            if d == 0:
                raise IRInterpError("srem by zero")
            n = _to_signed(ai, bits)
            return (n - _trunc_div(n, d) * d) & t.mask
        if opcode == "udiv":
            if bi == 0:
                raise IRInterpError("udiv by zero")
            return ai // bi
        if opcode == "urem":
            if bi == 0:
                raise IRInterpError("urem by zero")
            return ai % bi
        raise IRInterpError(f"binop {opcode}")

    def _cast(self, ins: I.Cast, env: dict[int, object]) -> object:
        (operand,) = ins.operands
        v = self._value(operand, env)
        src, dst = operand.type, ins.type
        op = ins.opcode
        if op == "trunc":
            return int(v) & dst.mask  # type: ignore[union-attr, arg-type]
        if op == "zext":
            return int(v)  # type: ignore[arg-type]
        if op == "sext":
            return _to_signed(int(v), src.bits) & dst.mask  # type: ignore[union-attr, arg-type]
        if op in ("inttoptr", "ptrtoint"):
            return int(v) & (2**64 - 1)  # type: ignore[arg-type]
        if op == "bitcast":
            return _bitcast(v, src, dst)
        if op == "sitofp":
            return float(_to_signed(int(v), src.bits))  # type: ignore[union-attr, arg-type]
        if op == "uitofp":
            return float(int(v))  # type: ignore[arg-type]
        if op == "fptosi":
            r = int(float(v))  # type: ignore[arg-type]
            return r & dst.mask  # type: ignore[union-attr]
        if op == "fpext":
            return float(v)  # type: ignore[arg-type]
        if op == "fptrunc":
            return _f32(float(v))  # type: ignore[arg-type]
        raise IRInterpError(f"cast {op}")

    def _intrinsic(self, name: str, args: list[object], ins: I.Call) -> object:
        if name.startswith("llvm.ctpop"):
            return bin(int(args[0])).count("1")  # type: ignore[arg-type]
        if name.startswith("llvm.sqrt"):
            x = float(args[0])  # type: ignore[arg-type]
            return x ** 0.5 if x >= 0 else float("nan")
        if name.startswith("llvm.fabs"):
            return abs(float(args[0]))  # type: ignore[arg-type]
        raise IRInterpError(f"unknown intrinsic {name}")


def _signbit(v: float) -> bool:
    return struct.pack("<d", v)[7] & 0x80 != 0


def _icmp(pred: str, a: int, b: int, bits: int) -> bool:
    if pred == "eq":
        return a == b
    if pred == "ne":
        return a != b
    if pred in ("ult", "ule", "ugt", "uge"):
        return {"ult": a < b, "ule": a <= b, "ugt": a > b, "uge": a >= b}[pred]
    sa, sb = _to_signed(a, bits), _to_signed(b, bits)
    return {"slt": sa < sb, "sle": sa <= sb, "sgt": sa > sb, "sge": sa >= sb}[pred]


def _fcmp(pred: str, a: float, b: float) -> bool:
    unordered = (a != a) or (b != b)
    if pred == "ord":
        return not unordered
    if pred == "uno":
        return unordered
    if pred.startswith("o"):
        if unordered:
            return False
        core = pred[1:]
    else:
        if unordered:
            return True
        core = pred[1:]
    return {"eq": a == b, "ne": a != b, "lt": a < b,
            "le": a <= b, "gt": a > b, "ge": a >= b}[core]


def _bitcast(v: object, src: Type, dst: Type) -> object:
    raw = _to_bytes(v, src)
    return _from_bytes(raw, dst)


def _to_bytes(v: object, t: Type) -> bytes:
    if isinstance(t, IntType):
        return int(v).to_bytes(t.size_bytes(), "little")  # type: ignore[arg-type]
    if isinstance(t, DoubleType):
        return struct.pack("<d", float(v))  # type: ignore[arg-type]
    if isinstance(t, FloatType):
        return struct.pack("<f", float(v))  # type: ignore[arg-type]
    if isinstance(t, PointerType):
        return int(v).to_bytes(8, "little")  # type: ignore[arg-type]
    if isinstance(t, VectorType):
        return b"".join(_to_bytes(x, t.elem) for x in v)  # type: ignore[union-attr]
    raise IRInterpError(f"bitcast from {t}")


def _from_bytes(raw: bytes, t: Type) -> object:
    if isinstance(t, IntType):
        return int.from_bytes(raw[: t.size_bytes()], "little")
    if isinstance(t, DoubleType):
        return struct.unpack("<d", raw[:8])[0]
    if isinstance(t, FloatType):
        return struct.unpack("<f", raw[:4])[0]
    if isinstance(t, PointerType):
        return int.from_bytes(raw[:8], "little")
    if isinstance(t, VectorType):
        es = t.elem.size_bytes()
        return tuple(
            _from_bytes(raw[i * es: (i + 1) * es], t.elem) for i in range(t.count)
        )
    raise IRInterpError(f"bitcast to {t}")
