"""MiniLLVM IR interpreter.

Executes IR functions against the same simulated :class:`~repro.mem.memory.
Memory` the x86 simulator uses, which enables the project's strongest
correctness check: *lifted IR interpreted over the image must compute the
same result as the original machine code simulated over the image*.

Value representation: iN -> unsigned-masked int, double/float -> Python
float, pointer -> int address, vector -> tuple of elements, undef -> zeros.

Two execution engines share these semantics:

* the **legacy engine** (``threaded=False``): the original per-instruction
  ``isinstance``/attribute-dispatch loop over an ``id(value)``-keyed dict
  environment — simple, and the reference the fast path is differentially
  tested against;
* the **threaded-dispatch engine** (default): each function is compiled
  once into a *decoded trace* — per block, straight-line instruction runs
  become a handful of exec-specialized closures over a flat slot-indexed
  environment, with operand slots, constants, masks and helpers resolved
  at compile time.  Adjacent instructions fuse into one closure body
  (superinstructions: the whole run is a single bytecode object, and
  ``cmp+br`` fuses into the block terminator), phi webs become precompiled
  parallel-move closures per CFG edge, and the trace is cached per
  ``(function, Function.version)`` in a process-global weak map so every
  interpreter — validator probes, the differential corpus, the guard gate
  — shares one compilation.  A mutated function (pass rewrite, validator
  rollback) bumps its version and the stale trace is recompiled, never
  executed (see DESIGN §14).
"""

from __future__ import annotations

import struct
import threading
import weakref

from repro import speed as _speed
from repro.errors import IRInterpError
from repro.ir import instructions as I
from repro.ir.irtypes import (
    DoubleType, FloatType, IntType, PointerType, Type, VectorType,
)
from repro.ir.module import BasicBlock, Function, GlobalVariable, Module
from repro.ir.values import Argument, Constant, ConstantFP, ConstantVector, Undef, Value
from repro.mem.memory import Memory
from repro.obs import metrics as _metrics


def _to_signed(v: int, bits: int) -> int:
    sign = 1 << (bits - 1)
    return (v & (sign - 1)) - (v & sign)


def _trunc_div(n: int, d: int) -> int:
    """Exact C-style truncating division (``int(n / d)`` rounds through a
    float and is wrong for 64-bit magnitudes)."""
    q = abs(n) // abs(d)
    return -q if (n < 0) != (d < 0) else q


def _zero_of(t: Type) -> object:
    if isinstance(t, IntType):
        return 0
    if isinstance(t, (DoubleType, FloatType)):
        return 0.0
    if isinstance(t, PointerType):
        return 0
    if isinstance(t, VectorType):
        return tuple(_zero_of(t.elem) for _ in range(t.count))
    raise IRInterpError(f"no zero for {t}")


def _f32(v: float) -> float:
    return struct.unpack("<f", struct.pack("<f", v))[0]


# -- shared scalar semantics (used by both engines) ---------------------------


def _fdiv_val(x: float, y: float) -> float:
    """IEEE division with x86-matching zero/NaN handling (same branch
    structure as the legacy ``_scalar_binop`` fdiv arm)."""
    if y == 0.0:
        if x == 0.0 or x != x:
            return float("nan")
        return float("inf") if (x > 0) == (not _signbit(y)) else float("-inf")
    return x / y


def _sdiv_val(a: int, b: int, bits: int, mask: int) -> int:
    d = _to_signed(b, bits)
    if d == 0:
        raise IRInterpError("sdiv by zero")
    return _trunc_div(_to_signed(a, bits), d) & mask


def _srem_val(a: int, b: int, bits: int, mask: int) -> int:
    d = _to_signed(b, bits)
    if d == 0:
        raise IRInterpError("srem by zero")
    n = _to_signed(a, bits)
    return (n - _trunc_div(n, d) * d) & mask


def _udiv_val(a: int, b: int) -> int:
    if b == 0:
        raise IRInterpError("udiv by zero")
    return a // b


def _urem_val(a: int, b: int) -> int:
    if b == 0:
        raise IRInterpError("urem by zero")
    return a % b


def _sqrt_val(x: float) -> float:
    x = float(x)
    return x ** 0.5 if x >= 0 else float("nan")


def _scalar_binop(opcode: str, a: object, b: object, t: Type) -> object:
    if opcode in I.FP_BINOPS:
        x, y = float(a), float(b)  # type: ignore[arg-type]
        if opcode == "fadd":
            r = x + y
        elif opcode == "fsub":
            r = x - y
        elif opcode == "fmul":
            r = x * y
        else:
            r = _fdiv_val(x, y)
        return _f32(r) if isinstance(t, FloatType) else r
    assert isinstance(t, IntType)
    ai, bi = int(a) & t.mask, int(b) & t.mask  # type: ignore[arg-type]
    bits = t.bits
    if opcode == "add":
        return (ai + bi) & t.mask
    if opcode == "sub":
        return (ai - bi) & t.mask
    if opcode == "mul":
        return (ai * bi) & t.mask
    if opcode == "and":
        return ai & bi
    if opcode == "or":
        return ai | bi
    if opcode == "xor":
        return ai ^ bi
    if opcode == "shl":
        return (ai << (bi % bits)) & t.mask
    if opcode == "lshr":
        return ai >> (bi % bits)
    if opcode == "ashr":
        return (_to_signed(ai, bits) >> (bi % bits)) & t.mask
    if opcode == "sdiv":
        return _sdiv_val(ai, bi, bits, t.mask)
    if opcode == "srem":
        return _srem_val(ai, bi, bits, t.mask)
    if opcode == "udiv":
        return _udiv_val(ai, bi)
    if opcode == "urem":
        return _urem_val(ai, bi)
    raise IRInterpError(f"binop {opcode}")


def _load_value(mem: Memory, t: Type, addr: int) -> object:
    if isinstance(t, IntType):
        if t.bits == 1:
            return mem.read_u8(addr) & 1
        return mem.read_uint(addr, t.size_bytes())
    if isinstance(t, DoubleType):
        return mem.read_f64(addr)
    if isinstance(t, FloatType):
        return mem.read_f32(addr)
    if isinstance(t, PointerType):
        return mem.read_u64(addr)
    if isinstance(t, VectorType):
        es = t.elem.size_bytes()
        return tuple(_load_value(mem, t.elem, addr + i * es) for i in range(t.count))
    raise IRInterpError(f"cannot load {t}")


def _store_value(mem: Memory, t: Type, addr: int, value: object) -> None:
    if isinstance(t, IntType):
        mem.write_uint(addr, int(value), t.size_bytes())  # type: ignore[arg-type]
    elif isinstance(t, DoubleType):
        mem.write_f64(addr, float(value))  # type: ignore[arg-type]
    elif isinstance(t, FloatType):
        mem.write_f32(addr, float(value))  # type: ignore[arg-type]
    elif isinstance(t, PointerType):
        mem.write_u64(addr, int(value))  # type: ignore[arg-type]
    elif isinstance(t, VectorType):
        es = t.elem.size_bytes()
        for i, x in enumerate(value):  # type: ignore[arg-type]
            _store_value(mem, t.elem, addr + i * es, x)
    else:
        raise IRInterpError(f"cannot store {t}")


def _global_addr(g: GlobalVariable) -> int:
    a = g.addr
    if a is None:
        raise IRInterpError(f"global @{g.name} not placed")
    return a


def _use_err(msg: str) -> object:
    raise IRInterpError(msg)


class Interpreter:
    """Interprets functions of one module over a Memory."""

    def __init__(self, module: Module, memory: Memory | None = None,
                 stack_base: int = 0x7000_0000, stack_size: int = 1 << 20,
                 extern_functions: dict[str, object] | None = None,
                 threaded: bool | None = None) -> None:
        self.module = module
        self.memory = memory if memory is not None else Memory()
        if not self.memory.is_mapped(stack_base - stack_size, 1):
            self.memory.map(stack_base - stack_size, stack_size)
        self._stack_top = stack_base
        self._globals_placed = False
        self._global_cursor = 0x6800_0000
        self.extern_functions = extern_functions or {}
        self.steps = 0
        self.max_steps = 10_000_000
        #: None defers to the speed-campaign switch (repro.speed)
        self._threaded = _speed.enabled() if threaded is None else bool(threaded)

    # -- globals ---------------------------------------------------------------

    def _place_globals(self) -> None:
        if self._globals_placed:
            return
        self._globals_placed = True
        total = sum(len(g.initializer) + 32 for g in self.module.globals.values())
        if total:
            self.memory.map(self._global_cursor, total + 4096)
        for g in self.module.globals.values():
            if g.addr is not None:
                continue  # already placed (e.g. by the JIT in an image)
            addr = (self._global_cursor + 15) & ~15
            self.memory.write(addr, g.initializer)
            g.addr = addr
            self._global_cursor = addr + len(g.initializer)

    # -- entry ---------------------------------------------------------------

    def run(self, func: Function | str, args: list[object]) -> object:
        """Interpret ``func`` with Python-level argument values."""
        if isinstance(func, str):
            func = self.module.function(func)
        self._place_globals()
        return self._run_function(func, args, self._stack_top)

    def _run_function(self, func: Function, args: list[object], sp: int) -> object:
        if self._threaded:
            return self._run_trace(trace_for(func), func, args, sp)
        return self._run_function_legacy(func, args, sp)

    # -- threaded-dispatch engine -------------------------------------------

    def _run_trace(self, ft: "_FuncTrace", func: Function,
                   args: list[object], sp: int) -> object:
        if len(args) != ft.nargs:
            raise IRInterpError(
                f"@{ft.name} expects {ft.nargs} args, got {len(args)}"
            )
        env: list[object] = [None] * ft.nslots
        coerce = self._coerce
        for i, t in enumerate(ft.arg_types):
            env[i] = coerce(args[i], t)

        rt = _Frame(self, self.memory, sp)
        bt = ft.entry
        prev = -1
        while True:
            pm = bt.phi_moves
            if pm is not None:
                mv = pm.get(prev)
                if mv is None:
                    raise IRInterpError(
                        f"@{ft.name}: phi in block {bt.bname} has no incoming "
                        f"edge for the path taken")
                mv(rt, env)
            self.steps += bt.n_steps
            if self.steps > self.max_steps:
                raise IRInterpError("interpreter step limit exceeded")
            for op in bt.ops:
                op(rt, env)
            k = bt.tkind
            if k == 1:  # unconditional branch
                prev = bt.bid
                bt = bt.tp
                continue
            if k == 2:  # conditional branch (possibly fused cmp+br)
                cond, tb, fb = bt.tp
                prev = bt.bid
                bt = tb if cond(rt, env) else fb
                continue
            if k == 0:  # ret
                g = bt.tp
                return g(rt, env) if g is not None else None
            raise IRInterpError(bt.terr)  # unreachable / fell through

    # -- legacy engine -------------------------------------------------------

    def _run_function_legacy(self, func: Function, args: list[object],
                             sp: int) -> object:
        if len(args) != len(func.args):
            raise IRInterpError(
                f"@{func.name} expects {len(func.args)} args, got {len(args)}"
            )
        env: dict[int, object] = {}
        for formal, actual in zip(func.args, args):
            env[id(formal)] = self._coerce(actual, formal.type)

        block = func.entry
        prev: BasicBlock | None = None
        alloca_sp = sp
        while True:
            # phis evaluate atomically against the edge just taken
            phis = block.phis()
            if phis:
                assert prev is not None
                new_vals = []
                for phi in phis:
                    v = phi.incoming_for(prev)
                    if v is None:
                        raise IRInterpError(
                            f"@{func.name}: phi %{phi.name} missing incoming "
                            f"for {prev.name}"
                        )
                    new_vals.append(self._value(v, env))
                for phi, v in zip(phis, new_vals):
                    env[id(phi)] = v

            for ins in block.instructions[len(phis):]:
                self.steps += 1
                if self.steps > self.max_steps:
                    raise IRInterpError("interpreter step limit exceeded")
                opcode = ins.opcode
                if opcode == "ret":
                    rv = ins.value  # type: ignore[attr-defined]
                    return self._value(rv, env) if rv is not None else None
                if opcode == "br":
                    assert isinstance(ins, I.Br)
                    if ins.is_conditional:
                        cond = self._value(ins.operands[0], env)
                        target = ins.targets[0] if cond else ins.targets[1]
                    else:
                        target = ins.targets[0]
                    prev, block = block, target
                    break
                if opcode == "unreachable":
                    raise IRInterpError(f"@{func.name}: reached unreachable")
                if opcode == "alloca":
                    assert isinstance(ins, I.Alloca)
                    alloca_sp -= ins.size
                    alloca_sp &= ~(ins.align - 1)
                    env[id(ins)] = alloca_sp
                    continue
                env[id(ins)] = self._exec(func, ins, env, alloca_sp)
            else:
                raise IRInterpError(f"@{func.name}: block {block.name} fell through")

    # -- values -------------------------------------------------------------------

    def _value(self, v: Value, env: dict[int, object]) -> object:
        if isinstance(v, Constant):
            return v.value
        if isinstance(v, ConstantFP):
            return v.value
        if isinstance(v, ConstantVector):
            return tuple(self._value(e, env) for e in v.elements)
        if isinstance(v, Undef):
            return _zero_of(v.type)
        if isinstance(v, GlobalVariable):
            if v.addr is None:
                raise IRInterpError(f"global @{v.name} not placed")
            return v.addr
        if isinstance(v, Function):
            raise IRInterpError("function pointers are not interpretable")
        try:
            return env[id(v)]
        except KeyError:
            raise IRInterpError(f"use of unevaluated value %{v.name}") from None

    def _coerce(self, value: object, t: Type) -> object:
        if isinstance(t, IntType):
            assert isinstance(value, int)
            return value & t.mask
        if isinstance(t, PointerType):
            assert isinstance(value, int)
            return value & (2**64 - 1)
        if isinstance(t, (DoubleType, FloatType)):
            assert isinstance(value, (int, float))
            return float(value)
        if isinstance(t, VectorType):
            assert isinstance(value, (tuple, list)) and len(value) == t.count
            return tuple(self._coerce(x, t.elem) for x in value)
        raise IRInterpError(f"cannot coerce to {t}")

    # -- memory ------------------------------------------------------------------

    def _load(self, t: Type, addr: int) -> object:
        return _load_value(self.memory, t, addr)

    def _store(self, t: Type, addr: int, value: object) -> None:
        _store_value(self.memory, t, addr, value)

    # -- execution ----------------------------------------------------------------

    def _exec(self, func: Function, ins: I.Instruction, env: dict[int, object],
              sp: int) -> object:
        opcode = ins.opcode
        if isinstance(ins, I.BinOp):
            a = self._value(ins.operands[0], env)
            b = self._value(ins.operands[1], env)
            if isinstance(ins.type, VectorType):
                return tuple(
                    _scalar_binop(opcode, x, y, ins.type.elem)
                    for x, y in zip(a, b)  # type: ignore[arg-type]
                )
            return _scalar_binop(opcode, a, b, ins.type)
        if isinstance(ins, I.ICmp):
            a = self._value(ins.operands[0], env)
            b = self._value(ins.operands[1], env)
            t = ins.operands[0].type
            bits = t.bits if isinstance(t, IntType) else 64
            return int(_icmp(ins.pred, a, b, bits))  # type: ignore[arg-type]
        if isinstance(ins, I.FCmp):
            a = self._value(ins.operands[0], env)
            b = self._value(ins.operands[1], env)
            return int(_fcmp(ins.pred, a, b))  # type: ignore[arg-type]
        if isinstance(ins, I.Select):
            c, a, b = (self._value(o, env) for o in ins.operands)
            return a if c else b
        if isinstance(ins, I.Cast):
            return self._cast(ins, env)
        if isinstance(ins, I.Load):
            addr = self._value(ins.operands[0], env)
            return self._load(ins.type, int(addr))  # type: ignore[arg-type]
        if isinstance(ins, I.Store):
            v = self._value(ins.operands[0], env)
            addr = self._value(ins.operands[1], env)
            self._store(ins.operands[0].type, int(addr), v)  # type: ignore[arg-type]
            return None
        if isinstance(ins, I.GEP):
            base = self._value(ins.operands[0], env)
            idx = self._value(ins.operands[1], env)
            it = ins.operands[1].type
            bits = it.bits if isinstance(it, IntType) else 64
            return (int(base) + _to_signed(int(idx), bits) * ins.elem.size_bytes()) & (2**64 - 1)  # type: ignore[arg-type]
        if isinstance(ins, I.ExtractElement):
            vec = self._value(ins.operands[0], env)
            idx = int(self._value(ins.operands[1], env))  # type: ignore[arg-type]
            return vec[idx]  # type: ignore[index]
        if isinstance(ins, I.InsertElement):
            vec = list(self._value(ins.operands[0], env))  # type: ignore[arg-type]
            val = self._value(ins.operands[1], env)
            idx = int(self._value(ins.operands[2], env))  # type: ignore[arg-type]
            vec[idx] = val
            return tuple(vec)
        if isinstance(ins, I.ShuffleVector):
            a = self._value(ins.operands[0], env)
            b = self._value(ins.operands[1], env)
            joined = tuple(a) + tuple(b)  # type: ignore[arg-type]
            return tuple(joined[m] for m in ins.mask)
        if isinstance(ins, I.Call):
            args = [self._value(a, env) for a in ins.operands]
            if ins.intrinsic:
                return self._intrinsic(ins.callee_name, args, ins)
            callee = ins.callee
            if isinstance(callee, str):
                callee = self.module.function(callee)
            assert isinstance(callee, Function)
            if callee.is_declaration:
                ext = self.extern_functions.get(callee.name)
                if ext is None:
                    raise IRInterpError(f"call to undefined @{callee.name}")
                return ext(*args)  # type: ignore[operator]
            return self._run_function(callee, args, sp - 64)
        raise IRInterpError(f"cannot interpret {opcode}")

    def _scalar_binop(self, opcode: str, a: object, b: object, t: Type) -> object:
        return _scalar_binop(opcode, a, b, t)

    def _cast(self, ins: I.Cast, env: dict[int, object]) -> object:
        (operand,) = ins.operands
        v = self._value(operand, env)
        src, dst = operand.type, ins.type
        op = ins.opcode
        if op == "trunc":
            return int(v) & dst.mask  # type: ignore[union-attr, arg-type]
        if op == "zext":
            return int(v)  # type: ignore[arg-type]
        if op == "sext":
            return _to_signed(int(v), src.bits) & dst.mask  # type: ignore[union-attr, arg-type]
        if op in ("inttoptr", "ptrtoint"):
            return int(v) & (2**64 - 1)  # type: ignore[arg-type]
        if op == "bitcast":
            return _bitcast(v, src, dst)
        if op == "sitofp":
            return float(_to_signed(int(v), src.bits))  # type: ignore[union-attr, arg-type]
        if op == "uitofp":
            return float(int(v))  # type: ignore[arg-type]
        if op == "fptosi":
            r = int(float(v))  # type: ignore[arg-type]
            return r & dst.mask  # type: ignore[union-attr]
        if op == "fpext":
            return float(v)  # type: ignore[arg-type]
        if op == "fptrunc":
            return _f32(float(v))  # type: ignore[arg-type]
        raise IRInterpError(f"cast {op}")

    def _intrinsic(self, name: str, args: list[object], ins: I.Call) -> object:
        if name.startswith("llvm.ctpop"):
            return bin(int(args[0])).count("1")  # type: ignore[arg-type]
        if name.startswith("llvm.sqrt"):
            return _sqrt_val(args[0])  # type: ignore[arg-type]
        if name.startswith("llvm.fabs"):
            return abs(float(args[0]))  # type: ignore[arg-type]
        raise IRInterpError(f"unknown intrinsic {name}")


def _signbit(v: float) -> bool:
    return struct.pack("<d", v)[7] & 0x80 != 0


def _icmp(pred: str, a: int, b: int, bits: int) -> bool:
    if pred == "eq":
        return a == b
    if pred == "ne":
        return a != b
    if pred in ("ult", "ule", "ugt", "uge"):
        return {"ult": a < b, "ule": a <= b, "ugt": a > b, "uge": a >= b}[pred]
    sa, sb = _to_signed(a, bits), _to_signed(b, bits)
    return {"slt": sa < sb, "sle": sa <= sb, "sgt": sa > sb, "sge": sa >= sb}[pred]


def _fcmp(pred: str, a: float, b: float) -> bool:
    unordered = (a != a) or (b != b)
    if pred == "ord":
        return not unordered
    if pred == "uno":
        return unordered
    if pred.startswith("o"):
        if unordered:
            return False
        core = pred[1:]
    else:
        if unordered:
            return True
        core = pred[1:]
    return {"eq": a == b, "ne": a != b, "lt": a < b,
            "le": a <= b, "gt": a > b, "ge": a >= b}[core]


def _bitcast(v: object, src: Type, dst: Type) -> object:
    raw = _to_bytes(v, src)
    return _from_bytes(raw, dst)


def _to_bytes(v: object, t: Type) -> bytes:
    if isinstance(t, IntType):
        return int(v).to_bytes(t.size_bytes(), "little")  # type: ignore[arg-type]
    if isinstance(t, DoubleType):
        return struct.pack("<d", float(v))  # type: ignore[arg-type]
    if isinstance(t, FloatType):
        return struct.pack("<f", float(v))  # type: ignore[arg-type]
    if isinstance(t, PointerType):
        return int(v).to_bytes(8, "little")  # type: ignore[arg-type]
    if isinstance(t, VectorType):
        return b"".join(_to_bytes(x, t.elem) for x in v)  # type: ignore[union-attr]
    raise IRInterpError(f"bitcast from {t}")


def _from_bytes(raw: bytes, t: Type) -> object:
    if isinstance(t, IntType):
        return int.from_bytes(raw[: t.size_bytes()], "little")
    if isinstance(t, DoubleType):
        return struct.unpack("<d", raw[:8])[0]
    if isinstance(t, FloatType):
        return struct.unpack("<f", raw[:4])[0]
    if isinstance(t, PointerType):
        return int.from_bytes(raw[:8], "little")
    if isinstance(t, VectorType):
        es = t.elem.size_bytes()
        return tuple(
            _from_bytes(raw[i * es: (i + 1) * es], t.elem) for i in range(t.count)
        )
    raise IRInterpError(f"bitcast to {t}")


# ===========================================================================
# Threaded-dispatch trace compiler
# ===========================================================================

_M64 = (1 << 64) - 1

_TRACE_HITS = _metrics.counter("interp.trace.hits")
_TRACE_COMPILES = _metrics.counter("interp.trace.compiles")
_TRACE_INVALIDATIONS = _metrics.counter("interp.trace.invalidations")
_FUSE_CMP_BR = _metrics.counter("interp.fuse.cmp_br")
_FUSE_GEP_LOAD = _metrics.counter("interp.fuse.gep_load")
_FUSE_BINOP_STORE = _metrics.counter("interp.fuse.binop_store")

#: function -> compiled trace; weak keys so traces die with their function.
#: Guarded by a lock: WeakKeyDictionary mutation is not thread-safe and the
#: cache-hammer tests hit this from many threads.
_TRACES: "weakref.WeakKeyDictionary[Function, _FuncTrace]" = \
    weakref.WeakKeyDictionary()
_TRACES_LOCK = threading.Lock()

#: cap on instructions merged into one exec-compiled superinstruction body
#: (bounds compile() time on the lifter's huge flag-web blocks)
_MAX_RUN = 200


class _Frame:
    """Per-invocation runtime state threaded through op closures."""

    __slots__ = ("interp", "mem", "sp")

    def __init__(self, interp: Interpreter, mem: Memory, sp: int) -> None:
        self.interp = interp
        self.mem = mem
        self.sp = sp


class _BlockTrace:
    __slots__ = ("bid", "bname", "n_steps", "ops", "phi_moves",
                 "tkind", "tp", "terr")

    def __init__(self) -> None:
        self.bid = -1
        self.bname = ""
        self.n_steps = 0
        self.ops: tuple = ()
        self.phi_moves: dict | None = None
        self.tkind = 4
        self.tp: object = None
        self.terr: str | None = None


class _FuncTrace:
    __slots__ = ("name", "entry", "nslots", "nargs", "arg_types",
                 "version", "nblocks", "ninstrs")


def trace_for(func: Function) -> _FuncTrace:
    """The cached trace for ``func``, recompiling if the version moved.

    Validity = version match **plus** a cheap structural guard (block and
    instruction counts): the version covers every sanctioned mutation path
    (block/instruction insertion, RAUW, pass runs, validator rollbacks),
    the structural guard catches direct surgery on ``block.instructions``
    lists that bypassed them.
    """
    ver = func.version
    with _TRACES_LOCK:
        ft = _TRACES.get(func)
    if ft is not None:
        if ft.version == ver and ft.nblocks == len(func.blocks) \
                and ft.ninstrs == _instr_count(func):
            _TRACE_HITS.value += 1
            return ft
        _TRACE_INVALIDATIONS.value += 1
    ft = _compile_trace(func, ver)
    _TRACE_COMPILES.value += 1
    with _TRACES_LOCK:
        _TRACES[func] = ft
    return ft


def clear_traces() -> None:
    """Drop every cached trace (tests / benchmarks)."""
    with _TRACES_LOCK:
        _TRACES.clear()


def trace_is_current(func: Function) -> bool:
    """True when ``func`` has no cached trace or the cached one is valid.

    The differential corpus audits this after every interpreter run: a
    ``False`` here would mean a stale trace was (or could have been)
    executed — the invariant the corpus gate requires to hold at 10k+
    seeds is that this never happens.
    """
    with _TRACES_LOCK:
        ft = _TRACES.get(func)
    if ft is None:
        return True
    return (ft.version == func.version and ft.nblocks == len(func.blocks)
            and ft.ninstrs == _instr_count(func))


def trace_cache_stats() -> dict[str, int]:
    with _TRACES_LOCK:
        size = len(_TRACES)
    return {
        "size": size,
        "hits": _TRACE_HITS.value,
        "compiles": _TRACE_COMPILES.value,
        "invalidations": _TRACE_INVALIDATIONS.value,
        "fused_cmp_br": _FUSE_CMP_BR.value,
        "fused_gep_load": _FUSE_GEP_LOAD.value,
        "fused_binop_store": _FUSE_BINOP_STORE.value,
    }


def _instr_count(func: Function) -> int:
    n = 0
    for b in func.blocks:
        n += len(b.instructions)
    return n


#: helpers visible as globals inside every exec-compiled closure
_EXEC_NS = {
    "IRInterpError": IRInterpError,
    "_sgn": _to_signed,
    "_f32": _f32,
    "_fdiv": _fdiv_val,
    "_sdiv": _sdiv_val,
    "_srem": _srem_val,
    "_udiv": _udiv_val,
    "_urem": _urem_val,
    "_sqrt": _sqrt_val,
    "_fcmp": _fcmp,
    "_icmp": _icmp,
    "_bitcast": _bitcast,
    "_gaddr": _global_addr,
    "_use_err": _use_err,
}


class _Emit:
    """Accumulates statement lines + name bindings for one exec closure."""

    __slots__ = ("lines", "binds", "needs_mem", "count", "_t")

    def __init__(self) -> None:
        self.lines: list[str] = []
        self.binds: dict[str, object] = {}
        self.needs_mem = False
        self.count = 0  # instructions covered
        self._t = 0

    def bind(self, val: object) -> str:
        name = f"_k{len(self.binds)}"
        self.binds[name] = val
        return name

    def temp(self) -> str:
        self._t += 1
        return f"_t{self._t}"


def _exec_fn(name: str, body_lines: list[str], binds: dict[str, object],
             needs_mem: bool, params: str = "rt, env"):
    src = [f"def {name}({params}):"]
    if needs_mem:
        src.append("    _mem = rt.mem")
    src.extend("    " + ln for ln in body_lines)
    ns = dict(_EXEC_NS)
    ns.update(binds)
    exec(compile("\n".join(src), "<ir-trace>", "exec"), ns)
    return ns[name]


def _expr(res: tuple, em: _Emit) -> str:
    """Resolved operand -> expression string usable inside a closure body."""
    kind, payload = res
    if kind == "s":
        return f"env[{payload}]"
    if kind == "c":
        if isinstance(payload, bool):
            return repr(int(payload))
        if isinstance(payload, int):
            return repr(payload)
        if isinstance(payload, float) and payload == payload \
                and payload not in (float("inf"), float("-inf")):
            return repr(payload)
        return em.bind(payload)
    if kind == "g":
        return f"_gaddr({em.bind(payload)})"
    return f"_use_err({em.bind(payload)})"


def _getter(res: tuple):
    """Resolved operand -> standalone closure (for non-exec op paths)."""
    kind, payload = res
    if kind == "s":
        def get(rt, env, _s=payload):
            return env[_s]
    elif kind == "c":
        def get(rt, env, _c=payload):
            return _c
    elif kind == "g":
        def get(rt, env, _g=payload):
            return _global_addr(_g)
    else:
        def get(rt, env, _m=payload):
            raise IRInterpError(_m)
    return get


_INT_EXPR = {
    "add": "({a} + {b}) & {m}",
    "sub": "({a} - {b}) & {m}",
    "mul": "({a} * {b}) & {m}",
    "and": "{a} & {b}",
    "or": "{a} | {b}",
    "xor": "{a} ^ {b}",
    "shl": "({a} << ({b} % {bits})) & {m}",
    "lshr": "{a} >> ({b} % {bits})",
    "ashr": "(_sgn({a}, {bits}) >> ({b} % {bits})) & {m}",
    "sdiv": "_sdiv({a}, {b}, {bits}, {m})",
    "srem": "_srem({a}, {b}, {bits}, {m})",
    "udiv": "_udiv({a}, {b})",
    "urem": "_urem({a}, {b})",
}

_FP_EXPR = {
    "fadd": "{a} + {b}",
    "fsub": "{a} - {b}",
    "fmul": "{a} * {b}",
    "fdiv": "_fdiv({a}, {b})",
}

_SIGNED_ICMP = {"slt": "<", "sle": "<=", "sgt": ">", "sge": ">="}
_UNSIGNED_ICMP = {"eq": "==", "ne": "!=", "ult": "<", "ule": "<=",
                  "ugt": ">", "uge": ">="}


class _Compiler:
    """One-shot trace compiler for a single function version."""

    def __init__(self, func: Function) -> None:
        self.func = func
        self.fname = func.name
        self.slots: dict[int, int] = {}
        # pin operand identity: slots are id()-keyed, and the trace must
        # not outlive id reuse — the function holds its instructions alive,
        # and the trace is dropped whenever the version moves
        for i, arg in enumerate(func.args):
            self.slots[id(arg)] = i
        for blk in func.blocks:
            for ins in blk.instructions:
                if id(ins) not in self.slots:
                    self.slots[id(ins)] = len(self.slots)

    def slot(self, v: Value) -> int:
        return self.slots[id(v)]

    def resolve(self, v: Value) -> tuple:
        if isinstance(v, Constant):
            return ("c", v.value)
        if isinstance(v, ConstantFP):
            return ("c", v.value)
        if isinstance(v, ConstantVector):
            elems = [self.resolve(e) for e in v.elements]
            if all(k == "c" for k, _ in elems):
                return ("c", tuple(p for _, p in elems))
            gs = tuple(_getter(e) for e in elems)

            def composite(rt, env, _gs=gs):
                return tuple(g(rt, env) for g in _gs)
            # represent as an exotic operand: closure-only
            return ("fn", composite)
        if isinstance(v, Undef):
            return ("c", _zero_of(v.type))
        if isinstance(v, GlobalVariable):
            return ("g", v)
        if isinstance(v, Function):
            return ("x", "function pointers are not interpretable")
        s = self.slots.get(id(v))
        if s is None:
            return ("x", f"use of unevaluated value %{v.name}")
        return ("s", s)

    # -- per-instruction statement emission ---------------------------------

    def stmt_lines(self, ins: I.Instruction, em: _Emit) -> list[str] | None:
        """Statement form of ``ins`` (None -> needs a standalone closure)."""
        R = self.resolve
        if isinstance(ins, I.BinOp):
            t = ins.type
            ra, rb = R(ins.operands[0]), R(ins.operands[1])
            if ra[0] == "fn" or rb[0] == "fn":
                return None
            d = self.slot(ins)
            if isinstance(t, IntType):
                ex = _INT_EXPR[ins.opcode].format(
                    a=_expr(ra, em), b=_expr(rb, em), m=t.mask, bits=t.bits)
                return [f"env[{d}] = {ex}"]
            if isinstance(t, (DoubleType, FloatType)):
                ex = _FP_EXPR[ins.opcode].format(a=_expr(ra, em), b=_expr(rb, em))
                if isinstance(t, FloatType):
                    ex = f"_f32({ex})"
                return [f"env[{d}] = {ex}"]
            return None  # vector
        if isinstance(ins, I.ICmp):
            t = ins.operands[0].type
            ra, rb = R(ins.operands[0]), R(ins.operands[1])
            if ra[0] == "fn" or rb[0] == "fn":
                return None
            d = self.slot(ins)
            a, b = _expr(ra, em), _expr(rb, em)
            if isinstance(t, IntType) or isinstance(t, PointerType):
                bits = t.bits if isinstance(t, IntType) else 64
                if ins.pred in _SIGNED_ICMP:
                    op = _SIGNED_ICMP[ins.pred]
                    return [f"env[{d}] = 1 if _sgn({a}, {bits}) {op} "
                            f"_sgn({b}, {bits}) else 0"]
                op = _UNSIGNED_ICMP[ins.pred]
                return [f"env[{d}] = 1 if {a} {op} {b} else 0"]
            bits = 64
            return [f"env[{d}] = 1 if _icmp({ins.pred!r}, {a}, {b}, {bits}) "
                    f"else 0"]
        if isinstance(ins, I.FCmp):
            ra, rb = R(ins.operands[0]), R(ins.operands[1])
            if ra[0] == "fn" or rb[0] == "fn":
                return None
            d = self.slot(ins)
            return [f"env[{d}] = 1 if _fcmp({ins.pred!r}, {_expr(ra, em)}, "
                    f"{_expr(rb, em)}) else 0"]
        if isinstance(ins, I.Select):
            rc, ra, rb = (R(o) for o in ins.operands)
            if "fn" in (rc[0], ra[0], rb[0]):
                return None
            d = self.slot(ins)
            return [f"env[{d}] = {_expr(ra, em)} if {_expr(rc, em)} "
                    f"else {_expr(rb, em)}"]
        if isinstance(ins, I.Cast):
            return self._cast_lines(ins, em)
        if isinstance(ins, I.Load):
            rp = R(ins.operands[0])
            if rp[0] == "fn":
                return None
            d = self.slot(ins)
            a = _expr(rp, em)
            rd = self._read_expr(ins.type, a, em)
            if rd is None:
                return None
            em.needs_mem = True
            return [f"env[{d}] = {rd}"]
        if isinstance(ins, I.Store):
            rv, rp = R(ins.operands[0]), R(ins.operands[1])
            if rv[0] == "fn" or rp[0] == "fn":
                return None
            t = ins.operands[0].type
            a, v = _expr(rp, em), _expr(rv, em)
            wr = self._write_stmt(t, a, v)
            if wr is None:
                return None
            em.needs_mem = True
            d = self.slot(ins)
            return [wr, f"env[{d}] = None"]
        if isinstance(ins, I.GEP):
            rb, ri = R(ins.operands[0]), R(ins.operands[1])
            if rb[0] == "fn" or ri[0] == "fn":
                return None
            d = self.slot(ins)
            it = ins.operands[1].type
            bits = it.bits if isinstance(it, IntType) else 64
            es = ins.elem.size_bytes()
            base = _expr(rb, em)
            if ri[0] == "c":
                off = _to_signed(int(ri[1]), bits) * es
                return [f"env[{d}] = ({base} + {off}) & {_M64}"]
            idx = _expr(ri, em)
            return [f"env[{d}] = ({base} + _sgn({idx}, {bits}) * {es}) "
                    f"& {_M64}"]
        if isinstance(ins, I.Alloca):
            d = self.slot(ins)
            am = ~(ins.align - 1)
            return [f"_sp = (rt.sp - {ins.size}) & {am}",
                    "rt.sp = _sp",
                    f"env[{d}] = _sp"]
        if isinstance(ins, I.ExtractElement):
            rv, ri = R(ins.operands[0]), R(ins.operands[1])
            if rv[0] == "fn" or ri[0] == "fn":
                return None
            d = self.slot(ins)
            return [f"env[{d}] = {_expr(rv, em)}[int({_expr(ri, em)})]"]
        if isinstance(ins, I.InsertElement):
            rv, rx, ri = (R(o) for o in ins.operands)
            if "fn" in (rv[0], rx[0], ri[0]):
                return None
            d = self.slot(ins)
            t = em.temp()
            return [f"{t} = list({_expr(rv, em)})",
                    f"{t}[int({_expr(ri, em)})] = {_expr(rx, em)}",
                    f"env[{d}] = tuple({t})"]
        if isinstance(ins, I.ShuffleVector):
            ra, rb = R(ins.operands[0]), R(ins.operands[1])
            if ra[0] == "fn" or rb[0] == "fn":
                return None
            d = self.slot(ins)
            t = em.temp()
            return [f"{t} = tuple({_expr(ra, em)}) + tuple({_expr(rb, em)})",
                    f"env[{d}] = tuple({t}[_m] for _m in {tuple(ins.mask)!r})"]
        if isinstance(ins, I.Call) and ins.intrinsic:
            name = ins.callee_name
            if ins.operands and name.startswith(
                    ("llvm.ctpop", "llvm.sqrt", "llvm.fabs")):
                r0 = R(ins.operands[0])
                if r0[0] != "fn":
                    d = self.slot(ins)
                    a = _expr(r0, em)
                    if name.startswith("llvm.ctpop"):
                        return [f"env[{d}] = bin(int({a})).count(\"1\")"]
                    if name.startswith("llvm.sqrt"):
                        return [f"env[{d}] = _sqrt({a})"]
                    return [f"env[{d}] = abs(float({a}))"]
            return None
        return None

    def _read_expr(self, t: Type, addr: str, em: _Emit) -> str | None:
        if isinstance(t, IntType):
            if t.bits == 1:
                return f"_mem.read_u8({addr}) & 1"
            return f"_mem.read_uint({addr}, {t.size_bytes()})"
        if isinstance(t, DoubleType):
            return f"_mem.read_f64({addr})"
        if isinstance(t, FloatType):
            return f"_mem.read_f32({addr})"
        if isinstance(t, PointerType):
            return f"_mem.read_u64({addr})"
        return None  # vector loads go through the closure path

    def _write_stmt(self, t: Type, addr: str, val: str) -> str | None:
        if isinstance(t, IntType):
            return f"_mem.write_uint({addr}, int({val}), {t.size_bytes()})"
        if isinstance(t, DoubleType):
            return f"_mem.write_f64({addr}, {val})"
        if isinstance(t, FloatType):
            return f"_mem.write_f32({addr}, {val})"
        if isinstance(t, PointerType):
            return f"_mem.write_u64({addr}, int({val}))"
        return None

    def _cast_lines(self, ins: I.Cast, em: _Emit) -> list[str] | None:
        r = self.resolve(ins.operands[0])
        if r[0] == "fn":
            return None
        d = self.slot(ins)
        src, dst = ins.operands[0].type, ins.type
        v = _expr(r, em)
        op = ins.opcode
        if op == "trunc":
            return [f"env[{d}] = {v} & {dst.mask}"]
        if op == "zext":
            return [f"env[{d}] = {v}"]
        if op == "sext":
            return [f"env[{d}] = _sgn({v}, {src.bits}) & {dst.mask}"]
        if op in ("inttoptr", "ptrtoint"):
            return [f"env[{d}] = {v} & {_M64}"]
        if op == "bitcast":
            ts, td = em.bind(src), em.bind(dst)
            return [f"env[{d}] = _bitcast({v}, {ts}, {td})"]
        if op == "sitofp":
            return [f"env[{d}] = float(_sgn({v}, {src.bits}))"]
        if op == "uitofp":
            return [f"env[{d}] = float({v})"]
        if op == "fptosi":
            return [f"env[{d}] = int({v}) & {dst.mask}"]
        if op == "fpext":
            return [f"env[{d}] = float({v})"]
        if op == "fptrunc":
            return [f"env[{d}] = _f32({v})"]
        return None

    # -- closure fallbacks ---------------------------------------------------

    def closure_for(self, ins: I.Instruction):
        """Standalone op closure for instructions with no statement form."""
        R = self.resolve
        if isinstance(ins, I.BinOp) and isinstance(ins.type, VectorType):
            d = self.slot(ins)
            ga, gb = _getter(R(ins.operands[0])), _getter(R(ins.operands[1]))
            opcode, elem = ins.opcode, ins.type.elem

            def op(rt, env):
                env[d] = tuple(
                    _scalar_binop(opcode, x, y, elem)
                    for x, y in zip(ga(rt, env), gb(rt, env)))
            return op
        if isinstance(ins, I.Load):
            d = self.slot(ins)
            gp = _getter(R(ins.operands[0]))
            t = ins.type

            def op(rt, env):
                env[d] = _load_value(rt.mem, t, int(gp(rt, env)))
            return op
        if isinstance(ins, I.Store):
            d = self.slot(ins)
            gv = _getter(R(ins.operands[0]))
            gp = _getter(R(ins.operands[1]))
            t = ins.operands[0].type

            def op(rt, env):
                env[d] = None
                _store_value(rt.mem, t, int(gp(rt, env)), gv(rt, env))
            return op
        if isinstance(ins, I.Call):
            return self._call_closure(ins)
        if isinstance(ins, I.Phi):
            # a phi below the leading run is not interpretable (matches the
            # legacy _exec fallthrough)
            def op(rt, env):
                raise IRInterpError("cannot interpret phi")
            return op
        # anything else: generic evaluation through resolved getters where
        # possible, else the legacy error
        gs = tuple(_getter(R(o)) for o in ins.operands)
        opcode = ins.opcode
        handled = isinstance(ins, (I.ICmp, I.FCmp, I.Select, I.Cast,
                                   I.ExtractElement, I.InsertElement,
                                   I.ShuffleVector, I.BinOp))
        if not handled:
            def op(rt, env):
                raise IRInterpError(f"cannot interpret {opcode}")
            return op
        d = self.slot(ins)
        if isinstance(ins, I.ICmp):
            t = ins.operands[0].type
            bits = t.bits if isinstance(t, IntType) else 64
            pred = ins.pred

            def op(rt, env):
                env[d] = int(_icmp(pred, gs[0](rt, env), gs[1](rt, env), bits))
            return op
        if isinstance(ins, I.FCmp):
            pred = ins.pred

            def op(rt, env):
                env[d] = int(_fcmp(pred, gs[0](rt, env), gs[1](rt, env)))
            return op
        if isinstance(ins, I.Select):
            def op(rt, env):
                env[d] = gs[1](rt, env) if gs[0](rt, env) else gs[2](rt, env)
            return op
        if isinstance(ins, I.Cast):
            src, dst, cop = ins.operands[0].type, ins.type, ins.opcode

            def op(rt, env):
                env[d] = _apply_cast(cop, gs[0](rt, env), src, dst)
            return op
        if isinstance(ins, I.ExtractElement):
            def op(rt, env):
                env[d] = gs[0](rt, env)[int(gs[1](rt, env))]
            return op
        if isinstance(ins, I.InsertElement):
            def op(rt, env):
                vec = list(gs[0](rt, env))
                vec[int(gs[2](rt, env))] = gs[1](rt, env)
                env[d] = tuple(vec)
            return op
        if isinstance(ins, I.ShuffleVector):
            mask = ins.mask

            def op(rt, env):
                joined = tuple(gs[0](rt, env)) + tuple(gs[1](rt, env))
                env[d] = tuple(joined[m] for m in mask)
            return op
        # vector binop with exotic operands
        opcode, elem = ins.opcode, ins.type.elem  # type: ignore[union-attr]

        def op(rt, env):
            env[d] = tuple(
                _scalar_binop(opcode, x, y, elem)
                for x, y in zip(gs[0](rt, env), gs[1](rt, env)))
        return op

    def _call_closure(self, ins: I.Call):
        d = self.slot(ins)
        gs = tuple(_getter(self.resolve(o)) for o in ins.operands)
        if ins.intrinsic:
            name = ins.callee_name

            def op(rt, env):
                args = [g(rt, env) for g in gs]
                env[d] = rt.interp._intrinsic(name, args, None)
            return op
        callee = ins.callee
        if isinstance(callee, str):  # defensive; Call marks str as intrinsic
            cname = callee

            def op(rt, env):
                target = rt.interp.module.function(cname)
                env[d] = _dispatch_call(rt, target,
                                        [g(rt, env) for g in gs])
            return op
        cref = weakref.ref(callee)

        def op(rt, env):
            target = cref()
            if target is None:
                raise IRInterpError("callee function was collected")
            env[d] = _dispatch_call(rt, target, [g(rt, env) for g in gs])
        return op

    # -- block / function assembly ------------------------------------------

    def compile(self, version: int) -> _FuncTrace:
        func = self.func
        bts = [_BlockTrace() for _ in func.blocks]
        bindex = {id(b): i for i, b in enumerate(func.blocks)}
        for i, (blk, bt) in enumerate(zip(func.blocks, bts)):
            bt.bid = i
            bt.bname = blk.name
            self._compile_block(blk, bt, bts, bindex)
        ft = _FuncTrace()
        ft.name = func.name
        ft.entry = bts[0] if bts else _raising_entry(func.name)
        ft.nslots = len(self.slots)
        ft.nargs = len(func.args)
        ft.arg_types = tuple(a.type for a in func.args)
        ft.version = version
        ft.nblocks = len(func.blocks)
        ft.ninstrs = _instr_count(func)
        return ft

    def _compile_block(self, blk: BasicBlock, bt: _BlockTrace,
                       bts: list[_BlockTrace], bindex: dict) -> None:
        phis = blk.phis()
        body = blk.instructions[len(phis):]
        if phis:
            bt.phi_moves = self._compile_phi_moves(blk, phis, bindex)

        # find the terminator: execution stops at the first one (trailing
        # instructions after it are unreachable, matching the legacy loop)
        term = None
        term_at = len(body)
        for j, ins in enumerate(body):
            if ins.opcode in ("ret", "br", "unreachable"):
                term = ins
                term_at = j
                break
        run = body[:term_at]
        bt.n_steps = term_at + (1 if term is not None else 0)

        # cmp+br superinstruction: the compare feeding a conditional branch
        # computes inside the terminator closure (its slot is still written
        # for any other use)
        fused_cmp: I.Instruction | None = None
        if isinstance(term, I.Br) and term.is_conditional and run:
            last = run[-1]
            if isinstance(last, (I.ICmp, I.FCmp)) \
                    and term.operands[0] is last:
                probe = _Emit()
                if self.stmt_lines(last, probe) is not None:
                    fused_cmp = last
                    run = run[:-1]
                    _FUSE_CMP_BR.value += 1

        bt.ops = tuple(self._pack_ops(run))
        self._compile_terminator(term, fused_cmp, bt, bts, bindex)

    def _pack_ops(self, run: list[I.Instruction]) -> list:
        """Merge consecutive statement-form instructions into single
        exec-compiled closures (the superinstruction fast path)."""
        ops: list = []
        em = _Emit()

        def flush() -> None:
            nonlocal em
            if em.lines:
                ops.append(_exec_fn("_op", em.lines, em.binds, em.needs_mem))
            em = _Emit()

        prev_ins: I.Instruction | None = None
        prev_stmt = False
        for ins in run:
            lines = self.stmt_lines(ins, em)
            if lines is None:
                flush()
                ops.append(self.closure_for(ins))
                prev_ins, prev_stmt = ins, False
                continue
            em.lines.extend(lines)
            em.count += 1
            if prev_stmt and prev_ins is not None:
                if isinstance(prev_ins, I.GEP) and isinstance(ins, I.Load) \
                        and ins.operands[0] is prev_ins:
                    _FUSE_GEP_LOAD.value += 1
                elif isinstance(prev_ins, I.BinOp) and isinstance(ins, I.Store) \
                        and ins.operands[0] is prev_ins:
                    _FUSE_BINOP_STORE.value += 1
            prev_ins, prev_stmt = ins, True
            if em.count >= _MAX_RUN:
                flush()
        flush()
        return ops

    def _compile_terminator(self, term, fused_cmp, bt: _BlockTrace,
                            bts: list, bindex: dict) -> None:
        fname = self.fname
        if term is None:
            bt.tkind = 4
            bt.terr = f"@{fname}: block {bt.bname} fell through"
            return
        if term.opcode == "unreachable":
            bt.tkind = 4
            bt.terr = f"@{fname}: reached unreachable"
            return
        if term.opcode == "ret":
            bt.tkind = 0
            rv = term.value
            bt.tp = None if rv is None else _getter(self.resolve(rv))
            return
        # branch
        assert isinstance(term, I.Br)
        if not term.is_conditional:
            bt.tkind = 1
            bt.tp = bts[bindex[id(term.targets[0])]]
            return
        bt.tkind = 2
        tb = bts[bindex[id(term.targets[0])]]
        fb = bts[bindex[id(term.targets[1])]]
        if fused_cmp is not None:
            em = _Emit()
            lines = self.stmt_lines(fused_cmp, em)
            assert lines is not None
            lines = list(lines)
            lines.append(f"return env[{self.slot(fused_cmp)}]")
            cond = _exec_fn("_cond", lines, em.binds, em.needs_mem)
        else:
            cond = _getter(self.resolve(term.operands[0]))
        bt.tp = (cond, tb, fb)

    def _compile_phi_moves(self, blk: BasicBlock, phis: list[I.Phi],
                           bindex: dict) -> dict:
        func, fname = self.func, self.fname
        moves: dict[int, object] = {}
        preds = [b for b in func.blocks if blk in b.successors()]
        for pred in preds:
            pairs: list[tuple[int, tuple]] = []
            raise_msg: str | None = None
            for phi in phis:
                v = phi.incoming_for(pred)
                if v is None:
                    raise_msg = (f"@{fname}: phi %{phi.name} missing incoming "
                                 f"for {pred.name}")
                    break
                pairs.append((self.slot(phi), self.resolve(v)))
            pid = bindex[id(pred)]
            if raise_msg is not None:
                def mv(rt, env, _m=raise_msg):
                    raise IRInterpError(_m)
                moves[pid] = mv
                continue
            moves[pid] = self._phi_move_closure(pairs)
        return moves

    def _phi_move_closure(self, pairs: list[tuple[int, tuple]]):
        if all(res[0] in ("s", "c") for _, res in pairs):
            em = _Emit()
            reads: list[tuple[int, str]] = []
            for dst, res in pairs:
                if res[0] == "s":
                    t = em.temp()
                    em.lines.append(f"{t} = env[{res[1]}]")
                    reads.append((dst, t))
                else:
                    reads.append((dst, _expr(res, em)))
            # all reads above happen before any write below: phis evaluate
            # atomically against the taken edge
            for dst, src in reads:
                em.lines.append(f"env[{dst}] = {src}")
            return _exec_fn("_mv", em.lines, em.binds, False)
        gps = tuple((dst, _getter(res)) for dst, res in pairs)

        def mv(rt, env):
            vals = [g(rt, env) for _, g in gps]
            for (dst, _), v in zip(gps, vals):
                env[dst] = v
        return mv


def _apply_cast(op: str, v: object, src: Type, dst: Type) -> object:
    if op == "trunc":
        return int(v) & dst.mask  # type: ignore[union-attr, arg-type]
    if op == "zext":
        return int(v)  # type: ignore[arg-type]
    if op == "sext":
        return _to_signed(int(v), src.bits) & dst.mask  # type: ignore[union-attr, arg-type]
    if op in ("inttoptr", "ptrtoint"):
        return int(v) & _M64  # type: ignore[arg-type]
    if op == "bitcast":
        return _bitcast(v, src, dst)
    if op == "sitofp":
        return float(_to_signed(int(v), src.bits))  # type: ignore[union-attr, arg-type]
    if op == "uitofp":
        return float(int(v))  # type: ignore[arg-type]
    if op == "fptosi":
        return int(float(v)) & dst.mask  # type: ignore[union-attr, arg-type]
    if op == "fpext":
        return float(v)  # type: ignore[arg-type]
    if op == "fptrunc":
        return _f32(float(v))  # type: ignore[arg-type]
    raise IRInterpError(f"cast {op}")


def _dispatch_call(rt: _Frame, target: Function, args: list) -> object:
    interp = rt.interp
    if target.is_declaration:
        ext = interp.extern_functions.get(target.name)
        if ext is None:
            raise IRInterpError(f"call to undefined @{target.name}")
        return ext(*args)
    return interp._run_function(target, args, rt.sp - 64)


def _raising_entry(fname: str) -> _BlockTrace:
    bt = _BlockTrace()
    bt.tkind = 4
    bt.terr = f"function {fname} has no blocks"
    return bt


def _compile_trace(func: Function, version: int) -> _FuncTrace:
    if not func.blocks:
        # match the legacy IRError path lazily: raise on execution
        from repro.errors import IRError
        raise IRError(f"function {func.name} has no blocks")
    return _Compiler(func).compile(version)
