"""MiniLLVM x86-64 code generation (the MCJIT substitute).

``compile_function`` lowers optimized IR out of SSA into the shared TAC
back-end (:mod:`repro.backend`) and emits machine code into a simulated
image.  Instruction selection uses ``imul`` for constant multiplies and
folds GEP chains into x86 addressing modes — the LLVM-flavoured idioms the
paper contrasts with GCC's (Sec. VI-A).
"""

from repro.ir.codegen.jit import JITEngine, JITOptions

__all__ = ["JITEngine", "JITOptions"]
