"""JIT engine: optimized IR module -> machine code in a simulated Image.

The MCJIT substitute.  Responsibilities:

* place module globals (the constant-memory copies of Sec. IV) in the
  image's rodata region;
* lower each function to TAC, clean it, and emit x86-64 with the
  LLVM-flavoured instruction selection (single ``imul`` multiplies);
* install the code in the image's JIT region and return entry addresses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.backend.emit import EmitOptions, emit_function, emit_function_info
from repro.backend.opt import optimize as tac_optimize
from repro.cc.compiler import RodataPool
from repro.cpu.image import Image, RODATA_BASE
from repro.errors import CodegenError
from repro.ir.codegen.lower import lower_function, lower_function_info
from repro.ir.module import Function, Module
from repro.obs.trace import TRACER as _TR
from repro.x86.asm import Item, assemble_full


@dataclass(frozen=True)
class JITOptions:
    """Code-generation knobs for the JIT back-end."""

    mul_style: str = "imul"  # LLVM uses plain multiplies (Sec. VI-A)
    const_addressing: str = "riprel"
    optimize_tac: bool = True


class JITEngine:
    """Compiles MiniLLVM modules into an Image at runtime."""

    def __init__(self, image: Image, options: JITOptions = JITOptions()) -> None:
        self.image = image
        self.options = options
        self.pool = RodataPool(image)
        #: witness of the most recent ``compile_function`` (machine verify)
        self.last_witness = None

    def place_globals(self, module: Module) -> None:
        """Copy module globals into the image's rodata."""
        with self.image.codegen_lock:
            for g in module.globals.values():
                if g.addr is None:
                    g.addr = self.image.alloc_rodata(g.initializer, align=16)

    def compile_function(self, func: Function, *, name: str | None = None,
                         extra_symbols: dict[str, int] | None = None) -> int:
        """Compile one function; returns its entry address."""
        if not _TR.enabled:
            return self._compile_function(func, name, extra_symbols)
        with _TR.span("jit.compile", {"func": func.name}):
            return self._compile_function(func, name, extra_symbols)

    def _compile_function(self, func: Function, name: str | None,
                          extra_symbols: dict[str, int] | None) -> int:
        if func.is_declaration:
            raise CodegenError(f"cannot compile declaration @{func.name}",
                               stage="codegen", function=func.name)
        self.last_witness = None
        if func.module is not None:
            self.place_globals(func.module)
        span = _TR.start("jit.lower", {"func": func.name}) \
            if _TR.enabled else None
        try:
            try:
                tf, lower_info = lower_function_info(func)
            except CodegenError as exc:
                raise exc.with_context(stage="codegen", function=func.name)
            if self.options.optimize_tac:
                tac_optimize(tf)
        finally:
            if span is not None:
                _TR.finish(span)
        # the base address is computed before assembling against it, so
        # emit-through-install must be one critical section per image:
        # concurrent background compiles (repro.tier) would otherwise
        # claim the same JIT address
        span = _TR.start("jit.install", {"func": func.name}) \
            if _TR.enabled else None
        try:
            with self.image.codegen_lock:
                symbols = dict(self.image.symbols)
                if extra_symbols:
                    symbols.update(extra_symbols)
                # declared callees must resolve through existing image symbols
                items, emit_info = emit_function_info(
                    tf, self.pool,
                    EmitOptions(mul_style=self.options.mul_style,
                                const_addressing=self.options.const_addressing),
                    symbols,
                )
                base = self.image.next_code_addr(jit=True)
                code, _placed, labels = assemble_full(items, base)
                install_name = name or func.name
                addr = self.image.add_function(install_name, code, jit=True)
                rodata_end = self.image._rodata_cursor
        finally:
            if span is not None:
                _TR.finish(span)
        assert addr == labels[func.name]
        from repro.analysis.machine.witness import build_witness
        mem = self.image.memory
        self.last_witness = build_witness(
            func=func, name=install_name, code=code, base=base, labels=labels,
            lower_info=lower_info, emit_info=emit_info, symbols=symbols,
            rodata_range=(RODATA_BASE, rodata_end),
            read_rodata=lambda a, n: mem.read(a, n),
        )
        return addr

    def compile_module(self, module: Module) -> dict[str, int]:
        """Compile every defined function; returns name -> address."""
        with self.image.codegen_lock:
            return self._compile_module(module)

    def _compile_module(self, module: Module) -> dict[str, int]:
        self.last_witness = None  # witnesses are per-compile_function only
        self.place_globals(module)
        out: dict[str, int] = {}
        # two passes so intra-module calls resolve: declarations first
        defined = [f for f in module.functions.values() if not f.is_declaration]
        # emit in one item stream so cross-calls resolve by label
        items: list[Item] = []
        opts = EmitOptions(mul_style=self.options.mul_style,
                           const_addressing=self.options.const_addressing)
        for f in defined:
            tf = lower_function(f)
            if self.options.optimize_tac:
                tac_optimize(tf)
            items.extend(emit_function(tf, self.pool, opts, dict(self.image.symbols)))
        base = self.image.next_code_addr(jit=True)
        code, _placed, labels = assemble_full(items, base)
        blob_name = f"$jit{base:x}"
        self.image.add_function(blob_name, code, jit=True)
        del self.image.symbols[blob_name]
        addrs = sorted((labels[f.name], f.name) for f in defined)
        for i, (addr, fname) in enumerate(addrs):
            end = addrs[i + 1][0] if i + 1 < len(addrs) else base + len(code)
            self.image.symbols[fname] = addr
            self.image.func_sizes[fname] = end - addr
            out[fname] = addr
        return out
