"""IR -> TAC lowering: out-of-SSA conversion and instruction selection.

Value-class mapping: i1..i64 and pointers -> 'i' (64-bit GPR, values kept
*zero-extended* to 64 bits as the canonical form); double -> 'f'; i128 and
16-byte vectors -> 'v'.  Signed operations (sdiv, ashr, signed icmp,
sitofp) sign-extend their inputs on demand.

Phi elimination inserts parallel copies on each incoming edge; critical
edges are split first so the copies execute only on the intended path.
"""

from __future__ import annotations

from repro.backend.tac import TAddr, TBlock, TFunc, TInstr, VReg
from repro.errors import CodegenError
from repro.ir import instructions as I
from repro.ir.irtypes import (
    DoubleType, FloatType, IntType, PointerType, Type, VectorType,
)
from repro.ir.module import BasicBlock, Function, GlobalVariable
from repro.ir.values import Argument, Constant, ConstantFP, Undef, Value


def _cls_of(t: Type) -> str:
    if isinstance(t, (DoubleType,)):
        return "f"
    if isinstance(t, FloatType):
        raise CodegenError("binary32 float codegen is outside the subset")
    if isinstance(t, VectorType) or (isinstance(t, IntType) and t.bits == 128):
        if t.size_bytes() != 16:
            raise CodegenError(f"unsupported vector width {t}")
        return "v"
    if isinstance(t, (IntType, PointerType)):
        return "i"
    raise CodegenError(f"cannot lower values of type {t}")


def split_critical_edges(func: Function) -> None:
    """Insert empty blocks on edges from multi-succ blocks to multi-pred
    blocks so phi copies have a unique home."""
    preds: dict[int, list[BasicBlock]] = {}
    for b in func.blocks:
        for s in b.successors():
            preds.setdefault(id(s), []).append(b)
    for blk in list(func.blocks):
        term = blk.terminator
        if not isinstance(term, I.Br) or not term.is_conditional:
            continue
        for ti, target in enumerate(list(term.targets)):
            if len(preds.get(id(target), [])) <= 1 or not target.phis():
                continue
            mid = BasicBlock(func.next_name(f"crit.{blk.name}.{target.name}"))
            mid.function = func
            jmp = I.Br(None, target)
            jmp.block = mid
            mid.instructions.append(jmp)
            term.targets[ti] = mid
            for phi in target.phis():
                for i, ib in enumerate(phi.incoming_blocks):
                    if ib is blk:
                        phi.incoming_blocks[i] = mid
            func.blocks.insert(func.blocks.index(target), mid)


class Lowerer:
    def __init__(self, func: Function, *, split_unaligned: bool = True) -> None:
        self.func = func
        self.tf = TFunc(name=func.name)
        self.vmap: dict[int, VReg] = {}
        self.alloca_slots: dict[int, int] = {}  # id(Alloca) -> frame slot
        self.block_map: dict[int, TBlock] = {}
        self.current: TBlock | None = None
        #: LLVM-style conservative lowering of align-1 vector loads into a
        #: movsd+movhpd pair (vs GCC's movupd) — part of the Sec. VI-B
        #: forced-vectorization overhead
        self.split_unaligned = split_unaligned

    # -- helpers -------------------------------------------------------------

    def emit(self, **kw: object) -> TInstr:
        ins = TInstr(**kw)  # type: ignore[arg-type]
        assert self.current is not None
        self.current.instrs.append(ins)
        return ins

    def vreg(self, value: Value) -> VReg:
        v = self.vmap.get(id(value))
        if v is None:
            v = self.tf.new_vreg(_cls_of(value.type))
            self.vmap[id(value)] = v
        return v

    def value(self, value: Value) -> VReg:
        """Materialize an IR value into a vreg (constants emit loads)."""
        if isinstance(value, Constant):
            if _cls_of(value.type) == "v":
                # i128 constant: build the vector from its 64-bit halves
                lo_bits = value.value & (2**64 - 1)
                hi_bits = value.value >> 64
                lo_i = self.tf.new_vreg("i")
                self.emit(op="li", dst=lo_i, imm=lo_bits)
                lo_f = self.tf.new_vreg("f")
                self.emit(op="bits2f", dst=lo_f, a=lo_i)
                v = self.tf.new_vreg("v")
                self.emit(op="vbroadcast", dst=v, a=lo_f)
                if hi_bits != lo_bits:
                    hi_i = self.tf.new_vreg("i")
                    self.emit(op="li", dst=hi_i, imm=hi_bits)
                    hi_f = self.tf.new_vreg("f")
                    self.emit(op="bits2f", dst=hi_f, a=hi_i)
                    v2 = self.tf.new_vreg("v")
                    self.emit(op="vinsert1", dst=v2, a=v, b=hi_f)
                    return v2
                return v
            v = self.tf.new_vreg("i")
            self.emit(op="li", dst=v, imm=value.value)
            return v
        if isinstance(value, ConstantFP):
            v = self.tf.new_vreg("f")
            self.emit(op="lf", dst=v, fimm=value.value)
            return v
        from repro.ir.values import ConstantVector
        if isinstance(value, ConstantVector):
            elems = value.elements
            v = self.tf.new_vreg("v")
            lo = self.tf.new_vreg("f")
            e0 = elems[0].value if hasattr(elems[0], "value") else 0.0
            e1 = elems[1].value if len(elems) > 1 and hasattr(elems[1], "value") else 0.0
            self.emit(op="lf", dst=lo, fimm=float(e0))
            self.emit(op="vbroadcast", dst=v, a=lo)
            if float(e1) != float(e0):
                hi = self.tf.new_vreg("f")
                self.emit(op="lf", dst=hi, fimm=float(e1))
                v2 = self.tf.new_vreg("v")
                self.emit(op="vinsert1", dst=v2, a=v, b=hi)
                return v2
            return v
        if isinstance(value, Undef):
            cls = _cls_of(value.type)
            v = self.tf.new_vreg(cls)
            if cls == "i":
                self.emit(op="li", dst=v, imm=0)
            elif cls == "f":
                self.emit(op="lf", dst=v, fimm=0.0)
            else:
                z = self.tf.new_vreg("f")
                self.emit(op="lf", dst=z, fimm=0.0)
                self.emit(op="vbroadcast", dst=v, a=z)
            return v
        if isinstance(value, GlobalVariable):
            if value.addr is None:
                raise CodegenError(f"global @{value.name} has no address")
            v = self.tf.new_vreg("i")
            self.emit(op="li", dst=v, imm=value.addr)
            return v
        if isinstance(value, Function):
            raise CodegenError("function pointers are not supported")
        return self.vreg(value)

    def int_operand(self, value: Value) -> VReg | int:
        """Integer operand: small constants stay (signed) immediates."""
        if isinstance(value, Constant) and -(2**31) <= value.signed < 2**31:
            return value.signed
        return self.value(value)

    def sext64(self, value: Value) -> VReg:
        """Sign-extended-to-64 view of an integer value."""
        bits = value.type.bits  # type: ignore[attr-defined]
        v = self.value(value)
        if bits == 64 or bits == 1:
            return v
        out = self.tf.new_vreg("i")
        self.emit(op="ext", dst=out, a=v, width=bits // 8, signed=True)
        return out

    # -- addressing ------------------------------------------------------------

    def address_of(self, ptr: Value) -> TAddr:
        """Fold GEP/const chains into an x86 addressing mode."""
        disp = 0
        base: Value = ptr
        index: Value | None = None
        scale = 1
        for _ in range(16):
            if isinstance(base, I.GEP):
                idx = base.operands[1]
                size = base.elem.size_bytes()
                if isinstance(idx, Constant):
                    disp += idx.signed * size
                    base = base.operands[0]
                    continue
                if index is None and size in (1, 2, 4, 8) \
                        and isinstance(idx.type, IntType) and idx.type.bits == 64:
                    # peel `add x, C` and `mul x, {2,4,8}` / `shl x, {1,2,3}`
                    # out of the index so the i8* GEPs the lifter builds
                    # become real base+index*scale+disp operands
                    for _ in range(4):
                        if isinstance(idx, I.BinOp) and idx.opcode == "add" \
                                and isinstance(idx.operands[1], Constant):
                            disp += idx.operands[1].signed * size  # type: ignore[attr-defined]
                            idx = idx.operands[0]
                            continue
                        if isinstance(idx, I.BinOp) and idx.opcode == "add" \
                                and isinstance(idx.operands[0], Constant):
                            disp += idx.operands[0].signed * size  # type: ignore[attr-defined]
                            idx = idx.operands[1]
                            continue
                        break
                    if size == 1:
                        if isinstance(idx, I.BinOp) and idx.opcode == "mul" \
                                and isinstance(idx.operands[1], Constant) \
                                and idx.operands[1].value in (2, 4, 8):  # type: ignore[attr-defined]
                            scale = idx.operands[1].value  # type: ignore[attr-defined]
                            idx = idx.operands[0]
                        elif isinstance(idx, I.BinOp) and idx.opcode == "shl" \
                                and isinstance(idx.operands[1], Constant) \
                                and idx.operands[1].value in (1, 2, 3):  # type: ignore[attr-defined]
                            scale = 1 << idx.operands[1].value  # type: ignore[attr-defined]
                            idx = idx.operands[0]
                        else:
                            scale = size
                    else:
                        scale = size
                    # the scaled index may itself be offset: [b + (x+C)*s]
                    for _ in range(4):
                        if isinstance(idx, I.BinOp) and idx.opcode == "add" \
                                and isinstance(idx.operands[1], Constant):
                            disp += idx.operands[1].signed * scale  # type: ignore[attr-defined]
                            idx = idx.operands[0]
                            continue
                        if isinstance(idx, I.BinOp) and idx.opcode == "add" \
                                and isinstance(idx.operands[0], Constant):
                            disp += idx.operands[0].signed * scale  # type: ignore[attr-defined]
                            idx = idx.operands[1]
                            continue
                        break
                    index = idx
                    base = base.operands[0]
                    continue
                break
            if isinstance(base, I.Cast) and base.opcode in ("bitcast", "inttoptr"):
                inner = base.operands[0]
                if base.opcode == "inttoptr" and isinstance(inner, Constant):
                    disp += inner.signed
                    return TAddr(base=None, index=self.value(index) if index else None,
                                 scale=scale, disp=disp)
                base = inner
                continue
            if isinstance(base, I.BinOp) and base.opcode == "add" \
                    and isinstance(base.operands[1], Constant):
                disp += base.operands[1].signed  # type: ignore[attr-defined]
                base = base.operands[0]
                continue
            break
        if isinstance(base, GlobalVariable):
            if base.addr is None:
                raise CodegenError(f"global @{base.name} has no address")
            disp += base.addr
            return TAddr(base=None, index=self.value(index) if index else None,
                         scale=scale, disp=disp)
        return TAddr(
            base=self.value(base),
            index=self.value(index) if index is not None else None,
            scale=scale, disp=disp,
        )

    # -- driver --------------------------------------------------------------

    def run(self) -> TFunc:
        func = self.func
        split_critical_edges(func)
        # classify params
        iparams: list[VReg] = []
        fparams: list[VReg] = []
        for arg in func.args:
            cls = _cls_of(arg.type)
            v = self.vreg(arg)
            if cls == "f":
                fparams.append(v)
            elif cls == "i":
                iparams.append(v)
            else:
                raise CodegenError("vector parameters are not supported")
        self.tf.iparams = tuple(iparams)
        self.tf.fparams = tuple(fparams)
        ret = func.ftype.ret
        self.tf.ret_cls = None if ret.is_void else _cls_of(ret)

        for blk in func.blocks:
            tb = self.tf.block(f"b.{blk.name}")
            self.block_map[id(blk)] = tb

        for blk in func.blocks:
            self.current = self.block_map[id(blk)]
            for ins in blk.instructions:
                if isinstance(ins, I.Phi):
                    self.vreg(ins)  # ensure a home; copies come from preds
                    continue
                if ins.is_terminator:
                    self._phi_copies(blk)
                    self._terminator(blk, ins)
                else:
                    self._instr(ins)
        return self.tf

    def _phi_copies(self, blk: BasicBlock) -> None:
        """Parallel copies for phis of all successors (edge-split CFG).

        Copies are ordered so a destination is written only after it has
        been consumed as a source; cycles are broken with one temp.  Most
        edges degenerate to direct moves the register allocator can coalesce.
        """
        for succ in blk.successors():
            phis = succ.phis()
            if not phis:
                continue
            pending: list[tuple[VReg, VReg]] = []  # (src, home)
            for phi in phis:
                incoming = phi.incoming_for(blk)
                if incoming is None:
                    raise CodegenError(
                        f"@{self.func.name}: phi %{phi.name} lacks incoming "
                        f"for {blk.name}"
                    )
                if isinstance(incoming, Undef):
                    continue
                src = self.value(incoming)
                home = self.vreg(phi)
                if src != home:
                    pending.append((src, home))
            while pending:
                progressed = False
                for i, (src, home) in enumerate(pending):
                    blocked = any(s == home for s, _h in pending[:i] + pending[i + 1:])
                    if not blocked:
                        self.emit(op="mov", dst=home, a=src)
                        pending.pop(i)
                        progressed = True
                        break
                if not progressed:
                    src, home = pending[0]
                    tmp = self.tf.new_vreg(src.cls)
                    self.emit(op="mov", dst=tmp, a=src)
                    pending[0] = (tmp, home)

    # -- terminators -----------------------------------------------------------

    def _terminator(self, blk: BasicBlock, ins: I.Instruction) -> None:
        if isinstance(ins, I.Ret):
            if ins.value is None:
                self.emit(op="ret")
            else:
                self.emit(op="ret", a=self.value(ins.value))
            return
        if isinstance(ins, I.Br):
            if not ins.is_conditional:
                self.emit(op="jmp", labels=(self._label(ins.targets[0]),))
                return
            cond = ins.operands[0]
            lt = self._label(ins.targets[0])
            lf = self._label(ins.targets[1])
            if isinstance(cond, I.ICmp) and self._single_use_here(cond, ins):
                a, b, cc, w = self._icmp_parts(cond)
                self.emit(op="br", cc=cc, a=a, b=b, labels=(lt, lf), width=w)
                return
            if isinstance(cond, I.FCmp) and self._single_use_here(cond, ins) \
                    and cond.pred in _FCMP_CC:
                self.emit(op="fbr", cc=_FCMP_CC[cond.pred],
                          a=self.value(cond.operands[0]),
                          b=self.value(cond.operands[1]), labels=(lt, lf))
                return
            cv = self.value(cond)
            self.emit(op="br", cc="ne", a=cv, b=0, labels=(lt, lf))
            return
        if isinstance(ins, I.Unreachable):
            # lower as a self-loop trap; should never execute
            trap = self.tf.new_label("trap")
            self.emit(op="jmp", labels=(trap,))
            self.current = self.tf.block(trap)
            self.emit(op="jmp", labels=(trap,))
            return
        raise CodegenError(f"unknown terminator {ins.opcode}")

    def _label(self, blk: BasicBlock) -> str:
        return self.block_map[id(blk)].label

    def _single_use_here(self, value: I.Instruction, user: I.Instruction) -> bool:
        count = 0
        for ins in self.func.instructions():
            for op in ins.operands:
                if op is value:
                    count += 1
                    if ins is not user or count > 1:
                        return False
        return count == 1

    def _icmp_parts(self, cmp: I.ICmp) -> tuple[VReg, VReg | int, str, int]:
        t = cmp.operands[0].type
        bits = t.bits if isinstance(t, IntType) else 64
        signed = cmp.pred in ("slt", "sle", "sgt", "sge")
        width = 8
        if bits in (64, 1) or not signed:
            a: VReg = self.value(cmp.operands[0])
            b: VReg | int = self.int_operand(cmp.operands[1])
        elif bits == 32:
            # 32-bit compare forms work directly on the canonical low bits
            width = 4
            a = self.value(cmp.operands[0])
            rhs = cmp.operands[1]
            b = rhs.signed if isinstance(rhs, Constant) else self.value(rhs)
        else:
            # odd narrow signed compare: sign-extend both sides to 64
            a = self.sext64(cmp.operands[0])
            rhs = cmp.operands[1]
            if isinstance(rhs, Constant):
                b = rhs.signed
            else:
                b = self.sext64(rhs)
        cc = {"eq": "e", "ne": "ne", "slt": "l", "sle": "le", "sgt": "g",
              "sge": "ge", "ult": "b", "ule": "be", "ugt": "a", "uge": "ae"}[cmp.pred]
        return a, b, cc, width

    # -- instructions ----------------------------------------------------------

    def _instr(self, ins: I.Instruction) -> None:
        op = ins.opcode
        if isinstance(ins, I.BinOp):
            self._binop(ins)
            return
        if isinstance(ins, I.ICmp):
            if self._only_used_by_branches(ins):
                return  # fused at the branch site
            a, b, cc, w = self._icmp_parts(ins)
            self.emit(op="setcc", dst=self.vreg(ins), cc=cc, a=a, b=b, width=w)
            return
        if isinstance(ins, I.FCmp):
            if self._only_used_by_branches(ins):
                return
            if ins.pred not in _FCMP_CC:
                raise CodegenError(f"fcmp {ins.pred} not lowered")
            self.emit(op="fsetcc", dst=self.vreg(ins), cc=_FCMP_CC[ins.pred],
                      a=self.value(ins.operands[0]), b=self.value(ins.operands[1]))
            return
        if isinstance(ins, I.Select):
            self._select(ins)
            return
        if isinstance(ins, I.Cast):
            self._cast(ins)
            return
        if isinstance(ins, I.Load):
            self._load(ins)
            return
        if isinstance(ins, I.Store):
            self._store(ins)
            return
        if isinstance(ins, I.Alloca):
            slot = self.tf.new_slot(ins.size, ins.align)
            self.alloca_slots[id(ins)] = slot
            self.emit(op="frame", dst=self.vreg(ins), slot=slot)
            return
        if isinstance(ins, I.GEP):
            addr = self.address_of(ins)
            self.emit(op="lea", dst=self.vreg(ins), addr=addr)
            return
        if isinstance(ins, I.ExtractElement):
            self._extract(ins)
            return
        if isinstance(ins, I.InsertElement):
            self._insert(ins)
            return
        if isinstance(ins, I.ShuffleVector):
            self._shuffle(ins)
            return
        if isinstance(ins, I.Call):
            self._call(ins)
            return
        raise CodegenError(f"cannot lower {op}")

    def _only_used_by_branches(self, value: I.Instruction) -> bool:
        for ins in self.func.instructions():
            for op in ins.operands:
                if op is value:
                    if not (isinstance(ins, I.Br) and ins.is_conditional
                            and self._single_use_here(value, ins)):
                        return False
        return True

    _INT_OPS = {"add": "add", "sub": "sub", "mul": "mul", "and": "and",
                "or": "or", "xor": "xor", "shl": "shl", "lshr": "shr"}
    _FP_OPS = {"fadd": "fadd", "fsub": "fsub", "fmul": "fmul", "fdiv": "fdiv"}
    _VEC_OPS = {"fadd": "vadd", "fsub": "vsub", "fmul": "vmul",
                "and": "vand", "or": "vor", "xor": "vxor"}

    def _binop(self, ins: I.BinOp) -> None:
        t = ins.type
        dst = self.vreg(ins)
        a_v, b_v = ins.operands
        if isinstance(t, VectorType) or (isinstance(t, IntType) and t.bits == 128):
            vop = self._VEC_OPS.get(ins.opcode)
            if vop is None:
                raise CodegenError(f"{ins.opcode} on {t} not lowered")
            self.emit(op=vop, dst=dst, a=self.value(a_v), b=self.value(b_v))
            return
        if isinstance(t, DoubleType):
            fop = self._FP_OPS[ins.opcode]
            self.emit(op=fop, dst=dst, a=self.value(a_v), b=self.value(b_v))
            return
        assert isinstance(t, IntType)
        bits = t.bits
        opc = ins.opcode
        # i32 ops use 32-bit register forms (results zero-extend for free);
        # i64 uses 64-bit forms; odd widths mask afterwards
        width = 4 if bits == 32 else 8
        mask_after = bits not in (32, 64) and opc not in ("and", "or", "lshr")
        if opc in self._INT_OPS:
            top = self._INT_OPS[opc]
            if opc == "lshr" and bits not in (32, 64):
                pass  # canonical zext form makes plain shr correct at any width
            self.emit(op=top, dst=dst, a=self.value(a_v),
                      b=self.int_operand(b_v), width=width)
        elif opc == "ashr":
            av = self.sext64(a_v) if bits not in (32, 64) else self.value(a_v)
            self.emit(op="sar", dst=dst, a=av, b=self.int_operand(b_v), width=width)
        elif opc in ("sdiv", "srem"):
            if bits in (32, 64):
                av: VReg | int = self.value(a_v)
                bv: VReg | int = self.value(b_v)
            else:
                av = self.sext64(a_v)
                bv = self.sext64(b_v) if not isinstance(b_v, Constant) else b_v.signed
            self.emit(op="div" if opc == "sdiv" else "rem", dst=dst,
                      a=av, b=bv, width=width)
        elif opc in ("udiv", "urem"):
            if bits == 32:
                raise CodegenError("udiv i32 not lowered")  # rare; use 64-bit
            self.emit(op="div" if opc == "udiv" else "rem",
                      dst=dst, a=self.value(a_v), b=self.int_operand(b_v))
        else:
            raise CodegenError(f"binop {opc} not lowered")
        if mask_after:
            masked = self.tf.new_vreg("i")
            if bits == 1:
                self.emit(op="and", dst=masked, a=dst, b=1)
            else:
                self.emit(op="ext", dst=masked, a=dst, width=max(1, bits // 8),
                          signed=False)
            self.vmap[id(ins)] = masked

    def _select(self, ins: I.Select) -> None:
        cond, a_v, b_v = ins.operands
        dst = self.vreg(ins)
        if _cls_of(ins.type) != "i":
            # float select via tiny diamond
            lt = self.tf.new_label("selt")
            lf = self.tf.new_label("self")
            lj = self.tf.new_label("selj")
            self._emit_cond_jump(cond, lt, lf)
            self.current = self.tf.block(lt)
            self.emit(op="mov", dst=dst, a=self.value(a_v))
            self.emit(op="jmp", labels=(lj,))
            self.current = self.tf.block(lf)
            self.emit(op="mov", dst=dst, a=self.value(b_v))
            self.emit(op="jmp", labels=(lj,))
            self.current = self.tf.block(lj)
            return
        # integer select -> cmp + cmov (Fig. 6 pattern)
        self.emit(op="mov", dst=dst, a=self.value(b_v))
        then_v = self.value(a_v)
        if isinstance(cond, I.ICmp) and self._only_used_by_selects_here(cond):
            a, b, cc, w = self._icmp_parts(cond)
            self.emit(op="cmp", a=a, b=b, width=w)
            self.emit(op="cmov", dst=dst, cc=cc, a=then_v)
        else:
            cv = self.value(cond)
            self.emit(op="cmp", a=cv, b=0)
            self.emit(op="cmov", dst=dst, cc="ne", a=then_v)

    def _only_used_by_selects_here(self, value: I.Instruction) -> bool:
        for ins in self.func.instructions():
            for op in ins.operands:
                if op is value and not isinstance(ins, I.Select):
                    return False
        return True

    def _emit_cond_jump(self, cond: Value, lt: str, lf: str) -> None:
        if isinstance(cond, I.ICmp):
            a, b, cc, w = self._icmp_parts(cond)
            self.emit(op="br", cc=cc, a=a, b=b, labels=(lt, lf), width=w)
        else:
            self.emit(op="br", cc="ne", a=self.value(cond), b=0, labels=(lt, lf))

    def _cast(self, ins: I.Cast) -> None:
        (src,) = ins.operands
        op = ins.opcode
        dst_t = ins.type
        if op == "trunc":
            bits = dst_t.bits  # type: ignore[attr-defined]
            v = self.value(src)
            if v.cls == "v":
                # i128 -> iN: take the low lane bits first (movq r64, xmm)
                low = self.tf.new_vreg("f")
                self.emit(op="vlow", dst=low, a=v)
                v64 = self.tf.new_vreg("i")
                self.emit(op="f2bits", dst=v64, a=low)
                v = v64
            if bits == 64:
                self.vmap[id(ins)] = v
                return
            if bits == 1:
                out = self.vreg(ins)
                self.emit(op="and", dst=out, a=v, b=1)
                return
            out = self.vreg(ins)
            self.emit(op="ext", dst=out, a=v, width=bits // 8, signed=False)
            return
        if op == "zext":
            if _cls_of(dst_t) == "v":
                # iN -> i128: value in the low lane, upper lane zeroed
                v = self.value(src)
                f = self.tf.new_vreg("f")
                self.emit(op="bits2f", dst=f, a=v)
                z = self.tf.new_vreg("f")
                self.emit(op="lf", dst=z, fimm=0.0)
                zv = self.tf.new_vreg("v")
                self.emit(op="vbroadcast", dst=zv, a=z)
                out = self.vreg(ins)
                self.emit(op="vinsert0", dst=out, a=zv, b=f)
                return
            self.vmap[id(ins)] = self.value(src)  # canonical form is zext
            return
        if op == "sext":
            sbits = src.type.bits  # type: ignore[attr-defined]
            dbits = dst_t.bits  # type: ignore[attr-defined]
            v = self.sext64(src) if sbits > 1 else self.value(src)
            if sbits == 1 and dbits > 1:
                out = self.vreg(ins)
                neg = self.tf.new_vreg("i")
                self.emit(op="neg", dst=neg, a=v)
                if dbits < 64:
                    self.emit(op="ext", dst=out, a=neg, width=dbits // 8, signed=False)
                else:
                    self.vmap[id(ins)] = neg
                return
            if dbits < 64:
                out = self.vreg(ins)
                self.emit(op="ext", dst=out, a=v, width=dbits // 8, signed=False)
            else:
                self.vmap[id(ins)] = v
            return
        if op in ("inttoptr", "ptrtoint"):
            self.vmap[id(ins)] = self.value(src)
            return
        if op == "bitcast":
            scls = _cls_of(src.type)
            dcls = _cls_of(dst_t)
            if scls == dcls:
                self.vmap[id(ins)] = self.value(src)
                return
            out = self.vreg(ins)
            if scls == "i" and dcls == "f":
                self.emit(op="bits2f", dst=out, a=self.value(src))
            elif scls == "f" and dcls == "i":
                self.emit(op="f2bits", dst=out, a=self.value(src))
            elif scls == "f" and dcls == "v":
                # widen: scalar becomes low lane, upper lane zero
                z = self.tf.new_vreg("f")
                self.emit(op="lf", dst=z, fimm=0.0)
                zv = self.tf.new_vreg("v")
                self.emit(op="vbroadcast", dst=zv, a=z)
                self.emit(op="vinsert0", dst=out, a=zv, b=self.value(src))
            elif scls == "v" and dcls == "f":
                self.emit(op="vlow", dst=out, a=self.value(src))
            else:
                raise CodegenError(f"bitcast {src.type} -> {dst_t} not lowered")
            return
        if op in ("sitofp", "uitofp"):
            v = self.sext64(src) if op == "sitofp" else self.value(src)
            self.emit(op="i2f", dst=self.vreg(ins), a=v)
            return
        if op == "fptosi":
            out = self.vreg(ins)
            self.emit(op="f2i", dst=out, a=self.value(src))
            bits = dst_t.bits  # type: ignore[attr-defined]
            if bits < 64:
                masked = self.tf.new_vreg("i")
                self.emit(op="ext", dst=masked, a=out, width=bits // 8, signed=False)
                self.vmap[id(ins)] = masked
            return
        raise CodegenError(f"cast {op} not lowered")

    def _load(self, ins: I.Load) -> None:
        t = ins.type
        addr = self.address_of(ins.operands[0])
        cls = _cls_of(t)
        if cls == "f":
            self.emit(op="fload", dst=self.vreg(ins), addr=addr)
        elif cls == "v":
            if ins.align < 8 and self.split_unaligned:
                self.emit(op="vload_split", dst=self.vreg(ins), addr=addr)
            else:
                self.emit(op="vload", dst=self.vreg(ins), addr=addr,
                          aligned=ins.align >= 16)
        else:
            width = t.size_bytes() if isinstance(t, IntType) else 8
            if isinstance(t, IntType) and t.bits == 1:
                width = 1
            self.emit(op="load", dst=self.vreg(ins), addr=addr,
                      width=width, signed=False)
            if isinstance(t, IntType) and t.bits == 1:
                masked = self.tf.new_vreg("i")
                self.emit(op="and", dst=masked, a=self.vmap[id(ins)], b=1)
                self.vmap[id(ins)] = masked

    def _store(self, ins: I.Store) -> None:
        value, pointer = ins.operands
        t = value.type
        addr = self.address_of(pointer)
        cls = _cls_of(t)
        if cls == "f":
            self.emit(op="fstore", addr=addr, a=self.value(value))
        elif cls == "v":
            self.emit(op="vstore", addr=addr, a=self.value(value),
                      aligned=ins.align >= 16)
        else:
            width = t.size_bytes() if isinstance(t, IntType) else 8
            self.emit(op="store", addr=addr, a=self.value(value), width=width)

    def _extract(self, ins: I.ExtractElement) -> None:
        vec, idx = ins.operands
        if not isinstance(idx, Constant):
            raise CodegenError("dynamic extractelement not lowered")
        if not isinstance(ins.type, DoubleType):
            raise CodegenError(f"extractelement of {ins.type} not lowered")
        v = self.value(vec)
        self.emit(op="vlow" if idx.value == 0 else "vhigh",
                  dst=self.vreg(ins), a=v)

    def _insert(self, ins: I.InsertElement) -> None:
        vec, val, idx = ins.operands
        if not isinstance(idx, Constant):
            raise CodegenError("dynamic insertelement not lowered")
        if not isinstance(val.type, DoubleType):
            raise CodegenError(f"insertelement of {val.type} not lowered")
        self.emit(op="vinsert0" if idx.value == 0 else "vinsert1",
                  dst=self.vreg(ins), a=self.value(vec), b=self.value(val))

    def _shuffle(self, ins: I.ShuffleVector) -> None:
        a, b = ins.operands
        if len(ins.mask) != 2:
            raise CodegenError("only 2-lane shuffles are lowered")
        m0, m1 = ins.mask
        src0 = a if m0 < 2 else b
        src1 = a if m1 < 2 else b
        imm = (m0 & 1) | ((m1 & 1) << 1)
        self.emit(op="vshuf", dst=self.vreg(ins), a=self.value(src0),
                  b=self.value(src1), imm=imm)

    def _call(self, ins: I.Call) -> None:
        if ins.intrinsic:
            self._intrinsic(ins)
            return
        iargs: list[VReg] = []
        fargs: list[VReg] = []
        for arg in ins.operands:
            cls = _cls_of(arg.type)
            if cls == "f":
                fargs.append(self.value(arg))
            elif cls == "i":
                iargs.append(self.value(arg))
            else:
                raise CodegenError("vector call arguments not supported")
        dst = None if ins.type.is_void else self.vreg(ins)
        self.emit(op="call", dst=dst, func=ins.callee_name,
                  iargs=tuple(iargs), fargs=tuple(fargs))

    def _intrinsic(self, ins: I.Call) -> None:
        name = ins.callee_name
        if name.startswith("llvm.ctpop"):
            # popcount via the classic SWAR sequence on 8 bits
            v = self.value(ins.operands[0])
            dst = self.vreg(ins)
            t1 = self.tf.new_vreg("i")
            t2 = self.tf.new_vreg("i")
            t3 = self.tf.new_vreg("i")
            t4 = self.tf.new_vreg("i")
            # b - ((b >> 1) & 0x55)
            self.emit(op="shr", dst=t1, a=v, b=1)
            self.emit(op="and", dst=t2, a=t1, b=0x55)
            self.emit(op="sub", dst=t3, a=v, b=t2)
            # (x & 0x33) + ((x >> 2) & 0x33)
            a1 = self.tf.new_vreg("i")
            a2 = self.tf.new_vreg("i")
            a3 = self.tf.new_vreg("i")
            self.emit(op="and", dst=a1, a=t3, b=0x33)
            self.emit(op="shr", dst=t4, a=t3, b=2)
            self.emit(op="and", dst=a2, a=t4, b=0x33)
            self.emit(op="add", dst=a3, a=a1, b=a2)
            # (x + (x >> 4)) & 0x0f
            b1 = self.tf.new_vreg("i")
            b2 = self.tf.new_vreg("i")
            self.emit(op="shr", dst=b1, a=a3, b=4)
            self.emit(op="add", dst=b2, a=a3, b=b1)
            self.emit(op="and", dst=dst, a=b2, b=0x0F)
            return
        if name.startswith("llvm.sqrt"):
            raise CodegenError("llvm.sqrt lowering not implemented")
        raise CodegenError(f"intrinsic {name} not lowered")


_FCMP_CC = {
    "oeq": "e", "one": "ne", "olt": "b", "ole": "be", "ogt": "a", "oge": "ae",
    "ueq": "e", "une": "ne", "ult": "b", "ule": "be", "ugt": "a", "uge": "ae",
}


def lower_function(func: Function) -> TFunc:
    """Lower one optimized IR function to TAC."""
    return Lowerer(func).run()


class LowerInfo:
    """Byproduct of lowering consumed by the machine-verification witness:
    which vreg each IR value ended up in, and which frame slot each alloca
    received.  Keys are ``id(value)`` (values stay alive via the function)."""

    __slots__ = ("vmap", "alloca_slots")

    def __init__(self, vmap: dict[int, VReg], alloca_slots: dict[int, int]) -> None:
        self.vmap = vmap
        self.alloca_slots = alloca_slots


def lower_function_info(func: Function) -> tuple[TFunc, LowerInfo]:
    """Like :func:`lower_function`, also returning the value/slot maps."""
    lw = Lowerer(func)
    tf = lw.run()
    return tf, LowerInfo(lw.vmap, lw.alloca_slots)
