"""MiniLLVM: a typed SSA IR with optimizer and x86-64 JIT back-end.

This package substitutes for LLVM 3.7 in the reproduction: the lifter
(:mod:`repro.lift`) emits this IR from x86-64 binary code, the ``-O3``-style
pipeline (:mod:`repro.ir.passes`) optimizes it, and the code generator
(:mod:`repro.ir.codegen`) JIT-compiles it back into the simulated image.

The design follows LLVM's shape where the paper depends on it:

* integers of explicit bit width (i1..i128), doubles, vectors, pointers;
* instructions are values; basic blocks end in terminators; phis at block
  entry (the register merge points of Sec. III-C);
* ``undef`` exists because unwritten registers lift to it;
* loads/stores carry alignment, and *absence* of alignment/type metadata
  is what gates the loop vectorizer (the paper's Sec. VI-B observation).
"""

from repro.ir.irtypes import (
    DOUBLE, FLOAT, I1, I8, I16, I32, I64, I128, V2F64, VOID,
    FunctionType, IntType, PointerType, Type, VectorType, ptr,
)
from repro.ir.module import BasicBlock, Function, GlobalVariable, Module
from repro.ir.values import Argument, Constant, ConstantFP, Undef, Value
from repro.ir.builder import IRBuilder
from repro.ir.verifier import verify
from repro.ir.printer import print_function, print_module
from repro.ir.interp import Interpreter

__all__ = [
    "Argument", "BasicBlock", "Constant", "ConstantFP", "DOUBLE", "FLOAT",
    "Function", "FunctionType", "GlobalVariable", "I1", "I8", "I16", "I32",
    "I64", "I128", "IRBuilder", "IntType", "Interpreter", "Module",
    "PointerType", "Type", "Undef", "V2F64", "VOID", "Value", "VectorType",
    "print_function", "print_module", "ptr", "verify",
]
