"""MiniLLVM values: the SSA value hierarchy below instructions.

``Value`` carries a type and an optional name.  Use-def chains are not
materialized; passes that need them scan the function (functions here are a
few hundred instructions, so O(n) RAUW is fine and much simpler).
"""

from __future__ import annotations

from repro.ir.irtypes import DoubleType, FloatType, IntType, Type


class Value:
    """Base of everything that can appear as an operand."""

    __slots__ = ("type", "name")

    def __init__(self, type_: Type, name: str = "") -> None:
        self.type = type_
        self.name = name

    def short(self) -> str:
        return f"%{self.name}" if self.name else "%?"

    def __repr__(self) -> str:
        return f"{self.type} {self.short()}"


class Constant(Value):
    """Integer constant (stored unsigned-masked to the type width)."""

    __slots__ = ("value",)

    def __init__(self, type_: Type, value: int) -> None:
        if not isinstance(type_, IntType):
            raise TypeError(f"Constant requires an integer type, got {type_}")
        super().__init__(type_)
        self.value = value & type_.mask

    @property
    def signed(self) -> int:
        bits = self.type.bits  # type: ignore[attr-defined]
        sign = 1 << (bits - 1)
        return (self.value & (sign - 1)) - (self.value & sign)

    def short(self) -> str:
        return str(self.signed)

    def __repr__(self) -> str:
        return f"{self.type} {self.signed}"


class ConstantFP(Value):
    """Floating-point constant."""

    __slots__ = ("value",)

    def __init__(self, type_: Type, value: float) -> None:
        if not isinstance(type_, (DoubleType, FloatType)):
            raise TypeError(f"ConstantFP requires a float type, got {type_}")
        super().__init__(type_)
        self.value = float(value)

    def short(self) -> str:
        return repr(self.value)

    def __repr__(self) -> str:
        return f"{self.type} {self.value!r}"


class ConstantVector(Value):
    """A constant vector (e.g. ``<2 x double> zeroinitializer``)."""

    __slots__ = ("elements",)

    def __init__(self, type_: Type, elements: tuple[Value, ...]) -> None:
        super().__init__(type_)
        self.elements = elements

    def short(self) -> str:
        if all(isinstance(e, ConstantFP) and e.value == 0.0 for e in self.elements) \
                or all(isinstance(e, Constant) and e.value == 0 for e in self.elements):
            return "zeroinitializer"
        return "<" + ", ".join(repr(e) for e in self.elements) + ">"


class Undef(Value):
    """The undef value — unwritten registers lift to this (Sec. III-C)."""

    __slots__ = ()

    def short(self) -> str:
        return "undef"

    def __repr__(self) -> str:
        return f"{self.type} undef"


class Argument(Value):
    """A formal function parameter."""

    __slots__ = ("index",)

    def __init__(self, type_: Type, index: int, name: str = "") -> None:
        super().__init__(type_, name or f"arg{index}")
        self.index = index


def is_const_int(v: Value, value: int | None = None) -> bool:
    """True if ``v`` is an integer constant (optionally of a given value)."""
    if not isinstance(v, Constant):
        return False
    return value is None or v.signed == value or v.value == value % (1 << v.type.bits)  # type: ignore[attr-defined]
