"""Textual IR printing in LLVM-assembly style (for Fig. 5/6 listings)."""

from __future__ import annotations

from repro.ir import instructions as I
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.values import Value


def _operand(v: Value) -> str:
    return v.short()


def _typed(v: Value) -> str:
    return f"{v.type} {v.short()}"


def print_instruction(ins: I.Instruction) -> str:
    op = ins.opcode
    if isinstance(ins, I.BinOp):
        a, b = ins.operands
        return f"%{ins.name} = {op} {a.type} {_operand(a)}, {_operand(b)}"
    if isinstance(ins, I.ICmp) or isinstance(ins, I.FCmp):
        a, b = ins.operands
        return f"%{ins.name} = {op} {ins.pred} {a.type} {_operand(a)}, {_operand(b)}"
    if isinstance(ins, I.Select):
        c, a, b = ins.operands
        return f"%{ins.name} = select {_typed(c)}, {_typed(a)}, {_typed(b)}"
    if isinstance(ins, I.Cast):
        (a,) = ins.operands
        return f"%{ins.name} = {op} {_typed(a)} to {ins.type}"
    if isinstance(ins, I.Load):
        (p,) = ins.operands
        align = f", align {ins.align}" if ins.align > 1 else ""
        return f"%{ins.name} = load {ins.type}, {_typed(p)}{align}"
    if isinstance(ins, I.Store):
        v, p = ins.operands
        align = f", align {ins.align}" if ins.align > 1 else ""
        return f"store {_typed(v)}, {_typed(p)}{align}"
    if isinstance(ins, I.Alloca):
        return f"%{ins.name} = alloca [{ins.size} x i8], align {ins.align}"
    if isinstance(ins, I.GEP):
        p, idx = ins.operands
        return (f"%{ins.name} = getelementptr {ins.elem}, {_typed(p)}, "
                f"{_typed(idx)}")
    if isinstance(ins, I.ExtractElement):
        v, idx = ins.operands
        return f"%{ins.name} = extractelement {_typed(v)}, {_typed(idx)}"
    if isinstance(ins, I.InsertElement):
        v, x, idx = ins.operands
        return f"%{ins.name} = insertelement {_typed(v)}, {_typed(x)}, {_typed(idx)}"
    if isinstance(ins, I.ShuffleVector):
        a, b = ins.operands
        mask = ", ".join(f"i32 {m}" for m in ins.mask)
        return f"%{ins.name} = shufflevector {_typed(a)}, {_typed(b)}, <{mask}>"
    if isinstance(ins, I.Phi):
        pairs = ", ".join(
            f"[ {_operand(v)}, %{b.name} ]" for v, b in ins.incoming()
        )
        return f"%{ins.name} = phi {ins.type} {pairs}"
    if isinstance(ins, I.Call):
        args = ", ".join(_typed(a) for a in ins.operands)
        callee = ins.callee_name
        if ins.type.is_void:
            return f"call void @{callee}({args})"
        return f"%{ins.name} = call {ins.type} @{callee}({args})"
    if isinstance(ins, I.Br):
        if ins.is_conditional:
            c = ins.operands[0]
            return (f"br i1 {_operand(c)}, label %{ins.targets[0].name}, "
                    f"label %{ins.targets[1].name}")
        return f"br label %{ins.targets[0].name}"
    if isinstance(ins, I.Ret):
        if ins.value is None:
            return "ret void"
        return f"ret {_typed(ins.value)}"
    if isinstance(ins, I.Unreachable):
        return "unreachable"
    return f"<unknown {op}>"


def print_block(block: BasicBlock) -> str:
    lines = [f"{block.name}:"]
    lines.extend(f"  {print_instruction(i)}" for i in block.instructions)
    return "\n".join(lines)


def print_function(func: Function) -> str:
    params = ", ".join(f"{a.type} %{a.name}" for a in func.args)
    attrs = " alwaysinline" if func.always_inline else ""
    if func.is_declaration:
        return f"declare {func.ftype.ret} @{func.name}({params})"
    head = f"define {func.ftype.ret} @{func.name}({params}){attrs} {{"
    body = "\n\n".join(print_block(b) for b in func.blocks)
    return f"{head}\n{body}\n}}"


def print_module(module: Module) -> str:
    parts = []
    for g in module.globals.values():
        kind = "constant" if g.constant else "global"
        parts.append(f"@{g.name} = {kind} [{len(g.initializer)} x i8]")
    for f in module.functions.values():
        parts.append(print_function(f))
    return "\n\n".join(parts)
