"""MiniLLVM type system.

Interned immutable types; compare with ``is`` or ``==`` (both work — the
constructors memoize).  Sizes follow the x86-64 data layout the paper
assumes: pointers are 64-bit, doubles 8 bytes, vectors dense.
"""

from __future__ import annotations

from typing import ClassVar


class Type:
    """Base class; subclasses are interned."""

    def size_bytes(self) -> int:
        raise NotImplementedError

    # types are immutable and compared with ``is``: any copy (deepcopy of a
    # cached IR module, pickle round-trip through the on-disk code cache)
    # must come back as the *same* interned object
    def __copy__(self) -> "Type":
        return self

    def __deepcopy__(self, memo: dict) -> "Type":
        return self

    @property
    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    @property
    def is_float(self) -> bool:
        return isinstance(self, (DoubleType, FloatType))

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_vector(self) -> bool:
        return isinstance(self, VectorType)

    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    @property
    def is_first_class(self) -> bool:
        return not isinstance(self, (VoidType, FunctionType))


class VoidType(Type):
    _instance: ClassVar["VoidType | None"] = None

    def __new__(cls) -> "VoidType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __reduce__(self):
        return (VoidType, ())

    def size_bytes(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "void"


class IntType(Type):
    _cache: ClassVar[dict[int, "IntType"]] = {}

    def __new__(cls, bits: int) -> "IntType":
        inst = cls._cache.get(bits)
        if inst is None:
            if bits not in (1, 8, 16, 32, 64, 128):
                raise ValueError(f"unsupported integer width i{bits}")
            inst = super().__new__(cls)
            inst.bits = bits
            cls._cache[bits] = inst
        return inst

    bits: int

    def __reduce__(self):
        return (IntType, (self.bits,))

    def size_bytes(self) -> int:
        return max(1, self.bits // 8)

    @property
    def mask(self) -> int:
        return (1 << self.bits) - 1

    def __repr__(self) -> str:
        return f"i{self.bits}"


class DoubleType(Type):
    _instance: ClassVar["DoubleType | None"] = None

    def __new__(cls) -> "DoubleType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __reduce__(self):
        return (DoubleType, ())

    def size_bytes(self) -> int:
        return 8

    def __repr__(self) -> str:
        return "double"


class FloatType(Type):
    _instance: ClassVar["FloatType | None"] = None

    def __new__(cls) -> "FloatType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __reduce__(self):
        return (FloatType, ())

    def size_bytes(self) -> int:
        return 4

    def __repr__(self) -> str:
        return "float"


class PointerType(Type):
    _cache: ClassVar[dict[tuple[int, int], "PointerType"]] = {}

    def __new__(cls, pointee: Type, addrspace: int = 0) -> "PointerType":
        key = (id(pointee), addrspace)
        inst = cls._cache.get(key)
        if inst is None:
            inst = super().__new__(cls)
            inst.pointee = pointee
            inst.addrspace = addrspace
            cls._cache[key] = inst
        return inst

    pointee: Type
    addrspace: int

    def __reduce__(self):
        return (PointerType, (self.pointee, self.addrspace))

    def size_bytes(self) -> int:
        return 8

    def __repr__(self) -> str:
        if self.addrspace:
            return f"{self.pointee} addrspace({self.addrspace})*"
        return f"{self.pointee}*"


class VectorType(Type):
    _cache: ClassVar[dict[tuple[int, int], "VectorType"]] = {}

    def __new__(cls, elem: Type, count: int) -> "VectorType":
        key = (id(elem), count)
        inst = cls._cache.get(key)
        if inst is None:
            inst = super().__new__(cls)
            inst.elem = elem
            inst.count = count
            cls._cache[key] = inst
        return inst

    elem: Type
    count: int

    def __reduce__(self):
        return (VectorType, (self.elem, self.count))

    def size_bytes(self) -> int:
        return self.elem.size_bytes() * self.count

    def __repr__(self) -> str:
        return f"<{self.count} x {self.elem}>"


class FunctionType(Type):
    def __init__(self, ret: Type, params: tuple[Type, ...]) -> None:
        self.ret = ret
        self.params = params

    def size_bytes(self) -> int:
        raise TypeError("function types have no size")

    def __repr__(self) -> str:
        return f"{self.ret} ({', '.join(map(repr, self.params))})"

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, FunctionType) and other.ret is self.ret
                and other.params == self.params)

    def __hash__(self) -> int:
        return hash((id(self.ret), tuple(id(p) for p in self.params)))


VOID = VoidType()
I1 = IntType(1)
I8 = IntType(8)
I16 = IntType(16)
I32 = IntType(32)
I64 = IntType(64)
I128 = IntType(128)
DOUBLE = DoubleType()
FLOAT = FloatType()
V2F64 = VectorType(DOUBLE, 2)
V4F32 = VectorType(FLOAT, 4)
V2I64 = VectorType(I64, 2)
V4I32 = VectorType(I32, 4)


def ptr(pointee: Type, addrspace: int = 0) -> PointerType:
    """Shorthand pointer constructor."""
    return PointerType(pointee, addrspace)
