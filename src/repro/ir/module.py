"""MiniLLVM containers: Module, Function, BasicBlock, GlobalVariable."""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import IRError
from repro.ir.instructions import Instruction, Phi
from repro.ir.irtypes import FunctionType, PointerType, Type
from repro.ir.values import Argument, Value


class GlobalVariable(Value):
    """A module-level constant/variable backed by initializer bytes.

    Section IV clones fixed memory regions into the module as globals; the
    JIT materializes ``initializer`` into the image's rodata and the value
    becomes the absolute address.
    """

    __slots__ = ("initializer", "constant", "addr")

    def __init__(self, name: str, pointee: Type, initializer: bytes,
                 constant: bool = True) -> None:
        super().__init__(PointerType(pointee), name)
        self.initializer = initializer
        self.constant = constant
        self.addr: int | None = None  # filled when placed in an image

    def short(self) -> str:
        return f"@{self.name}"


class BasicBlock:
    """A labeled list of instructions ending in a terminator."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.instructions: list[Instruction] = []
        self.function: Function | None = None

    @property
    def terminator(self) -> Instruction | None:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    def append(self, ins: Instruction) -> Instruction:
        if self.terminator is not None:
            raise IRError(f"appending after terminator in {self.name}")
        ins.block = self
        self.instructions.append(ins)
        f = self.function
        if f is not None:
            f.bump_version()
        return ins

    def insert(self, index: int, ins: Instruction) -> Instruction:
        ins.block = self
        self.instructions.insert(index, ins)
        f = self.function
        if f is not None:
            f.bump_version()
        return ins

    def phis(self) -> list[Phi]:
        out = []
        for ins in self.instructions:
            if isinstance(ins, Phi):
                out.append(ins)
            else:
                break
        return out

    def first_non_phi(self) -> int:
        for i, ins in enumerate(self.instructions):
            if not isinstance(ins, Phi):
                return i
        return len(self.instructions)

    def successors(self) -> list["BasicBlock"]:
        term = self.terminator
        return term.successors() if term else []

    def __repr__(self) -> str:
        return f"<block {self.name}: {len(self.instructions)} instrs>"


class Function(Value):
    """A function: arguments + basic blocks (first block is the entry)."""

    __slots__ = ("ftype", "args", "blocks", "module", "always_inline",
                 "_name_counter", "is_declaration", "_version", "__weakref__")

    def __init__(self, name: str, ftype: FunctionType) -> None:
        super().__init__(PointerType(ftype), name)  # functions are pointers
        self.ftype = ftype
        self.args = [Argument(t, i) for i, t in enumerate(ftype.params)]
        self.blocks: list[BasicBlock] = []
        self.module: Module | None = None
        self.always_inline = False
        self.is_declaration = False
        self._name_counter = 0
        self._version = 0

    @property
    def version(self) -> int:
        """Monotonic mutation counter (trace-cache invalidation epoch).

        Bumped by the structural mutators below, by every pass that reports
        a change, and by validator rollbacks — anything holding derived
        state keyed by ``(function, version)`` (the interpreter's threaded-
        dispatch traces) revalidates against this before reuse.
        """
        try:
            return self._version
        except AttributeError:  # unpickled from a pre-version snapshot
            self._version = 0
            return 0

    def bump_version(self) -> None:
        try:
            self._version += 1
        except AttributeError:
            self._version = 1

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise IRError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def add_block(self, name: str = "") -> BasicBlock:
        self._name_counter += 1
        blk = BasicBlock(name or f"bb{self._name_counter}")
        blk.function = self
        self.blocks.append(blk)
        self.bump_version()
        return blk

    def next_name(self, hint: str = "v") -> str:
        self._name_counter += 1
        return f"{hint}{self._name_counter}"

    def instructions(self) -> Iterator[Instruction]:
        for blk in self.blocks:
            yield from blk.instructions

    def predecessors(self, block: BasicBlock) -> list[BasicBlock]:
        return [b for b in self.blocks if block in b.successors()]

    def replace_all_uses(self, old: Value, new: Value) -> int:
        """RAUW by scanning; returns the number of replaced operands."""
        n = 0
        for ins in self.instructions():
            for i, op in enumerate(ins.operands):
                if op is old:
                    ins.operands[i] = new
                    n += 1
        if n:
            self.bump_version()
        return n

    def remove_block(self, block: BasicBlock) -> None:
        # fix phis in successors first
        for succ in block.successors():
            for phi in succ.phis():
                phi.remove_incoming(block)
        self.blocks.remove(block)
        self.bump_version()

    def short(self) -> str:
        return f"@{self.name}"

    def __repr__(self) -> str:
        return f"<function @{self.name}: {len(self.blocks)} blocks>"


class Module:
    """A compilation unit: functions + globals."""

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self.functions: dict[str, Function] = {}
        self.globals: dict[str, GlobalVariable] = {}

    def add_function(self, func: Function) -> Function:
        if func.name in self.functions:
            raise IRError(f"function @{func.name} already in module")
        func.module = self
        self.functions[func.name] = func
        return func

    def add_global(self, g: GlobalVariable) -> GlobalVariable:
        if g.name in self.globals:
            raise IRError(f"global @{g.name} already in module")
        self.globals[g.name] = g
        return g

    def function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise IRError(f"no function @{name}") from None

    def __iter__(self) -> Iterable[Function]:
        return iter(self.functions.values())
