"""SROA + mem2reg: promote alloca slots (the lifter's virtual stack) to SSA.

The lifter materializes the guest stack as one byte-array ``alloca``
(Sec. III-F); push/pop/rbp-relative accesses become loads/stores at
constant offsets from it.  This pass splits the alloca into fixed-offset
slots and builds SSA form for each (classic iterated-dominance-frontier phi
placement + renaming), which is what lets the rest of the pipeline see
through spilled values.

A slot is promotable when every access is a load/store of the full slot
width at a constant offset; any escaping use of a derived pointer (calls,
non-constant arithmetic, overlapping accesses) demotes the whole alloca.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir import instructions as I
from repro.ir.irtypes import DoubleType, FloatType, IntType, PointerType, Type
from repro.ir.module import BasicBlock, Function
from repro.ir.passes.cfgutils import dominance_frontiers, dominators
from repro.ir.values import Constant, Undef, Value


@dataclass
class _Access:
    ins: I.Instruction  # Load or Store
    offset: int
    type: Type

    @property
    def size(self) -> int:
        return self.type.size_bytes()


def _trace_pointer(v: Value, alloca: I.Alloca) -> int | None:
    """Byte offset of pointer ``v`` from ``alloca``, or None."""
    offset = 0
    for _ in range(64):
        if v is alloca:
            return offset
        if isinstance(v, I.GEP):
            idx = v.operands[1]
            if not isinstance(idx, Constant):
                return None
            offset += idx.signed * v.elem.size_bytes()
            v = v.operands[0]
            continue
        if isinstance(v, I.Cast) and v.opcode in ("bitcast",):
            v = v.operands[0]
            continue
        return None
    return None


def _collect(func: Function, alloca: I.Alloca) -> list[_Access] | None:
    """All accesses through the alloca, or None if it escapes.

    Pointers *and* integers derived from the alloca by constant offsets are
    tracked — the lifter's rsp handling round-trips the stack pointer
    through ptrtoint/add/inttoptr (push/pop, Sec. III-F), and promotion
    must see through that.
    """
    derived: dict[int, int] = {id(alloca): 0}  # value id -> offset (ptr or int)
    changed = True
    while changed:
        changed = False
        for ins in func.instructions():
            if id(ins) in derived:
                continue
            if isinstance(ins, I.GEP) and id(ins.operands[0]) in derived:
                idx = ins.operands[1]
                if not isinstance(idx, Constant):
                    return None
                derived[id(ins)] = derived[id(ins.operands[0])] + \
                    idx.signed * ins.elem.size_bytes()
                changed = True
            elif isinstance(ins, I.Cast) and ins.opcode in ("bitcast", "ptrtoint", "inttoptr") \
                    and id(ins.operands[0]) in derived:
                derived[id(ins)] = derived[id(ins.operands[0])]
                changed = True
            elif isinstance(ins, I.BinOp) and ins.opcode in ("add", "sub") \
                    and isinstance(ins.type, IntType):
                a, b = ins.operands
                if id(a) in derived and isinstance(b, Constant):
                    delta = b.signed if ins.opcode == "add" else -b.signed
                    derived[id(ins)] = derived[id(a)] + delta
                    changed = True
                elif id(b) in derived and isinstance(a, Constant) and ins.opcode == "add":
                    derived[id(ins)] = derived[id(b)] + a.signed
                    changed = True

    accesses: list[_Access] = []
    for ins in func.instructions():
        for oi, op in enumerate(ins.operands):
            if id(op) not in derived:
                continue
            if isinstance(ins, I.Load) and oi == 0:
                accesses.append(_Access(ins, derived[id(op)], ins.type))
            elif isinstance(ins, I.Store) and oi == 1:
                accesses.append(_Access(ins, derived[id(op)], ins.operands[0].type))
            elif isinstance(ins, I.Store) and oi == 0:
                return None  # the address itself is stored: escapes
            elif id(ins) in derived:
                pass  # part of the derived pointer/int web
            else:
                return None  # escapes (call arg, comparison, phi, ...)
    return accesses


def _slot_layout(accesses: list[_Access]) -> dict[tuple[int, int], list[_Access]] | None:
    """Group accesses into (offset, size) slots; None if ranges overlap."""
    slots: dict[tuple[int, int], list[_Access]] = {}
    for a in accesses:
        slots.setdefault((a.offset, a.size), []).append(a)
    ranges = sorted(slots)
    for (o1, s1), (o2, s2) in zip(ranges, ranges[1:]):
        if o1 + s1 > o2:
            return None  # partial overlap
    return slots


def _canonical_type(accesses: list[_Access]) -> Type:
    size = accesses[0].size
    types = {repr(a.type) for a in accesses}
    if len(types) == 1:
        return accesses[0].type
    return IntType(size * 8)


def _cast_to(builder_block: BasicBlock, before: I.Instruction, v: Value,
             to: Type, func: Function) -> Value:
    """Insert a cast of ``v`` to ``to`` before ``before`` if needed."""
    if v.type is to:
        return v
    src = v.type
    if isinstance(v, Undef):
        return Undef(to)
    if src.is_pointer and isinstance(to, IntType):
        op = "ptrtoint"
    elif isinstance(src, IntType) and to.is_pointer:
        op = "inttoptr"
    else:
        op = "bitcast"
    cast = I.Cast(op, v, to)
    cast.name = func.next_name("m2r")
    idx = builder_block.instructions.index(before)
    builder_block.insert(idx, cast)
    return cast


def promote(func: Function) -> bool:
    """Promote every eligible entry-block alloca; returns True on change."""
    changed = False
    entry = func.entry
    for alloca in [i for i in entry.instructions if isinstance(i, I.Alloca)]:
        accesses = _collect(func, alloca)
        if accesses is None:
            continue
        slots = _slot_layout(accesses)
        if slots is None:
            continue
        for (offset, size), accs in slots.items():
            _promote_slot(func, accs, _canonical_type(accs))
            changed = True
        # the alloca and derived pointers die in DCE once loads/stores vanish
    return changed


def _promote_slot(func: Function, accesses: list[_Access], ctype: Type) -> None:
    """Standard SSA construction for one memory slot."""
    stores = [a.ins for a in accesses if isinstance(a.ins, I.Store)]
    loads = [a.ins for a in accesses if isinstance(a.ins, I.Load)]
    def_blocks = {s.block for s in stores if s.block is not None}

    idom = dominators(func)
    df = dominance_frontiers(func, idom)

    # phi placement at iterated dominance frontier
    phi_blocks: set[BasicBlock] = set()
    work = list(def_blocks)
    while work:
        b = work.pop()
        for f in df.get(b, ()):
            if f not in phi_blocks:
                phi_blocks.add(f)
                if f not in def_blocks:
                    work.append(f)

    phis: dict[BasicBlock, I.Phi] = {}
    for b in phi_blocks:
        phi = I.Phi(ctype, func.next_name("m2rphi"))
        b.insert(0, phi)
        phis[b] = phi

    load_set = {id(ld) for ld in loads}
    store_set = {id(st) for st in stores}
    replacements: dict[int, Value] = {}

    # renaming via dominator-tree DFS
    children: dict[BasicBlock, list[BasicBlock]] = {b: [] for b in func.blocks}
    for b, d in idom.items():
        if b is not d:
            children[d].append(b)

    def rename(block: BasicBlock, incoming: Value) -> None:
        current = incoming
        if block in phis:
            current = phis[block]
        for ins in list(block.instructions):
            if id(ins) in load_set:
                replacements[id(ins)] = current
            elif id(ins) in store_set:
                current = ins.operands[0]
        for succ in block.successors():
            phi = phis.get(succ)
            if phi is not None:
                val = current
                phi.operands.append(val)
                phi.incoming_blocks.append(block)
        for child in children.get(block, ()):
            rename(child, current)

    import sys
    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, len(func.blocks) * 8 + 1000))
    try:
        rename(func.entry, Undef(ctype))
    finally:
        sys.setrecursionlimit(old_limit)

    # resolve replacement chains: a load's replacement may itself be a load
    # of this slot (store of a loaded value) that is about to be removed
    def resolve(val: Value) -> Value:
        seen = 0
        while id(val) in load_set and id(val) in replacements and seen < 64:
            val = replacements[id(val)]
            seen += 1
        return val

    # apply replacements with type adaptation
    for ld in loads:
        val = resolve(replacements.get(id(ld), Undef(ctype)))
        blk = ld.block
        assert blk is not None
        if val.type is not ld.type:
            val = _cast_to(blk, ld, val, ld.type, func)
        func.replace_all_uses(ld, val)
        blk.instructions.remove(ld)
    for st in stores:
        blk = st.block
        assert blk is not None
        blk.instructions.remove(st)

    # adapt phi incoming types (mixed-type slots store canonical ints)
    for b, phi in phis.items():
        phi.operands = [resolve(v) for v in phi.operands]
        for i, (v, pred) in enumerate(list(zip(phi.operands, phi.incoming_blocks))):
            if v.type is not ctype and not isinstance(v, Undef):
                term = pred.instructions[-1]
                cast = _cast_to(pred, term, v, ctype, func)
                phi.operands[i] = cast
            elif isinstance(v, Undef) and v.type is not ctype:
                phi.operands[i] = Undef(ctype)


def run(func: Function) -> bool:
    changed = promote(func)
    if changed:
        func.bump_version()
    return changed
