"""The '-O3' pass pipeline (Sec. IV: "standard optimization pipeline with
level 3 ... optionally, floating-point optimizations can be enabled").
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.ir.module import Function
from repro.ir.passes import (
    constprop, dce, gvn, inline, instcombine, mem2reg, simplifycfg, unroll,
    vectorize,
)


@dataclass(frozen=True)
class O3Options:
    """Pipeline configuration.

    ``fast_math`` mirrors ``-ffast-math`` (enables reassociation-dependent
    folds; currently only constant folding differences).  The ablation
    switches let benchmarks measure which passes matter, the paper's stated
    follow-up goal ("identify a small subset of optimizations ... without
    the heavy cost of LLVM", Sec. VII).
    """

    fast_math: bool = True
    enable_inline: bool = True
    enable_unroll: bool = True
    enable_gvn: bool = True
    enable_instcombine: bool = True
    enable_mem2reg: bool = True
    #: 0 = let the (metadata-gated) cost model decide; 2 = the paper's
    #: ``-force-vector-width=2`` experiment (Sec. VI-B)
    force_vector_width: int = 0
    max_iterations: int = 8

    def replace(self, **kw) -> "O3Options":
        """A copy with the given fields changed.

        ``O3Options`` is frozen (it is hashed into cache keys), so ablation
        studies and mode overrides derive variants through this instead of
        re-spelling every field.
        """
        return dataclasses.replace(self, **kw)

    @staticmethod
    def lightweight() -> "O3Options":
        """The paper's Sec. VII proposal: a *small subset* of passes as
        cheap post-processing for DBrew "without the heavy cost of LLVM".

        Per the ablation study (bench_ablation_passes.py) the essential
        passes for lifted/rewritten code are stack promotion and the basic
        cleanups; GVN, unrolling and reassociation are dropped, and the
        pipeline runs a single iteration.
        """
        return O3Options(
            fast_math=False,
            enable_inline=False,
            enable_unroll=False,
            enable_gvn=False,
            # the facet cache makes instcombine non-essential (see the
            # ablation bench), so the subset is just: SimplifyCFG + SROA of
            # the virtual stack + constant folding + ADCE
            enable_instcombine=False,
            enable_mem2reg=True,
            max_iterations=1,
        )


@dataclass
class O3Report:
    """What one ``run_o3`` invocation actually did (cold-path telemetry)."""

    iterations: int = 0
    converged: bool = False
    vectorized: bool = False


def run_o3(func: Function, options: O3Options = O3Options(),
           budget: "object | None" = None) -> O3Report:
    """Optimize one function in place to a fixpoint (bounded).

    The sweep loop exits as soon as a full pass sweep reports no change;
    when that fixed point is reached (and vectorization does nothing), the
    trailing DCE/SimplifyCFG cleanup is skipped too — those passes just ran
    to a fixpoint inside the loop, so re-running them is pure overhead on
    the runtime compile path.

    A ``budget`` (:class:`repro.guard.Budget`) charges ``opt_iterations``
    fuel per sweep and polls the wall-clock deadline; it is a keyword
    argument rather than an :class:`O3Options` field because options are
    hashed into cache keys and a budget never changes the produced IR.
    """
    report = O3Report()
    if budget is not None:
        budget.check_deadline("opt")
    simplifycfg.run(func)
    if options.enable_mem2reg:
        mem2reg.run(func)
        simplifycfg.run(func)
    for _ in range(options.max_iterations):
        if budget is not None:
            budget.charge("opt_iterations", stage="opt")
            budget.check_deadline("opt")
        report.iterations += 1
        changed = False
        if options.enable_inline:
            changed |= inline.run(func)
        changed |= constprop.run(func)
        if options.enable_instcombine:
            changed |= instcombine.run(func, options.fast_math)
        if options.enable_gvn:
            changed |= gvn.run(func)
        changed |= dce.run(func)
        changed |= simplifycfg.run(func)
        if options.enable_mem2reg:
            changed |= mem2reg.run(func)
        if options.enable_unroll:
            changed |= unroll.run(func)
        if not changed:
            report.converged = True
            break
    vec = vectorize.run(func, force_vector_width=options.force_vector_width)
    report.vectorized = vec.vectorized
    if vec.vectorized:
        constprop.run(func)
        if options.enable_instcombine:
            instcombine.run(func, options.fast_math)
    if vec.vectorized or not report.converged:
        dce.run(func)
        simplifycfg.run(func)
    return report
