"""The '-O3' pass pipeline (Sec. IV: "standard optimization pipeline with
level 3 ... optionally, floating-point optimizations can be enabled").
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.ir import verifier
from repro.ir.module import Function
from repro.obs.trace import TRACER as _TR
from repro.ir.passes import (
    constprop, dce, gvn, inline, instcombine, mem2reg, schedule, simplifycfg,
    unroll, vectorize,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.validate import PassValidator, PassVerdict


@dataclass(frozen=True)
class O3Options:
    """Pipeline configuration.

    ``fast_math`` mirrors ``-ffast-math`` (enables reassociation-dependent
    folds; currently only constant folding differences).  The ablation
    switches let benchmarks measure which passes matter, the paper's stated
    follow-up goal ("identify a small subset of optimizations ... without
    the heavy cost of LLVM", Sec. VII).
    """

    fast_math: bool = True
    enable_inline: bool = True
    enable_unroll: bool = True
    enable_gvn: bool = True
    enable_instcombine: bool = True
    enable_mem2reg: bool = True
    #: 0 = let the (metadata-gated) cost model decide; 2 = the paper's
    #: ``-force-vector-width=2`` experiment (Sec. VI-B)
    force_vector_width: int = 0
    max_iterations: int = 8
    #: pass-skipping policy (repro.ir.passes.schedule): "auto" resolves to
    #: "static" (provable no-fire rules only, output-identical — safe to
    #: share cache keys) unless REPRO_SPEED=0; "profile" additionally uses
    #: learned fired-pass statistics and MAY change the produced IR, so it
    #: is a distinct digest value; "off" disables all skipping
    pass_schedule: str = "auto"

    def replace(self, **kw) -> "O3Options":
        """A copy with the given fields changed.

        ``O3Options`` is frozen (it is hashed into cache keys), so ablation
        studies and mode overrides derive variants through this instead of
        re-spelling every field.
        """
        return dataclasses.replace(self, **kw)

    @staticmethod
    def lightweight() -> "O3Options":
        """The paper's Sec. VII proposal: a *small subset* of passes as
        cheap post-processing for DBrew "without the heavy cost of LLVM".

        Per the ablation study (bench_ablation_passes.py) the essential
        passes for lifted/rewritten code are stack promotion and the basic
        cleanups; GVN, unrolling and reassociation are dropped, and the
        pipeline runs a single iteration.
        """
        return O3Options(
            fast_math=False,
            enable_inline=False,
            enable_unroll=False,
            enable_gvn=False,
            # the facet cache makes instcombine non-essential (see the
            # ablation bench), so the subset is just: SimplifyCFG + SROA of
            # the virtual stack + constant folding + ADCE
            enable_instcombine=False,
            enable_mem2reg=True,
            max_iterations=1,
        )


@dataclass
class O3Report:
    """What one ``run_o3`` invocation actually did (cold-path telemetry)."""

    iterations: int = 0
    converged: bool = False
    vectorized: bool = False
    #: per-pass-application verdicts (only populated in validate mode)
    pass_log: "list[PassVerdict]" = field(default_factory=list)
    #: passes rejected (and rolled back) by validation, in rejection order
    rejected_passes: list[str] = field(default_factory=list)
    #: this run was executed under per-pass validation
    validated: bool = False
    #: resolved schedule mode ("off" / "static" / "profile")
    schedule_mode: str = "off"
    #: pass applications skipped by the scheduler, in skip order
    skipped_passes: list[str] = field(default_factory=list)
    #: scheduling was disabled mid-run (e.g. validator quarantine), and why
    schedule_disabled: str | None = None

    @property
    def miscompiled_pass(self) -> str | None:
        """The first pass validation caught miscompiling (None = clean)."""
        return self.rejected_passes[0] if self.rejected_passes else None


#: debug flag: run the raising IR verifier after *every* pass application.
#: Opt-in via :func:`set_verify_after_each_pass` — pass-bisection debugging,
#: far too slow for the runtime compile path.
VERIFY_AFTER_EACH_PASS = False


def set_verify_after_each_pass(enabled: bool) -> None:
    """Toggle the verify-after-every-pass debug mode (process-wide)."""
    global VERIFY_AFTER_EACH_PASS
    VERIFY_AFTER_EACH_PASS = bool(enabled)


def run_o3(func: Function, options: O3Options = O3Options(),
           budget: "object | None" = None, validate: bool = False,
           validator: "PassValidator | None" = None) -> O3Report:
    """Optimize one function in place to a fixpoint (bounded).

    The sweep loop exits as soon as a full pass sweep reports no change;
    when that fixed point is reached (and vectorization does nothing), the
    trailing DCE/SimplifyCFG cleanup is skipped too — those passes just ran
    to a fixpoint inside the loop, so re-running them is pure overhead on
    the runtime compile path.

    A ``budget`` (:class:`repro.guard.Budget`) charges ``opt_iterations``
    fuel per sweep and polls the wall-clock deadline; it is a keyword
    argument rather than an :class:`O3Options` field because options are
    hashed into cache keys and a budget never changes the produced IR —
    ``validate``/``validator`` follow the same rule: validation can *reject*
    a pass application (restoring its input), never produce different code
    from an accepted one.

    With ``validate=True`` (or an explicit ``validator``) every pass
    application is checked by a :class:`~repro.analysis.validate.
    PassValidator`: structural invariants plus differential interpretation
    of the pass input vs output.  A rejected pass is rolled back and
    quarantined by name, the verdict appears in ``O3Report.pass_log`` and
    ``O3Report.rejected_passes``, and the rest of the pipeline continues.
    """
    report = O3Report()
    if validate and validator is None:
        from repro.analysis.validate import PassValidator
        validator = PassValidator()
    report.validated = validator is not None
    report.schedule_mode = schedule.resolve_mode(options.pass_schedule)
    sched = schedule.Scheduler(func, report.schedule_mode, validator)

    def step(name: str, thunk: Callable[[], Any],
             changed_of: Callable[[Any], bool] = bool) -> bool:
        if sched.should_skip(name):
            report.skipped_passes.append(name)
            return False
        span = _TR.start(f"o3.pass.{name}", {"func": func.name}) \
            if _TR.enabled else None
        try:
            if validator is None:
                changed = bool(changed_of(thunk()))
                sched.note_result(name, changed)
            else:
                _result, verdict = validator.run_pass(
                    name, thunk, func, changed_of=changed_of)
                report.pass_log.append(verdict)
                if not verdict.ok:
                    # a rejection (or a quarantine hit) marks this pipeline
                    # as suspect: no further skipping — every pass must run
                    # under full validation (see schedule.Scheduler)
                    sched.disable(f"quarantined:{name}")
                    if not verdict.quarantined:
                        report.rejected_passes.append(name)
                else:
                    sched.note_result(name, verdict.changed)
                changed = verdict.changed
            if VERIFY_AFTER_EACH_PASS:
                verifier.verify(func)
        finally:
            if span is not None:
                _TR.finish(span)
            if sched.disabled_reason not in (None, "off"):
                report.schedule_disabled = sched.disabled_reason
        return changed

    if budget is not None:
        # checkpoint, not bare check_deadline: the -O3 sweep is the longest
        # uninterruptible span of a background compile, so each sweep
        # boundary is a cooperative yield point where the tiered engine can
        # deprioritize the worker (Budget.yield_hook)
        budget.checkpoint("opt")
    step("simplifycfg", lambda: simplifycfg.run(func))
    if options.enable_mem2reg:
        step("mem2reg", lambda: mem2reg.run(func))
        step("simplifycfg", lambda: simplifycfg.run(func))
    for _ in range(options.max_iterations):
        if budget is not None:
            budget.charge("opt_iterations", stage="opt")
            budget.checkpoint("opt")
        report.iterations += 1
        changed = False
        if options.enable_inline:
            changed |= step("inline", lambda: inline.run(func))
        changed |= step("constprop", lambda: constprop.run(func))
        if options.enable_instcombine:
            changed |= step("instcombine",
                            lambda: instcombine.run(func, options.fast_math))
        if options.enable_gvn:
            changed |= step("gvn", lambda: gvn.run(func))
        changed |= step("dce", lambda: dce.run(func))
        changed |= step("simplifycfg", lambda: simplifycfg.run(func))
        if options.enable_mem2reg:
            changed |= step("mem2reg", lambda: mem2reg.run(func))
        if options.enable_unroll:
            changed |= step("unroll", lambda: unroll.run(func))
        if not changed:
            report.converged = True
            break
    report.vectorized = step(
        "vectorize",
        lambda: vectorize.run(func,
                              force_vector_width=options.force_vector_width),
        changed_of=lambda v: v.vectorized)
    if report.vectorized:
        step("constprop", lambda: constprop.run(func))
        if options.enable_instcombine:
            step("instcombine",
                 lambda: instcombine.run(func, options.fast_math))
    if report.vectorized or not report.converged:
        step("dce", lambda: dce.run(func))
        step("simplifycfg", lambda: simplifycfg.run(func))
    return report
