"""Full loop unrolling for constant trip counts (by iterated peeling).

After IR-level fixation (Sec. IV) the stencil descriptor is a constant
global, so ``s->ps`` folds to 4 and the point loop has a known trip count.
This pass peels one iteration at a time — clone the loop body, enter the
clone, fold, repeat — which composes with constprop/simplifycfg instead of
needing its own expression evaluator.  DBrew achieves the same effect at
the binary level by emulating the loop with known values.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir import instructions as I
from repro.ir.module import BasicBlock, Function
from repro.ir.passes import constprop, dce, instcombine, simplifycfg
from repro.ir.passes.cfgutils import NaturalLoop, find_natural_loops
from repro.ir.values import Constant, Value

MAX_TRIP = 64
MAX_LOOP_INSTRS = 250
MAX_TOTAL_PEELS = 512


def _signed(v: int, bits: int) -> int:
    sign = 1 << (bits - 1)
    return (v & (sign - 1)) - (v & sign)


@dataclass
class _LoopInfo:
    loop: NaturalLoop
    trip_count: int


def _analyze(func: Function, loop: NaturalLoop) -> _LoopInfo | None:
    header = loop.header
    latch = loop.latch
    term = header.terminator
    if not (isinstance(term, I.Br) and term.is_conditional):
        return None
    cond = term.operands[0]
    if not isinstance(cond, I.ICmp):
        return None
    then_in = term.targets[0] in loop.blocks
    else_in = term.targets[1] in loop.blocks
    if then_in == else_in:
        return None

    size = sum(len(b.instructions) for b in loop.blocks)
    if size > MAX_LOOP_INSTRS:
        return None

    # find the induction phi
    for phi in header.phis():
        init: Value | None = None
        step_ins: I.BinOp | None = None
        for v, b in phi.incoming():
            if b in loop.blocks:
                if isinstance(v, I.BinOp) and v.opcode in ("add", "sub"):
                    a, s = v.operands
                    if a is phi and isinstance(s, Constant):
                        step_ins = v
            else:
                init = v
        if init is None or step_ins is None or not isinstance(init, Constant):
            continue
        step = step_ins.operands[1].signed  # type: ignore[attr-defined]
        if step_ins.opcode == "sub":
            step = -step
        # comparison must involve phi or step result and a constant
        a, b = cond.operands
        if a in (phi, step_ins) and isinstance(b, Constant):
            cmp_on_next = a is step_ins
            bound = b
        elif b in (phi, step_ins) and isinstance(a, Constant):
            # normalize: constant on the right by swapping predicate
            swap = {"slt": "sgt", "sgt": "slt", "sle": "sge", "sge": "sle",
                    "ult": "ugt", "ugt": "ult", "ule": "uge", "uge": "ule",
                    "eq": "eq", "ne": "ne"}
            cond = I.ICmp(swap[cond.pred], b, a)  # synthetic, for simulation
            cmp_on_next = b is step_ins
            bound = a
        else:
            continue

        bits = phi.type.bits  # type: ignore[attr-defined]
        from repro.ir.interp import _icmp
        i = init.value
        trip = None
        for count in range(MAX_TRIP + 1):
            iv = (i + step) & ((1 << bits) - 1) if cmp_on_next else i
            holds = _icmp(cond.pred, iv, bound.value, bits)
            in_loop = holds if then_in else not holds
            if not in_loop:
                trip = count
                break
            i = (i + step) & ((1 << bits) - 1)
        if trip is None:
            return None
        if not _safe_external_uses(func, loop):
            return None
        return _LoopInfo(loop, trip)
    return None


def _safe_external_uses(func: Function, loop: NaturalLoop) -> bool:
    """Ensure loop-defined values reach the outside only through phis in
    dedicated exit blocks, inserting LCSSA phis where possible."""
    defined: dict[int, I.Instruction] = {
        id(i): i for b in loop.blocks for i in b.instructions
    }
    exits = loop.exits()
    exit_blocks = {e for _f, e in exits}

    # values with direct (non-phi-in-exit-block) external uses
    pending: list[tuple[I.Instruction, I.Instruction]] = []  # (user, value)
    for blk in func.blocks:
        if blk in loop.blocks:
            continue
        for ins in blk.instructions:
            for op in ins.operands:
                if id(op) not in defined:
                    continue
                if isinstance(ins, I.Phi) and blk in exit_blocks:
                    continue  # already merged at the boundary
                pending.append((ins, defined[id(op)]))
    if not pending:
        return True

    # LCSSA conversion needs a single dedicated exit block
    if len(exit_blocks) != 1:
        return False
    (exit_block,) = exit_blocks
    preds = func.predecessors(exit_block)
    if any(p not in loop.blocks for p in preds):
        return False

    for value in {id(v): v for _u, v in pending}.values():
        # the value must dominate every exiting predecessor; loop header
        # instructions always do, others we check conservatively
        if value.block is not loop.header:
            return False
        phi = I.Phi(value.type, func.next_name("lcssa"))
        for p in preds:
            phi.operands.append(value)
            phi.incoming_blocks.append(p)
        exit_block.insert(0, phi)
        for blk in func.blocks:
            if blk in loop.blocks:
                continue
            for ins in blk.instructions:
                if ins is phi:
                    continue
                ins.replace_operand(value, phi)
    return True


def _peel_once(func: Function, loop: NaturalLoop) -> None:
    """Clone the loop once ahead of itself and enter the clone."""
    header, latch = loop.header, loop.latch
    outside_preds = [p for p in func.predecessors(header) if p not in loop.blocks]

    bmap: dict[int, BasicBlock] = {}
    vmap: dict[int, Value] = {}
    clones: list[BasicBlock] = []
    order = [b for b in func.blocks if b in loop.blocks]
    for blk in order:
        nb = BasicBlock(func.next_name(f"peel.{blk.name}"))
        nb.function = func
        bmap[id(blk)] = nb
        clones.append(nb)
    for blk in order:
        nb = bmap[id(blk)]
        for ins in blk.instructions:
            c = ins.clone_shallow()
            c.block = nb
            if not c.type.is_void:
                c.name = func.next_name("pl")
            vmap[id(ins)] = c
            nb.instructions.append(c)
    for blk in order:
        nb = bmap[id(blk)]
        for ins in nb.instructions:
            ins.operands = [vmap.get(id(op), op) for op in ins.operands]
            if isinstance(ins, I.Br):
                ins.targets = [bmap.get(id(t), t) for t in ins.targets]
            if isinstance(ins, I.Phi):
                ins.incoming_blocks = [
                    bmap.get(id(b), b) for b in ins.incoming_blocks
                ]

    cloned_header = bmap[id(header)]
    cloned_latch = bmap[id(latch)]

    # cloned latch loops into the *original* header (not the clone)
    term = cloned_latch.instructions[-1]
    if isinstance(term, I.Br):
        term.targets = [header if t is cloned_header else t for t in term.targets]

    # cloned header phis keep only outside-pred incomings
    for phi in list(cloned_header.phis()):
        for b in list(phi.incoming_blocks):
            if b in (cloned_latch, latch):
                phi.remove_incoming(b)

    # original header phis: drop outside incomings, add cloned-latch incoming
    for phi in header.phis():
        latch_value = phi.incoming_for(latch)
        assert latch_value is not None
        cloned_value = vmap.get(id(latch_value), latch_value)
        for b in outside_preds:
            phi.remove_incoming(b)
        phi.add_incoming(cloned_value, cloned_latch)

    # outside predecessors enter the clone
    for p in outside_preds:
        pterm = p.instructions[-1]
        if isinstance(pterm, I.Br):
            pterm.replace_target(header, cloned_header)

    # exit blocks gain the cloned exit edges: extend their phis
    for b in order:
        nb = bmap[id(b)]
        for succ in b.successors():
            if succ in loop.blocks:
                continue
            for phi in succ.phis():
                v = phi.incoming_for(b)
                if v is not None:
                    phi.add_incoming(vmap.get(id(v), v), nb)

    at = func.blocks.index(header)
    func.blocks[at:at] = clones


def run(func: Function) -> bool:
    """Fully unroll all constant-trip loops within budget."""
    changed = False
    for _ in range(MAX_TOTAL_PEELS):
        candidate: _LoopInfo | None = None
        for loop in find_natural_loops(func):
            info = _analyze(func, loop)
            if info is not None and info.trip_count <= MAX_TRIP:
                candidate = info
                break
        if candidate is None:
            break
        # peeling is semantics-preserving for any trip count; for trip 0 the
        # peeled header's condition folds constant and the loop dies
        _peel_once(func, candidate.loop)
        # cleanup to fixpoint: phi simplification exposes constants that
        # constprop folds, which re-enables the next trip-count analysis
        for _ in range(6):
            ch = simplifycfg.run(func)
            ch |= constprop.run(func)
            ch |= instcombine.run(func)
            ch |= dce.run(func)
            if not ch:
                break
        changed = True
    if changed:
        func.bump_version()
    return changed
