"""CFG analysis utilities shared by passes: dominators, frontiers, loops."""

from __future__ import annotations

import networkx as nx

from repro.ir.module import BasicBlock, Function


def cfg_graph(func: Function) -> nx.DiGraph:
    g = nx.DiGraph()
    for blk in func.blocks:
        g.add_node(blk)
        for succ in blk.successors():
            g.add_edge(blk, succ)
    return g


def dominators(func: Function) -> dict[BasicBlock, BasicBlock]:
    """Immediate dominators (entry maps to itself)."""
    return nx.immediate_dominators(cfg_graph(func), func.entry)


def dominates(idom: dict[BasicBlock, BasicBlock], a: BasicBlock,
              b: BasicBlock) -> bool:
    while True:
        if a is b:
            return True
        parent = idom.get(b)
        if parent is None or parent is b:
            return False
        b = parent


def dominance_frontiers(
    func: Function, idom: dict[BasicBlock, BasicBlock] | None = None
) -> dict[BasicBlock, set[BasicBlock]]:
    """Cooper/Harvey/Kennedy dominance frontier computation."""
    if idom is None:
        idom = dominators(func)
    df: dict[BasicBlock, set[BasicBlock]] = {b: set() for b in func.blocks}
    preds: dict[BasicBlock, list[BasicBlock]] = {b: [] for b in func.blocks}
    for b in func.blocks:
        for s in b.successors():
            preds[s].append(b)
    for b in func.blocks:
        if b not in idom:
            continue  # unreachable
        if len(preds[b]) >= 2:
            for p in preds[b]:
                if p not in idom:
                    continue
                runner = p
                while runner is not idom[b]:
                    df[runner].add(b)
                    nxt = idom.get(runner)
                    if nxt is None or nxt is runner:
                        break
                    runner = nxt
    return df


class NaturalLoop:
    """A natural loop: header + body blocks + single latch."""

    def __init__(self, header: BasicBlock, latch: BasicBlock,
                 blocks: set[BasicBlock]) -> None:
        self.header = header
        self.latch = latch
        self.blocks = blocks

    def exits(self) -> list[tuple[BasicBlock, BasicBlock]]:
        """(from-block, to-block) edges leaving the loop."""
        out = []
        for b in self.blocks:
            for s in b.successors():
                if s not in self.blocks:
                    out.append((b, s))
        return out

    def __repr__(self) -> str:
        return f"<loop header={self.header.name} blocks={len(self.blocks)}>"


def find_natural_loops(func: Function) -> list[NaturalLoop]:
    """Back-edge based natural loop discovery (innermost first)."""
    idom = dominators(func)
    loops: list[NaturalLoop] = []
    for blk in func.blocks:
        if blk not in idom:
            continue
        for succ in blk.successors():
            if succ in idom and dominates(idom, succ, blk):
                # back edge blk -> succ
                header, latch = succ, blk
                body = {header, latch}
                work = [latch]
                preds: dict[BasicBlock, list[BasicBlock]] = {}
                for b in func.blocks:
                    for s in b.successors():
                        preds.setdefault(s, []).append(b)
                while work:
                    b = work.pop()
                    if b is header:
                        continue
                    for p in preds.get(b, []):
                        if p not in body:
                            body.add(p)
                            work.append(p)
                loops.append(NaturalLoop(header, latch, body))
    loops.sort(key=lambda lp: len(lp.blocks))
    return loops
