"""Aggressive dead code elimination (ADCE-style mark & sweep).

Roots are side-effecting instructions (stores, real calls, terminators);
everything transitively reachable through operands is live.  Crucially this
kills *phi cycles*: the lifter's all-register phi webs keep each other alive
through loop back-edges, and the paper relies on "these unused nodes will be
removed by the optimizer" (Sec. III-C).
"""

from __future__ import annotations

from repro.ir import instructions as I
from repro.ir.module import Function
from repro.ir.values import Value


def _is_root(ins: I.Instruction) -> bool:
    if ins.is_terminator or ins.opcode == "store":
        return True
    if isinstance(ins, I.Call):
        return not I.is_dce_safe(ins)
    return False


def run(func: Function) -> bool:
    """Mark & sweep; returns True if anything was removed."""
    live: set[int] = set()
    work: list[Value] = []
    for ins in func.instructions():
        if _is_root(ins):
            live.add(id(ins))
            work.extend(ins.operands)
    while work:
        v = work.pop()
        if not isinstance(v, I.Instruction) or id(v) in live:
            continue
        live.add(id(v))
        work.extend(v.operands)

    removed = False
    for blk in func.blocks:
        kept = []
        for ins in blk.instructions:
            if id(ins) in live or _is_root(ins):
                kept.append(ins)
            else:
                removed = True
        blk.instructions = kept
    if removed:
        func.bump_version()
    return removed
