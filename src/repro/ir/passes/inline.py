"""Function inlining (always-inline + small-function heuristic).

Section IV relies on this: parameter fixation builds a tiny wrapper that
calls the original function with constants and marks the callee
``alwaysinline``; inlining then exposes the constants to the rest of the
pipeline.
"""

from __future__ import annotations

from repro.ir import instructions as I
from repro.ir.module import BasicBlock, Function
from repro.ir.values import Undef, Value

#: instruction-count threshold for inlining functions not marked always_inline
SMALL_FUNCTION_THRESHOLD = 40


def _should_inline(callee: Function) -> bool:
    if callee.is_declaration or not callee.blocks:
        return False
    if callee.always_inline:
        return not _is_recursive(callee)
    size = sum(len(b.instructions) for b in callee.blocks)
    return size <= SMALL_FUNCTION_THRESHOLD and not _is_recursive(callee)


def _is_recursive(func: Function) -> bool:
    for ins in func.instructions():
        if isinstance(ins, I.Call) and not ins.intrinsic and \
                ins.callee is func:
            return True
    return False


def _clone_function_body(
    callee: Function, args: list[Value], caller: Function
) -> tuple[list[BasicBlock], list[tuple[BasicBlock, Value | None]]]:
    """Clone callee blocks into caller namespace.

    Returns (cloned blocks, list of (ret block clone, ret value)).
    """
    vmap: dict[int, Value] = {}
    for formal, actual in zip(callee.args, args):
        vmap[id(formal)] = actual
    bmap: dict[int, BasicBlock] = {}
    clones: list[BasicBlock] = []
    for blk in callee.blocks:
        nb = BasicBlock(caller.next_name(f"inl.{blk.name}"))
        nb.function = caller
        bmap[id(blk)] = nb
        clones.append(nb)

    rets: list[tuple[BasicBlock, Value | None]] = []
    for blk in callee.blocks:
        nb = bmap[id(blk)]
        for ins in blk.instructions:
            c = ins.clone_shallow()
            c.block = nb
            if not c.type.is_void:
                c.name = caller.next_name("inl")
            vmap[id(ins)] = c
            nb.instructions.append(c)
        # terminator fixups happen after all values exist
    # second pass: remap operands and targets
    for blk in callee.blocks:
        nb = bmap[id(blk)]
        for ins in nb.instructions:
            ins.operands = [vmap.get(id(op), op) for op in ins.operands]
            if isinstance(ins, I.Br):
                ins.targets = [bmap[id(t)] for t in ins.targets]
            if isinstance(ins, I.Phi):
                ins.incoming_blocks = [bmap[id(b)] for b in ins.incoming_blocks]
        term = nb.instructions[-1] if nb.instructions else None
        if isinstance(term, I.Ret):
            rets.append((nb, term.value))
    return clones, rets


def inline_call(caller: Function, call: I.Call) -> bool:
    """Inline one call site; returns True on success."""
    callee = call.callee
    if isinstance(callee, str):
        return False
    block = call.block
    assert block is not None and isinstance(callee, Function)

    clones, rets = _clone_function_body(callee, list(call.operands), caller)
    if not rets:
        return False  # no return -> diverging callee; keep the call

    # split the block at the call
    idx = block.instructions.index(call)
    cont = BasicBlock(caller.next_name(f"{block.name}.cont"))
    cont.function = caller
    cont.instructions = block.instructions[idx + 1:]
    for ins in cont.instructions:
        ins.block = cont
    block.instructions = block.instructions[:idx]

    # successors' phis must now refer to cont instead of block
    for succ_blk in cont.successors():
        for phi in succ_blk.phis():
            for i, b in enumerate(phi.incoming_blocks):
                if b is block:
                    phi.incoming_blocks[i] = cont

    # splice blocks early so replace_all_uses sees cont and the clones
    at = caller.blocks.index(block) + 1
    caller.blocks[at:at] = clones + [cont]

    # entry into the cloned body
    entry_clone = clones[0]
    br = I.Br(None, entry_clone)
    br.block = block
    block.instructions.append(br)

    # rets -> jump to cont; merge return values with a phi if needed
    ret_value: Value | None
    if len(rets) == 1:
        rb, ret_value = rets[0]
        rb.instructions.pop()
        jmp = I.Br(None, cont)
        jmp.block = rb
        rb.instructions.append(jmp)
    else:
        phi: I.Phi | None = None
        if not call.type.is_void:
            phi = I.Phi(call.type, caller.next_name("retphi"))
        for rb, rv in rets:
            rb.instructions.pop()
            jmp = I.Br(None, cont)
            jmp.block = rb
            rb.instructions.append(jmp)
            if phi is not None:
                phi.operands.append(rv if rv is not None else Undef(call.type))
                phi.incoming_blocks.append(rb)
        if phi is not None:
            cont.insert(0, phi)
            ret_value = phi
        else:
            ret_value = None

    if not call.type.is_void:
        if len(rets) == 1:
            rv = rets[0][1]
            caller.replace_all_uses(call, rv if rv is not None else Undef(call.type))
        else:
            assert ret_value is not None
            # avoid self-reference through the phi
            for i, op in enumerate(ret_value.operands):
                if op is call:
                    ret_value.operands[i] = Undef(call.type)
            caller.replace_all_uses(call, ret_value)

    # move cloned allocas into the caller entry block
    for cb in clones:
        for ins in list(cb.instructions):
            if isinstance(ins, I.Alloca):
                cb.instructions.remove(ins)
                caller.entry.insert(caller.entry.first_non_phi(), ins)
    return True


def run(func: Function) -> bool:
    """Inline eligible call sites (one pass); returns True on change."""
    changed = False
    for _ in range(8):
        site = None
        for ins in func.instructions():
            if isinstance(ins, I.Call) and not ins.intrinsic \
                    and isinstance(ins.callee, Function) \
                    and ins.callee is not func and _should_inline(ins.callee):
                site = ins
                break
        if site is None:
            break
        if inline_call(func, site):
            changed = True
        else:
            break
    if changed:
        func.bump_version()
    return changed
