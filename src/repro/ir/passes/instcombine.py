"""InstCombine: algebraic peepholes and facet-cast elimination.

The cast patterns here are the ones the lifter's register model depends on
(Sec. III-C): extractelement-of-bitcast-of-insertelement chains from SSE
facet tracking, trunc/zext round-trips from GPR facet access, and shuffle
identities.  The *absence* of one pattern is deliberate: the sign/overflow
bit-arithmetic encoding of signed comparisons (Fig. 6b) is NOT reduced to
``icmp slt`` — LLVM 3.7 could not do it either, which is why the paper
introduces the flag cache.
"""

from __future__ import annotations

from repro.ir import instructions as I
from repro.ir.irtypes import IntType, VectorType
from repro.ir.module import Function
from repro.ir.passes.fold import try_fold
from repro.ir.values import Constant, Undef, Value


def _const(v: Value, value: int | None = None) -> bool:
    return isinstance(v, Constant) and (value is None or v.value == value % (1 << v.type.bits))  # type: ignore[attr-defined]


def _fmul_const_factor(v: Value) -> tuple[Value, Value] | None:
    """Match fmul(C, x) in either operand order; returns (C, x)."""
    from repro.ir.values import ConstantFP
    if isinstance(v, I.BinOp) and v.opcode == "fmul":
        a, b = v.operands
        if isinstance(a, ConstantFP):
            return a, b
        if isinstance(b, ConstantFP):
            return b, a
    return None


def _simplify(ins: I.Instruction, fast_math: bool = False) -> Value | None:
    """Return a simpler existing value, or None."""
    from repro.ir.values import ConstantFP

    folded = try_fold(ins)
    if folded is not None:
        return folded

    if fast_math and isinstance(ins, I.BinOp):
        a, b = ins.operands
        op = ins.opcode
        if op == "fadd":
            if isinstance(b, ConstantFP) and b.value == 0.0:
                return a
            if isinstance(a, ConstantFP) and a.value == 0.0:
                return b
            # reassociation: C*x + C*y -> C*(x + y)  (LLVM's -ffast-math
            # reassociate pass; this is what lets flat-structure fixation
            # reach the hard-coded stencil, Sec. VI-A)
            fa = _fmul_const_factor(a)
            fb = _fmul_const_factor(b)
            if fa is not None and fb is not None and fa[0].value == fb[0].value:
                s = _install_before(ins, I.BinOp("fadd", fa[1], fb[1]))
                return _install_before(ins, I.BinOp("fmul", fa[0], s))
        if op == "fmul":
            if isinstance(b, ConstantFP) and b.value == 1.0:
                return a
            if isinstance(a, ConstantFP) and a.value == 1.0:
                return b

    if isinstance(ins, I.BinOp):
        a, b = ins.operands
        op = ins.opcode
        if op in ("add", "or", "xor") and _const(b, 0):
            return a
        if op in ("add", "or", "xor") and _const(a, 0):
            return b
        if op == "sub" and _const(b, 0):
            return a
        if op == "sub" and a is b and isinstance(ins.type, IntType):
            return Constant(ins.type, 0)
        if op == "mul" and _const(b, 1):
            return a
        if op == "mul" and _const(a, 1):
            return b
        if op == "mul" and (_const(a, 0) or _const(b, 0)) and isinstance(ins.type, IntType):
            return Constant(ins.type, 0)
        if op == "and":
            if _const(b, 0) or _const(a, 0):
                return Constant(ins.type, 0) if isinstance(ins.type, IntType) else None
            mask = ins.type.mask if isinstance(ins.type, IntType) else None
            if mask is not None and isinstance(b, Constant) and b.value == mask:
                return a
            if mask is not None and isinstance(a, Constant) and a.value == mask:
                return b
            if a is b:
                return a
        if op == "or" and a is b:
            return a
        if op == "xor" and a is b and isinstance(ins.type, IntType):
            return Constant(ins.type, 0)
        if op in ("shl", "lshr", "ashr") and _const(b, 0):
            return a
        if op == "fadd" and a is b:
            return None
        return None

    if isinstance(ins, I.Cast):
        (v,) = ins.operands
        op = ins.opcode
        if op == "bitcast":
            if v.type is ins.type:
                return v
            if isinstance(v, I.Cast) and v.opcode == "bitcast":
                inner = v.operands[0]
                if inner.type is ins.type:
                    return inner
        if op == "trunc" and isinstance(v, I.Cast) and v.opcode in ("zext", "sext"):
            inner = v.operands[0]
            if inner.type is ins.type:
                return inner
        if op in ("zext", "sext") and isinstance(v, I.Cast) and v.opcode == "trunc":
            # zext(trunc(x)) to original width -> and(x, mask); leave to keep
            # the pattern simple unless widths line up exactly with no loss
            pass
        if op == "inttoptr" and isinstance(v, I.Cast) and v.opcode == "ptrtoint":
            inner = v.operands[0]
            if inner.type is ins.type:
                return inner
        if op == "ptrtoint" and isinstance(v, I.Cast) and v.opcode == "inttoptr":
            inner = v.operands[0]
            if inner.type is ins.type:
                return inner
        return None

    if isinstance(ins, I.ExtractElement):
        vec, idx = ins.operands
        if not isinstance(idx, Constant):
            return None
        i = idx.value
        src: Value = vec
        # look through bitcasts between same-shape vector types
        while isinstance(src, I.Cast) and src.opcode == "bitcast" \
                and isinstance(src.operands[0].type, VectorType) \
                and src.operands[0].type is not None \
                and src.operands[0].type == src.type:
            src = src.operands[0]
        while isinstance(src, I.InsertElement):
            v2, val, idx2 = src.operands
            if isinstance(idx2, Constant):
                if idx2.value == i:
                    if val.type is ins.type:
                        return val
                    return None
                src = v2
                continue
            return None
        if isinstance(src, I.ShuffleVector):
            a, b = src.operands
            m = src.mask[i]
            n = a.type.count  # type: ignore[union-attr]
            inner = a if m < n else b
            # rewrite as extract from the shuffle source
            new = I.ExtractElement(inner, Constant(idx.type, m % n))
            return _install_before(ins, new)
        return None

    if isinstance(ins, I.ShuffleVector):
        a, b = ins.operands
        n = a.type.count  # type: ignore[union-attr]
        if ins.type is a.type and tuple(ins.mask) == tuple(range(n)):
            return a
        if ins.type is b.type and tuple(ins.mask) == tuple(range(n, 2 * n)):
            return b
        return None

    if isinstance(ins, I.ICmp):
        a, b = ins.operands
        # icmp eq/ne (sub x, y), 0  ->  icmp eq/ne x, y   (zero-flag pattern;
        # LLVM recognizes this one, unlike the signed-lt bit arithmetic)
        if ins.pred in ("eq", "ne") and _const(b, 0) and isinstance(a, I.BinOp) \
                and a.opcode == "sub":
            new = I.ICmp(ins.pred, a.operands[0], a.operands[1])
            return _install_before(ins, new)
        return None

    if isinstance(ins, I.GEP):
        base, idx = ins.operands
        if _const(idx, 0) and base.type is ins.type:
            return base
        # gep(gep(p, c1), c2) with identical element type -> gep(p, c1+c2)
        if isinstance(base, I.GEP) and base.elem is ins.elem \
                and isinstance(idx, Constant) and isinstance(base.operands[1], Constant):
            c = idx.signed + base.operands[1].signed  # type: ignore[attr-defined]
            new = I.GEP(base.operands[0], Constant(idx.type, c), elem=ins.elem)
            return _install_before(ins, new)
        return None

    if isinstance(ins, I.Select):
        c, a, b = ins.operands
        if a is b:
            return a
        return None

    return None


def _install_before(anchor: I.Instruction, new: I.Instruction) -> I.Instruction:
    """Insert ``new`` right before ``anchor`` in its block."""
    blk = anchor.block
    assert blk is not None
    new.name = blk.function.next_name() if blk.function else "t"
    idx = blk.instructions.index(anchor)
    blk.insert(idx, new)
    return new


def run(func: Function, fast_math: bool = False) -> bool:
    """Apply peepholes to fixpoint; returns True on any change."""
    changed = False
    for _ in range(32):
        round_changed = False
        for blk in func.blocks:
            for ins in list(blk.instructions):
                if ins.is_terminator or isinstance(ins, I.Phi):
                    continue
                repl = _simplify(ins, fast_math)
                if repl is not None and repl is not ins:
                    func.replace_all_uses(ins, repl)
                    if ins in blk.instructions:
                        blk.instructions.remove(ins)
                    round_changed = True
        changed |= round_changed
        if not round_changed:
            break
    if changed:
        func.bump_version()
    return changed
