"""Per-block value numbering with store-to-load forwarding.

Deliberately *local*: redundancies across basic blocks survive, which is the
mechanism behind the paper's observation that the identity transformation of
the multi-block line kernel is slower than the original while the
single-block element kernel is not (Sec. VI-B: "missed optimizations across
basic blocks").
"""

from __future__ import annotations

from repro.ir import instructions as I
from repro.ir.module import Function
from repro.ir.values import Constant, ConstantFP, Value


def _value_key(v: Value) -> object:
    if isinstance(v, Constant):
        return ("const", v.type.bits, v.value)  # type: ignore[attr-defined]
    if isinstance(v, ConstantFP):
        return ("fconst", repr(v.type), v.value)
    return id(v)


def _expr_key(ins: I.Instruction) -> tuple | None:
    ops = tuple(_value_key(o) for o in ins.operands)
    if isinstance(ins, I.BinOp):
        if ins.opcode in ("add", "mul", "and", "or", "xor", "fadd", "fmul"):
            ops = tuple(sorted(ops, key=repr))  # commutative normalization
        return ("bin", ins.opcode, repr(ins.type), ops)
    if isinstance(ins, (I.ICmp, I.FCmp)):
        return ("cmp", ins.opcode, ins.pred, ops)
    if isinstance(ins, I.Cast):
        return ("cast", ins.opcode, repr(ins.type), ops)
    if isinstance(ins, I.GEP):
        return ("gep", repr(ins.elem), repr(ins.type), ops)
    if isinstance(ins, I.Select):
        return ("select", repr(ins.type), ops)
    if isinstance(ins, I.ExtractElement):
        return ("extract", repr(ins.type), ops)
    if isinstance(ins, I.InsertElement):
        return ("insert", repr(ins.type), ops)
    if isinstance(ins, I.ShuffleVector):
        return ("shuffle", ins.mask, repr(ins.type), ops)
    return None


def run(func: Function) -> bool:
    """Local CSE + load/store forwarding; returns True on any change."""
    changed = False
    for blk in func.blocks:
        available: dict[tuple, I.Instruction] = {}
        # memory state: generation counter + known (ptr, type) -> value
        known_mem: dict[tuple, Value] = {}
        for ins in list(blk.instructions):
            if isinstance(ins, I.Phi):
                continue
            if isinstance(ins, I.Store):
                val, ptr = ins.operands
                # a store invalidates everything (no alias analysis), then
                # records the stored value for exact-pointer forwarding
                known_mem.clear()
                known_mem[(id(ptr), repr(val.type))] = val
                continue
            if isinstance(ins, I.Call):
                known_mem.clear()
                continue
            if isinstance(ins, I.Load):
                key = (id(ins.operands[0]), repr(ins.type))
                prior = known_mem.get(key)
                if prior is not None and prior.type is ins.type:
                    func.replace_all_uses(ins, prior)
                    blk.instructions.remove(ins)
                    changed = True
                else:
                    known_mem[key] = ins
                continue
            key2 = _expr_key(ins)
            if key2 is None:
                continue
            prior2 = available.get(key2)
            if prior2 is not None:
                func.replace_all_uses(ins, prior2)
                blk.instructions.remove(ins)
                changed = True
            else:
                available[key2] = ins
    if changed:
        func.bump_version()
    return changed
