"""Constant propagation, including loads from constant module globals.

The global-load folding is the engine of IR-level specialization (Sec. IV):
``fixation`` copies fixed memory into the module as a constant global, and
this pass turns loads at constant offsets into literal constants, which
unlocks branch folding and full unrolling downstream.
"""

from __future__ import annotations

from repro.ir import instructions as I
from repro.ir.module import Function, GlobalVariable
from repro.ir.passes.fold import read_constant_global, try_fold
from repro.ir.values import Constant, Value


def _global_and_offset(ptr: Value) -> tuple[GlobalVariable, int] | None:
    """Resolve a pointer expression to (global, constant byte offset)."""
    offset = 0
    seen = 0
    while seen < 64:
        seen += 1
        if isinstance(ptr, GlobalVariable):
            return ptr, offset
        if isinstance(ptr, I.GEP):
            idx = ptr.operands[1]
            if not isinstance(idx, Constant):
                return None
            offset += idx.signed * ptr.elem.size_bytes()
            ptr = ptr.operands[0]
            continue
        if isinstance(ptr, I.Cast) and ptr.opcode in ("bitcast", "inttoptr", "ptrtoint"):
            ptr = ptr.operands[0]
            continue
        if isinstance(ptr, I.BinOp) and ptr.opcode == "add":
            a, b = ptr.operands
            if isinstance(b, Constant):
                offset += b.signed
                ptr = a
                continue
            if isinstance(a, Constant):
                offset += a.signed
                ptr = b
                continue
            return None
        return None
    return None


def run(func: Function) -> bool:
    """Fold constants to fixpoint; returns True on any change."""
    changed = False
    for _ in range(64):
        round_changed = False
        for blk in func.blocks:
            for ins in list(blk.instructions):
                if ins.is_terminator or isinstance(ins, I.Phi):
                    continue
                repl: Value | None = None
                if isinstance(ins, I.Load):
                    resolved = _global_and_offset(ins.operands[0])
                    if resolved is not None:
                        g, off = resolved
                        repl = read_constant_global(g, off, ins.type)
                else:
                    repl = try_fold(ins)
                if repl is not None and repl is not ins:
                    func.replace_all_uses(ins, repl)
                    blk.instructions.remove(ins)
                    round_changed = True
        changed |= round_changed
        if not round_changed:
            break
    if changed:
        func.bump_version()
    return changed
