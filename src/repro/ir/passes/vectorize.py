"""IR loop vectorizer with the paper's metadata gate (Sec. VI-B).

The paper observes that LLVM refuses to vectorize lifted loops: "the loop
analysis passes of LLVM consider vectorization as non-beneficial for this
loop ... we assume that missing meta-information leads to this missed
optimization".  The mechanism modeled here: binary-lifted loads/stores carry
small alignment (alignment is unknowable from bytes), and the cost model
rates an all-unaligned vector loop as non-beneficial — unless the user
forces it (``-force-vector-width=2``), in which case the loop is vectorized
with unaligned accesses and *no alignment peeling*, which is why the paper
measures it ~23% slower than GCC's natively vectorized loop.

Returns a :class:`VectorizeReport` so tests and benchmarks can assert on
the refusal reason, not just the outcome.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.ir import instructions as I
from repro.ir.builder import IRBuilder
from repro.ir.irtypes import DOUBLE, I8, I64, IntType, PointerType, V2F64, ptr
from repro.ir.module import BasicBlock, Function
from repro.ir.passes.cfgutils import NaturalLoop, find_natural_loops
from repro.ir.values import Constant, ConstantFP, ConstantVector, Value


@dataclass
class VectorizeReport:
    vectorized: bool
    reason: str


@dataclass
class _Stride:
    """A unit-stride f64 access: address = base + (ivar + extra)*8 + disp."""

    base: Value
    disp: int
    extra: Optional[Value]  # loop-invariant index component


@dataclass
class _Candidate:
    header: BasicBlock
    body: BasicBlock
    ivar: I.Phi
    step_ins: I.BinOp
    limit: Value
    exit_block: BasicBlock
    loads: dict[int, tuple[I.Load, _Stride]]
    store: I.Store
    store_stride: _Stride
    float_chain: list[I.Instruction]
    aligned: bool


def run(func: Function, *, force_vector_width: int = 0) -> VectorizeReport:
    """Try to vectorize one innermost f64 loop."""
    for loop in find_natural_loops(func):
        cand = _analyze(func, loop)
        if cand is None:
            continue
        if not cand.aligned and force_vector_width != 2:
            return VectorizeReport(
                False,
                "not beneficial: memory accesses have unknown alignment "
                "(no metadata at binary level); use force_vector_width=2",
            )
        if force_vector_width not in (0, 2):
            return VectorizeReport(False, f"unsupported width {force_vector_width}")
        _transform(func, loop, cand)
        func.bump_version()
        return VectorizeReport(True, "vectorized with width 2 (unaligned accesses)")
    return VectorizeReport(False, "no vectorizable loop found")


class _Unvectorizable(Exception):
    pass


def _analyze(func: Function, loop: NaturalLoop) -> _Candidate | None:
    if len(loop.blocks) != 2 or loop.header is loop.latch:
        return None
    header, body = loop.header, loop.latch
    term = header.terminator
    if not (isinstance(term, I.Br) and term.is_conditional):
        return None
    cond = term.operands[0]
    if not isinstance(cond, I.ICmp):
        return None
    # normalize: continue-into-body predicate must be ivar < limit
    if cond.pred == "slt" and term.targets[0] is body:
        pass
    elif cond.pred == "sge" and term.targets[1] is body:
        pass
    else:
        return None

    ivar: I.Phi | None = None
    step_ins: I.BinOp | None = None
    for phi in header.phis():
        for v, b in phi.incoming():
            if b is body and isinstance(v, I.BinOp) and v.opcode == "add" \
                    and v.operands[0] is phi and isinstance(v.operands[1], Constant) \
                    and v.operands[1].value == 1:
                ivar, step_ins = phi, v
    if ivar is None or step_ins is None:
        return None
    if cond.operands[0] is not ivar:
        return None
    if len(header.phis()) != 1:
        return None  # loop-carried accumulators need reduction support
    limit = cond.operands[1]

    def invariant(v: Value) -> bool:
        if not isinstance(v, I.Instruction):
            return True
        return v.block not in loop.blocks

    loads: dict[int, tuple[I.Load, _Stride]] = {}
    store: I.Store | None = None
    store_stride: _Stride | None = None
    float_chain: list[I.Instruction] = []
    aligned = True
    for ins in body.instructions[:-1]:
        if isinstance(ins, I.Load):
            if ins.type is not DOUBLE:
                return None
            stride = _strided_addr(ins.operands[0], ivar, invariant)
            if stride is None:
                return None
            aligned &= ins.align >= 16
            loads[id(ins)] = (ins, stride)
            float_chain.append(ins)
        elif isinstance(ins, I.Store):
            if store is not None or ins.operands[0].type is not DOUBLE:
                return None
            store_stride = _strided_addr(ins.operands[1], ivar, invariant)
            if store_stride is None:
                return None
            aligned &= ins.align >= 16
            store = ins
        elif isinstance(ins, I.BinOp) and ins.opcode in ("fadd", "fsub", "fmul"):
            float_chain.append(ins)
        elif isinstance(ins, I.BinOp) and isinstance(ins.type, IntType):
            continue  # address arithmetic; recomputed by the vector body
        elif isinstance(ins, (I.GEP, I.Cast)):
            continue
        elif ins is step_ins:
            continue
        else:
            return None
    if store is None or store_stride is None:
        return None
    # the stored value's dataflow must close over loads/chain/constants
    chain_ids = {id(c) for c in float_chain}
    for ins in float_chain + [store]:
        operands = ins.operands[:1] if isinstance(ins, I.Store) else (
            [] if isinstance(ins, I.Load) else ins.operands
        )
        for op in operands:
            if id(op) in chain_ids or isinstance(op, ConstantFP):
                continue
            return None
    exit_block = term.targets[1] if term.targets[0] is body else term.targets[0]
    return _Candidate(header, body, ivar, step_ins, limit, exit_block,
                      loads, store, store_stride, float_chain, aligned)


def _strided_addr(ptr_v: Value, ivar: Value, invariant) -> _Stride | None:
    """Match base + (ivar [+ inv]) * 8 + const."""
    v = ptr_v
    if isinstance(v, I.Cast) and v.opcode == "bitcast":
        v = v.operands[0]
    if not isinstance(v, I.GEP):
        return None
    base, idx = v.operands
    size = v.elem.size_bytes()
    # peel casts off the base until an invariant value is found (the lifter
    # re-materializes inttoptr per block, inside the loop)
    for _ in range(4):
        if invariant(base):
            break
        if isinstance(base, I.Cast) and base.opcode in ("inttoptr", "bitcast"):
            base = base.operands[0]
        else:
            return None
    if not invariant(base):
        return None
    disp = 0
    scale = size

    def peel_adds(e: Value, mult: int) -> Value:
        nonlocal disp
        for _ in range(8):
            if isinstance(e, I.BinOp) and e.opcode == "add" \
                    and isinstance(e.operands[1], Constant):
                disp += e.operands[1].signed * mult  # type: ignore[attr-defined]
                e = e.operands[0]
            elif isinstance(e, I.BinOp) and e.opcode == "add" \
                    and isinstance(e.operands[0], Constant):
                disp += e.operands[0].signed * mult  # type: ignore[attr-defined]
                e = e.operands[1]
            else:
                return e
        return e

    idx = peel_adds(idx, size)
    if size == 1:
        if isinstance(idx, I.BinOp) and idx.opcode == "mul" \
                and isinstance(idx.operands[1], Constant) \
                and idx.operands[1].value == 8:  # type: ignore[attr-defined]
            idx = idx.operands[0]
        elif isinstance(idx, I.BinOp) and idx.opcode == "shl" \
                and isinstance(idx.operands[1], Constant) \
                and idx.operands[1].value == 3:  # type: ignore[attr-defined]
            idx = idx.operands[0]
        else:
            return None
        idx = peel_adds(idx, 8)
    elif size != 8:
        return None

    if idx is ivar:
        return _Stride(base, disp, None)
    if isinstance(idx, I.BinOp) and idx.opcode == "add":
        a, b = idx.operands
        if a is ivar and invariant(b):
            return _Stride(base, disp, b)
        if b is ivar and invariant(a):
            return _Stride(base, disp, a)
    return None


def _transform(func: Function, loop: NaturalLoop, cand: _Candidate) -> None:
    """Rewrite the loop to process two elements per iteration.

    No alignment peeling (forced mode has no alignment facts): the vector
    loop runs while ``i + 1 < limit`` with unaligned accesses; the original
    scalar loop remains as the remainder.
    """
    header, body, ivar = cand.header, cand.body, cand.ivar

    vheader = func.add_block(func.next_name("vec.head"))
    vbody = func.add_block(func.next_name("vec.body"))

    for blk in func.blocks:
        if blk in loop.blocks or blk in (vheader, vbody):
            continue
        t = blk.terminator
        if isinstance(t, I.Br):
            t.replace_target(header, vheader)

    b = IRBuilder(vheader)
    vi = I.Phi(ivar.type, func.next_name("vi"))
    vheader.insert(0, vi)
    ip1 = b.add(vi, Constant(ivar.type, 1))
    vcond = b.icmp("slt", ip1, cand.limit)
    b.cond_br(vcond, vbody, header)

    b = IRBuilder(vbody)
    vmap: dict[int, Value] = {}

    def vec_addr(stride: _Stride) -> Value:
        idx: Value = vi
        if stride.extra is not None:
            idx = b.add(vi, stride.extra)
        byte_off = b.mul(idx, Constant(I64, 8))
        if stride.disp:
            byte_off = b.add(byte_off, Constant(I64, stride.disp))
        base = stride.base
        if not (isinstance(base.type, PointerType) and base.type.pointee is I8):
            if base.type.is_pointer:
                base = b.bitcast(base, ptr(I8))
            else:
                base = b.inttoptr(base, ptr(I8))
        p = b.gep(base, byte_off)
        return b.bitcast(p, ptr(V2F64))

    def vec_operand(v: Value) -> Value:
        mapped = vmap.get(id(v))
        if mapped is not None:
            return mapped
        if isinstance(v, ConstantFP):
            return ConstantVector(V2F64, (v, v))
        raise _Unvectorizable(f"stored value depends on scalar {v!r}")

    for ins in cand.float_chain:
        if isinstance(ins, I.Load):
            _ld, stride = cand.loads[id(ins)]
            vmap[id(ins)] = b.load(vec_addr(stride), align=1)
        else:
            a = vec_operand(ins.operands[0])
            c = vec_operand(ins.operands[1])
            vmap[id(ins)] = b.binop(ins.opcode, a, c)
    b.store(vec_operand(cand.store.operands[0]), vec_addr(cand.store_stride), align=1)
    vi2 = b.add(vi, Constant(ivar.type, 2))
    b.br(vheader)

    entry_pairs = [(v, blk) for v, blk in ivar.incoming() if blk not in loop.blocks]
    for v, blk in entry_pairs:
        vi.operands.append(v)
        vi.incoming_blocks.append(blk)
        ivar.remove_incoming(blk)
    vi.operands.append(vi2)
    vi.incoming_blocks.append(vbody)
    ivar.add_incoming(vi, vheader)
