"""MiniLLVM optimization passes (the '-O3 pipeline' of the paper).

``run_o3`` is the standard pipeline applied to lifted code (Sec. IV):
SimplifyCFG, SROA/mem2reg (promotes the virtual stack), InstCombine
(eliminates facet casts), constant propagation (folds loads from constant
globals — the mechanism behind IR-level parameter fixation), per-block GVN,
DCE, inlining (always-inline wrappers), full loop unrolling, and an
optional loop vectorizer that *refuses* lifted code unless forced — the
paper's missing-metadata observation.
"""

from repro.ir.passes.pipeline import O3Options, O3Report, run_o3

__all__ = ["O3Options", "O3Report", "run_o3"]
