"""CFG simplification: constant branches, block merging, trivial phis."""

from __future__ import annotations

from repro.ir import instructions as I
from repro.ir.module import BasicBlock, Function
from repro.ir.values import Constant, Undef, Value


def _fold_constant_branches(func: Function) -> bool:
    changed = False
    for blk in func.blocks:
        term = blk.terminator
        if isinstance(term, I.Br) and term.is_conditional:
            cond = term.operands[0]
            if isinstance(cond, Constant):
                taken = term.targets[0] if cond.value else term.targets[1]
                dead = term.targets[1] if cond.value else term.targets[0]
                if dead is not taken:
                    for phi in dead.phis():
                        phi.remove_incoming(blk)
                blk.instructions[-1] = I.Br(None, taken)
                blk.instructions[-1].block = blk
                changed = True
            elif term.targets[0] is term.targets[1]:
                blk.instructions[-1] = I.Br(None, term.targets[0])
                blk.instructions[-1].block = blk
                changed = True
    return changed


def _remove_unreachable(func: Function) -> bool:
    reachable: set[int] = set()
    work = [func.entry]
    while work:
        blk = work.pop()
        if id(blk) in reachable:
            continue
        reachable.add(id(blk))
        work.extend(blk.successors())
    dead = [b for b in func.blocks if id(b) not in reachable]
    for blk in dead:
        func.remove_block(blk)
    return bool(dead)


def _simplify_phis(func: Function) -> bool:
    """Remove single-incoming and all-same-value phis.

    Folding ``phi [X, A], [undef, B]`` to X is only legal when X dominates
    the phi (LLVM has the same restriction) — checked lazily.

    With the speed campaign enabled, the per-phi RAUW (a full-function
    operand scan *each*, quadratic on phi-heavy functions — unrolled loop
    nests produce hundreds) is replaced by one batched substitution map
    applied in a single walk at the end.  Scans resolve pending entries
    through the map, so each decision sees exactly the IR the sequential
    RAUWs would have produced and the output is bit-identical; the legacy
    path survives under ``REPRO_SPEED=0`` as the differential reference.
    """
    from repro import speed as _speed
    from repro.ir.instructions import Instruction
    from repro.ir.passes.cfgutils import dominates, dominators

    batched = _speed.enabled()
    subst: dict[int, Value] = {}

    def resolve(v: Value) -> Value:
        # chains (phiA -> phiB -> x) arise when a phi's sole value is a
        # phi scheduled for removal earlier in this scan; cycles cannot:
        # a self-reference resolves to the scanned phi and is skipped
        while isinstance(v, Instruction) and id(v) in subst:
            v = subst[id(v)]
        return v

    changed = False
    idom = None
    for blk in func.blocks:
        for phi in list(blk.phis()):
            distinct: list[Value] = []
            saw_undef = False
            for v, _b in phi.incoming():
                v = resolve(v)
                if v is phi:
                    continue
                if isinstance(v, Undef):
                    saw_undef = True
                    continue
                if not any(v is d for d in distinct):
                    distinct.append(v)
            if len(distinct) == 1:
                repl = distinct[0]
                if saw_undef and isinstance(repl, Instruction):
                    if idom is None:
                        idom = dominators(func)
                    def_blk = repl.block
                    if def_blk is None or def_blk not in idom or blk not in idom \
                            or def_blk is blk \
                            or not dominates(idom, def_blk, blk):
                        continue
                if batched:
                    subst[id(phi)] = repl
                else:
                    func.replace_all_uses(phi, repl)
                blk.instructions.remove(phi)
                changed = True
            elif len(distinct) == 0 and phi.incoming_blocks:
                repl = Undef(phi.type)
                if batched:
                    subst[id(phi)] = repl
                else:
                    func.replace_all_uses(phi, repl)
                blk.instructions.remove(phi)
                changed = True
    if subst:
        for ins in func.instructions():
            ops = ins.operands
            for i, op in enumerate(ops):
                r = resolve(op)
                if r is not op:
                    ops[i] = r
        func.bump_version()
    return changed


def _merge_straight_line(func: Function) -> bool:
    """Merge B into A when A->B is the only edge in both directions."""
    changed = False
    again = True
    while again:
        again = False
        preds: dict[int, list[BasicBlock]] = {id(b): [] for b in func.blocks}
        for b in func.blocks:
            for s in b.successors():
                preds[id(s)].append(b)
        for a in func.blocks:
            term = a.terminator
            if not (isinstance(term, I.Br) and not term.is_conditional):
                continue
            b = term.targets[0]
            if b is a or b is func.entry:
                continue
            if len(preds[id(b)]) != 1:
                continue
            if b.phis():
                # single predecessor: phis are trivial, resolve them first
                for phi in list(b.phis()):
                    v = phi.incoming_for(a)
                    assert v is not None
                    func.replace_all_uses(phi, v)
                    b.instructions.remove(phi)
            a.instructions.pop()  # drop the br
            for ins in b.instructions:
                ins.block = a
                a.instructions.append(ins)
            # phis in b's successors now flow from a
            for succ in b.successors():
                for phi in succ.phis():
                    for i, ib in enumerate(phi.incoming_blocks):
                        if ib is b:
                            phi.incoming_blocks[i] = a
            func.blocks.remove(b)
            changed = again = True
            break
    return changed


def _thread_trivial_jumps(func: Function) -> bool:
    """Retarget edges through empty forwarding blocks (only a br)."""
    changed = False
    forward: dict[int, BasicBlock] = {}
    for b in func.blocks:
        if len(b.instructions) == 1:
            t = b.terminator
            if isinstance(t, I.Br) and not t.is_conditional and not b.phis():
                target = t.targets[0]
                if not target.phis() and target is not b:
                    forward[id(b)] = target

    def final(b: BasicBlock) -> BasicBlock:
        seen = set()
        while id(b) in forward and id(b) not in seen:
            seen.add(id(b))
            b = forward[id(b)]
        return b

    for b in func.blocks:
        term = b.terminator
        if isinstance(term, I.Br):
            new_targets = [final(t) for t in term.targets]
            if any(n is not o for n, o in zip(new_targets, term.targets)):
                term.targets = new_targets
                changed = True
    return changed


def run(func: Function) -> bool:
    """Run all CFG simplifications to a local fixpoint."""
    changed = False
    for _ in range(16):
        round_changed = False
        round_changed |= _fold_constant_branches(func)
        round_changed |= _thread_trivial_jumps(func)
        round_changed |= _remove_unreachable(func)
        round_changed |= _simplify_phis(func)
        round_changed |= _merge_straight_line(func)
        changed |= round_changed
        if not round_changed:
            break
    if changed:
        func.bump_version()
    return changed
