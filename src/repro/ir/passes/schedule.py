"""Profile-guided O3 pass scheduling (PR 9 speed campaign).

``run_o3`` historically ran every enabled pass every sweep; the obs
self-time report shows most of those applications return "no change" —
a full pass walk spent proving nothing fires.  This module lets the
pipeline skip those applications *without changing the produced IR* in
its default mode:

**Static no-fire rules** (``pass_schedule="static"``, the speed-campaign
default).  A pass is skipped only when the function's *shape fingerprint*
(opcode histogram, phi/block counts, CFG cyclicity) proves the pass
cannot fire:

* ``inline``  — no non-intrinsic call sites;
* ``mem2reg`` — no ``alloca``;
* ``unroll`` / ``vectorize`` — acyclic CFG (no natural loops);
* ``constprop`` — no loads, no select, and no constant-typed operand
  anywhere (every fold in ``fold.try_fold`` needs one of those);
* ``simplifycfg`` — already a single phi-free block ending in ``ret``.

Each rule is conservative: whenever it is unsure it runs the pass.  On
top of the shape rules, the **version rule** skips a pass whose previous
application on this *exact* function version returned "no change" —
passes are deterministic, so re-running them on an unmutated function is
provably a no-op (this is what makes the final convergence sweep nearly
free).  Both rules are output-identical, so static scheduling shares
cache keys with scheduling disabled.

**Profile mode** (``pass_schedule="profile"``, opt-in) additionally skips
a pass when the fired-pass statistics in the ``MetricsRegistry`` show it
has never fired for this shape class after a confidence threshold of
attempts.  Learned skips may change the produced IR, so "profile" is a
distinct ``O3Options`` field value that flows into ``options_digest`` —
profiled artifacts can never be served from a cache entry produced
without profiling (or vice versa).

**Validator interlock** (the de-risk requirement): the moment a
``PassValidator`` quarantines *any* pass — before the run (negative-cache
probe at scheduler construction) or during it (a rejection verdict) —
the scheduler disables itself for the remainder of the run.  A pipeline
known to contain a miscompiling pass gets zero skips: every pass runs
and every application is validated, so scheduling can never hide a
miscompile from the validator.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.ir import instructions as I
from repro.ir.module import Function
from repro.ir.values import Constant, ConstantFP, ConstantVector, Undef
from repro.obs import metrics as _metrics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.validate import PassValidator

#: every pass name run_o3 can step (for the quarantine pre-probe)
PASS_NAMES = ("simplifycfg", "mem2reg", "inline", "constprop",
              "instcombine", "gvn", "dce", "unroll", "vectorize")

#: profile mode: skip after this many no-fire attempts for a shape class
PROFILE_THRESHOLD = 32

_SKIPS = _metrics.REGISTRY.family("o3.sched.skips")
_RUNS = _metrics.REGISTRY.family("o3.sched.runs")
_ATTEMPTS = _metrics.REGISTRY.family("o3.sched.attempts")
_FIRED = _metrics.REGISTRY.family("o3.sched.fired")


class ShapeFingerprint:
    """Cheap structural summary of one function body (one instruction walk)."""

    __slots__ = ("nblocks", "ninstrs", "nphis", "ncalls", "nallocas",
                 "nloads", "nselects", "nprobes", "has_const_operand",
                 "cyclic", "opcode_histogram")

    def __init__(self, func: Function) -> None:
        hist: dict[str, int] = {}
        nphis = ncalls = nallocas = nloads = nselects = ninstrs = 0
        nprobes = 0
        has_const = False
        for blk in func.blocks:
            for ins in blk.instructions:
                ninstrs += 1
                if ins.probe is not None:
                    nprobes += 1
                op = ins.opcode
                hist[op] = hist.get(op, 0) + 1
                if isinstance(ins, I.Phi):
                    nphis += 1
                elif isinstance(ins, I.Call):
                    if not ins.intrinsic:
                        ncalls += 1
                elif isinstance(ins, I.Alloca):
                    nallocas += 1
                elif isinstance(ins, I.Load):
                    nloads += 1
                elif isinstance(ins, I.Select):
                    nselects += 1
                if not has_const:
                    for o in ins.operands:
                        if isinstance(o, (Constant, ConstantFP,
                                          ConstantVector, Undef)):
                            has_const = True
                            break
        self.nblocks = len(func.blocks)
        self.ninstrs = ninstrs
        self.nphis = nphis
        self.ncalls = ncalls
        self.nallocas = nallocas
        self.nloads = nloads
        self.nselects = nselects
        self.nprobes = nprobes
        self.has_const_operand = has_const
        self.cyclic = _has_cycle(func)
        self.opcode_histogram = hist

    @property
    def shape_class(self) -> str:
        """Coarse label for fired-pass statistics (profile mode).

        Probe-carrying bodies get their own class (``P`` vs ``p``): a
        no-fire rule learned on plain code must never be applied to an
        instrumented body, whose probe chains change what passes can do.
        """
        return (f"b{_bucket(self.nblocks)}i{_bucket(self.ninstrs)}"
                f"p{min(self.nphis, 1)}c{min(self.ncalls, 1)}"
                f"a{min(self.nallocas, 1)}"
                f"{'L' if self.cyclic else 'l'}"
                f"{'P' if self.nprobes else ''}")


def _bucket(n: int) -> int:
    b = 0
    while n > 1:
        n >>= 1
        b += 1
    return b


def _has_cycle(func: Function) -> bool:
    """True when the CFG has any cycle (conservative: unreachable blocks
    participate)."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {id(b): WHITE for b in func.blocks}
    for root in func.blocks:
        if color[id(root)] != WHITE:
            continue
        stack = [(root, iter(root.successors()))]
        color[id(root)] = GRAY
        while stack:
            node, it = stack[-1]
            adv = False
            for succ in it:
                c = color.get(id(succ), BLACK)
                if c == GRAY:
                    return True
                if c == WHITE:
                    color[id(succ)] = GRAY
                    stack.append((succ, iter(succ.successors())))
                    adv = True
                    break
            if not adv:
                color[id(node)] = BLACK
                stack.pop()
    return False


def _rule_no_fire(name: str, fp: ShapeFingerprint) -> bool:
    """True when ``fp`` proves pass ``name`` cannot change the function."""
    if name == "inline":
        return fp.ncalls == 0
    if name == "mem2reg":
        return fp.nallocas == 0
    if name in ("unroll", "vectorize"):
        return not fp.cyclic
    if name == "constprop":
        return (fp.nloads == 0 and fp.nselects == 0
                and not fp.has_const_operand)
    if name == "simplifycfg":
        if fp.nblocks != 1 or fp.nphis != 0:
            return False
        h = fp.opcode_histogram
        return h.get("ret", 0) == 1 and h.get("br", 0) == 0
    return False


class Scheduler:
    """Per-``run_o3``-invocation skip decisions for one function.

    ``mode`` is the *resolved* schedule ("off", "static" or "profile" —
    never "auto"); construction with "off" yields a scheduler that skips
    nothing, which keeps the pipeline code uniform.
    """

    def __init__(self, func: Function, mode: str,
                 validator: "PassValidator | None" = None) -> None:
        if mode not in ("off", "static", "profile"):
            raise ValueError(f"unknown pass_schedule {mode!r}")
        self.func = func
        self.mode = mode
        self.disabled_reason: str | None = None
        self._fp: ShapeFingerprint | None = None
        self._fp_version = -1
        #: pass name -> func version at which it last reported "no change"
        self._nofire_at: dict[str, int] = {}
        self.skipped: list[str] = []
        if mode == "off":
            self.disabled_reason = "off"
        elif validator is not None:
            # a pass already in quarantine means this pipeline is under
            # active suspicion: run everything, validate everything
            for name in PASS_NAMES:
                if validator.negative.check(f"o3pass:{name}") is not None:
                    self.disable(f"quarantined:{name}")
                    break

    # -- state ---------------------------------------------------------------

    def disable(self, reason: str) -> None:
        """Permanently stop skipping for this run (validator interlock)."""
        if self.disabled_reason is None or self.disabled_reason == "off":
            self.disabled_reason = reason

    def fingerprint(self) -> ShapeFingerprint:
        ver = self.func.version
        if self._fp is None or self._fp_version != ver:
            self._fp = ShapeFingerprint(self.func)
            self._fp_version = ver
        return self._fp

    # -- decisions -----------------------------------------------------------

    def should_skip(self, name: str) -> bool:
        if self.disabled_reason is not None:
            return False
        # version rule: this exact body already reported "no change"
        if self._nofire_at.get(name) == self.func.version:
            self._record_skip(name, "version")
            return True
        fp = self.fingerprint()
        if _rule_no_fire(name, fp):
            self._record_skip(name, "shape")
            return True
        if self.mode == "profile":
            label = f"{name}|{fp.shape_class}"
            if _ATTEMPTS.get(label, 0) >= PROFILE_THRESHOLD \
                    and _FIRED.get(label, 0) == 0:
                self._record_skip(name, "profile")
                return True
        return False

    def note_result(self, name: str, changed: bool) -> None:
        """Feed one executed pass application back into the model."""
        _RUNS.inc(name)
        if self.disabled_reason is None and self.mode == "profile":
            label = f"{name}|{self.fingerprint().shape_class}"
            _ATTEMPTS.inc(label)
            if changed:
                _FIRED.inc(label)
        if not changed:
            self._nofire_at[name] = self.func.version
        else:
            self._nofire_at.pop(name, None)

    def _record_skip(self, name: str, why: str) -> None:
        self.skipped.append(name)
        _SKIPS.inc(f"{name}:{why}")


def resolve_mode(pass_schedule: str) -> str:
    """Map the ``O3Options.pass_schedule`` field to a concrete mode.

    "auto" defers to the speed-campaign switch: static scheduling when the
    campaign is enabled, none when ``REPRO_SPEED=0``.  Both resolutions
    are output-identical, which is why "auto" is digest-safe as a default.
    """
    if pass_schedule == "auto":
        from repro import speed
        return "static" if speed.enabled() else "off"
    return pass_schedule


def stats() -> dict[str, dict]:
    """Current scheduler counter families (benchmarks / reports)."""
    return {
        "skips": dict(_SKIPS),
        "runs": dict(_RUNS),
        "attempts": dict(_ATTEMPTS),
        "fired": dict(_FIRED),
    }
