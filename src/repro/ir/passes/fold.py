"""Constant folding of individual instructions (shared by several passes)."""

from __future__ import annotations

import struct

from repro.ir import instructions as I
from repro.ir.irtypes import DoubleType, FloatType, IntType, PointerType, Type, VectorType
from repro.ir.module import GlobalVariable
from repro.ir.values import Constant, ConstantFP, ConstantVector, Undef, Value


def _signed(v: int, bits: int) -> int:
    sign = 1 << (bits - 1)
    return (v & (sign - 1)) - (v & sign)


def _as_int(v: Value) -> int | None:
    if isinstance(v, Constant):
        return v.value
    return None


def _as_fp(v: Value) -> float | None:
    if isinstance(v, ConstantFP):
        return v.value
    return None


def try_fold(ins: I.Instruction) -> Value | None:
    """Return a constant replacing ``ins``, or None if not foldable."""
    if isinstance(ins, I.BinOp):
        return _fold_binop(ins)
    if isinstance(ins, I.ICmp):
        a, b = _as_int(ins.operands[0]), _as_int(ins.operands[1])
        if a is None or b is None:
            return None
        t = ins.operands[0].type
        bits = t.bits if isinstance(t, IntType) else 64
        from repro.ir.interp import _icmp
        return Constant(ins.type, int(_icmp(ins.pred, a, b, bits)))
    if isinstance(ins, I.FCmp):
        a, b = _as_fp(ins.operands[0]), _as_fp(ins.operands[1])
        if a is None or b is None:
            return None
        from repro.ir.interp import _fcmp
        return Constant(ins.type, int(_fcmp(ins.pred, a, b)))
    if isinstance(ins, I.Select):
        c = _as_int(ins.operands[0])
        if c is not None:
            return ins.operands[1] if c else ins.operands[2]
        if ins.operands[1] is ins.operands[2]:
            return ins.operands[1]
        return None
    if isinstance(ins, I.Cast):
        return _fold_cast(ins)
    if isinstance(ins, I.GEP):
        base, idx = ins.operands
        iv = _as_int(idx)
        if iv is not None and iv % (1 << idx.type.bits) == 0 and base.type is ins.type:  # type: ignore[union-attr]
            return base
        return None
    if isinstance(ins, I.ExtractElement):
        vec, idx = ins.operands
        if isinstance(vec, ConstantVector) and isinstance(idx, Constant):
            return vec.elements[idx.value]
        return None  # further patterns live in instcombine
    if isinstance(ins, I.InsertElement):
        vec, val, idx = ins.operands
        if isinstance(vec, ConstantVector) and isinstance(idx, Constant) and \
                isinstance(val, (Constant, ConstantFP)):
            elems = list(vec.elements)
            elems[idx.value] = val
            return ConstantVector(vec.type, tuple(elems))
        return None
    return None


def _fold_binop(ins: I.BinOp) -> Value | None:
    t = ins.type
    if isinstance(t, IntType):
        a, b = _as_int(ins.operands[0]), _as_int(ins.operands[1])
        if a is None or b is None:
            return None
        bits = t.bits
        op = ins.opcode
        if op == "add":
            return Constant(t, a + b)
        if op == "sub":
            return Constant(t, a - b)
        if op == "mul":
            return Constant(t, a * b)
        if op == "and":
            return Constant(t, a & b)
        if op == "or":
            return Constant(t, a | b)
        if op == "xor":
            return Constant(t, a ^ b)
        if op == "shl":
            return Constant(t, a << (b % bits))
        if op == "lshr":
            return Constant(t, a >> (b % bits))
        if op == "ashr":
            return Constant(t, _signed(a, bits) >> (b % bits))
        if op in ("sdiv", "srem"):
            d = _signed(b, bits)
            if d == 0:
                return None
            n = _signed(a, bits)
            q = int(n / d)
            return Constant(t, q if op == "sdiv" else n - q * d)
        if op in ("udiv", "urem"):
            if b == 0:
                return None
            return Constant(t, a // b if op == "udiv" else a % b)
        return None
    if isinstance(t, (DoubleType, FloatType)):
        a, b = _as_fp(ins.operands[0]), _as_fp(ins.operands[1])
        if a is None or b is None:
            return None
        op = ins.opcode
        if op == "fadd":
            r = a + b
        elif op == "fsub":
            r = a - b
        elif op == "fmul":
            r = a * b
        elif op == "fdiv":
            if b == 0.0:
                return None
            r = a / b
        else:
            return None
        if isinstance(t, FloatType):
            r = struct.unpack("<f", struct.pack("<f", r))[0]
        return ConstantFP(t, r)
    return None


def resolve_const_pointer(v: Value, depth: int = 32) -> int | None:
    """Resolve inttoptr(C)/gep/bitcast chains to a constant address."""
    offset = 0
    while depth > 0:
        depth -= 1
        if isinstance(v, I.Cast) and v.opcode == "bitcast" and v.type.is_pointer:
            v = v.operands[0]
            continue
        if isinstance(v, I.Cast) and v.opcode == "inttoptr":
            inner = v.operands[0]
            if isinstance(inner, Constant):
                return (inner.value + offset) & (2**64 - 1)
            return None
        if isinstance(v, I.GEP):
            idx = v.operands[1]
            if not isinstance(idx, Constant):
                return None
            offset += idx.signed * v.elem.size_bytes()
            v = v.operands[0]
            continue
        return None
    return None


def _fold_cast(ins: I.Cast) -> Value | None:
    (v,) = ins.operands
    dst = ins.type
    op = ins.opcode
    iv = _as_int(v)
    fv = _as_fp(v)
    if op == "ptrtoint":
        addr = resolve_const_pointer(v)
        if addr is not None:
            return Constant(dst, addr)
    if op == "trunc" and iv is not None:
        return Constant(dst, iv)
    if op == "zext" and iv is not None:
        return Constant(dst, iv)
    if op == "sext" and iv is not None:
        return Constant(dst, _signed(iv, v.type.bits))  # type: ignore[union-attr]
    if op == "sitofp" and iv is not None:
        return ConstantFP(dst, float(_signed(iv, v.type.bits)))  # type: ignore[union-attr]
    if op == "uitofp" and iv is not None:
        return ConstantFP(dst, float(iv))
    if op == "fptosi" and fv is not None:
        return Constant(dst, int(fv))
    if op == "bitcast" and iv is not None and isinstance(dst, DoubleType) \
            and isinstance(v.type, IntType) and v.type.bits == 64:
        return ConstantFP(dst, struct.unpack("<d", iv.to_bytes(8, "little"))[0])
    if op == "bitcast" and fv is not None and isinstance(dst, IntType) \
            and dst.bits == 64 and isinstance(v.type, DoubleType):
        return Constant(dst, int.from_bytes(struct.pack("<d", fv), "little"))
    if op == "bitcast" and v.type is dst:
        return v
    if op == "bitcast" and isinstance(v, ConstantVector):
        from repro.ir.interp import _to_bytes
        raw = _to_bytes(tuple(
            e.value for e in v.elements  # type: ignore[union-attr]
        ), v.type)
        if isinstance(dst, IntType):
            return Constant(dst, int.from_bytes(raw, "little"))
        if isinstance(dst, VectorType):
            from repro.ir.interp import _from_bytes
            vals = _from_bytes(raw, dst)
            elems: list[Value] = []
            for x in vals:  # type: ignore[union-attr]
                if isinstance(dst.elem, IntType):
                    elems.append(Constant(dst.elem, int(x)))
                else:
                    elems.append(ConstantFP(dst.elem, float(x)))
            return ConstantVector(dst, tuple(elems))
    if op == "bitcast" and isinstance(v, Constant) and isinstance(dst, VectorType):
        from repro.ir.interp import _from_bytes
        raw = v.value.to_bytes(v.type.size_bytes(), "little")  # type: ignore[attr-defined]
        vals = _from_bytes(raw, dst)
        elems2: list[Value] = []
        for x in vals:  # type: ignore[union-attr]
            if isinstance(dst.elem, IntType):
                elems2.append(Constant(dst.elem, int(x)))
            else:
                elems2.append(ConstantFP(dst.elem, float(x)))
        return ConstantVector(dst, tuple(elems2))
    if isinstance(v, Undef):
        return Undef(dst)
    return None


def read_constant_global(
    ptr: Value, offset: int, type_: Type
) -> Value | None:
    """Fold a load from a constant global's initializer bytes."""
    if not isinstance(ptr, GlobalVariable) or not ptr.constant:
        return None
    size = type_.size_bytes()
    data = ptr.initializer
    if offset < 0 or offset + size > len(data):
        return None
    raw = data[offset: offset + size]
    if isinstance(type_, IntType):
        return Constant(type_, int.from_bytes(raw, "little"))
    if isinstance(type_, DoubleType):
        return ConstantFP(type_, struct.unpack("<d", raw)[0])
    if isinstance(type_, FloatType):
        return ConstantFP(type_, struct.unpack("<f", raw)[0])
    if isinstance(type_, PointerType):
        # pointers inside fixed memory are *not* followed (Sec. IV: nested
        # pointers are not marked constant); folding the address itself is
        # still fine because the bytes are the value.
        return None
    return None
