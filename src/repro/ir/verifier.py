"""IR verifier: structural and type invariants plus SSA dominance.

Run after lifting and after every pass in tests — the verifier is the main
defense against pass bugs.  Dominance uses networkx's immediate-dominators
on the CFG.
"""

from __future__ import annotations

import networkx as nx

from repro.errors import IRError
from repro.ir import instructions as I
from repro.ir.irtypes import IntType, PointerType, VectorType
from repro.ir.module import BasicBlock, Function, GlobalVariable, Module
from repro.ir.values import Argument, Constant, ConstantFP, Undef, Value


def _cfg(func: Function) -> nx.DiGraph:
    g = nx.DiGraph()
    for blk in func.blocks:
        g.add_node(blk)
        for succ in blk.successors():
            g.add_edge(blk, succ)
    return g


def verify(func: Function) -> None:
    """Raise IRError on any malformation."""
    if func.is_declaration:
        if func.blocks:
            raise IRError(f"@{func.name}: declaration with a body")
        return
    if not func.blocks:
        raise IRError(f"@{func.name}: no basic blocks")

    names: set[str] = set()
    for blk in func.blocks:
        if blk.name in names:
            raise IRError(f"@{func.name}: duplicate block name {blk.name}")
        names.add(blk.name)
        if blk.function is not func:
            raise IRError(f"@{func.name}: block {blk.name} has wrong parent")

    block_set = set(func.blocks)
    defined: dict[int, I.Instruction] = {}

    for blk in func.blocks:
        term = blk.terminator
        if term is None:
            raise IRError(f"@{func.name}: block {blk.name} lacks a terminator")
        seen_non_phi = False
        for ins in blk.instructions:
            if ins.is_terminator and ins is not term:
                raise IRError(f"@{func.name}: terminator mid-block in {blk.name}")
            if isinstance(ins, I.Phi):
                if seen_non_phi:
                    raise IRError(
                        f"@{func.name}: phi after non-phi in {blk.name}"
                    )
            else:
                seen_non_phi = True
            if ins.block is not blk:
                raise IRError(f"@{func.name}: instruction parent mismatch in {blk.name}")
            _check_types(func, ins)
            defined[id(ins)] = ins
        for succ in blk.successors():
            if succ not in block_set:
                raise IRError(
                    f"@{func.name}: branch from {blk.name} to foreign block {succ.name}"
                )

    # phi incoming lists must match the predecessor set *exactly*: same
    # members, no duplicates, no value/block length skew, and never empty
    # (a zero-incoming phi has no defining edge — classic simplifycfg /
    # block-removal residue that a set comparison cannot see)
    for blk in func.blocks:
        preds = set(func.predecessors(blk))
        for phi in blk.phis():
            if len(phi.operands) != len(phi.incoming_blocks):
                raise IRError(
                    f"@{func.name}: phi %{phi.name} in {blk.name} has "
                    f"{len(phi.operands)} value(s) for "
                    f"{len(phi.incoming_blocks)} incoming block(s)"
                )
            if not phi.incoming_blocks:
                raise IRError(
                    f"@{func.name}: phi %{phi.name} in {blk.name} has no "
                    f"incoming edges"
                )
            if len({id(b) for b in phi.incoming_blocks}) != len(phi.incoming_blocks):
                dup = [b.name for b in phi.incoming_blocks
                       if phi.incoming_blocks.count(b) > 1]
                raise IRError(
                    f"@{func.name}: phi %{phi.name} in {blk.name} lists "
                    f"incoming block(s) {sorted(set(dup))} more than once"
                )
            inc = set(phi.incoming_blocks)
            if inc != preds:
                missing = {b.name for b in preds - inc}
                extra = {b.name for b in inc - preds}
                raise IRError(
                    f"@{func.name}: phi %{phi.name} in {blk.name} incoming "
                    f"mismatch (missing {missing or '{}'}, extra {extra or '{}'})"
                )

    _check_dominance(func)


def _check_types(func: Function, ins: I.Instruction) -> None:
    if isinstance(ins, I.BinOp):
        a, b = ins.operands
        if a.type is not b.type:
            raise IRError(f"@{func.name}: binop {ins.opcode} type mismatch "
                          f"{a.type} vs {b.type}")
        if ins.opcode in I.FP_BINOPS and not (a.type.is_float or a.type.is_vector):
            raise IRError(f"@{func.name}: {ins.opcode} on {a.type}")
        if ins.opcode in I.INT_BINOPS and not (a.type.is_integer or a.type.is_vector):
            raise IRError(f"@{func.name}: {ins.opcode} on {a.type}")
    elif isinstance(ins, (I.ICmp, I.FCmp)):
        a, b = ins.operands
        if a.type is not b.type:
            raise IRError(f"@{func.name}: cmp type mismatch {a.type} vs {b.type}")
    elif isinstance(ins, I.Cast):
        (a,) = ins.operands
        _check_cast(func, ins.opcode, a, ins)
    elif isinstance(ins, I.Load):
        (p,) = ins.operands
        if not isinstance(p.type, PointerType):
            raise IRError(f"@{func.name}: load from {p.type}")
        if p.type.pointee is not ins.type:
            raise IRError(f"@{func.name}: load type {ins.type} != pointee "
                          f"{p.type.pointee}")
    elif isinstance(ins, I.Store):
        v, p = ins.operands
        if not isinstance(p.type, PointerType):
            raise IRError(f"@{func.name}: store to {p.type}")
        if p.type.pointee is not v.type:
            raise IRError(f"@{func.name}: store of {v.type} to {p.type}")
    elif isinstance(ins, I.GEP):
        p, idx = ins.operands
        if not isinstance(p.type, PointerType):
            raise IRError(f"@{func.name}: gep on {p.type}")
        if not isinstance(idx.type, IntType):
            raise IRError(f"@{func.name}: gep index {idx.type}")
    elif isinstance(ins, I.ExtractElement):
        v, idx = ins.operands
        if not isinstance(v.type, VectorType):
            raise IRError(f"@{func.name}: extractelement on {v.type}")
    elif isinstance(ins, I.InsertElement):
        v, x, idx = ins.operands
        if not isinstance(v.type, VectorType) or v.type.elem is not x.type:
            raise IRError(f"@{func.name}: insertelement {x.type} into {v.type}")
    elif isinstance(ins, I.ShuffleVector):
        a, b = ins.operands
        if a.type is not b.type:
            raise IRError(f"@{func.name}: shufflevector operand mismatch")
        n = a.type.count * 2  # type: ignore[union-attr]
        if any(not 0 <= m < n for m in ins.mask):
            raise IRError(f"@{func.name}: shufflevector mask out of range")
    elif isinstance(ins, I.Phi):
        for v, _b in ins.incoming():
            if v.type is not ins.type and not isinstance(v, Undef):
                raise IRError(
                    f"@{func.name}: phi %{ins.name} incoming {v.type} != {ins.type}"
                )
    elif isinstance(ins, I.Br) and ins.is_conditional:
        c = ins.operands[0]
        if not (isinstance(c.type, IntType) and c.type.bits == 1):
            raise IRError(f"@{func.name}: branch condition is {c.type}")
    elif isinstance(ins, I.Ret):
        want = func.ftype.ret
        if ins.value is None:
            if not want.is_void:
                raise IRError(f"@{func.name}: ret void from {want} function")
        elif ins.value.type is not want:
            raise IRError(f"@{func.name}: ret {ins.value.type}, expected {want}")


_CAST_RULES = {
    "trunc": lambda f, t: f.is_integer and t.is_integer and f.bits > t.bits,
    "zext": lambda f, t: f.is_integer and t.is_integer and f.bits < t.bits,
    "sext": lambda f, t: f.is_integer and t.is_integer and f.bits < t.bits,
    "bitcast": lambda f, t: f.size_bytes() == t.size_bytes(),
    "inttoptr": lambda f, t: f.is_integer and t.is_pointer,
    "ptrtoint": lambda f, t: f.is_pointer and t.is_integer,
    "sitofp": lambda f, t: f.is_integer and t.is_float,
    "uitofp": lambda f, t: f.is_integer and t.is_float,
    "fptosi": lambda f, t: f.is_float and t.is_integer,
    "fpext": lambda f, t: f.is_float and t.is_float,
    "fptrunc": lambda f, t: f.is_float and t.is_float,
}


def _check_cast(func: Function, opcode: str, a: Value, ins: I.Instruction) -> None:
    rule = _CAST_RULES[opcode]
    ok = rule(a.type, ins.type)
    if not ok:
        raise IRError(f"@{func.name}: invalid {opcode} {a.type} -> {ins.type}")


def _check_dominance(func: Function) -> None:
    g = _cfg(func)
    entry = func.entry
    reachable = set(nx.descendants(g, entry)) | {entry}
    idom = nx.immediate_dominators(g, entry)

    def dominates(a: BasicBlock, b: BasicBlock) -> bool:
        while True:
            if a is b:
                return True
            parent = idom.get(b)
            if parent is None or parent is b:
                return a is b
            b = parent

    # position index for same-block ordering
    pos: dict[int, tuple[BasicBlock, int]] = {}
    for blk in func.blocks:
        for i, ins in enumerate(blk.instructions):
            pos[id(ins)] = (blk, i)

    for blk in func.blocks:
        if blk not in reachable:
            continue
        for i, ins in enumerate(blk.instructions):
            if isinstance(ins, I.Phi):
                for v, pred in ins.incoming():
                    _check_use_dominance(func, v, pred, len(pred.instructions),
                                         pos, dominates, reachable, ins)
                continue
            for v in ins.operands:
                _check_use_dominance(func, v, blk, i, pos, dominates, reachable, ins)


def _check_use_dominance(func, v, use_block, use_index, pos, dominates,
                         reachable, user) -> None:
    from repro.ir.instructions import Instruction
    if not isinstance(v, Instruction):
        return  # constants, args, globals, undef always dominate
    if id(v) not in pos:
        raise IRError(
            f"@{func.name}: use of detached value %{v.name} in %{user.name or user.opcode}"
        )
    def_block, def_index = pos[id(v)]
    if def_block not in reachable:
        return  # uses in unreachable code are ignored, like LLVM
    if def_block is use_block:
        if def_index >= use_index:
            raise IRError(
                f"@{func.name}: %{v.name} used before definition in "
                f"{use_block.name}"
            )
    elif not dominates(def_block, use_block):
        raise IRError(
            f"@{func.name}: definition of %{v.name} ({def_block.name}) does "
            f"not dominate use in {use_block.name}"
        )


def verify_module(module: Module) -> None:
    """Verify every function in the module."""
    for func in module.functions.values():
        verify(func)
