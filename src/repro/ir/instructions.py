"""MiniLLVM instructions.

Instructions are values (SSA).  Operands live in ``self.operands`` so
passes can rewrite them uniformly; instruction-specific payload (predicates,
types, incoming blocks, shuffle masks) lives in dedicated attributes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from repro.errors import IRError
from repro.ir.irtypes import (
    DOUBLE, FLOAT, I1, IntType, PointerType, Type, VectorType, VOID,
)
from repro.ir.values import Value

if TYPE_CHECKING:
    from repro.ir.module import BasicBlock, Function

INT_BINOPS = frozenset({
    "add", "sub", "mul", "sdiv", "udiv", "srem", "urem",
    "and", "or", "xor", "shl", "lshr", "ashr",
})
FP_BINOPS = frozenset({"fadd", "fsub", "fmul", "fdiv"})
ICMP_PREDS = frozenset({
    "eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge",
})
FCMP_PREDS = frozenset({
    "oeq", "one", "olt", "ole", "ogt", "oge", "ord", "uno",
    "ueq", "une", "ult", "ule", "ugt", "uge",
})
CAST_OPS = frozenset({
    "trunc", "zext", "sext", "bitcast", "inttoptr", "ptrtoint",
    "sitofp", "fptosi", "fpext", "fptrunc", "uitofp",
})


class Instruction(Value):
    """Base instruction; also an SSA value (possibly of void type)."""

    __slots__ = ("opcode", "operands", "block", "probe")

    def __init__(self, opcode: str, type_: Type, operands: Sequence[Value],
                 name: str = "") -> None:
        super().__init__(type_, name)
        self.opcode = opcode
        self.operands: list[Value] = list(operands)
        self.block: Optional["BasicBlock"] = None
        #: instrumentation tag: ``None`` for program instructions, a
        #: ``(kind, site)`` pair for probe instructions injected by
        #: ``repro.instrument`` — the marker ``strip_instrumentation``
        #: inverts on and the probe-ops pregate reasons about
        self.probe: Optional[tuple] = None

    @property
    def is_terminator(self) -> bool:
        return self.opcode in ("br", "ret", "unreachable")

    def replace_operand(self, old: Value, new: Value) -> None:
        for i, op in enumerate(self.operands):
            if op is old:
                self.operands[i] = new

    def successors(self) -> "list[BasicBlock]":
        return []

    def clone_shallow(self) -> "Instruction":
        raise NotImplementedError

    def __repr__(self) -> str:
        from repro.ir.printer import print_instruction
        return print_instruction(self)


class BinOp(Instruction):
    __slots__ = ()

    def __init__(self, opcode: str, lhs: Value, rhs: Value, name: str = "") -> None:
        if opcode not in INT_BINOPS and opcode not in FP_BINOPS:
            raise IRError(f"bad binop {opcode}")
        super().__init__(opcode, lhs.type, (lhs, rhs), name)

    def clone_shallow(self) -> "BinOp":
        return BinOp(self.opcode, self.operands[0], self.operands[1], self.name)


class ICmp(Instruction):
    __slots__ = ("pred",)

    def __init__(self, pred: str, lhs: Value, rhs: Value, name: str = "") -> None:
        if pred not in ICMP_PREDS:
            raise IRError(f"bad icmp predicate {pred}")
        super().__init__("icmp", I1, (lhs, rhs), name)
        self.pred = pred

    def clone_shallow(self) -> "ICmp":
        return ICmp(self.pred, self.operands[0], self.operands[1], self.name)


class FCmp(Instruction):
    __slots__ = ("pred",)

    def __init__(self, pred: str, lhs: Value, rhs: Value, name: str = "") -> None:
        if pred not in FCMP_PREDS:
            raise IRError(f"bad fcmp predicate {pred}")
        super().__init__("fcmp", I1, (lhs, rhs), name)
        self.pred = pred

    def clone_shallow(self) -> "FCmp":
        return FCmp(self.pred, self.operands[0], self.operands[1], self.name)


class Select(Instruction):
    __slots__ = ()

    def __init__(self, cond: Value, a: Value, b: Value, name: str = "") -> None:
        super().__init__("select", a.type, (cond, a, b), name)

    def clone_shallow(self) -> "Select":
        c, a, b = self.operands
        return Select(c, a, b, self.name)


class Cast(Instruction):
    __slots__ = ()

    def __init__(self, opcode: str, value: Value, to: Type, name: str = "") -> None:
        if opcode not in CAST_OPS:
            raise IRError(f"bad cast {opcode}")
        super().__init__(opcode, to, (value,), name)

    def clone_shallow(self) -> "Cast":
        return Cast(self.opcode, self.operands[0], self.type, self.name)


class Load(Instruction):
    __slots__ = ("align",)

    def __init__(self, pointer: Value, name: str = "", align: int = 1) -> None:
        if not isinstance(pointer.type, PointerType):
            raise IRError(f"load from non-pointer {pointer.type}")
        super().__init__("load", pointer.type.pointee, (pointer,), name)
        self.align = align

    def clone_shallow(self) -> "Load":
        return Load(self.operands[0], self.name, self.align)


class Store(Instruction):
    __slots__ = ("align",)

    def __init__(self, value: Value, pointer: Value, align: int = 1) -> None:
        if not isinstance(pointer.type, PointerType):
            raise IRError(f"store to non-pointer {pointer.type}")
        super().__init__("store", VOID, (value, pointer))
        self.align = align

    def clone_shallow(self) -> "Store":
        return Store(self.operands[0], self.operands[1], self.align)


class Alloca(Instruction):
    """Stack allocation of ``size`` bytes (the virtual stack of Sec. III-F)."""

    __slots__ = ("size", "align")

    def __init__(self, pointee: Type, size: int, align: int = 16,
                 name: str = "") -> None:
        super().__init__("alloca", PointerType(pointee), (), name)
        self.size = size
        self.align = align

    def clone_shallow(self) -> "Alloca":
        assert isinstance(self.type, PointerType)
        return Alloca(self.type.pointee, self.size, self.align, self.name)


class GEP(Instruction):
    """Single-index getelementptr: result = ptr + index * sizeof(elem)."""

    __slots__ = ("elem",)

    def __init__(self, pointer: Value, index: Value, name: str = "",
                 elem: Type | None = None) -> None:
        pt = pointer.type
        if not isinstance(pt, PointerType):
            raise IRError(f"gep on non-pointer {pt}")
        elem = elem or pt.pointee
        super().__init__("gep", PointerType(elem, pt.addrspace), (pointer, index), name)
        self.elem = elem

    def clone_shallow(self) -> "GEP":
        return GEP(self.operands[0], self.operands[1], self.name, self.elem)


class ExtractElement(Instruction):
    __slots__ = ()

    def __init__(self, vec: Value, index: Value, name: str = "") -> None:
        if not isinstance(vec.type, VectorType):
            raise IRError(f"extractelement on {vec.type}")
        super().__init__("extractelement", vec.type.elem, (vec, index), name)

    def clone_shallow(self) -> "ExtractElement":
        return ExtractElement(self.operands[0], self.operands[1], self.name)


class InsertElement(Instruction):
    __slots__ = ()

    def __init__(self, vec: Value, value: Value, index: Value, name: str = "") -> None:
        if not isinstance(vec.type, VectorType):
            raise IRError(f"insertelement on {vec.type}")
        super().__init__("insertelement", vec.type, (vec, value, index), name)

    def clone_shallow(self) -> "InsertElement":
        v, x, i = self.operands
        return InsertElement(v, x, i, self.name)


class ShuffleVector(Instruction):
    __slots__ = ("mask",)

    def __init__(self, a: Value, b: Value, mask: tuple[int, ...],
                 name: str = "") -> None:
        if not isinstance(a.type, VectorType):
            raise IRError(f"shufflevector on {a.type}")
        result = VectorType(a.type.elem, len(mask))
        super().__init__("shufflevector", result, (a, b), name)
        self.mask = mask

    def clone_shallow(self) -> "ShuffleVector":
        return ShuffleVector(self.operands[0], self.operands[1], self.mask, self.name)


class Phi(Instruction):
    """Phi node; ``incoming_blocks[i]`` pairs with ``operands[i]``."""

    __slots__ = ("incoming_blocks",)

    def __init__(self, type_: Type, name: str = "") -> None:
        super().__init__("phi", type_, (), name)
        self.incoming_blocks: list["BasicBlock"] = []

    def add_incoming(self, value: Value, block: "BasicBlock") -> None:
        if value.type is not self.type and value.type != self.type:
            raise IRError(
                f"phi {self.short()} incoming type {value.type} != {self.type}"
            )
        self.operands.append(value)
        self.incoming_blocks.append(block)

    def incoming(self) -> list[tuple[Value, "BasicBlock"]]:
        return list(zip(self.operands, self.incoming_blocks))

    def incoming_for(self, block: "BasicBlock") -> Value | None:
        for v, b in zip(self.operands, self.incoming_blocks):
            if b is block:
                return v
        return None

    def remove_incoming(self, block: "BasicBlock") -> None:
        for i, b in enumerate(self.incoming_blocks):
            if b is block:
                del self.incoming_blocks[i]
                del self.operands[i]
                return

    def clone_shallow(self) -> "Phi":
        p = Phi(self.type, self.name)
        for v, b in self.incoming():
            p.operands.append(v)
            p.incoming_blocks.append(b)
        return p


class Call(Instruction):
    __slots__ = ("callee", "intrinsic")

    def __init__(self, callee: "Function | str", args: Sequence[Value],
                 ret_type: Type, name: str = "") -> None:
        super().__init__("call", ret_type, args, name)
        self.callee = callee  # Function object or intrinsic name string
        self.intrinsic = isinstance(callee, str)

    @property
    def callee_name(self) -> str:
        if isinstance(self.callee, str):
            return self.callee
        return self.callee.name

    def clone_shallow(self) -> "Call":
        return Call(self.callee, list(self.operands), self.type, self.name)


class Br(Instruction):
    """Conditional or unconditional branch."""

    __slots__ = ("targets",)

    def __init__(self, cond: Value | None, then: "BasicBlock",
                 otherwise: "BasicBlock | None" = None) -> None:
        if cond is None:
            super().__init__("br", VOID, ())
            self.targets: list["BasicBlock"] = [then]
        else:
            if otherwise is None:
                raise IRError("conditional branch needs two targets")
            super().__init__("br", VOID, (cond,))
            self.targets = [then, otherwise]

    @property
    def is_conditional(self) -> bool:
        return len(self.targets) == 2

    @property
    def condition(self) -> Value | None:
        return self.operands[0] if self.operands else None

    def successors(self) -> "list[BasicBlock]":
        return list(self.targets)

    def replace_target(self, old: "BasicBlock", new: "BasicBlock") -> None:
        self.targets = [new if t is old else t for t in self.targets]

    def clone_shallow(self) -> "Br":
        if self.is_conditional:
            return Br(self.operands[0], self.targets[0], self.targets[1])
        return Br(None, self.targets[0])


class Ret(Instruction):
    __slots__ = ()

    def __init__(self, value: Value | None = None) -> None:
        super().__init__("ret", VOID, (value,) if value is not None else ())

    @property
    def value(self) -> Value | None:
        return self.operands[0] if self.operands else None

    def clone_shallow(self) -> "Ret":
        return Ret(self.value)


class Unreachable(Instruction):
    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("unreachable", VOID, ())

    def clone_shallow(self) -> "Unreachable":
        return Unreachable()


#: instructions with no side effects (eligible for DCE/CSE)
def is_pure(ins: Instruction) -> bool:
    if ins.opcode in ("store", "call", "ret", "br", "unreachable", "alloca"):
        return False
    if ins.opcode == "load":
        return False  # loads are not dead-code-removable-by-default? they are if unused
    return True


PURE_INTRINSICS = ("llvm.ctpop", "llvm.sqrt", "llvm.fabs")


def is_dce_safe(ins: Instruction) -> bool:
    """Safe to delete when the result is unused (loads are non-volatile,
    Sec. III-E: 'reordering or elimination of these instructions may occur')."""
    if isinstance(ins, Call):
        return ins.intrinsic and ins.callee_name.startswith(PURE_INTRINSICS)
    return ins.opcode not in ("store", "ret", "br", "unreachable")
