"""Seeded, deterministic chaos orchestration for the compile farm.

The fault-injection layer of PR 2 (:mod:`repro.testing.faults`) attacks
the in-process pipeline; this module attacks the *service*: it runs a real
:class:`~repro.tier.TieredEngine` over a real :class:`~repro.farm.FarmPool`
— live worker processes, a shared on-disk store — while a scripted
adversary injects the full fault taxonomy of DESIGN §12:

=================  ==========================================================
fault kind         what happens
=================  ==========================================================
``kill``           SIGKILL a random worker mid-whatever
``stop``           SIGSTOP a random worker (alive-but-silent: the watchdog's
                   *hung* case; SIGKILL-respawned, never SIGCONT'd)
``torn_write``     truncate a random published store record mid-byte
``bitflip``        flip one byte of a random published store record
``slow_io``        workers sleep before random jobs (armed at spawn)
``drop_result``    workers complete random jobs but never report them
``clock_skew``     the breaker's clock jumps forward by seconds
``budget``         every third compile budget is pre-exhausted
=================  ==========================================================

and checks the paper's global invariants after every scenario:

1. **no divergence** — every guest call, during and after the chaos,
   returns exactly what the farm-less oracle computes;
2. **zero-stall dispatch** — ``handle.address()`` never blocks on a
   compile (bounded far below one compile, generous to scheduler noise);
3. **termination** — every registered compile terminates: served,
   degraded to a lower tier, or quarantined; ``drain`` returns;
4. **store integrity** — the store never serves bytes that fail their
   checksum (verified by a raw post-scenario scan of every record).

**Determinism**: the fault *script* is a pure function of the seed.  Each
step draws a fixed number of values from a private ``random.Random(seed)``
— whether or not a fault fires, whatever targets currently exist — so the
decision stream replays bit-identically and a failing scenario reproduces
from its seed alone (``run_scenario(seed)``).  What the faults *land on*
(which worker pid, which store key) depends on runtime state; what is
*decided* does not.

``run_suite`` drives N seeds and aggregates violations and recovery
latencies for CI (``benchmarks/bench_chaos.py`` emits BENCH_chaos.json).
"""

from __future__ import annotations

import itertools
import os
import random
import signal
import tempfile
import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.cache.store import _HEADER, _MAGIC
from repro.guard.budget import Budget
from repro.obs.metrics import MetricsRegistry

#: the full fault taxonomy (DESIGN §12); scenarios may run any subset
FAULT_KINDS = ("kill", "stop", "torn_write", "bitflip", "slow_io",
               "drop_result", "clock_skew", "budget")

#: dispatch slower than this is a stall, not scheduler noise: orders of
#: magnitude above a context switch, orders below one farm compile
DISPATCH_STALL_SECONDS = 1.0


@dataclass(frozen=True)
class ChaosOptions:
    """One scenario's shape.  Defaults are sized for a 1-CPU CI box."""

    workers: int = 2
    #: distinct guest functions registered (each its own oracle)
    functions: int = 3
    #: driver iterations; each calls every function and may inject a fault
    steps: int = 30
    calls_per_step: int = 2
    #: probability a step injects a fault (drawn from the seeded stream)
    fault_rate: float = 0.35
    faults: tuple[str, ...] = FAULT_KINDS
    heartbeat_interval: float = 0.25
    hang_timeout: float | None = None
    farm_timeout: float = 30.0
    drain_timeout: float = 180.0
    start_method: str | None = None
    #: tier promotion thresholds (low: chaos wants compiles in flight fast)
    promote_calls: tuple[int, int] = (2, 6)
    step_sleep: float = 0.02
    #: extra pure-dispatch laps after the drain; their latencies land in
    #: ``report.dispatch_warm`` so a chaos run's *warm* p99 can be compared
    #: against a fault-free run's (the zero-stall recovery bar)
    warm_laps: int = 0


@dataclass
class ChaosEvent:
    """One injected fault."""

    step: int
    t: float
    kind: str
    detail: str = ""

    def as_dict(self) -> dict[str, Any]:
        return {"step": self.step, "t": round(self.t, 6),
                "kind": self.kind, "detail": self.detail}


@dataclass
class ScenarioReport:
    """Everything one scenario observed; ``ok`` iff no invariant broke."""

    seed: int
    events: list[ChaosEvent] = field(default_factory=list)
    violations: list[str] = field(default_factory=list)
    calls: int = 0
    #: dispatch latencies: (p50, p99, max) seconds
    dispatch: dict[str, float] = field(default_factory=dict)
    #: post-drain pure-dispatch latencies (``ChaosOptions.warm_laps``)
    dispatch_warm: dict[str, float] = field(default_factory=dict)
    #: seconds from each worker death (crash/hang event) to its respawn
    recovery_latencies: list[float] = field(default_factory=list)
    pool: dict[str, Any] = field(default_factory=dict)
    store: dict[str, Any] = field(default_factory=dict)
    client: dict[str, Any] = field(default_factory=dict)
    engine: dict[str, Any] = field(default_factory=dict)
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    def as_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed, "ok": self.ok,
            "violations": list(self.violations),
            "events": [e.as_dict() for e in self.events],
            "calls": self.calls, "dispatch": dict(self.dispatch),
            "dispatch_warm": dict(self.dispatch_warm),
            "recovery_latencies": [round(x, 6)
                                   for x in self.recovery_latencies],
            "pool": dict(self.pool), "store": dict(self.store),
            "client": dict(self.client), "seconds": round(self.seconds, 3),
        }


# -- workload ----------------------------------------------------------------


def _source(n: int) -> str:
    """``n`` loop kernels with distinct coefficients (distinct oracles)."""
    return "\n".join(
        f"long f{k}(long a, long b) {{ long s = {k}; "
        f"for (long i = 0; i < a; i++) s += i * b + {k + 1}; return s; }}"
        for k in range(n))


def _oracle(k: int) -> Callable[[int, int], int]:
    def f(a: int, b: int) -> int:
        s = k
        for i in range(a):
            s += i * b + k + 1
        return s
    return f


class _SkewClock:
    """A monotonic clock the ``clock_skew`` fault jumps forward."""

    def __init__(self) -> None:
        self.skew = 0.0

    def __call__(self) -> float:
        return time.monotonic() + self.skew


# -- invariant helpers -------------------------------------------------------


def _quantiles(samples: list[float]) -> dict[str, float]:
    if not samples:
        return {"p50": 0.0, "p99": 0.0, "max": 0.0}
    s = sorted(samples)
    return {"p50": s[len(s) // 2],
            "p99": s[min(len(s) - 1, int(len(s) * 0.99))],
            "max": s[-1]}


def _record_checksum_ok(data: bytes) -> bool:
    """Does one raw store record pass its own header checksum?"""
    if not data.startswith(_MAGIC):
        return False
    if len(data) < _HEADER.size:
        return False
    _magic, crc, length = _HEADER.unpack_from(data)
    payload = data[_HEADER.size:]
    return len(payload) == length and zlib.crc32(payload) == crc


def _scan_store_integrity(store) -> list[str]:
    """Post-scenario integrity invariant: no key may *serve* a value whose
    on-disk bytes fail the checksum.  Run only after drain (no writers),
    so the raw read and the ``get`` observe the same record."""
    bad = []
    for key in store.keys():
        try:
            with open(store._path(key), "rb") as fh:
                data = fh.read()
        except OSError:
            continue  # quarantined/republished between listdir and read
        served = store.get(key)
        if served is not None and not _record_checksum_ok(data):
            bad.append(key)
    return bad


# -- fault injection ---------------------------------------------------------


def _inject(kind: str, target_draw: int, pool, store, skew_clock,
            rng_amount: float) -> str:
    """Land one scripted fault on current runtime state; returns detail.

    ``target_draw`` and ``rng_amount`` come from the seeded stream (drawn
    by the caller whether or not the fault fires); everything else is
    whatever exists right now.
    """
    if kind == "kill" or kind == "stop":
        with pool._lock:
            procs = [s.proc for s in pool._slots if s.proc.is_alive()]
        if not procs:
            return "no-alive-worker"
        proc = procs[target_draw % len(procs)]
        sig = signal.SIGKILL if kind == "kill" else signal.SIGSTOP
        try:
            os.kill(proc.pid, sig)
        except (OSError, TypeError):
            return "worker-gone"
        return f"pid={proc.pid}"
    if kind in ("torn_write", "bitflip"):
        keys = sorted(store.keys())
        if not keys:
            return "no-records"
        key = keys[target_draw % len(keys)]
        path = store._path(key)
        try:
            with open(path, "rb") as fh:
                data = fh.read()
            if len(data) < 2:
                return "record-too-small"
            if kind == "torn_write":
                cut = 1 + target_draw % (len(data) - 1)
                with open(path, "wb") as fh:
                    fh.write(data[:cut])
                return f"{key} cut@{cut}"
            pos = target_draw % len(data)
            mutated = bytearray(data)
            mutated[pos] ^= 0xA5
            with open(path, "wb") as fh:
                fh.write(bytes(mutated))
            return f"{key} flip@{pos}"
        except OSError:
            return "record-vanished"
    if kind == "clock_skew":
        jump = 0.5 + rng_amount * 10.0
        skew_clock.skew += jump
        return f"+{jump:.2f}s"
    # slow_io / drop_result / budget are armed statically per scenario (the
    # workers and budget factory read the seed); the step event records
    # that the stream *selected* them so replays line up
    return "armed-at-spawn"


# -- the orchestrator --------------------------------------------------------


def run_scenario(seed: int, options: ChaosOptions | None = None,
                 workdir: str | None = None) -> ScenarioReport:
    """One full chaos scenario; deterministic fault script per ``seed``."""
    from repro import FarmClient, FarmPool, FunctionSignature, Simulator, \
        TieredEngine, compile_c
    from repro.farm.health import CircuitBreaker
    from repro.tier import TierPolicy

    opts = options if options is not None else ChaosOptions()
    rng = random.Random(seed)
    report = ScenarioReport(seed=seed)
    t_start = time.monotonic()

    own_dir = None
    if workdir is None:
        own_dir = tempfile.TemporaryDirectory(prefix="repro-chaos-")
        workdir = own_dir.name

    prog = compile_c(_source(opts.functions))
    oracles = [_oracle(k) for k in range(opts.functions)]

    worker_chaos: dict[str, Any] = {"seed": seed}
    if "slow_io" in opts.faults:
        worker_chaos.update(slow_job_s=0.2, slow_rate=0.3)
    if "drop_result" in opts.faults:
        worker_chaos.update(drop_result_rate=0.15)

    budget_counter = itertools.count()

    def budget_factory() -> Budget:
        if "budget" in opts.faults and next(budget_counter) % 3 == 2:
            return Budget(deadline_seconds=1e-6)
        return Budget()

    skew_clock = _SkewClock()
    pool = FarmPool(
        workers=opts.workers, disk_dir=os.path.join(workdir, "farm"),
        start_method=opts.start_method,
        heartbeat_interval=opts.heartbeat_interval,
        hang_timeout=opts.hang_timeout,
        retry_seed=seed,
        worker_chaos=worker_chaos if len(worker_chaos) > 1 else None,
        registry=MetricsRegistry())
    client = FarmClient(
        pool, breaker=CircuitBreaker(failure_threshold=5, reset_timeout=1.0,
                                     clock=skew_clock),
        registry=MetricsRegistry())
    engine = TieredEngine(
        prog.image, farm=client, farm_timeout=opts.farm_timeout,
        policy=TierPolicy(promote_calls=opts.promote_calls),
        budget_factory=budget_factory, registry=MetricsRegistry())
    sim = Simulator(prog.image)
    dispatch_samples: list[float] = []

    def check_calls(step: int) -> None:
        a = 5 + (step % 7)
        for k, handle in enumerate(handles):
            for _ in range(opts.calls_per_step):
                t0 = time.perf_counter()
                addr = handle.address()
                dt = time.perf_counter() - t0
                dispatch_samples.append(dt)
                if dt > DISPATCH_STALL_SECONDS:
                    report.violations.append(
                        f"dispatch stall: f{k} step {step} took {dt:.3f}s")
                sim.invalidate_code()
                want = oracles[k](a, 3)
                report.calls += 1
                try:
                    got = sim.call(addr, (a, 3)).rax
                except Exception as exc:
                    # a faulting guest call is divergence too: the original
                    # code never faults on these inputs
                    report.violations.append(
                        f"divergence: f{k}({a},3) faulted "
                        f"{type(exc).__name__}: {exc} (step {step}, "
                        f"handle {handle.snapshot()})")
                    continue
                if got != want:
                    report.violations.append(
                        f"divergence: f{k}({a},3) -> {got}, oracle {want} "
                        f"(step {step}, tier {handle.tier})")

    try:
        handles = [
            engine.register(f"f{k}", FunctionSignature(("i", "i"), "i"),
                            fixes={1: 3}, probes=((10,), (5,)))
            for k in range(opts.functions)]
        for step in range(opts.steps):
            # fixed draw count per step: the script replays by seed alone
            r_fire = rng.random()
            r_kind = rng.randrange(len(opts.faults)) if opts.faults else 0
            r_target = rng.randrange(1 << 30)
            r_amount = rng.random()
            if opts.faults and r_fire < opts.fault_rate:
                kind = opts.faults[r_kind]
                detail = _inject(kind, r_target, pool, pool.store,
                                 skew_clock, r_amount)
                report.events.append(ChaosEvent(
                    step=step, t=time.monotonic() - t_start,
                    kind=kind, detail=detail))
            check_calls(step)
            time.sleep(opts.step_sleep)

        # invariant 3: every compile terminates (served / degraded /
        # quarantined) — drain must return, then the quiet-farm checks run
        if not engine.drain(timeout=opts.drain_timeout):
            report.violations.append(
                f"termination: engine.drain exceeded {opts.drain_timeout}s")
        if not pool.drain(timeout=opts.drain_timeout):
            report.violations.append(
                f"termination: pool.drain exceeded {opts.drain_timeout}s")

        # post-chaos correctness pass over a quiet farm
        check_calls(opts.steps)

        # warm-dispatch measurement: every compile has terminated, so each
        # address() is a pure table read — the recovery bar compares this
        # p99 between chaotic and fault-free runs
        if opts.warm_laps > 0:
            warm_samples: list[float] = []
            for _ in range(opts.warm_laps):
                for handle in handles:
                    t0 = time.perf_counter()
                    handle.address()
                    warm_samples.append(time.perf_counter() - t0)
            report.dispatch_warm = {k: round(v, 9) for k, v in
                                    _quantiles(warm_samples).items()}

        # invariant 4: the store never serves checksum-failing bytes
        for key in _scan_store_integrity(pool.store):
            report.violations.append(f"store integrity: {key} served "
                                     f"despite failing checksum")

        report.dispatch = {k: round(v, 6) for k, v in
                           _quantiles(dispatch_samples).items()}
        report.recovery_latencies = _pair_recoveries(pool.health_events)
        report.pool = pool.snapshot()
        report.store = pool.store.snapshot()
        report.client = client.snapshot()
        report.engine = engine.stats.snapshot()
        # drop unpicklable/nested bits not useful in a JSON report
        report.engine.pop("cache_served", None)
    finally:
        try:
            engine.close()
        finally:
            pool.close()
            if own_dir is not None:
                try:
                    own_dir.cleanup()
                except OSError:  # pragma: no cover
                    pass
    report.seconds = time.monotonic() - t_start
    return report


def _pair_recoveries(events) -> list[float]:
    """Death→respawn latencies out of the pool's health-event log."""
    out: list[float] = []
    pending: list[float] = []
    for ev in events:
        if ev.kind in ("crash", "hang"):
            pending.append(ev.t)
        elif ev.kind == "respawn" and pending:
            out.append(ev.t - pending.pop(0))
    return [round(x, 6) for x in out]


def run_suite(seeds, options: ChaosOptions | None = None,
              on_report: Callable[[ScenarioReport], None] | None = None,
              ) -> dict[str, Any]:
    """Run one scenario per seed; aggregate for CI / BENCH_chaos.json."""
    reports = []
    for seed in seeds:
        rep = run_scenario(seed, options)
        reports.append(rep)
        if on_report is not None:
            on_report(rep)
    all_recov = [x for r in reports for x in r.recovery_latencies]
    all_faults: dict[str, int] = {}
    for r in reports:
        for ev in r.events:
            all_faults[ev.kind] = all_faults.get(ev.kind, 0) + 1
    return {
        "scenarios": len(reports),
        "violations": sum(len(r.violations) for r in reports),
        "failed_seeds": [r.seed for r in reports if not r.ok],
        "calls": sum(r.calls for r in reports),
        "faults_injected": all_faults,
        "recovery_latency": _quantiles(all_recov),
        "dispatch_p99_max": max((r.dispatch.get("p99", 0.0)
                                 for r in reports), default=0.0),
        "reports": [r.as_dict() for r in reports],
    }


__all__ = [
    "ChaosEvent",
    "ChaosOptions",
    "DISPATCH_STALL_SECONDS",
    "FAULT_KINDS",
    "ScenarioReport",
    "run_scenario",
    "run_suite",
]
