"""Corpus-scale differential validation with failing-seed minimization.

This is the library behind ``tests/integration/test_differential_corpus.py``
and the ``python -m repro.testing.diffcorpus`` CLI.  Each seed
deterministically generates one multi-instruction x86-64 sequence
(``random.Random(seed)`` — no shrinking framework, so a seed printed by CI
reproduces locally bit-for-bit) and runs it through every execution layer
on the same probe inputs:

    simulator(native)  ==  interp(lifted IR)  ==  interp(O3 IR)
                       ==  simulator(JIT(O3 IR))
                       ==  simulator(instrumented JIT(O3 IR))

Agreement is checked on the return value, on flag-dependent results and on
a 64-byte scratch region.  The fifth engine carries the full probe load
(call/edge counters, memory tracing, return watchpoints) and must agree
with the other four bit-for-bit; its probe buffer is additionally audited
for internal consistency after the run (edge counts tie out against call
counts, traced addresses fall inside mapped regions).  Three things distinguish this from the original
in-test corpus it grew out of:

* **scale** — a :func:`run_corpus` multiprocess runner fans seed ranges
  out over a ``multiprocessing`` pool, so 10k+ seeds finish in minutes
  instead of hours (each worker process keeps its own decode-memo,
  decoded-trace and interpreter-trace caches hot across its chunk);
* **minimization** — a failing seed is delta-debugged (classic ddmin over
  the generated assembly's *body* lines; prologue and epilogue stay
  pinned so the return-value folding can't be reduced away) down to a
  minimal still-failing reproducer, which is persisted as a standalone
  ``.asm`` regression case replayed by the test suite forever after;
* **stale-trace audit** — after every interpreter run the case asserts
  :func:`repro.ir.interp.trace_is_current` for both the pre- and post-O3
  functions, so the corpus doubles as the soundness gate for the
  threaded-dispatch trace cache: any execution of (or opportunity to
  execute) a stale trace fails the seed.

A substring-triggered injection hook (``inject=``) corrupts the post-O3
interpreter result whenever the generated assembly contains the trigger —
the way the minimizer itself is tested end-to-end without a real
miscompile.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import random
import struct
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

SCRATCH = 64

_REGS = ("r8", "r9", "r10", "r11")
_REGS32 = ("r8d", "r9d", "r10d", "r11d")
_CCS = ("e", "ne", "l", "ge", "le", "g", "b", "ae", "a", "be", "s", "ns")
_OFFS = tuple(range(0, SCRATCH, 8))

#: (prologue, epilogue) line counts per generator — the ddmin minimizer
#: never removes these, so every reduced candidate still seeds its
#: temporaries from the arguments and folds them into the return value
PINNED = {"int": (6, 5), "sse": (2, 4)}


class CorpusDisagreement(AssertionError):
    """An engine disagreed with the native simulator on some probe."""


# -- generators -------------------------------------------------------------


def gen_int_sequence(rng: random.Random) -> str:
    """Integer ALU / flag / memory sequence over r8-r11 and [rdx+off]."""
    lines = [
        "mov r8, rdi",
        "mov r9, rsi",
        "mov r10, rdi",
        "xor r10, rsi",
        "mov r11, rdi",
        "add r11, rsi",
    ]
    for _ in range(rng.randint(4, 12)):
        kind = rng.randrange(9)
        r1, r2, r3 = (rng.choice(_REGS) for _ in range(3))
        if kind == 0:
            op = rng.choice(("add", "sub", "and", "or", "xor", "imul"))
            lines.append(f"{op} {r1}, {r2}")
        elif kind == 1:
            op = rng.choice(("add", "sub", "and", "or", "xor"))
            lines.append(f"{op} {r1}, {rng.randint(-128, 127)}")
        elif kind == 2:
            op = rng.choice(("shl", "shr", "sar"))
            lines.append(f"{op} {r1}, {rng.randint(0, 31)}")
        elif kind == 3:
            op = rng.choice(("inc", "dec", "neg", "not"))
            lines.append(f"{op} {r1}")
        elif kind == 4:
            # flag consumers must directly follow the cmp: flags after
            # imul/shifts are architecturally undefined
            lines.append(f"cmp {r1}, {r2}")
            lines.append(f"cmov{rng.choice(_CCS)} {r3}, {r1}")
        elif kind == 5:
            lines.append(f"cmp {r1}, {rng.randint(-128, 127)}")
            lines.append(f"set{rng.choice(_CCS)} al")
            lines.append("movzx eax, al")
            lines.append(f"add {r2}, rax")
        elif kind == 6:
            op = rng.choice(("add", "sub", "xor", "and", "or", "mov"))
            i1, i2 = rng.choice(_REGS32), rng.choice(_REGS32)
            lines.append(f"{op} {i1}, {i2}")
        elif kind == 7:
            lines.append(f"mov [rdx + {rng.choice(_OFFS)}], {r1}")
        else:
            lines.append(f"mov {r1}, [rdx + {rng.choice(_OFFS)}]")
    lines += [
        # fold every temporary into the return value
        "mov rax, r8",
        "add rax, r9",
        "xor rax, r10",
        "add rax, r11",
        "ret",
    ]
    return "\n".join(lines)


def gen_sse_sequence(rng: random.Random) -> str:
    """Scalar-double sequence over xmm0-xmm3 and [rdi+off] scratch."""
    lines = [
        "movsd xmm2, xmm0",
        "movsd xmm3, xmm1",
    ]
    for _ in range(rng.randint(3, 10)):
        kind = rng.randrange(4)
        x1 = f"xmm{rng.randrange(4)}"
        x2 = f"xmm{rng.randrange(4)}"
        if kind == 0:
            op = rng.choice(("addsd", "subsd", "mulsd"))
            lines.append(f"{op} {x1}, {x2}")
        elif kind == 1:
            lines.append(f"movsd {x1}, {x2}")
        elif kind == 2:
            lines.append(f"movsd [rdi + {rng.choice(_OFFS)}], {x1}")
        else:
            lines.append(f"movsd {x1}, [rdi + {rng.choice(_OFFS)}]")
    lines += [
        "addsd xmm0, xmm1",
        "addsd xmm0, xmm2",
        "addsd xmm0, xmm3",
        "ret",
    ]
    return "\n".join(lines)


GENERATORS: dict[str, Callable[[random.Random], str]] = {
    "int": gen_int_sequence,
    "sse": gen_sse_sequence,
}

KINDS = tuple(GENERATORS)


# -- single-case harness ----------------------------------------------------


def _probe_args(rng: random.Random, kind: str) -> list[tuple]:
    u64 = lambda: rng.getrandbits(64)
    if kind == "int":
        probes = [(u64(), u64()), (0, 1), ((1 << 64) - 1, 2)]
    else:
        f = lambda: rng.uniform(-1e6, 1e6)
        probes = [(f(), f()), (0.0, -1.5), (f(), 0.0)]
    return probes


def _scratch_pattern(rng: random.Random) -> bytes:
    return struct.pack(f"<{SCRATCH // 8}Q",
                       *(rng.getrandbits(64) for _ in range(SCRATCH // 8)))


def _f64_bits(v: float) -> int:
    return struct.unpack("<Q", struct.pack("<d", v))[0]


def _is_nan(bits: int) -> bool:
    return (bits & 0x7FF0000000000000) == 0x7FF0000000000000 \
        and (bits & 0x000FFFFFFFFFFFFF) != 0


def run_case(kind: str, seed: int, *, asm: str | None = None,
             inject: str | None = None) -> None:
    """Run one corpus case; raises :class:`CorpusDisagreement` on failure.

    ``asm`` overrides the generated sequence (the minimizer's hook); the
    generator still runs first so the scratch pattern and probe inputs —
    drawn from the same ``random.Random(seed)`` stream *after* the
    sequence — stay identical to the original failure.

    ``inject`` corrupts the post-O3 interpreter result whenever the
    assembly text contains the trigger substring.  It exists so the
    minimization machinery can be exercised end-to-end (and so CI can
    prove a planted disagreement really is caught and reduced).
    """
    from repro.cpu import Image, Simulator
    from repro.guard.verify import GateOptions
    from repro.instrument import (
        InstrumentOptions, Instrumenter, audit_probe_state,
    )
    from repro.ir import Interpreter, Module, verify
    from repro.ir import interp as _interp
    from repro.ir.passes import run_o3
    from repro.jit import BinaryTransformer
    from repro.lift import FunctionSignature, LiftOptions, lift_function
    from repro.x86 import parse_asm
    from repro.x86.asm import assemble

    rng = random.Random(seed)
    generated = GENERATORS[kind](rng)
    if asm is None:
        asm = generated
    pattern = _scratch_pattern(rng)
    probes = _probe_args(rng, kind)
    corrupt = inject is not None and inject in asm

    img = Image()
    base = img.next_code_addr()
    code, _ = assemble(parse_asm(asm), base=base)
    img.add_function("f", code)
    scratch = img.alloc_data(SCRATCH, align=16)
    mem = img.memory
    sim = Simulator(img)

    if kind == "int":
        sig = FunctionSignature(("i", "i", "i"), "i")
    else:
        sig = FunctionSignature(("i", "f", "f"), "f")

    m = Module("corpus")
    f = lift_function(mem, base, sig, LiftOptions(name="f"), m)
    verify(f)
    f_opt = lift_function(mem, base, sig, LiftOptions(name="f_opt"), m)
    run_o3(f_opt)
    verify(f_opt)
    # machine_verify=True makes this corpus the zero-false-positive sweep
    # for the static verifier: a refuted proof raises VerificationError
    # here (hard failure), while the four-engine comparison below is the
    # dynamic oracle — any static/dynamic disagreement fails the seed
    jit_res = BinaryTransformer(img, machine_verify=True).llvm_identity(
        base, sig, name="f_jit")
    if jit_res.machine_verdict not in ("proved", "inconclusive"):
        raise CorpusDisagreement(
            f"seed={seed} kind={kind}: machine verdict "
            f"{jit_res.machine_verdict}")
    # fifth engine: the fully-instrumented JIT (edge + call counters,
    # memory tracing, return watchpoints), admitted through its own
    # machine proof and effects-whitelist gate on the corpus probes.
    # samples=1 keeps the per-seed gate cost corpus-scale
    gate_probes = tuple(
        (p[0], p[1], scratch) if kind == "int" else (scratch, p[0], p[1])
        for p in probes)
    inst_res = Instrumenter(
        img, machine_verify=True,
        gate_options=GateOptions(samples=1)).instrument(
        base, sig,
        options=InstrumentOptions(trace_memory=True, watch_returns=True,
                                  ring_capacity=1024),
        probes=gate_probes, name="f_instr")
    inst_res.buffer.reset()
    sim.invalidate_code()
    interp = Interpreter(m, mem)

    def native(args):
        st = sim.call(base, *args)
        return _f64_bits(st.f64_value) if kind == "sse" else st.rax

    def jit(args):
        st = sim.call(jit_res.addr, *args)
        return _f64_bits(st.f64_value) if kind == "sse" else st.rax

    def jit_instr(args):
        st = sim.call(inst_res.addr, *args)
        return _f64_bits(st.f64_value) if kind == "sse" else st.rax

    def interp_pre(args):
        v = interp.run(f, list(args[0]) + list(args[1]))
        return _f64_bits(v) if kind == "sse" else v

    def interp_o3(args):
        v = interp.run(f_opt, list(args[0]) + list(args[1]))
        r = _f64_bits(v) if kind == "sse" else v
        return r ^ 1 if corrupt else r

    engines = [("native", native), ("interp", interp_pre),
               ("interp+o3", interp_o3), ("jit", jit),
               ("jit+instr", jit_instr)]

    for probe in probes:
        if kind == "int":
            args = ((probe[0], probe[1], scratch), ())
        else:
            args = ((scratch,), (probe[0], probe[1]))
        results = {}
        for ename, run in engines:
            mem.write(scratch, pattern)
            val = run(args)
            results[ename] = (val, mem.read(scratch, SCRATCH))
        # stale-trace audit: the threaded interpreter must never have run
        # (nor be poised to run) a trace whose function has moved on
        for fn in (f, f_opt):
            if not _interp.trace_is_current(fn):
                raise CorpusDisagreement(
                    f"seed={seed} kind={kind}: stale trace for @{fn.name}")
        want_val, want_mem = results["native"]
        for ename, (val, memout) in results.items():
            # both-NaN disagreement in the payload bits is tolerated:
            # x86 and IEEE produce *a* qNaN, not a specific one
            if kind == "sse" and _is_nan(val) and _is_nan(want_val):
                val = want_val
            if val != want_val:
                raise CorpusDisagreement(
                    f"seed={seed} kind={kind} probe={probe}: {ename} "
                    f"returned {val:#x}, native {want_val:#x}\n{asm}")
            if memout != want_mem:
                raise CorpusDisagreement(
                    f"seed={seed} kind={kind} probe={probe}: {ename} "
                    f"scratch memory diverged from native\n{asm}")

    # probe-state audit: the instrumented engine's counters must tie out
    # (entry/return edge counts vs calls, watch hits vs returns) and every
    # traced memory address must land in a mapped region
    violations = audit_probe_state(inst_res, expected_calls=len(probes))
    if violations:
        raise CorpusDisagreement(
            f"seed={seed} kind={kind}: probe audit: "
            + "; ".join(violations) + f"\n{asm}")


# -- ddmin minimizer --------------------------------------------------------


def _ddmin(items: list[str], fails: Callable[[list[str]], bool]) -> list[str]:
    """Classic delta debugging: smallest sublist for which ``fails`` holds."""
    n = 2
    while len(items) >= 2:
        chunk = max(1, (len(items) + n - 1) // n)
        reduced = False
        for i in range(0, len(items), chunk):
            candidate = items[:i] + items[i + chunk:]
            if fails(candidate):
                items = candidate
                n = max(n - 1, 2)
                reduced = True
                break
        if not reduced:
            if chunk <= 1:
                break
            n = min(len(items), n * 2)
    return items


@dataclass
class MinimizedRepro:
    kind: str
    seed: int
    asm: str
    original_body_lines: int
    minimized_body_lines: int
    tests: int  #: number of candidate executions ddmin spent


def minimize_failure(kind: str, seed: int, *,
                     inject: str | None = None) -> MinimizedRepro:
    """Delta-debug a failing seed's assembly to a minimal reproducer.

    Only the generator's *body* lines are candidates for removal; the
    prologue (argument → temporary moves) and epilogue (fold-into-rax /
    xmm0 and ``ret``) stay pinned, so every candidate is a well-formed
    function with the same observable surface.  A candidate "fails" only
    when it raises :class:`CorpusDisagreement` — a candidate that breaks
    the lifter or assembler outright is treated as passing so the
    reduction never drifts onto an unrelated error.
    """
    rng = random.Random(seed)
    asm = GENERATORS[kind](rng)
    lines = asm.split("\n")
    npro, nepi = PINNED[kind]
    pro, body, epi = lines[:npro], lines[npro:len(lines) - nepi], lines[-nepi:]
    tests = 0

    def fails(candidate: list[str]) -> bool:
        nonlocal tests
        tests += 1
        text = "\n".join(pro + candidate + epi)
        try:
            run_case(kind, seed, asm=text, inject=inject)
        except CorpusDisagreement:
            return True
        except Exception:
            return False
        return False

    if not fails(body):
        raise ValueError(f"seed={seed} kind={kind} does not fail; "
                         "nothing to minimize")
    reduced = _ddmin(body, fails)
    return MinimizedRepro(kind=kind, seed=seed,
                          asm="\n".join(pro + reduced + epi),
                          original_body_lines=len(body),
                          minimized_body_lines=len(reduced), tests=tests)


def persist_repro(repro: MinimizedRepro, directory: Path) -> Path:
    """Write a minimized reproducer as a standalone ``.asm`` regression case.

    The header comments carry the seed metadata; ``parse_asm`` strips
    ``#`` comments, so the file replays directly through :func:`run_case`
    with ``asm=`` set to its contents.
    """
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{repro.kind}_{repro.seed}.asm"
    header = (
        f"# minimized corpus reproducer kind={repro.kind} seed={repro.seed}\n"
        f"# body reduced {repro.original_body_lines} -> "
        f"{repro.minimized_body_lines} lines in {repro.tests} ddmin tests\n"
    )
    path.write_text(header + repro.asm + "\n")
    return path


def parse_repro(path: Path) -> tuple[str, int, str]:
    """Read a persisted reproducer back as ``(kind, seed, asm)``."""
    text = path.read_text()
    kind, seed = None, None
    for token in text.split():
        if token.startswith("kind="):
            kind = token[5:]
        elif token.startswith("seed="):
            seed = int(token[5:])
    if kind not in KINDS or seed is None:
        raise ValueError(f"{path}: missing kind=/seed= header")
    return kind, seed, text


# -- multiprocess corpus runner --------------------------------------------


@dataclass
class CorpusReport:
    cases: int = 0
    failures: list[dict] = field(default_factory=list)
    stale_trace_executions: int = 0
    minimized: list[str] = field(default_factory=list)
    jobs: int = 1
    elapsed_s: float = 0.0

    @property
    def cases_per_s(self) -> float:
        return self.cases / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def to_dict(self) -> dict:
        return {
            "cases": self.cases,
            "failures": self.failures,
            "stale_trace_executions": self.stale_trace_executions,
            "minimized": self.minimized,
            "jobs": self.jobs,
            "elapsed_s": round(self.elapsed_s, 3),
            "cases_per_s": round(self.cases_per_s, 1),
        }


def _run_chunk(work: tuple) -> tuple[int, list[dict]]:
    """Pool worker: run a chunk of (kind, seed) cases, return failures.

    Runs in its own process; its decode memo, decoded-trace cache and
    interpreter trace cache stay hot across the whole chunk, which is
    what makes corpus throughput scale with the hot-path work this PR
    cares about.
    """
    cases, inject = work
    failures: list[dict] = []
    for kind, seed in cases:
        try:
            run_case(kind, seed, inject=inject)
        except CorpusDisagreement as exc:
            failures.append({"kind": kind, "seed": seed, "error": str(exc)})
        except Exception as exc:  # infrastructure failure: still a failure
            failures.append({"kind": kind, "seed": seed,
                             "error": f"{type(exc).__name__}: {exc}"})
    return len(cases), failures


def run_corpus(seeds: int, *, kinds: Sequence[str] = KINDS,
               jobs: int | None = None, inject: str | None = None,
               minimize: bool = True,
               repro_dir: Path | None = None) -> CorpusReport:
    """Run ``seeds`` seeds per generator across a process pool.

    Failures are collected (never short-circuited — a 10k-seed run
    reports *all* disagreements), then each distinct failing seed is
    ddmin-minimized in the parent and persisted under ``repro_dir``.
    """
    if jobs is None:
        jobs = min(os.cpu_count() or 1, 8)
    jobs = max(1, jobs)
    cases = [(kind, seed) for kind in kinds for seed in range(seeds)]
    report = CorpusReport(jobs=jobs)
    start = time.perf_counter()
    if jobs == 1 or len(cases) <= 8:
        done, failures = _run_chunk((cases, inject))
        report.cases += done
        report.failures.extend(failures)
    else:
        # ~4 chunks per worker: big enough to amortize cache warm-up,
        # small enough that a straggler chunk can't serialize the tail
        nchunks = jobs * 4
        step = max(1, (len(cases) + nchunks - 1) // nchunks)
        chunks = [(cases[i:i + step], inject)
                  for i in range(0, len(cases), step)]
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(processes=jobs) as pool:
            for done, failures in pool.imap_unordered(_run_chunk, chunks):
                report.cases += done
                report.failures.extend(failures)
    report.elapsed_s = time.perf_counter() - start
    report.stale_trace_executions = sum(
        1 for fl in report.failures if "stale trace" in fl["error"])
    if minimize and report.failures:
        directory = repro_dir or Path.cwd() / "corpus_repros"
        seen: set[tuple[str, int]] = set()
        for fl in report.failures:
            key = (fl["kind"], fl["seed"])
            if key in seen:
                continue
            seen.add(key)
            try:
                repro = minimize_failure(fl["kind"], fl["seed"],
                                         inject=inject)
            except ValueError:
                continue  # flaky / infrastructure failure: nothing to reduce
            report.minimized.append(str(persist_repro(repro, directory)))
    return report


# -- CLI --------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testing.diffcorpus",
        description="corpus-scale differential validation")
    parser.add_argument("--seeds", type=int, default=200,
                        help="seeds per generator (default 200)")
    parser.add_argument("--kinds", default=",".join(KINDS),
                        help="comma-separated generators (default all)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default min(cpus, 8))")
    parser.add_argument("--inject", default=None, metavar="SUBSTR",
                        help="corrupt post-O3 interp results for sequences "
                             "containing SUBSTR (minimizer demo)")
    parser.add_argument("--no-minimize", action="store_true",
                        help="report failures without ddmin reduction")
    parser.add_argument("--repro-dir", type=Path, default=None,
                        help="where minimized reproducers are persisted")
    parser.add_argument("--json", type=Path, default=None,
                        help="write the report as JSON")
    args = parser.parse_args(argv)

    kinds = tuple(k for k in args.kinds.split(",") if k)
    for k in kinds:
        if k not in KINDS:
            parser.error(f"unknown generator {k!r} (have {', '.join(KINDS)})")

    report = run_corpus(args.seeds, kinds=kinds, jobs=args.jobs,
                        inject=args.inject, minimize=not args.no_minimize,
                        repro_dir=args.repro_dir)
    print(f"corpus: {report.cases} cases, {len(report.failures)} failure(s), "
          f"{report.stale_trace_executions} stale-trace execution(s), "
          f"{report.jobs} job(s), {report.elapsed_s:.1f}s "
          f"({report.cases_per_s:.1f} cases/s)")
    for fl in report.failures[:10]:
        first = fl["error"].splitlines()[0]
        print(f"  FAIL {fl['kind']}:{fl['seed']}: {first}")
    if len(report.failures) > 10:
        print(f"  ... and {len(report.failures) - 10} more")
    for path in report.minimized:
        print(f"  minimized reproducer: {path}")
    if args.json is not None:
        args.json.write_text(json.dumps(report.to_dict(), indent=2) + "\n")
        print(f"wrote {args.json}")
    # planted-injection runs are *expected* to fail; their success
    # criterion is "failures found and minimized", not "no failures"
    if args.inject is not None:
        return 0 if report.failures and report.minimized else 1
    return 1 if report.failures else 0


if __name__ == "__main__":
    sys.exit(main())
