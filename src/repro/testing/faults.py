"""Deterministic fault injection for the transform pipeline.

Robustness code is only as good as its tests, and pipeline failures are
hard to provoke organically — the seed kernels all decode, lift and compile
cleanly.  :func:`inject_faults` makes any stage fail *on demand*: it
monkeypatches the stage's entry points so that the k-th call raises the
stage's error (or corrupts its result), deterministically, and restores
everything on exit.

Stages and their patch points::

    decode   repro.lift.blocks.decode_one, repro.dbrew.rewriter.decode_one
    lift     repro.jit.engine.lift_function
    opt      repro.jit.engine.run_o3
    codegen  repro.ir.codegen.jit.JITEngine.compile_function
    rewrite  repro.dbrew.rewriter.Rewriter._rewrite
    pass:<p> repro.ir.passes.<p>.run — one stage per -O3 pass (constprop,
             dce, gvn, inline, instcombine, mem2reg, simplifycfg, unroll,
             vectorize), intercepting *every* application of that pass.
             The pipeline calls passes through their module objects, so a
             ``corrupt=`` hook here models a single miscompiling pass —
             exactly what per-pass translation validation
             (``run_o3(..., validate=True)``) must attribute and contain.

Patch points live in the *consumer* module namespace where that matters
(``from x import y`` binds at import time, so patching ``repro.x86.decoder``
would not reach the lifter's already-bound reference).  The simulator's own
``decode_one`` is deliberately *not* patched: the simulator plays the role
of the CPU, and the CPU does not fail — fault injection targets the
rewriter, and the differential gate must keep working while it misbehaves.

Result corruption (``corrupt=``) models the scariest failure class: a stage
that *succeeds* but produces wrong output (a silent miscompile).  The
callback receives ``(result, *call_args)`` and returns the replacement
result (or ``None`` to keep the original after mutating state in place) —
exactly what the differential verification gate exists to catch.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import (
    CodegenError,
    DecodeError,
    IRError,
    LiftError,
    RewriteError,
)

#: stage -> ("module.path", "attr" | "Class.attr") patch points
PATCH_POINTS: dict[str, tuple[tuple[str, str], ...]] = {
    "decode": (("repro.lift.blocks", "decode_one"),
               ("repro.dbrew.rewriter", "decode_one")),
    "lift": (("repro.jit.engine", "lift_function"),),
    "opt": (("repro.jit.engine", "run_o3"),),
    "codegen": (("repro.ir.codegen.jit", "JITEngine.compile_function"),),
    "rewrite": (("repro.dbrew.rewriter", "Rewriter._rewrite"),),
}

#: the -O3 passes the pipeline drives through their module objects
O3_PASSES = ("constprop", "dce", "gvn", "inline", "instcombine", "mem2reg",
             "simplifycfg", "unroll", "vectorize")

for _p in O3_PASSES:
    PATCH_POINTS[f"pass:{_p}"] = ((f"repro.ir.passes.{_p}", "run"),)
del _p

_DEFAULT_ERRORS: dict[str, tuple[type, str]] = {
    "decode": (DecodeError, "injected decode fault"),
    "lift": (LiftError, "injected lift fault"),
    "opt": (IRError, "injected optimizer fault"),
    "codegen": (CodegenError, "injected codegen fault"),
    "rewrite": (RewriteError, "injected rewrite fault"),
}

for _p in O3_PASSES:
    _DEFAULT_ERRORS[f"pass:{_p}"] = (IRError, f"injected {_p} fault")
del _p


@dataclass
class FaultSpec:
    """One stage's fault plan.

    ``at`` is the 1-based call index (counted across all of the stage's
    patch points) on which the fault fires; with ``every=True`` it fires on
    that call and every later one.  ``error`` overrides the stage's default
    exception; ``corrupt`` replaces raising with result corruption.
    """

    stage: str
    at: int = 1
    every: bool = False
    error: BaseException | None = None
    corrupt: Callable[..., Any] | None = None

    def __post_init__(self) -> None:
        if self.stage not in PATCH_POINTS:
            raise ValueError(f"unknown stage {self.stage!r}; "
                             f"stages: {sorted(PATCH_POINTS)}")
        if self.at < 1:
            raise ValueError("`at` is a 1-based call index")

    def make_error(self) -> BaseException:
        if self.error is not None:
            return self.error
        cls, msg = _DEFAULT_ERRORS[self.stage]
        return cls(msg, stage=self.stage, injected=True)


class FaultInjector:
    """Context manager applying one or more :class:`FaultSpec` plans.

    Exposes per-stage accounting: ``calls[stage]`` counts every call that
    reached the stage while the injector was active, ``fired[stage]``
    counts the faults actually delivered.
    """

    def __init__(self, *specs: FaultSpec) -> None:
        by_stage: dict[str, FaultSpec] = {}
        for spec in specs:
            if spec.stage in by_stage:
                raise ValueError(f"duplicate spec for stage {spec.stage!r}")
            by_stage[spec.stage] = spec
        self.specs = by_stage
        self.calls: dict[str, int] = {s: 0 for s in by_stage}
        self.fired: dict[str, int] = {s: 0 for s in by_stage}
        self._saved: list[tuple[object, str, Any]] = []

    # -- patching machinery -------------------------------------------------

    @staticmethod
    def _resolve(module_path: str, attr: str) -> tuple[object, str, Any]:
        """(owner object, final attribute name, current value)."""
        owner: object = importlib.import_module(module_path)
        parts = attr.split(".")
        for part in parts[:-1]:
            owner = getattr(owner, part)
        name = parts[-1]
        return owner, name, getattr(owner, name)

    def _wrap(self, spec: FaultSpec, original: Callable[..., Any]):
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            self.calls[spec.stage] += 1
            n = self.calls[spec.stage]
            due = n == spec.at or (spec.every and n >= spec.at)
            if not due:
                return original(*args, **kwargs)
            self.fired[spec.stage] += 1
            if spec.corrupt is not None:
                result = original(*args, **kwargs)
                replaced = spec.corrupt(result, *args)
                return result if replaced is None else replaced
            raise spec.make_error()
        return wrapper

    def __enter__(self) -> "FaultInjector":
        try:
            for spec in self.specs.values():
                for module_path, attr in PATCH_POINTS[spec.stage]:
                    owner, name, current = self._resolve(module_path, attr)
                    self._saved.append((owner, name, current))
                    setattr(owner, name, self._wrap(spec, current))
        except BaseException:
            self._restore()
            raise
        return self

    def __exit__(self, *exc: object) -> None:
        self._restore()

    def _restore(self) -> None:
        while self._saved:
            owner, name, value = self._saved.pop()
            setattr(owner, name, value)


def inject_faults(stage: str | FaultSpec, *more: FaultSpec, at: int = 1,
                  every: bool = False, error: BaseException | None = None,
                  corrupt: Callable[..., Any] | None = None) -> FaultInjector:
    """Shorthand: ``with inject_faults("lift"): ...`` or multi-spec form.

    The single-stage form takes the :class:`FaultSpec` fields as keywords;
    the multi-spec form takes prebuilt specs (keywords must be unset).
    """
    if isinstance(stage, FaultSpec):
        return FaultInjector(stage, *more)
    if more:
        raise ValueError("pass FaultSpec objects for multiple stages")
    return FaultInjector(FaultSpec(stage, at=at, every=every, error=error,
                                   corrupt=corrupt))
