"""Test-support utilities (fault injection for the rewrite pipeline)."""

from repro.testing.faults import FaultInjector, FaultSpec, inject_faults

__all__ = ["FaultInjector", "FaultSpec", "inject_faults"]
