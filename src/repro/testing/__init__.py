"""Test-support utilities: in-process fault injection for the rewrite
pipeline (:mod:`repro.testing.faults`) and the seeded chaos orchestrator
that attacks the whole farm service (:mod:`repro.testing.chaos`)."""

from repro.testing.chaos import (ChaosEvent, ChaosOptions, ScenarioReport,
                                 run_scenario, run_suite)
from repro.testing.faults import FaultInjector, FaultSpec, inject_faults

__all__ = ["ChaosEvent", "ChaosOptions", "FaultInjector", "FaultSpec",
           "ScenarioReport", "inject_faults", "run_scenario", "run_suite"]
