"""Building the stencil descriptor structures in simulated memory (Fig. 7's
``struct FS s4 = {4, {{-1,0,.25}, ...}}`` equivalent)."""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.cpu.image import Image
from repro.mem.layout import StructLayout

#: the paper's 4-point stencil: (dx, dy, coefficient)
FOUR_POINT = ((-1, 0, 0.25), (1, 0, 0.25), (0, -1, 0.25), (0, 1, 0.25))

FP_LAYOUT = StructLayout("FP", [("f", "double", 1), ("dx", "int", 1), ("dy", "int", 1)])
FS_LAYOUT = StructLayout("FS", [("ps", "int", 1), ("p", FP_LAYOUT, 0)])
SP_LAYOUT = StructLayout("SP", [("dx", "int", 1), ("dy", "int", 1)])
SG_LAYOUT = StructLayout("SG", [("f", "double", 1), ("ps", "int", 1), ("p", "ptr", 1)])
SS_LAYOUT = StructLayout("SS", [("gs", "int", 1), ("g", "ptr", 1)])


@dataclass(frozen=True)
class FlatStencil:
    """A built flat descriptor: base address + total size."""

    addr: int
    size: int
    points: tuple[tuple[int, int, float], ...]


@dataclass(frozen=True)
class SortedStencil:
    """A built sorted descriptor; regions lists every fixed memory block
    (SS header, SG array, SP arrays) for DBrew's set_mem."""

    addr: int
    regions: tuple[tuple[int, int], ...]
    points: tuple[tuple[int, int, float], ...]


def build_flat(image: Image,
               points: tuple[tuple[int, int, float], ...] = FOUR_POINT) -> FlatStencil:
    """Materialize ``struct FS`` with the given points."""
    size = FS_LAYOUT.sizeof_with_flexible(len(points))
    payload = bytearray(size)
    payload[0:4] = struct.pack("<i", len(points))
    base_off = FS_LAYOUT.offset_of("p")
    for i, (dx, dy, f) in enumerate(points):
        off = base_off + i * FP_LAYOUT.size
        payload[off:off + 8] = struct.pack("<d", f)
        payload[off + 8:off + 12] = struct.pack("<i", dx)
        payload[off + 12:off + 16] = struct.pack("<i", dy)
    addr = image.alloc_data(size, align=16, data=bytes(payload))
    return FlatStencil(addr, size, points)


def build_sorted(image: Image,
                 points: tuple[tuple[int, int, float], ...] = FOUR_POINT) -> SortedStencil:
    """Materialize ``struct SS`` with points grouped by coefficient."""
    groups: dict[float, list[tuple[int, int]]] = {}
    for dx, dy, f in points:
        groups.setdefault(f, []).append((dx, dy))

    sp_addrs: list[int] = []
    for f, pts in groups.items():
        payload = b"".join(struct.pack("<ii", dx, dy) for dx, dy in pts)
        sp_addrs.append(image.alloc_data(len(payload), align=8, data=payload))

    sg_payload = bytearray(SG_LAYOUT.size * len(groups))
    for i, ((f, pts), sp_addr) in enumerate(zip(groups.items(), sp_addrs)):
        off = i * SG_LAYOUT.size
        sg_payload[off:off + 8] = struct.pack("<d", f)
        sg_payload[off + 8:off + 12] = struct.pack("<i", len(pts))
        sg_payload[off + 16:off + 24] = struct.pack("<Q", sp_addr)
    sg_addr = image.alloc_data(len(sg_payload), align=16, data=bytes(sg_payload))

    ss_payload = struct.pack("<i", len(groups)) + b"\x00" * 4 + struct.pack("<Q", sg_addr)
    ss_addr = image.alloc_data(len(ss_payload), align=16, data=ss_payload)

    regions = [(ss_addr, SS_LAYOUT.size), (sg_addr, len(sg_payload))]
    for sp_addr, (f, pts) in zip(sp_addrs, groups.items()):
        regions.append((sp_addr, len(pts) * SP_LAYOUT.size))
    return SortedStencil(ss_addr, tuple(regions), points)
