"""C sources of the stencil kernels (Fig. 7) and the measurement drivers.

Three stencil descriptions:

* **direct** — the 4-point stencil hard-coded (the hand-specialized
  baseline every mode is measured against);
* **flat** — ``struct FS { int ps; struct FP p[]; }``: one array of
  (coefficient, dx, dy) points;
* **sorted** — points grouped by coefficient behind *nested pointers*
  (``SS -> SG* -> SP*``), the paper's case where IR-level fixation cannot
  follow the indirection but DBrew's ``set_mem`` can.

Each stencil exists as an *element kernel* (compute one cell) and a *line
kernel* (loop over one row).  Line kernels take runtime ``x0``/``x1``
bounds, mirroring how the paper prevents DBrew from fully unrolling the
row loop (Sec. VI: the element computation is kept out of line so only it
gets specialized/inlined).  ``line_call_*`` variants keep the element
computation in a separate function — the input DBrew rewrites; the fused
variants are what an optimizing compiler produces for the native build.

All kernels share the signature ``(s, m1, m2, ...)`` so the drivers can be
compiled once per mode against any kernel address.
"""

from __future__ import annotations

_COMMON = """
struct FP { double f; int dx, dy; };
struct FS { int ps; struct FP p[]; };

struct SP { int dx, dy; };
struct SG { double f; int ps; struct SP* p; };
struct SS { int gs; struct SG* g; };
"""


def kernel_source(sz: int) -> str:
    """The kernels translation unit for matrix side length ``sz``."""
    return f"#define SZ {sz}\n" + _COMMON + """
void apply_direct(void* s, double* m1, double* m2, long index) {
    m2[index] = 0.25 * (m1[index - 1] + m1[index + 1]
                      + m1[index - SZ] + m1[index + SZ]);
}

void apply_flat(struct FS* s, double* m1, double* m2, long index) {
    double v = 0.0;
    for (int i = 0; i < s->ps; i++) {
        struct FP* p = s->p + i;
        v += p->f * m1[index + p->dx + SZ * p->dy];
    }
    m2[index] = v;
}

void apply_sorted(struct SS* s, double* m1, double* m2, long index) {
    double v = 0.0;
    for (int gi = 0; gi < s->gs; gi++) {
        struct SG* g = s->g + gi;
        double gv = 0.0;
        for (int i = 0; i < g->ps; i++) {
            struct SP* p = g->p + i;
            gv += m1[index + p->dx + SZ * p->dy];
        }
        v += g->f * gv;
    }
    m2[index] = v;
}

void line_direct(void* s, double* m1, double* m2, long y, long x0, long x1) {
    double* r1 = m1 + y * SZ;
    double* r2 = m2 + y * SZ;
    for (long x = x0; x < x1; x++) {
        r2[x] = 0.25 * (r1[x - 1] + r1[x + 1] + r1[x - SZ] + r1[x + SZ]);
    }
}

void line_flat(struct FS* s, double* m1, double* m2, long y, long x0, long x1) {
    long row = y * SZ;
    for (long x = x0; x < x1; x++) {
        long index = row + x;
        double v = 0.0;
        for (int i = 0; i < s->ps; i++) {
            struct FP* p = s->p + i;
            v += p->f * m1[index + p->dx + SZ * p->dy];
        }
        m2[index] = v;
    }
}

void line_sorted(struct SS* s, double* m1, double* m2, long y, long x0, long x1) {
    long row = y * SZ;
    for (long x = x0; x < x1; x++) {
        long index = row + x;
        double v = 0.0;
        for (int gi = 0; gi < s->gs; gi++) {
            struct SG* g = s->g + gi;
            double gv = 0.0;
            for (int i = 0; i < g->ps; i++) {
                struct SP* p = g->p + i;
                gv += m1[index + p->dx + SZ * p->dy];
            }
            v += g->f * gv;
        }
        m2[index] = v;
    }
}

void line_call_direct(void* s, double* m1, double* m2, long y, long x0, long x1) {
    long row = y * SZ;
    for (long x = x0; x < x1; x++) {
        apply_direct(s, m1, m2, row + x);
    }
}

void line_call_flat(struct FS* s, double* m1, double* m2, long y, long x0, long x1) {
    long row = y * SZ;
    for (long x = x0; x < x1; x++) {
        apply_flat(s, m1, m2, row + x);
    }
}

void line_call_sorted(struct SS* s, double* m1, double* m2, long y, long x0, long x1) {
    long row = y * SZ;
    for (long x = x0; x < x1; x++) {
        apply_sorted(s, m1, m2, row + x);
    }
}
"""


def element_driver_source(sz: int) -> str:
    """Sweep driver calling an element kernel per interior cell."""
    return f"#define SZ {sz}\n" + _COMMON + """
void kernel(struct FS* s, double* m1, double* m2, long index);

void sweep(struct FS* s, double* m1, double* m2) {
    for (long y = 1; y < SZ - 1; y++) {
        long row = y * SZ;
        for (long x = 1; x < SZ - 1; x++) {
            kernel(s, m1, m2, row + x);
        }
    }
}
"""


def line_driver_source(sz: int) -> str:
    """Sweep driver calling a line kernel per interior row."""
    return f"#define SZ {sz}\n" + _COMMON + """
void kernel(struct FS* s, double* m1, double* m2, long y, long x0, long x1);

void sweep(struct FS* s, double* m1, double* m2) {
    for (long y = 1; y < SZ - 1; y++) {
        kernel(s, m1, m2, y, 1, SZ - 1);
    }
}
"""


#: signatures of the kernels for lifting / rewriting
ELEMENT_SIGNATURE = ("i", "i", "i", "i")
LINE_SIGNATURE = ("i", "i", "i", "i", "i", "i")
