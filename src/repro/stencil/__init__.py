"""The paper's case study: specializing a generic 2d stencil (Sec. V)."""

from repro.stencil.data import FlatStencil, SortedStencil, build_flat, build_sorted
from repro.stencil.jacobi import JacobiSetup, StencilWorkspace

__all__ = [
    "FlatStencil", "JacobiSetup", "SortedStencil", "StencilWorkspace",
    "build_flat", "build_sorted",
]
