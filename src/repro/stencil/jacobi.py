"""Jacobi iteration workspace: matrices + compiled kernels + sweep drivers.

The paper measures 50 000 Jacobi iterations on a 649x649 matrix; simulating
that in Python is infeasible, but cycles-per-cell-update is scale-free for
a stencil, so the harness simulates a small matrix for a couple of sweeps
and extrapolates (documented in DESIGN.md §2).
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass, field

from repro.cc import compile_c
from repro.cc.compiler import CompiledProgram, CompilerOptions
from repro.cpu import CostModel, HASWELL, Image, Simulator
from repro.cpu.simulator import RunStats
from repro.stencil import sources
from repro.stencil.data import FlatStencil, SortedStencil, build_flat, build_sorted


@dataclass(frozen=True)
class JacobiSetup:
    """Experiment scale parameters."""

    sz: int = 49  # simulated matrix side length
    sweeps: int = 2
    paper_sz: int = 649
    paper_iterations: int = 50_000


class StencilWorkspace:
    """One image with kernels, stencil descriptors and matrices."""

    def __init__(self, setup: JacobiSetup | None = None,
                 costs: CostModel = HASWELL, *, vectorize: bool = True) -> None:
        self.setup = setup or JacobiSetup()
        self.costs = costs
        sz = self.setup.sz
        self.program: CompiledProgram = compile_c(
            sources.kernel_source(sz),
            options=CompilerOptions(vectorize=vectorize),
        )
        self.image: Image = self.program.image
        self.sim = Simulator(self.image, costs)
        self.flat: FlatStencil = build_flat(self.image)
        self.sorted: SortedStencil = build_sorted(self.image)
        cells = sz * sz
        self.m1 = self.image.alloc_data(8 * cells, align=16)
        self.m2 = self.image.alloc_data(8 * cells, align=16)
        self._init_matrices()
        self._drivers: dict[tuple[str, int], int] = {}

    # -- matrices -----------------------------------------------------------------

    def _init_matrices(self) -> None:
        sz = self.setup.sz
        mem = self.image.memory
        for y in range(sz):
            for x in range(sz):
                on_edge = x == 0 or y == 0 or x == sz - 1 or y == sz - 1
                v = 1.0 if on_edge else 0.0
                mem.write_f64(self.m1 + 8 * (y * sz + x), v)
                mem.write_f64(self.m2 + 8 * (y * sz + x), v)

    def reset_matrices(self) -> None:
        self._init_matrices()

    def read_matrix(self, which: int = 1) -> list[list[float]]:
        sz = self.setup.sz
        base = self.m1 if which == 1 else self.m2
        mem = self.image.memory
        return [
            [mem.read_f64(base + 8 * (y * sz + x)) for x in range(sz)]
            for y in range(sz)
        ]

    # -- drivers -------------------------------------------------------------------

    def driver_for(self, kernel_addr: int, *, line: bool) -> int:
        """Compile (and cache) a sweep driver bound to ``kernel_addr``."""
        key = ("line" if line else "element", kernel_addr)
        addr = self._drivers.get(key)
        if addr is None:
            src = (sources.line_driver_source(self.setup.sz) if line
                   else sources.element_driver_source(self.setup.sz))
            prog = compile_c(
                src, image=self.image,
                options=CompilerOptions(vectorize=False),
                extra_symbols={"kernel": kernel_addr},
            )
            addr = prog.functions["sweep"]
            # keep driver symbols distinct per kernel
            name = f"sweep.{kernel_addr:x}.{key[0]}"
            self.image.symbols[name] = addr
            self._drivers[key] = addr
            self.sim.invalidate_code()
        return addr

    # -- measurement ----------------------------------------------------------------

    def run_sweeps(self, kernel: str | int, *, line: bool,
                   stencil_arg: int, sweeps: int | None = None) -> RunStats:
        """Run Jacobi sweeps through the compiled driver; returns stats.

        Each sweep computes m2 from m1 over the interior and then swaps the
        roles, like the paper's two-matrix Jacobi iteration.
        """
        kernel_addr = self.image.symbol(kernel) if isinstance(kernel, str) else kernel
        driver = self.driver_for(kernel_addr, line=line)
        sz = self.setup.sz
        n_sweeps = sweeps if sweeps is not None else self.setup.sweeps
        stats = RunStats()
        src, dst = self.m1, self.m2
        for _ in range(n_sweeps):
            self.sim.call(
                driver, (stencil_arg, src, dst),
                stats=stats, max_steps=500_000_000,
            )
            src, dst = dst, src
        return stats

    def run_tiered_sweeps(self, handle, *, stencil_arg: int, line: bool,
                          sweeps: int | None = None,
                          observe: bool = True) -> RunStats:
        """Jacobi sweeps dispatched through a tiered engine handle.

        Each sweep asks ``handle.address()`` for the best *ready* kernel
        (never waiting on a compile), binds a driver to it, and — with
        ``observe`` — reports the measured cycles-per-cell back so the
        governor's promotion/demotion policy sees real costs.  Dispatch is
        per sweep, the natural re-bind granularity here: the driver bakes
        the kernel address in at compile time, exactly like the paper's
        function-pointer dispatch.
        """
        sz = self.setup.sz
        n_sweeps = sweeps if sweeps is not None else self.setup.sweeps
        cells = (sz - 2) * (sz - 2)
        total = RunStats()
        src, dst = self.m1, self.m2
        for _ in range(n_sweeps):
            kernel_addr = handle.address()
            driver = self.driver_for(kernel_addr, line=line)
            stats = RunStats()
            self.sim.call(
                driver, (stencil_arg, src, dst),
                stats=stats, max_steps=500_000_000,
            )
            total.merge(stats)
            if observe:
                handle.observe(stats.cycles / cells)
            src, dst = dst, src
        return total

    def cycles_per_cell(self, stats: RunStats, sweeps: int | None = None) -> float:
        sz = self.setup.sz
        n_sweeps = sweeps if sweeps is not None else self.setup.sweeps
        cells = (sz - 2) * (sz - 2) * n_sweeps
        return stats.cycles / cells

    def extrapolated_seconds(self, stats: RunStats, sweeps: int | None = None) -> float:
        """Scale simulated cycles/cell to the paper's workload size."""
        per_cell = self.cycles_per_cell(stats, sweeps)
        paper_cells = (self.setup.paper_sz - 2) ** 2 * self.setup.paper_iterations
        return self.costs.cycles_to_seconds(per_cell * paper_cells)

    # -- correctness reference -----------------------------------------------------

    def reference_sweeps(
        self, n_sweeps: int,
        points: tuple[tuple[int, int, float], ...] | None = None,
    ) -> list[list[float]]:
        """Pure-Python Jacobi for validating every kernel/mode."""
        from repro.stencil.data import FOUR_POINT

        pts = points if points is not None else FOUR_POINT
        sz = self.setup.sz
        a = self.read_matrix(1)
        b = self.read_matrix(2)
        for _ in range(n_sweeps):
            for y in range(1, sz - 1):
                for x in range(1, sz - 1):
                    b[y][x] = sum(f * a[y + dy][x + dx] for dx, dy, f in pts)
            a, b = b, a
        return a


def matrices_equal(a: list[list[float]], b: list[list[float]],
                   tol: float = 0.0) -> bool:
    """Exact (or tolerance) comparison of two matrices."""
    for ra, rb in zip(a, b):
        for va, vb in zip(ra, rb):
            if math.isnan(va) or math.isnan(vb):
                return False
            if abs(va - vb) > tol:
                return False
    return True
