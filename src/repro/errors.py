"""Shared exception hierarchy for the repro package.

Every subsystem raises a subclass of :class:`ReproError`, so callers can
catch a single base type at API boundaries.  DBrew-style rewriting failures
deliberately use a dedicated branch (:class:`RewriteError`) because the
paper's Section II requires them to be *recoverable*: the default error
handler falls back to the original function instead of propagating.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class EncodeError(ReproError):
    """An instruction could not be encoded to machine code."""


class DecodeError(ReproError):
    """A byte sequence could not be decoded to an instruction."""


class AsmSyntaxError(ReproError):
    """Textual assembly could not be parsed."""


class CompileError(ReproError):
    """MCC (the mini C compiler) rejected a program."""


class SimulatorError(ReproError):
    """The CPU simulator hit an unsupported or invalid situation."""


class MemoryAccessError(SimulatorError):
    """A load or store touched unmapped simulated memory."""


class IRError(ReproError):
    """Malformed MiniLLVM IR (verifier failures, type mismatches)."""


class IRInterpError(IRError):
    """The IR interpreter hit an unsupported or invalid situation."""


class CodegenError(ReproError):
    """MiniLLVM's x86-64 back-end could not lower a function."""


class RewriteError(ReproError):
    """DBrew-style rewriting failed (decode/emulate/encode gap).

    Per the paper's Section II this is an *internal* error: the default
    error handler returns the original function, custom handlers may retry
    with enlarged resources.
    """


class LiftError(RewriteError):
    """The x86-64 -> IR transformation hit an unsupported construct."""
