"""Shared exception hierarchy for the repro package.

Every subsystem raises a subclass of :class:`ReproError`, so callers can
catch a single base type at API boundaries.  DBrew-style rewriting failures
deliberately use a dedicated branch (:class:`RewriteError`) because the
paper's Section II requires them to be *recoverable*: the default error
handler falls back to the original function instead of propagating.

Errors carry *structured context* (:attr:`ReproError.context`): the guest
address, raw bytes, pipeline stage, instruction, ... of the failure.  The
guard ladder (:mod:`repro.guard`) records this context per degradation
rung, so a production log can answer "which instruction at which address
killed which stage" without re-running the transform.
"""

from __future__ import annotations

from typing import Any


class ReproError(Exception):
    """Base class for all errors raised by the repro package.

    Keyword arguments become :attr:`context`, a flat ``str -> value`` dict
    of structured failure metadata.  Conventional keys: ``stage`` (pipeline
    stage name: decode/lift/opt/codegen/rewrite/verify), ``addr`` (guest
    address), ``instruction`` (mnemonic or str of the decoded instruction),
    ``data`` (raw bytes involved).
    """

    def __init__(self, *args: object, **context: Any) -> None:
        super().__init__(*args)
        self.context: dict[str, Any] = dict(context)

    def with_context(self, **context: Any) -> "ReproError":
        """Merge additional context keys (existing keys win: the innermost
        raise site knows best).  Returns self for raise-chaining."""
        for k, v in context.items():
            self.context.setdefault(k, v)
        return self

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        base = super().__str__()
        if not self.context:
            return base
        parts = []
        for k in sorted(self.context):
            v = self.context[k]
            if k in ("addr", "address") and isinstance(v, int):
                parts.append(f"{k}={v:#x}")
            else:
                parts.append(f"{k}={v!r}")
        return f"{base} [{', '.join(parts)}]"


class EncodeError(ReproError):
    """An instruction could not be encoded to machine code."""


class DecodeError(ReproError):
    """A byte sequence could not be decoded to an instruction."""


class AsmSyntaxError(ReproError):
    """Textual assembly could not be parsed."""


class CompileError(ReproError):
    """MCC (the mini C compiler) rejected a program."""


class SimulatorError(ReproError):
    """The CPU simulator hit an unsupported or invalid situation."""


class MemoryAccessError(SimulatorError):
    """A load or store touched unmapped simulated memory."""


class IRError(ReproError):
    """Malformed MiniLLVM IR (verifier failures, type mismatches)."""


class IRInterpError(IRError):
    """The IR interpreter hit an unsupported or invalid situation."""


class CodegenError(ReproError):
    """MiniLLVM's x86-64 back-end could not lower a function."""


class RewriteError(ReproError):
    """DBrew-style rewriting failed (decode/emulate/encode gap).

    Per the paper's Section II this is an *internal* error: the default
    error handler returns the original function, custom handlers may retry
    with enlarged resources.
    """


class LiftError(RewriteError):
    """The x86-64 -> IR transformation hit an unsupported construct."""


class BudgetExceededError(RewriteError):
    """A transformation ran out of its resource budget (fuel or deadline).

    Raised by the budget checks threaded through the rewrite driver, the
    lifter and the -O3 pipeline (see :class:`repro.guard.Budget`) so that
    an adversarial or pathological input degrades to a fallback instead of
    hanging the request path.
    """


class VerificationError(RewriteError):
    """The differential verification gate observed a divergence.

    The specialized code computed a different result than the original
    function on at least one probe vector; the guard ladder treats this
    like any other rung failure and falls back (LeanBin's
    validate-before-swap policy).
    """


class InstrumentError(ReproError):
    """An instrumentation request was malformed or unsafe.

    Raised when a function is instrumented twice (probes would observe
    other probes), when a probe plan does not match the function it is
    injected into, or when stripping finds program code depending on a
    probe value — each of which would break the effect-only contract.
    """
