"""Tokenizer for the MCC C subset, including a one-pass ``#define``
preprocessor for object-like integer/float macros (enough for ``#define SZ
649`` in the paper's stencil sources).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import CompileError

KEYWORDS = frozenset({
    "int", "long", "double", "float", "char", "void", "struct", "return",
    "if", "else", "while", "for", "do", "break", "continue", "sizeof",
    "const", "static", "unsigned",
})

_PUNCT = (
    "<<=", ">>=", "...",
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~",
    "(", ")", "{", "}", "[", "]", ";", ",", ".", "?", ":",
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<float>(?:\d+\.\d*|\.\d+)(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+)
  | (?P<int>0[xX][0-9a-fA-F]+|\d+)
  | (?P<ident>[A-Za-z_]\w*)
  | (?P<punct>""" + "|".join(re.escape(p) for p in _PUNCT) + r""")
    """,
    re.VERBOSE | re.DOTALL,
)


@dataclass(frozen=True)
class Token:
    kind: str  # 'int', 'float', 'ident', 'kw', 'punct', 'eof'
    text: str
    value: int | float | None
    line: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r})"


def _preprocess(source: str) -> str:
    """Expand object-like #define macros; strip other # lines."""
    defines: dict[str, str] = {}
    out_lines: list[str] = []
    for line in source.splitlines():
        stripped = line.strip()
        if stripped.startswith("#"):
            m = re.match(r"#\s*define\s+(\w+)\s+(.+?)\s*(//.*)?$", stripped)
            if m:
                defines[m.group(1)] = m.group(2)
            out_lines.append("")  # keep line numbers stable
            continue
        out_lines.append(line)
    text = "\n".join(out_lines)
    if defines:
        # repeated expansion supports macros referencing earlier macros
        for _ in range(8):
            changed = False
            for name, repl in defines.items():
                new = re.sub(rf"\b{re.escape(name)}\b", repl, text)
                if new != text:
                    text, changed = new, True
            if not changed:
                break
    return text


def tokenize(source: str) -> list[Token]:
    """Tokenize preprocessed C source; appends an EOF token."""
    text = _preprocess(source)
    tokens: list[Token] = []
    pos = 0
    line = 1
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise CompileError(f"line {line}: unexpected character {text[pos]!r}")
        pos = m.end()
        kind = m.lastgroup
        tok_text = m.group()
        line += tok_text.count("\n")
        if kind in ("ws", "comment"):
            continue
        if kind == "int":
            tokens.append(Token("int", tok_text, int(tok_text, 0), line))
        elif kind == "float":
            tokens.append(Token("float", tok_text, float(tok_text), line))
        elif kind == "ident":
            if tok_text in KEYWORDS:
                tokens.append(Token("kw", tok_text, None, line))
            else:
                tokens.append(Token("ident", tok_text, None, line))
        else:
            tokens.append(Token("punct", tok_text, None, line))
    tokens.append(Token("eof", "", None, line))
    return tokens
